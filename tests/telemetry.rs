//! Live-telemetry plane conformance: the Prometheus text exposition is
//! byte-stable (golden file), the registry never loses concurrent
//! increments, and the parse helper inverts the renderer.
//!
//! The golden file pins exposition *stability*: deterministic family and
//! series ordering, label escaping, histogram bucket boundaries. Any
//! intentional format change must update `tests/golden/metrics_golden.prom`
//! in the same commit — the failure message prints the fresh rendering to
//! make that a copy-paste.

use lmerge::obs::{parse_prometheus, MetricsRegistry};
use std::thread;

/// A registry covering every exposition feature: multiple series per
/// family (registered out of order), label values needing escapes, a
/// negative gauge, and a histogram spanning exact and bucketed ranges.
fn golden_registry() -> MetricsRegistry {
    let r = MetricsRegistry::new();
    // Registered in reverse name order: the render must sort families.
    let h = r.histogram("lmerge_demo_latency_us", "Latency histogram.", &[]);
    for v in [1, 2, 3, 50, 900, 70_000] {
        h.record(v);
    }
    r.gauge(
        "lmerge_demo_depth",
        "Queue depth with \"quotes\" and \\ backslash.",
        &[("shard", "a\"b\\c\nd")],
    )
    .set(-3);
    // Series registered out of label order within one family.
    r.counter(
        "lmerge_demo_total",
        "Elements processed.",
        &[("input", "1")],
    )
    .add(7);
    r.counter(
        "lmerge_demo_total",
        "Elements processed.",
        &[("input", "0")],
    )
    .add(42);
    r
}

#[test]
fn exposition_matches_the_golden_file() {
    let rendered = golden_registry().render();
    let golden = include_str!("golden/metrics_golden.prom");
    assert_eq!(
        rendered, golden,
        "exposition drifted from tests/golden/metrics_golden.prom; \
         if intentional, replace the golden with:\n{rendered}"
    );
}

#[test]
fn exposition_is_stable_across_renders_and_registration_replays() {
    let r = golden_registry();
    let first = r.render();
    // Re-requesting existing handles must not reorder or duplicate series.
    r.counter(
        "lmerge_demo_total",
        "Elements processed.",
        &[("input", "0")],
    );
    assert_eq!(r.render(), first);
}

#[test]
fn parse_inverts_the_golden_exposition() {
    let r = golden_registry();
    let samples = parse_prometheus(&r.render());
    let total: f64 = samples
        .iter()
        .filter(|s| s.name == "lmerge_demo_total")
        .map(|s| s.value)
        .sum();
    assert_eq!(total, 49.0);
    let depth = samples
        .iter()
        .find(|s| s.name == "lmerge_demo_depth")
        .expect("gauge series");
    assert_eq!(depth.value, -3.0);
    assert_eq!(
        depth.label("shard"),
        Some("a\"b\\c\nd"),
        "escaped label round-trips"
    );
    let count = samples
        .iter()
        .find(|s| s.name == "lmerge_demo_latency_us_count")
        .expect("histogram count series");
    assert_eq!(count.value, 6.0);
    let inf_bucket = samples
        .iter()
        .find(|s| s.name == "lmerge_demo_latency_us_bucket" && s.label("le") == Some("+Inf"))
        .expect("+Inf bucket");
    assert_eq!(inf_bucket.value, 6.0, "cumulative +Inf covers everything");
}

#[test]
fn concurrent_increments_are_never_lost() {
    const THREADS: usize = 8;
    const PER: u64 = 25_000;
    let registry = MetricsRegistry::new();
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = registry.clone();
            thread::spawn(move || {
                // Every thread re-requests the same series by name: the
                // registry must hand back the same underlying atomics.
                let c = reg.counter("lmerge_mt_total", "help", &[]);
                let labeled = reg.counter(
                    "lmerge_mt_labeled_total",
                    "help",
                    &[("input", if t % 2 == 0 { "even" } else { "odd" })],
                );
                let g = reg.gauge("lmerge_mt_peak", "help", &[]);
                let h = reg.histogram("lmerge_mt_hist", "help", &[]);
                for i in 0..PER {
                    c.inc();
                    labeled.inc();
                    h.record(i % 1024);
                    g.set_max((t as u64 * PER + i) as i64);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let expect = (THREADS as u64 * PER) as f64;
    assert_eq!(registry.sum_value("lmerge_mt_total"), Some(expect));
    assert_eq!(registry.sum_value("lmerge_mt_labeled_total"), Some(expect));
    assert_eq!(
        registry.max_value("lmerge_mt_peak"),
        Some((THREADS as u64 * PER - 1) as f64),
        "set_max keeps the global maximum under contention"
    );
    let samples = parse_prometheus(&registry.render());
    let hist_count = samples
        .iter()
        .find(|s| s.name == "lmerge_mt_hist_count")
        .expect("histogram count");
    assert_eq!(hist_count.value, expect, "no lost histogram records");
    let per_parity: Vec<f64> = samples
        .iter()
        .filter(|s| s.name == "lmerge_mt_labeled_total")
        .map(|s| s.value)
        .collect();
    assert_eq!(per_parity.len(), 2, "one series per label value");
    assert!(per_parity.iter().all(|&v| v == expect / 2.0));
}
