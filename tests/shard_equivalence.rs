//! Sharded-merge equivalence: a `ShardedLMerge` partitioned over `K`
//! inner states must be observationally equivalent to the sequential
//! operator it wraps — same output data multiset, same reconstituted
//! TDB, same stable points, same headline statistics — for every inner
//! variant (R0–R4 plus the naive R3 baseline).
//!
//! Why this should hold: every index entry in every variant is keyed by
//! `(Vs, Payload)`, and elements with different keys never interact, so
//! hash-partitioning by that key splits the operator into `K`
//! independent sub-merges. Stable punctuation is broadcast, keeping all
//! shards in lockstep on progress, and the wrapper re-derives the output
//! stable point as the minimum over shards. What *can* differ is the
//! interleaving of outputs across keys within a stable epoch — hence the
//! canonical (order-insensitive) comparison, exactly as the
//! hash-iteration caveat already forces in `batch_equivalence.rs`.
//!
//! Failures in the generated-workload test shrink their knob vector
//! (events, disorder, revisions, lag, seed) via `properties::shrink`
//! before panicking, so the report names a minimal reproduction.

use lmerge::core::{
    LMergeR0, LMergeR1, LMergeR2, LMergeR3, LMergeR3Naive, LMergeR4, LogicalMerge, ShardConfig,
    ShardedLMerge,
};
use lmerge::engine::{ControlAction, MergeRun, Query, RunConfig, RunHooks, TimedElement};
use lmerge::gen::timing::add_lag;
use lmerge::gen::{assign_times, diverge, generate, DivergenceConfig, GenConfig};
use lmerge::properties::shrink::{describe, minimize, Knob};
use lmerge::temporal::reconstitute::Reconstituter;
use lmerge::temporal::{Element, Payload, StreamId, Time, VTime, Value};
use rand::prelude::*;

const K: usize = 4;

type E = Element<&'static str>;

/// A labelled operator factory for the differential loops.
type NamedFactory<'a, P> = (&'a str, &'a dyn Fn() -> Box<dyn LogicalMerge<P>>);

// ---------------------------------------------------------------------
// Canonical comparison helpers
// ---------------------------------------------------------------------

/// Order-insensitive output fingerprint.
fn sorted_debug<P: Payload>(out: &[Element<P>]) -> Vec<String> {
    let mut v: Vec<String> = out.iter().map(|e| format!("{e:?}")).collect();
    v.sort();
    v
}

/// Reconstitute and fingerprint the TDB. Garbage feeds can legally make
/// the operator emit sequences the strict reconstituter rejects (e.g. an
/// adjust whose old endpoint predates the announced stable point) — the
/// same for sequential and sharded runs, so `None` on both sides is not a
/// divergence.
fn try_tdb<P: Payload>(out: &[Element<P>]) -> Option<String> {
    let mut rec: Reconstituter<P> = Reconstituter::new();
    for e in out {
        rec.apply(e).ok()?;
    }
    Some(format!("{:?}", rec.tdb()))
}

/// Reconstitute (asserting well-formedness) and fingerprint the TDB.
fn tdb_fingerprint<P: Payload>(out: &[Element<P>], what: &str) -> String {
    try_tdb(out).unwrap_or_else(|| panic!("{what}: ill-formed output"))
}

/// The observable summary two equivalent runs must agree on.
fn observables<P: Payload>(
    lm: &dyn LogicalMerge<P>,
    out: &[Element<P>],
) -> (Vec<String>, Time, [u64; 4]) {
    let s = lm.stats();
    (
        sorted_debug(out),
        lm.max_stable(),
        [s.inserts_out, s.adjusts_out, s.stables_out, s.dropped],
    )
}

fn drive<P: Payload>(lm: &mut dyn LogicalMerge<P>, feed: &[(u32, Element<P>)]) -> Vec<Element<P>> {
    let mut out = Vec::new();
    for (s, e) in feed {
        lm.push(StreamId(*s), e, &mut out);
    }
    out
}

/// Compare sequential vs K-sharded for one factory; returns a diagnosis
/// instead of panicking so shrinking loops can reuse it.
fn diverges<P: Payload>(
    mk: &dyn Fn() -> Box<dyn LogicalMerge<P>>,
    n_inputs: usize,
    feed: &[(u32, Element<P>)],
) -> Option<String> {
    let mut seq = mk();
    let out_seq = drive(seq.as_mut(), feed);
    let mut sharded = ShardedLMerge::from_factory(ShardConfig::with_shards(K), n_inputs, mk);
    let out_sh = drive(&mut sharded, feed);

    let a = observables(seq.as_ref(), &out_seq);
    let b = observables(&sharded, &out_sh);
    if a.1 != b.1 {
        return Some(format!(
            "stable point: sequential {:?}, sharded {:?}",
            a.1, b.1
        ));
    }
    if a.2 != b.2 {
        return Some(format!(
            "stats [ins,adj,stab,drop]: sequential {:?}, sharded {:?}",
            a.2, b.2
        ));
    }
    if a.0 != b.0 {
        return Some("output multisets differ".to_string());
    }
    match (try_tdb(&out_seq), try_tdb(&out_sh)) {
        // Reordering across keys within an epoch can shift which side the
        // strict reconstituter accepts; the multiset check above already
        // proved the outputs carry the same elements.
        (Some(tdb_a), Some(tdb_b)) if tdb_a != tdb_b => {
            Some("reconstituted TDBs differ".to_string())
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Seeded feeds over a tiny static domain (from batch_equivalence.rs)
// ---------------------------------------------------------------------

fn arb_element(rng: &mut StdRng) -> E {
    let payload = ["a", "b", "c"][rng.random_range(0usize..3)];
    let t = |rng: &mut StdRng| rng.random_range(0i64..24);
    match rng.random_range(0u32..5) {
        0 | 1 => {
            let vs = t(rng);
            Element::insert(payload, vs, vs + t(rng) + 1)
        }
        2 => {
            let vs = t(rng);
            Element::adjust(payload, vs, vs + t(rng), vs + t(rng))
        }
        _ => Element::stable(t(rng)),
    }
}

/// Ordered insert-only feed (strictly increasing `Vs`), the R0 contract.
fn ordered_feed(rng: &mut StdRng) -> Vec<(u32, E)> {
    let len = rng.random_range(1usize..150);
    let mut vs = 0i64;
    let mut feed = Vec::new();
    for _ in 0..len {
        vs += rng.random_range(1i64..4);
        let s = rng.random_range(0u32..3);
        if rng.random_range(0u32..8) == 0 {
            feed.push((s, Element::stable(vs - 1)));
        } else {
            // Three payloads so the router actually splits the feed.
            let p = ["a", "b", "c"][(vs % 3) as usize];
            feed.push((s, Element::insert(p, vs, vs + 10)));
        }
    }
    feed
}

fn garbage_feed(rng: &mut StdRng) -> Vec<(u32, E)> {
    let len = rng.random_range(1usize..150);
    (0..len)
        .map(|_| (rng.random_range(0u32..3), arb_element(rng)))
        .collect()
}

#[test]
fn restricted_variants_match_sharded_on_ordered_feeds() {
    let mut rng = StdRng::seed_from_u64(0x5AAD_0001);
    for case in 0..150 {
        let feed = ordered_feed(&mut rng);
        let mks: [NamedFactory<&'static str>; 3] = [
            ("R0", &|| Box::new(LMergeR0::new(3))),
            ("R1", &|| Box::new(LMergeR1::new(3))),
            ("R2", &|| Box::new(LMergeR2::new(3))),
        ];
        for (name, mk) in mks {
            if let Some(why) = diverges(mk, 3, &feed) {
                panic!("case {case} ({name}): {why}");
            }
        }
    }
}

#[test]
fn indexed_variants_match_sharded_under_garbage() {
    let mut rng = StdRng::seed_from_u64(0x5AAD_0002);
    for case in 0..150 {
        let feed = garbage_feed(&mut rng);
        let mks: [NamedFactory<&'static str>; 3] = [
            ("R3", &|| Box::new(LMergeR3::new(3))),
            ("R3-", &|| Box::new(LMergeR3Naive::new(3))),
            ("R4", &|| Box::new(LMergeR4::new(3))),
        ];
        for (name, mk) in mks {
            if let Some(why) = diverges(mk, 3, &feed) {
                panic!("case {case} ({name}): {why}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Generated physically-divergent workloads, shrunk on failure
// ---------------------------------------------------------------------

const INPUTS: usize = 3;

/// Build the arrival-ordered feed from the knob vector:
/// `[events, disorder%, revision%, lag_ms, seed]`.
fn knob_feed(k: &[Knob]) -> Vec<(u32, Element<Value>)> {
    let (events, disorder, revision, lag_ms, seed) = (
        k[0].value as usize,
        k[1].value as f64 / 100.0,
        k[2].value as f64 / 100.0,
        k[3].value,
        k[4].value,
    );
    let reference = generate(&GenConfig {
        num_events: events,
        disorder,
        disorder_window_ms: 5_000,
        stable_freq: 0.05,
        payload_len: 16,
        seed,
        ..GenConfig::default()
    });
    let div = DivergenceConfig {
        revision_prob: revision,
        seed,
        ..DivergenceConfig::default()
    };
    let mut all: Vec<(u64, u32, Element<Value>)> = Vec::new();
    for i in 0..INPUTS {
        let copy = diverge(&reference.elements, &div, i as u64);
        let mut timed = assign_times(&copy, 50_000.0);
        add_lag(&mut timed, i as u64 * lag_ms * 1_000);
        for (at, e) in timed {
            all.push((at.as_micros(), i as u32, e));
        }
    }
    all.sort_by_key(|(at, i, _)| (*at, *i));
    all.into_iter().map(|(_, i, e)| (i, e)).collect()
}

#[test]
fn generated_divergent_workloads_match_sharded() {
    let mks: [NamedFactory<Value>; 3] = [
        ("R3", &|| Box::new(LMergeR3::new(INPUTS))),
        ("R3-", &|| Box::new(LMergeR3Naive::new(INPUTS))),
        ("R4", &|| Box::new(LMergeR4::new(INPUTS))),
    ];
    for seed in 0..4u64 {
        let knobs = vec![
            Knob::new("events", 300, 1),
            Knob::new("disorder_pct", 25, 0),
            Knob::new("revision_pct", 30, 0),
            Knob::new("lag_ms", 2, 0),
            Knob::new("seed", seed, 0),
        ];
        for (name, mk) in mks {
            let fails = |k: &[Knob]| diverges(mk, INPUTS, &knob_feed(k)).is_some();
            if fails(&knobs) {
                let (min, probes) = minimize(knobs.clone(), fails);
                let why = diverges(mk, INPUTS, &knob_feed(&min)).unwrap_or_default();
                panic!(
                    "{name} sharded/sequential divergence ({why}); \
                     minimal reproduction after {probes} probes: {}",
                    describe(&min)
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Chaos control under sharding: mid-feed detach via RunHooks
// ---------------------------------------------------------------------

/// Detaches one input at a fixed virtual time and captures everything
/// the merge emits.
struct DetachMidFeed {
    victim: u32,
    at: VTime,
    fired: bool,
    emitted: Vec<E>,
}

impl RunHooks<&'static str> for DetachMidFeed {
    fn enabled(&self) -> bool {
        true
    }

    fn on_consumed(&mut self, _input: u32, _at: VTime, _delivered: &[E], emitted: &[E]) {
        self.emitted.extend_from_slice(emitted);
    }

    fn control(&mut self, at: VTime, actions: &mut Vec<ControlAction<&'static str>>) {
        if !self.fired && at >= self.at {
            actions.push(ControlAction::Detach(StreamId(self.victim)));
            self.fired = true;
        }
    }
}

/// The same chaos plan must produce the same merged story whether the
/// run's operator is sequential or sharded: control is applied at the
/// router, before partitioning, so a detach means the same thing.
#[test]
fn mid_feed_detach_behaves_identically_sharded() {
    let feeds: Vec<Vec<TimedElement<&'static str>>> = (0..3u64)
        .map(|i| {
            let mut f = Vec::new();
            for n in 0..30i64 {
                let at = VTime(n as u64 * 1_000 + i * 137);
                let p = ["a", "b", "c", "d"][(n % 4) as usize];
                f.push(TimedElement::new(at, Element::insert(p, n, n + 8)));
                if n % 6 == 5 {
                    f.push(TimedElement::new(at.advance(10), Element::stable(n - 2)));
                }
            }
            f.push(TimedElement::new(
                VTime(40_000),
                Element::stable(Time::INFINITY),
            ));
            f
        })
        .collect();

    let run = |shards: usize| {
        let config = RunConfig {
            shards,
            ..RunConfig::default()
        };
        let lmerge = config.shard_merge(3, || {
            Box::new(LMergeR3::new(3)) as Box<dyn LogicalMerge<&'static str>>
        });
        let queries = feeds.iter().cloned().map(Query::passthrough).collect();
        let mut hooks = DetachMidFeed {
            victim: 2,
            at: VTime(14_000),
            fired: false,
            emitted: Vec::new(),
        };
        let m = MergeRun::new(queries, lmerge, config)
            .run_with_hooks(&mut lmerge::obs::NullSink, &mut hooks);
        assert!(hooks.fired, "detach fired");
        (
            sorted_debug(&hooks.emitted),
            tdb_fingerprint(&hooks.emitted, "detach run"),
            [
                m.merge.inserts_out,
                m.merge.adjusts_out,
                m.merge.stables_out,
                m.merge.dropped,
            ],
        )
    };

    let sequential = run(1);
    let sharded = run(K);
    assert_eq!(sequential.0, sharded.0, "emitted multisets diverge");
    assert_eq!(sequential.1, sharded.1, "TDBs diverge");
    assert_eq!(sequential.2, sharded.2, "stats diverge");
}
