//! Property-based snapshot fidelity: for every variant of the spectrum —
//! including states with quarantined and demoted inputs, and the sharded
//! wrapper's recursive image — a seeded garbage workload's exported state
//! must survive encode → decode → re-encode with the decoded image equal
//! to the original and the re-encoding byte-identical (the canonical
//! `(Vs, payload)` entry order makes equal states encode equally).
//!
//! Failing cases are shrunk with `properties::shrink` to a locally minimal
//! `(events, seed)` pair before panicking, so a red run prints a
//! reproduction recipe, not a 10k-element core dump.
//!
//! The flip side of durability is refusing bad bytes: every single-byte
//! corruption and every truncation of a checkpoint envelope must yield a
//! typed [`DurableError`], and raw fuzz must never panic the decoder.

use lmerge::chaos::{Variant, ALL_VARIANTS};
use lmerge::core::{LogicalMerge, MergeStateImage, RobustnessPolicy, ShardConfig, ShardedLMerge};
use lmerge::durable::{envelope, get_merge_image, open_envelope, Cursor, FileKind};
use lmerge::properties::shrink::{describe, minimize, Knob};
use lmerge::properties::RLevel;
use lmerge::temporal::{Element, StreamId, Value};
use rand::prelude::*;

const N_INPUTS: usize = 3;

/// Tight guards so seeded floods actually trip quarantine and demotion:
/// the exported images then carry non-Active input states, purge
/// transitions, and per-input counter skew — the fields a lazy codec
/// would forget.
fn tight() -> RobustnessPolicy {
    RobustnessPolicy::guarded(8, 24)
}

/// An arbitrary element over a small domain, biased toward collisions and
/// punctuation-contract violations (the states they produce are the point;
/// robustness guarantees the merge survives them).
fn arb_element(rng: &mut StdRng) -> Element<Value> {
    let key = rng.random_range(0i32..6);
    let t = |rng: &mut StdRng| rng.random_range(0i64..40);
    match rng.random_range(0u32..5) {
        0 | 1 => {
            let vs = t(rng);
            Element::insert(Value::synthetic(key, 8), vs, vs + t(rng) + 1)
        }
        2 => {
            let vs = t(rng);
            Element::adjust(Value::synthetic(key, 8), vs, vs + t(rng), vs + t(rng))
        }
        3 => Element::stable(t(rng)),
        _ => {
            let vs = 100 + t(rng);
            Element::insert(Value::bare(key), vs, vs + 5)
        }
    }
}

fn arb_feed(seed: u64, events: u64) -> Vec<(u32, Element<Value>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..events)
        .map(|_| {
            (
                rng.random_range(0u32..N_INPUTS as u32),
                arb_element(&mut rng),
            )
        })
        .collect()
}

/// A contract-abiding feed for the restricted variants: insert-only with
/// per-input strictly increasing `Vs` (R0's hard requirement; R1/R2 accept
/// a superset), punctuated now and then. These variants assert their input
/// contract rather than tolerating garbage, so the property drives them
/// with what they admit.
fn restricted_feed(seed: u64, events: u64) -> Vec<(u32, Element<Value>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vs = [0i64; N_INPUTS];
    (0..events)
        .map(|_| {
            let s = rng.random_range(0u32..N_INPUTS as u32);
            if rng.random_range(0u32..8) == 0 {
                (s, Element::stable(vs[s as usize]))
            } else {
                vs[s as usize] += rng.random_range(1i64..5);
                let v = vs[s as usize];
                let key = rng.random_range(0i32..6);
                (s, Element::insert(Value::synthetic(key, 8), v, v + 5))
            }
        })
        .collect()
}

fn state_after(
    mut lm: Box<dyn LogicalMerge<Value>>,
    feed: &[(u32, Element<Value>)],
) -> MergeStateImage<Value> {
    let mut out = Vec::new();
    for (s, e) in feed {
        lm.push(StreamId(*s), e, &mut out);
    }
    lm.export_state().expect("every variant exports state")
}

/// Whether any input anywhere in the image (shard-local states included —
/// robustness guards fire per shard) is quarantined, joining, or demoted.
fn any_non_active(image: &MergeStateImage<Value>) -> bool {
    image
        .input_states
        .iter()
        .any(|s| !matches!(s, lmerge::core::InputStateImage::Active))
        || image.shards.iter().any(any_non_active)
}

fn encode(image: &MergeStateImage<Value>) -> Vec<u8> {
    let mut buf = Vec::new();
    lmerge::durable::put_merge_image(&mut buf, image);
    buf
}

/// encode → decode → re-encode; true iff both hops are lossless.
fn round_trips(image: &MergeStateImage<Value>) -> bool {
    let bytes = encode(image);
    let mut cur = Cursor::new(&bytes);
    let decoded = match get_merge_image::<Value>(&mut cur) {
        Ok(d) if cur.is_empty() => d,
        _ => return false,
    };
    decoded == *image && encode(&decoded) == bytes
}

type Build = Box<dyn Fn() -> Box<dyn LogicalMerge<Value>>>;

/// Every build the property sweeps: the six spectrum variants plus the
/// sharded wrapper. `general` marks the builds that tolerate arbitrary
/// garbage (and own robustness guards); the restricted variants get a
/// contract-abiding feed instead.
fn builds() -> Vec<(&'static str, Build, bool)> {
    let mut v: Vec<(&'static str, Build, bool)> = ALL_VARIANTS
        .iter()
        .map(|&variant| {
            // The naive baseline takes no robustness policy, so it gets the
            // garbage feed but is exempt from the must-demote check.
            let general = variant.level() >= RLevel::R3 && variant != Variant::R3Naive;
            (
                variant.name(),
                Box::new(move || variant.build(N_INPUTS, tight())) as Build,
                general,
            )
        })
        .collect();
    v.push((
        "sharded-k3",
        Box::new(|| {
            // Guarded R4 per shard (`new_for_level` would drop the guards).
            Box::new(ShardedLMerge::from_factory(
                ShardConfig::with_shards(3),
                N_INPUTS,
                || Variant::R4.build(N_INPUTS, tight()),
            ))
        }),
        true,
    ));
    v
}

/// Seeded property loop: 64 cases per build; a failure shrinks before it
/// panics.
#[test]
fn every_variant_state_round_trips_byte_identically() {
    for (name, build, general) in builds() {
        let feed = if general || name == "r3_naive" {
            arb_feed
        } else {
            restricted_feed
        };
        let mut demoted_seen = false;
        for case in 0..64u64 {
            let seed = 0x5EED_0000 + case;
            let events = 160;
            let image = state_after(build(), &feed(seed, events));
            demoted_seen |= any_non_active(&image);
            if !round_trips(&image) {
                let knobs = vec![Knob::new("events", events, 1), Knob::new("seed", seed, 0)];
                let (min, probes) = minimize(knobs, |k| {
                    !round_trips(&state_after(build(), &feed(k[1].value, k[0].value)))
                });
                panic!(
                    "{name}: snapshot round-trip failed; minimized to {} ({probes} probes)",
                    describe(&min)
                );
            }
        }
        assert!(
            !general || demoted_seen,
            "{name}: the tight guards never tripped — the property loop is \
             not exercising quarantined/demoted states"
        );
    }
}

/// Every single-byte flip and every truncation of an enveloped snapshot is
/// a typed error; random bytes never panic the decoder.
#[test]
fn corrupted_and_truncated_snapshots_fail_typed_never_panic() {
    let image = state_after(
        Variant::R4.build(N_INPUTS, tight()),
        &arb_feed(0xBAD_F00D, 200),
    );
    let file = envelope(FileKind::Snapshot, &encode(&image));

    for cut in 0..file.len() {
        let err = open_envelope(&file[..cut]).expect_err("truncated file accepted");
        let _ = err.to_string(); // typed and printable, not a panic
    }
    for i in 0..file.len() {
        let mut bad = file.clone();
        bad[i] ^= 0x40;
        assert!(open_envelope(&bad).is_err(), "byte {i} flip accepted");
    }

    let mut rng = StdRng::seed_from_u64(0xF0_22);
    for _ in 0..256 {
        let len = rng.random_range(0usize..512);
        let junk: Vec<u8> = (0..len)
            .map(|_| rng.random_range(0u32..256) as u8)
            .collect();
        // Must return, Ok or Err — any panic fails the test.
        let mut cur = Cursor::new(&junk);
        let _ = get_merge_image::<Value>(&mut cur);
        let _ = open_envelope(&junk);
    }
}
