//! Cross-variant agreement: every LMerge algorithm, fed streams of the
//! class it supports, produces output logically equivalent to the inputs.

use lmerge::core::{new_for_level, LogicalMerge, MergePolicy};
use lmerge::gen::{diverge, generate, DivergenceConfig, GenConfig};
use lmerge::properties::RLevel;
use lmerge::temporal::reconstitute::tdb_of;
use lmerge::temporal::{Element, StreamId, Tdb, Time, Value};

/// Interleave copies round-robin through a merge and reconstitute.
fn merge_round_robin(
    level: RLevel,
    copies: &[Vec<Element<Value>>],
) -> (Tdb<Value>, lmerge::core::MergeStats) {
    let mut lm = new_for_level::<Value>(level, copies.len(), MergePolicy::default());
    let mut out = Vec::new();
    let longest = copies.iter().map(Vec::len).max().unwrap_or(0);
    for k in 0..longest {
        for (i, c) in copies.iter().enumerate() {
            if let Some(e) = c.get(k) {
                lm.push(StreamId(i as u32), e, &mut out);
            }
        }
    }
    (tdb_of(&out).expect("merge output well formed"), lm.stats())
}

/// R0: identical ordered copies interleaved — output = logical stream.
#[test]
fn r0_merges_ordered_copies() {
    let mut cfg = GenConfig::small(500, 1).with_disorder(0.0);
    cfg.min_gap_ms = 1; // R0 requires strictly increasing timestamps
    let r = generate(&cfg);
    let copies = vec![r.elements.clone(), r.elements.clone(), r.elements.clone()];
    let (tdb, stats) = merge_round_robin(RLevel::R0, &copies);
    assert_eq!(tdb, r.tdb);
    assert_eq!(stats.inserts_out, 500);
}

/// R1 and R2 over ordered copies agree with R0.
#[test]
fn r1_r2_match_r0_on_ordered_input() {
    let r = generate(&GenConfig::small(400, 2).with_disorder(0.0));
    let copies = vec![r.elements.clone(), r.elements.clone()];
    for level in [RLevel::R1, RLevel::R2] {
        let (tdb, _) = merge_round_robin(level, &copies);
        assert_eq!(tdb, r.tdb, "{level} diverged on ordered input");
    }
}

/// R3+, LMR3−, and R4 over fully divergent copies all reproduce the
/// reference TDB.
#[test]
fn general_variants_agree_on_divergent_copies() {
    for seed in 0..3u64 {
        let r = generate(&GenConfig::small(300, 10 + seed).with_disorder(0.3));
        let div = DivergenceConfig::default();
        let copies: Vec<_> = (0..3).map(|i| diverge(&r.elements, &div, i)).collect();
        for level in [RLevel::R3, RLevel::R4] {
            let (tdb, stats) = merge_round_robin(level, &copies);
            assert_eq!(tdb, r.tdb, "{level} diverged (seed {seed})");
            assert!(
                stats.inserts_out + stats.adjusts_out <= stats.inserts_in,
                "{level}: Theorem 1 bound violated (seed {seed})"
            );
        }
        // The naive baseline agrees too.
        let mut lm = lmerge::core::LMergeR3Naive::<Value>::new(3);
        let mut out = Vec::new();
        let longest = copies.iter().map(Vec::len).max().unwrap();
        for k in 0..longest {
            for (i, c) in copies.iter().enumerate() {
                if let Some(e) = c.get(k) {
                    lm.push(StreamId(i as u32), e, &mut out);
                }
            }
        }
        assert_eq!(tdb_of(&out).unwrap(), r.tdb, "LMR3- diverged (seed {seed})");
    }
}

/// The merge result does not depend on the interleaving of inputs.
#[test]
fn interleaving_independence() {
    let r = generate(&GenConfig::small(200, 42).with_disorder(0.2));
    let div = DivergenceConfig::default();
    let copies: Vec<_> = (0..2).map(|i| diverge(&r.elements, &div, i)).collect();

    // Round-robin.
    let (rr, _) = merge_round_robin(RLevel::R3, &copies);
    // Sequential: all of copy 0 first, then all of copy 1.
    let mut lm = new_for_level::<Value>(RLevel::R3, 2, MergePolicy::default());
    let mut out = Vec::new();
    for e in &copies[0] {
        lm.push(StreamId(0), e, &mut out);
    }
    for e in &copies[1] {
        lm.push(StreamId(1), e, &mut out);
    }
    let seq = tdb_of(&out).unwrap();
    assert_eq!(rr, seq);
    assert_eq!(rr, r.tdb);
}

/// Single-input LMerge is the identity on logical content.
#[test]
fn single_input_is_logical_identity() {
    let r = generate(&GenConfig::small(300, 5).with_disorder(0.4));
    for level in [RLevel::R3, RLevel::R4] {
        let (tdb, _) = merge_round_robin(level, std::slice::from_ref(&r.elements));
        assert_eq!(tdb, r.tdb);
    }
}

/// Feeding ten divergent copies costs no duplicates.
#[test]
fn many_copies_no_duplicates() {
    let r = generate(&GenConfig::small(200, 77).with_disorder(0.25));
    let div = DivergenceConfig::default();
    let copies: Vec<_> = (0..10).map(|i| diverge(&r.elements, &div, i)).collect();
    let (tdb, _) = merge_round_robin(RLevel::R3, &copies);
    assert_eq!(tdb, r.tdb);
}

/// R3's stable point follows the maximum across inputs (the paper's
/// recommended policy), never exceeding it (condition C1).
#[test]
fn stable_tracks_maximum_input() {
    let mut lm = new_for_level::<Value>(RLevel::R3, 2, MergePolicy::default());
    let mut out = Vec::new();
    lm.push(
        StreamId(0),
        &Element::insert(Value::bare(1), 5, 9),
        &mut out,
    );
    lm.push(StreamId(0), &Element::stable(20), &mut out);
    assert_eq!(lm.max_stable(), Time(20));
    lm.push(StreamId(1), &Element::stable(10), &mut out);
    assert_eq!(lm.max_stable(), Time(20), "lagging stable is absorbed");
    lm.push(StreamId(1), &Element::stable(30), &mut out);
    assert_eq!(lm.max_stable(), Time(30));
}
