//! The paper's worked examples, end to end through the public API.

use lmerge::core::{InsertPolicy, LMergeR3, LogicalMerge, MergePolicy};
use lmerge::temporal::amf::{to_streaminsight as amf_to_si, Amf};
use lmerge::temporal::compat::{check_r3, StreamView};
use lmerge::temporal::openclose::{has_single_close, is_time_ordered, OpenClose};
use lmerge::temporal::reconstitute::{equivalent, tdb_of};
use lmerge::temporal::{Element, Event, StreamId, Tdb, Time};

/// Table I: Phy1 and Phy2 (a/m/f model) reconstitute to the same TDB, and
/// LMerge over them reproduces exactly that TDB.
#[test]
fn table1_phy1_phy2_merge() {
    let phy1: Vec<Amf<&str>> = vec![
        Amf::a("B", 8, Time::INFINITY),
        Amf::a("A", 6, 12),
        Amf::m("B", 8, 10),
        Amf::f(11),
        Amf::f(Time::INFINITY),
    ];
    let phy2: Vec<Amf<&str>> = vec![
        Amf::a("A", 6, 7),
        Amf::a("B", 8, 15),
        Amf::m("A", 6, 12),
        Amf::m("B", 8, 10),
        Amf::f(Time::INFINITY),
    ];
    let s1 = amf_to_si(&phy1).unwrap();
    let s2 = amf_to_si(&phy2).unwrap();
    assert!(equivalent(&s1, &s2), "Table I: logically identical");

    let mut lm: LMergeR3<&str> = LMergeR3::new(2);
    let mut out = Vec::new();
    for k in 0..s1.len().max(s2.len()) {
        if let Some(e) = s1.get(k) {
            lm.push(StreamId(0), e, &mut out);
        }
        if let Some(e) = s2.get(k) {
            lm.push(StreamId(1), e, &mut out);
        }
    }
    let expected: Tdb<&str> = [Event::new("A", 6, 12), Event::new("B", 8, 10)]
        .into_iter()
        .collect();
    assert_eq!(tdb_of(&out).unwrap(), expected);
}

/// Section I-B-2: the punctuation trap. After propagating input 2's view of
/// A and B, stable(11) from input 1 must NOT freeze the output into a state
/// it cannot correct — LMerge first emits the corrective adjusts.
#[test]
fn punctuation_is_held_consistent() {
    let mut lm: LMergeR3<&str> = LMergeR3::new(2);
    let mut out = Vec::new();
    // From Phy2: a(A, 6, 7) and a(B, 8, 15).
    lm.push(StreamId(1), &Element::insert("A", 6, 7), &mut out);
    lm.push(StreamId(1), &Element::insert("B", 8, 15), &mut out);
    // Input 1 (Phy1's view): A actually runs to 12, B to 10.
    lm.push(StreamId(0), &Element::insert("A", 6, 12), &mut out);
    lm.push(
        StreamId(0),
        &Element::insert("B", 8, Time::INFINITY),
        &mut out,
    );
    lm.push(
        StreamId(0),
        &Element::adjust("B", 8, Time::INFINITY, Time(10)),
        &mut out,
    );
    // The dangerous element: f(11) ≡ stable(11) from input 0.
    lm.push(StreamId(0), &Element::stable(11), &mut out);
    // The output must still reconstitute (no frozen contradiction) …
    let tdb = tdb_of(&out).expect("output must stay well formed");
    // … with A adjustable to 12 (already done) and B already at 10.
    assert_eq!(tdb.count(&"A", Time(6), Time(12)), 1);
    assert_eq!(tdb.count(&"B", Time(8), Time(10)), 1);
}

/// Example 3: the three open/close prefixes are equivalent and their
/// property profiles match the paper's claims.
#[test]
fn example3_openclose_properties() {
    type Oc = OpenClose<&'static str>;
    let s5 = vec![
        Oc::open("A", 1),
        Oc::open("B", 2),
        Oc::open("C", 3),
        Oc::close("A", 4),
        Oc::close("B", 5),
    ];
    let u5 = vec![
        Oc::open("A", 1),
        Oc::close("A", 4),
        Oc::open("B", 2),
        Oc::close("B", 5),
        Oc::open("C", 3),
    ];
    let w6 = vec![
        Oc::open("B", 2),
        Oc::close("B", 6),
        Oc::open("A", 1),
        Oc::open("C", 3),
        Oc::close("A", 4),
        Oc::close("B", 5),
    ];
    assert!(is_time_ordered(&s5) && !is_time_ordered(&u5) && !is_time_ordered(&w6));
    assert!(has_single_close(&s5) && has_single_close(&u5) && !has_single_close(&w6));
    let tdbs: Vec<_> = [&s5, &u5, &w6]
        .iter()
        .map(|s| tdb_of(&lmerge::temporal::openclose::to_streaminsight(s).unwrap()).unwrap())
        .collect();
    assert_eq!(tdbs[0], tdbs[1]);
    assert_eq!(tdbs[1], tdbs[2]);
}

/// Example 5: the adjust chain insert(A,6,20), adjust(→30), adjust(→25) is
/// equivalent to the single element insert(A,6,25).
#[test]
fn example5_adjust_chain() {
    let chain: Vec<Element<&str>> = vec![
        Element::insert("A", 6, 20),
        Element::adjust("A", 6, 20, 30),
        Element::adjust("A", 6, 30, 25),
    ];
    let single: Vec<Element<&str>> = vec![Element::insert("A", 6, 25)];
    assert!(equivalent(&chain, &single));
}

/// Section III-D: O1 and O2 are compatible with I1/I2; O3 is not.
#[test]
fn compatibility_examples() {
    let tdb = |evs: &[(&'static str, i64, i64)]| -> Tdb<&'static str> {
        evs.iter()
            .map(|(p, vs, ve)| {
                Event::new(*p, *vs, if *ve < 0 { Time::INFINITY } else { Time(*ve) })
            })
            .collect()
    };
    let i1 = tdb(&[("A", 2, 16), ("B", 3, 10), ("C", 4, 18), ("D", 15, 20)]);
    let i2 = tdb(&[("A", 2, 12), ("B", 3, 10), ("C", 4, 18), ("E", 17, 21)]);
    let inputs = [
        StreamView::new(&i1, Time(14)),
        StreamView::new(&i2, Time(11)),
    ];

    let o1 = tdb(&[("A", 2, -1), ("B", 3, 10), ("C", 4, -1)]);
    assert!(check_r3(&inputs, &StreamView::new(&o1, Time(11))).is_ok());

    let o2 = tdb(&[
        ("A", 2, 16),
        ("B", 3, 10),
        ("C", 4, 18),
        ("D", 15, 20),
        ("E", 17, 21),
    ]);
    assert!(check_r3(&inputs, &StreamView::new(&o2, Time(14))).is_ok());

    let o3 = tdb(&[("A", 2, 12), ("C", 4, 18), ("D", 15, 20)]);
    assert!(check_r3(&inputs, &StreamView::new(&o3, Time(13))).is_err());
}

/// Table II / Section V-A: the policy spectrum from aggressive to
/// conservative. All policies converge to the same TDB; the aggressive end
/// answers earlier and chattier, the conservative end later and terser.
#[test]
fn table2_policy_spectrum() {
    let feed = |lm: &mut LMergeR3<&'static str>| -> Vec<Element<&'static str>> {
        let mut out = Vec::new();
        // The shape of Table II: A seen with diverging provisional ends on
        // the two inputs, revised, then B, then finalization.
        lm.push(StreamId(0), &Element::insert("A", 6, 10), &mut out);
        lm.push(StreamId(1), &Element::insert("A", 6, 12), &mut out);
        lm.push(StreamId(0), &Element::adjust("A", 6, 10, 12), &mut out);
        lm.push(StreamId(0), &Element::insert("B", 7, 14), &mut out);
        lm.push(StreamId(1), &Element::insert("B", 7, 14), &mut out);
        lm.push(StreamId(0), &Element::adjust("A", 6, 12, 15), &mut out);
        lm.push(StreamId(1), &Element::adjust("A", 6, 12, 15), &mut out);
        lm.push(StreamId(0), &Element::stable(16), &mut out);
        out
    };

    let mut eager = LMergeR3::with_policy(2, MergePolicy::eager());
    let out1 = feed(&mut eager);
    let mut default = LMergeR3::new(2);
    let out3 = feed(&mut default);
    let mut conservative = LMergeR3::with_policy(2, MergePolicy::conservative());
    let out2 = feed(&mut conservative);

    // All three reconstitute identically.
    let t1 = tdb_of(&out1).unwrap();
    let t2 = tdb_of(&out2).unwrap();
    let t3 = tdb_of(&out3).unwrap();
    assert_eq!(t1, t2);
    assert_eq!(t2, t3);
    assert_eq!(t1.count(&"A", Time(6), Time(15)), 1);
    assert_eq!(t1.count(&"B", Time(7), Time(14)), 1);

    // Out1 (aggressive) produces the most elements, Out2 (conservative) the
    // fewest; Out3 sits between — exactly Table II's ordering.
    assert!(out1.len() >= out3.len(), "{} vs {}", out1.len(), out3.len());
    assert!(out3.len() >= out2.len(), "{} vs {}", out3.len(), out2.len());

    // Out2 delays: nothing before the stable; Out1/Out3 answer immediately.
    assert!(out2[..out2.len() - 1]
        .iter()
        .all(|e| !e.is_insert() || out2.len() <= 3));
    assert!(out3.first().is_some_and(Element::is_insert));
}

/// The hybrid quorum policy of Section V-A: output only after a fraction of
/// inputs agree.
#[test]
fn quorum_policy_waits_for_fraction() {
    let mut lm = LMergeR3::with_policy(
        3,
        MergePolicy {
            insert: InsertPolicy::Quorum(2),
            ..Default::default()
        },
    );
    let mut out = Vec::new();
    lm.push(StreamId(0), &Element::insert("X", 1, 9), &mut out);
    assert!(out.is_empty(), "one of three is not a quorum");
    lm.push(StreamId(2), &Element::insert("X", 1, 9), &mut out);
    assert_eq!(out.len(), 1, "two of three is");
}
