//! Property-style tests: random mutually consistent inputs, every output
//! prefix checked against the paper's compatibility oracle.
//!
//! Seeded random loops stand in for a property-testing framework: each
//! case's knobs derive from a fixed master seed and print in the panic
//! message on failure, so every run is reproducible.

use lmerge::core::{LMergeR3, LMergeR4, LogicalMerge};
use lmerge::gen::{diverge, generate, DivergenceConfig, GenConfig};
use lmerge::temporal::compat::{check_r3, check_r4, StreamView};
use lmerge::temporal::consistency::consistent_with_reference;
use lmerge::temporal::reconstitute::{tdb_of, Reconstituter};
use lmerge::temporal::{Element, StreamId, Value};
use rand::prelude::*;

/// Build divergent copies from randomly chosen knobs.
fn copies_for(
    events: usize,
    seed: u64,
    disorder: f64,
    revision_prob: f64,
    n: usize,
) -> (Vec<Vec<Element<Value>>>, lmerge::temporal::Tdb<Value>) {
    let cfg = GenConfig::small(events, seed).with_disorder(disorder);
    let r = generate(&cfg);
    let div = DivergenceConfig {
        revision_prob,
        seed: seed.wrapping_mul(31),
        ..Default::default()
    };
    let copies = (0..n)
        .map(|i| diverge(&r.elements, &div, i as u64))
        .collect();
    (copies, r.tdb)
}

/// Per-case knobs drawn from a master RNG.
fn knobs(rng: &mut StdRng, max_disorder: f64, max_revision: f64) -> (u64, f64, f64) {
    (
        rng.random_range(0u64..1000),
        rng.random_range(0.0..max_disorder),
        rng.random_range(0.0..max_revision),
    )
}

/// Generated copies are each well formed and consistent with the reference
/// at every punctuation point.
#[test]
fn generated_copies_are_mutually_consistent() {
    let mut rng = StdRng::seed_from_u64(0x50_0001);
    for _ in 0..24 {
        let (seed, disorder, revision) = knobs(&mut rng, 0.5, 0.5);
        let (copies, reference) = copies_for(60, seed, disorder, revision, 3);
        for copy in &copies {
            let mut rec: Reconstituter<Value> = Reconstituter::new();
            for e in copy {
                rec.apply(e).expect("copy well formed");
                if e.is_stable() {
                    consistent_with_reference(StreamView::new(rec.tdb(), rec.stable()), &reference)
                        .expect("prefix consistent with reference");
                }
            }
            assert_eq!(
                rec.tdb(),
                &reference,
                "seed={seed} disorder={disorder:.3} revision={revision:.3}"
            );
        }
    }
}

/// R3 merge: the final output equals the reference, every output prefix
/// satisfies C1–C3 at punctuation points, and Theorem 1 holds.
#[test]
fn r3_output_is_compatible_at_every_stable() {
    let mut rng = StdRng::seed_from_u64(0x50_0002);
    for _ in 0..24 {
        let (seed, disorder, revision) = knobs(&mut rng, 0.5, 0.5);
        let (copies, reference) = copies_for(50, seed, disorder, revision, 2);
        let mut lm: LMergeR3<Value> = LMergeR3::new(2);
        let mut out = Vec::new();
        let mut input_recs: Vec<Reconstituter<Value>> =
            (0..2).map(|_| Reconstituter::new()).collect();
        let mut out_rec: Reconstituter<Value> = Reconstituter::new();
        let mut emitted_upto = 0usize;

        let longest = copies.iter().map(Vec::len).max().unwrap();
        for k in 0..longest {
            for (i, c) in copies.iter().enumerate() {
                let Some(e) = c.get(k) else { continue };
                input_recs[i].apply(e).expect("input well formed");
                lm.push(StreamId(i as u32), e, &mut out);
                for oe in &out[emitted_upto..] {
                    out_rec.apply(oe).expect("output must stay well formed");
                }
                emitted_upto = out.len();
                if e.is_stable() {
                    let views: Vec<StreamView<Value>> = input_recs
                        .iter()
                        .map(|r| StreamView::new(r.tdb(), r.stable()))
                        .collect();
                    check_r3(&views, &StreamView::new(out_rec.tdb(), out_rec.stable()))
                        .expect("output prefix compatible (C1–C3)");
                }
            }
        }
        assert_eq!(
            out_rec.tdb(),
            &reference,
            "seed={seed} disorder={disorder:.3} revision={revision:.3}"
        );
        assert!(lm.stats().satisfies_theorem1());
    }
}

/// R4 merge under the tracking policy satisfies the multiset conditions.
#[test]
fn r4_output_is_compatible_at_every_stable() {
    let mut rng = StdRng::seed_from_u64(0x50_0003);
    for _ in 0..24 {
        let (seed, disorder, revision) = knobs(&mut rng, 0.4, 0.4);
        let (copies, reference) = copies_for(40, seed, disorder, revision, 2);
        let mut lm: LMergeR4<Value> = LMergeR4::new(2);
        let mut out = Vec::new();
        let mut input_recs: Vec<Reconstituter<Value>> =
            (0..2).map(|_| Reconstituter::new()).collect();
        let mut out_rec: Reconstituter<Value> = Reconstituter::new();
        let mut emitted_upto = 0usize;

        let longest = copies.iter().map(Vec::len).max().unwrap();
        for k in 0..longest {
            for (i, c) in copies.iter().enumerate() {
                let Some(e) = c.get(k) else { continue };
                input_recs[i].apply(e).expect("input well formed");
                lm.push(StreamId(i as u32), e, &mut out);
                for oe in &out[emitted_upto..] {
                    out_rec.apply(oe).expect("output must stay well formed");
                }
                emitted_upto = out.len();
                if e.is_stable() {
                    let views: Vec<StreamView<Value>> = input_recs
                        .iter()
                        .map(|r| StreamView::new(r.tdb(), r.stable()))
                        .collect();
                    check_r4(&views, &StreamView::new(out_rec.tdb(), out_rec.stable()))
                        .expect("output prefix compatible (R4 tracking)");
                }
            }
        }
        assert_eq!(
            out_rec.tdb(),
            &reference,
            "seed={seed} disorder={disorder:.3} revision={revision:.3}"
        );
    }
}

/// The count sub-query over any two divergent copies yields mutually
/// consistent R3 inputs: merging them reproduces one copy's final TDB.
#[test]
fn count_subquery_outputs_merge_cleanly() {
    use lmerge::engine::ops::IntervalCount;
    use lmerge::engine::Operator;
    let mut rng = StdRng::seed_from_u64(0x50_0004);
    for _ in 0..24 {
        let seed = rng.random_range(0u64..500);
        let disorder = rng.random_range(0.0f64..0.5);
        let (copies, _) = copies_for(60, seed, disorder, 0.0, 2);
        let subs: Vec<Vec<Element<Value>>> = copies
            .iter()
            .map(|c| {
                let mut agg = IntervalCount::new(3);
                let mut out = Vec::new();
                for e in c {
                    agg.on_element(e, &mut out);
                }
                out
            })
            .collect();
        let want = tdb_of(&subs[0]).expect("sub-query output well formed");
        assert_eq!(&tdb_of(&subs[1]).unwrap(), &want);

        let mut lm: LMergeR3<Value> = LMergeR3::new(2);
        let mut out = Vec::new();
        let longest = subs.iter().map(Vec::len).max().unwrap();
        for k in 0..longest {
            for (i, c) in subs.iter().enumerate() {
                if let Some(e) = c.get(k) {
                    lm.push(StreamId(i as u32), e, &mut out);
                }
            }
        }
        assert_eq!(
            &tdb_of(&out).unwrap(),
            &want,
            "seed={seed} disorder={disorder:.3}"
        );
    }
}
