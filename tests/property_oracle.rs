//! Property-style tests: random mutually consistent inputs, every output
//! prefix checked against the paper's compatibility oracle.
//!
//! Seeded random loops stand in for a property-testing framework: each
//! case's knobs derive from a fixed master seed and print in the panic
//! message on failure, so every run is reproducible.

use lmerge::core::{new_for_level, LMergeR3, LMergeR3Naive, LMergeR4, LogicalMerge, MergePolicy};
use lmerge::gen::{diverge, generate, DivergenceConfig, GenConfig};
use lmerge::properties::{describe, minimize, Knob, RLevel};
use lmerge::temporal::compat::{check_r3, check_r4, StreamView};
use lmerge::temporal::consistency::consistent_with_reference;
use lmerge::temporal::reconstitute::{tdb_of, Reconstituter};
use lmerge::temporal::{Element, StreamId, Time, Value};
use rand::prelude::*;

/// Run a knob-driven property; on failure, shrink the knobs to a locally
/// minimal reproduction before panicking, so the failure message carries
/// the smallest case instead of the first one found.
fn check_shrunk(knobs: Vec<Knob>, run: impl Fn(&[Knob]) -> Result<(), String>) {
    if let Err(first) = run(&knobs) {
        let (minimal, probes) = minimize(knobs, |k| run(k).is_err());
        let err = run(&minimal).err().unwrap_or(first);
        panic!(
            "property failed; minimized ({probes} probes) to [{}]: {err}",
            describe(&minimal)
        );
    }
}

/// Build divergent copies from randomly chosen knobs.
fn copies_for(
    events: usize,
    seed: u64,
    disorder: f64,
    revision_prob: f64,
    n: usize,
) -> (Vec<Vec<Element<Value>>>, lmerge::temporal::Tdb<Value>) {
    let cfg = GenConfig::small(events, seed).with_disorder(disorder);
    let r = generate(&cfg);
    let div = DivergenceConfig {
        revision_prob,
        seed: seed.wrapping_mul(31),
        ..Default::default()
    };
    let copies = (0..n)
        .map(|i| diverge(&r.elements, &div, i as u64))
        .collect();
    (copies, r.tdb)
}

/// Per-case knobs drawn from a master RNG.
fn knobs(rng: &mut StdRng, max_disorder: f64, max_revision: f64) -> (u64, f64, f64) {
    (
        rng.random_range(0u64..1000),
        rng.random_range(0.0..max_disorder),
        rng.random_range(0.0..max_revision),
    )
}

/// Generated copies are each well formed and consistent with the reference
/// at every punctuation point.
#[test]
fn generated_copies_are_mutually_consistent() {
    let mut rng = StdRng::seed_from_u64(0x50_0001);
    for _ in 0..24 {
        let (seed, disorder, revision) = knobs(&mut rng, 0.5, 0.5);
        let (copies, reference) = copies_for(60, seed, disorder, revision, 3);
        for copy in &copies {
            let mut rec: Reconstituter<Value> = Reconstituter::new();
            for e in copy {
                rec.apply(e).expect("copy well formed");
                if e.is_stable() {
                    consistent_with_reference(StreamView::new(rec.tdb(), rec.stable()), &reference)
                        .expect("prefix consistent with reference");
                }
            }
            assert_eq!(
                rec.tdb(),
                &reference,
                "seed={seed} disorder={disorder:.3} revision={revision:.3}"
            );
        }
    }
}

/// R3 merge: the final output equals the reference, every output prefix
/// satisfies C1–C3 at punctuation points, and Theorem 1 holds.
#[test]
fn r3_output_is_compatible_at_every_stable() {
    let mut rng = StdRng::seed_from_u64(0x50_0002);
    for _ in 0..24 {
        let (seed, disorder, revision) = knobs(&mut rng, 0.5, 0.5);
        let (copies, reference) = copies_for(50, seed, disorder, revision, 2);
        let mut lm: LMergeR3<Value> = LMergeR3::new(2);
        let mut out = Vec::new();
        let mut input_recs: Vec<Reconstituter<Value>> =
            (0..2).map(|_| Reconstituter::new()).collect();
        let mut out_rec: Reconstituter<Value> = Reconstituter::new();
        let mut emitted_upto = 0usize;

        let longest = copies.iter().map(Vec::len).max().unwrap();
        for k in 0..longest {
            for (i, c) in copies.iter().enumerate() {
                let Some(e) = c.get(k) else { continue };
                input_recs[i].apply(e).expect("input well formed");
                lm.push(StreamId(i as u32), e, &mut out);
                for oe in &out[emitted_upto..] {
                    out_rec.apply(oe).expect("output must stay well formed");
                }
                emitted_upto = out.len();
                if e.is_stable() {
                    let views: Vec<StreamView<Value>> = input_recs
                        .iter()
                        .map(|r| StreamView::new(r.tdb(), r.stable()))
                        .collect();
                    check_r3(&views, &StreamView::new(out_rec.tdb(), out_rec.stable()))
                        .expect("output prefix compatible (C1–C3)");
                }
            }
        }
        assert_eq!(
            out_rec.tdb(),
            &reference,
            "seed={seed} disorder={disorder:.3} revision={revision:.3}"
        );
        assert!(lm.stats().satisfies_theorem1());
    }
}

/// R4 merge under the tracking policy satisfies the multiset conditions.
#[test]
fn r4_output_is_compatible_at_every_stable() {
    let mut rng = StdRng::seed_from_u64(0x50_0003);
    for _ in 0..24 {
        let (seed, disorder, revision) = knobs(&mut rng, 0.4, 0.4);
        let (copies, reference) = copies_for(40, seed, disorder, revision, 2);
        let mut lm: LMergeR4<Value> = LMergeR4::new(2);
        let mut out = Vec::new();
        let mut input_recs: Vec<Reconstituter<Value>> =
            (0..2).map(|_| Reconstituter::new()).collect();
        let mut out_rec: Reconstituter<Value> = Reconstituter::new();
        let mut emitted_upto = 0usize;

        let longest = copies.iter().map(Vec::len).max().unwrap();
        for k in 0..longest {
            for (i, c) in copies.iter().enumerate() {
                let Some(e) = c.get(k) else { continue };
                input_recs[i].apply(e).expect("input well formed");
                lm.push(StreamId(i as u32), e, &mut out);
                for oe in &out[emitted_upto..] {
                    out_rec.apply(oe).expect("output must stay well formed");
                }
                emitted_upto = out.len();
                if e.is_stable() {
                    let views: Vec<StreamView<Value>> = input_recs
                        .iter()
                        .map(|r| StreamView::new(r.tdb(), r.stable()))
                        .collect();
                    check_r4(&views, &StreamView::new(out_rec.tdb(), out_rec.stable()))
                        .expect("output prefix compatible (R4 tracking)");
                }
            }
        }
        assert_eq!(
            out_rec.tdb(),
            &reference,
            "seed={seed} disorder={disorder:.3} revision={revision:.3}"
        );
    }
}

/// Order-preserving copies for the restricted levels: insert-only,
/// strictly increasing `Vs`, identical data on every copy; copies differ
/// only in which non-final punctuation they retain.
fn restricted_copies_for(
    events: usize,
    seed: u64,
    n: usize,
) -> (Vec<Vec<Element<Value>>>, lmerge::temporal::Tdb<Value>) {
    let cfg = GenConfig {
        min_gap_ms: 1,
        disorder: 0.0,
        ..GenConfig::small(events, seed)
    };
    let r = generate(&cfg);
    let copies = (0..n)
        .map(|c| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(7000 + c as u64));
            r.elements
                .iter()
                .filter(|e| match e {
                    Element::Stable(t) if *t != Time::INFINITY => rng.random_bool(0.7),
                    _ => true,
                })
                .cloned()
                .collect()
        })
        .collect();
    (copies, r.tdb)
}

/// R0–R2 merges over order-preserving copies: every output prefix passes
/// the compatibility oracle (C1 plus the leading input's frozen content —
/// the weakest sound check for levels whose outputs may interleave inserts
/// from different copies), and the final TDB equals the reference.
/// Failures shrink to minimal `events`/`seed` knobs before panicking.
#[test]
fn restricted_levels_are_compatible_at_every_stable() {
    let mut rng = StdRng::seed_from_u64(0x50_0005);
    for _ in 0..16 {
        let knobs = vec![
            Knob::new("events", rng.random_range(10..60), 1),
            Knob::new("seed", rng.random_range(0..1000), 0),
        ];
        check_shrunk(knobs, |k| {
            let (events, seed) = (k[0].value as usize, k[1].value);
            let (copies, reference) = restricted_copies_for(events, seed, 2);
            for level in [RLevel::R0, RLevel::R1, RLevel::R2] {
                let mut lm = new_for_level::<Value>(level, 2, MergePolicy::paper_default());
                let mut out = Vec::new();
                let mut input_recs: Vec<Reconstituter<Value>> =
                    (0..2).map(|_| Reconstituter::new()).collect();
                let mut out_rec: Reconstituter<Value> = Reconstituter::new();
                let mut emitted_upto = 0usize;
                let longest = copies.iter().map(Vec::len).max().unwrap();
                for j in 0..longest {
                    for (i, c) in copies.iter().enumerate() {
                        let Some(e) = c.get(j) else { continue };
                        input_recs[i].apply(e).map_err(|x| format!("{x:?}"))?;
                        lm.push(StreamId(i as u32), e, &mut out);
                        for oe in &out[emitted_upto..] {
                            out_rec
                                .apply(oe)
                                .map_err(|x| format!("{level:?}: ill-formed output: {x:?}"))?;
                        }
                        emitted_upto = out.len();
                        if e.is_stable() {
                            let views: Vec<StreamView<Value>> = input_recs
                                .iter()
                                .map(|r| StreamView::new(r.tdb(), r.stable()))
                                .collect();
                            check_r4(&views, &StreamView::new(out_rec.tdb(), out_rec.stable()))
                                .map_err(|x| format!("{level:?}: incompatible prefix: {x:?}"))?;
                        }
                    }
                }
                if out_rec.tdb() != &reference {
                    return Err(format!("{level:?}: final TDB diverges from reference"));
                }
            }
            Ok(())
        });
    }
}

/// The naive LMR3− baseline satisfies the same C1–C3 contract as the
/// indexed R3 algorithm on divergent (revision-bearing) copies.
#[test]
fn r3_naive_is_compatible_at_every_stable() {
    let mut rng = StdRng::seed_from_u64(0x50_0006);
    for _ in 0..16 {
        // Disorder and revision probability shrink as per-mille integers.
        let knobs = vec![
            Knob::new("events", rng.random_range(10..50), 1),
            Knob::new("seed", rng.random_range(0..1000), 0),
            Knob::new("disorder_pm", rng.random_range(0..500), 0),
            Knob::new("revision_pm", rng.random_range(0..500), 0),
        ];
        check_shrunk(knobs, |k| {
            let (events, seed) = (k[0].value as usize, k[1].value);
            let (disorder, revision) = (k[2].value as f64 / 1000.0, k[3].value as f64 / 1000.0);
            let (copies, reference) = copies_for(events, seed, disorder, revision, 2);
            let mut lm: LMergeR3Naive<Value> = LMergeR3Naive::new(2);
            let mut out = Vec::new();
            let mut input_recs: Vec<Reconstituter<Value>> =
                (0..2).map(|_| Reconstituter::new()).collect();
            let mut out_rec: Reconstituter<Value> = Reconstituter::new();
            let mut emitted_upto = 0usize;
            let longest = copies.iter().map(Vec::len).max().unwrap();
            for j in 0..longest {
                for (i, c) in copies.iter().enumerate() {
                    let Some(e) = c.get(j) else { continue };
                    input_recs[i].apply(e).map_err(|x| format!("{x:?}"))?;
                    lm.push(StreamId(i as u32), e, &mut out);
                    for oe in &out[emitted_upto..] {
                        out_rec
                            .apply(oe)
                            .map_err(|x| format!("ill-formed output: {x:?}"))?;
                    }
                    emitted_upto = out.len();
                    if e.is_stable() {
                        let views: Vec<StreamView<Value>> = input_recs
                            .iter()
                            .map(|r| StreamView::new(r.tdb(), r.stable()))
                            .collect();
                        check_r3(&views, &StreamView::new(out_rec.tdb(), out_rec.stable()))
                            .map_err(|x| format!("incompatible prefix: {x:?}"))?;
                    }
                }
            }
            if out_rec.tdb() != &reference {
                return Err("final TDB diverges from reference".into());
            }
            Ok(())
        });
    }
}

/// The `push_batch` fast path satisfies the oracle too: the same divergent
/// copies delivered in random-sized batches, checked at every batch that
/// carried punctuation — covering the hoisted-gating and frozen-batch
/// discard overrides the per-element tests never reach.
#[test]
fn push_batch_path_is_compatible_at_every_stable() {
    type Check = fn(&[StreamView<Value>], &StreamView<Value>) -> bool;
    type Factory = fn() -> Box<dyn LogicalMerge<Value>>;
    let factories: [(&str, Factory, Check); 3] = [
        (
            "r3",
            || Box::new(LMergeR3::new(2)),
            |v, o| check_r3(v, o).is_ok(),
        ),
        (
            "r3_naive",
            || Box::new(LMergeR3Naive::new(2)),
            |v, o| check_r3(v, o).is_ok(),
        ),
        (
            "r4",
            || Box::new(LMergeR4::new(2)),
            |v, o| check_r4(v, o).is_ok(),
        ),
    ];
    let mut rng = StdRng::seed_from_u64(0x50_0007);
    for _ in 0..12 {
        let knobs = vec![
            Knob::new("events", rng.random_range(10..50), 1),
            Knob::new("seed", rng.random_range(0..1000), 0),
        ];
        check_shrunk(knobs, |k| {
            let (events, seed) = (k[0].value as usize, k[1].value);
            let (copies, reference) = copies_for(events, seed, 0.3, 0.3, 2);
            for (name, mk, compatible) in &factories {
                let mut lm = mk();
                let mut out = Vec::new();
                let mut input_recs: Vec<Reconstituter<Value>> =
                    (0..2).map(|_| Reconstituter::new()).collect();
                let mut out_rec: Reconstituter<Value> = Reconstituter::new();
                let mut emitted_upto = 0usize;
                let mut chunk_rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
                let mut cursors = vec![0usize; copies.len()];
                while cursors.iter().zip(&copies).any(|(c, copy)| *c < copy.len()) {
                    for (i, copy) in copies.iter().enumerate() {
                        if cursors[i] >= copy.len() {
                            continue;
                        }
                        let take = chunk_rng
                            .random_range(1usize..6)
                            .min(copy.len() - cursors[i]);
                        let batch = &copy[cursors[i]..cursors[i] + take];
                        cursors[i] += take;
                        input_recs[i]
                            .apply_all(batch)
                            .map_err(|x| format!("{name}: {x:?}"))?;
                        lm.push_batch(StreamId(i as u32), batch, &mut out);
                        for oe in &out[emitted_upto..] {
                            out_rec
                                .apply(oe)
                                .map_err(|x| format!("{name}: ill-formed output: {x:?}"))?;
                        }
                        emitted_upto = out.len();
                        if batch.iter().any(Element::is_stable) {
                            let views: Vec<StreamView<Value>> = input_recs
                                .iter()
                                .map(|r| StreamView::new(r.tdb(), r.stable()))
                                .collect();
                            if !compatible(
                                &views,
                                &StreamView::new(out_rec.tdb(), out_rec.stable()),
                            ) {
                                return Err(format!("{name}: incompatible batched prefix"));
                            }
                        }
                    }
                }
                if out_rec.tdb() != &reference {
                    return Err(format!("{name}: final TDB diverges from reference"));
                }
            }
            Ok(())
        });
    }
}

/// The count sub-query over any two divergent copies yields mutually
/// consistent R3 inputs: merging them reproduces one copy's final TDB.
#[test]
fn count_subquery_outputs_merge_cleanly() {
    use lmerge::engine::ops::IntervalCount;
    use lmerge::engine::Operator;
    let mut rng = StdRng::seed_from_u64(0x50_0004);
    for _ in 0..24 {
        let seed = rng.random_range(0u64..500);
        let disorder = rng.random_range(0.0f64..0.5);
        let (copies, _) = copies_for(60, seed, disorder, 0.0, 2);
        let subs: Vec<Vec<Element<Value>>> = copies
            .iter()
            .map(|c| {
                let mut agg = IntervalCount::new(3);
                let mut out = Vec::new();
                for e in c {
                    agg.on_element(e, &mut out);
                }
                out
            })
            .collect();
        let want = tdb_of(&subs[0]).expect("sub-query output well formed");
        assert_eq!(&tdb_of(&subs[1]).unwrap(), &want);

        let mut lm: LMergeR3<Value> = LMergeR3::new(2);
        let mut out = Vec::new();
        let longest = subs.iter().map(Vec::len).max().unwrap();
        for k in 0..longest {
            for (i, c) in subs.iter().enumerate() {
                if let Some(e) = c.get(k) {
                    lm.push(StreamId(i as u32), e, &mut out);
                }
            }
        }
        assert_eq!(
            &tdb_of(&out).unwrap(),
            &want,
            "seed={seed} disorder={disorder:.3}"
        );
    }
}
