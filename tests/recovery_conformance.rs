//! Crash-recovery differential conformance: run, checkpoint, kill,
//! restore, replay — and require the stitched-together run to be
//! **byte-identical** to one that never died.
//!
//! Every scenario drives the same seeded chaos workload twice:
//!
//! 1. a reference run that checkpoints at every finite advance of the
//!    output stable point but is never killed, and
//! 2. a chain of incarnations of the same run, each halted right after a
//!    chosen checkpoint lands on disk, restored from the newest
//!    snapshot + delta chain in the directory, and resumed.
//!
//! The determinism contract is the strongest equality the repo has: the
//! concatenated JSONL obs traces of the incarnations must equal the
//! reference trace byte for byte (which subsumes the merged output — every
//! emitted element is a trace event), and the final merge-side stats and
//! completion time must match exactly.

use lmerge::chaos::{general_feeds, restricted_feeds, ChaosConfig, Chunker, Variant, ALL_VARIANTS};
use lmerge::core::LogicalMerge;
use lmerge::durable::{CheckpointStore, DurableCheckpointSink};
use lmerge::engine::{MergeRun, Operator, Query, RunConfig, RunMetrics, TimedElement};
use lmerge::obs::export::to_jsonl;
use lmerge::obs::Tracer;
use lmerge::properties::RLevel;
use lmerge::temporal::Value;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lmerge-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Memory sampling off: capacity-based accounting is not restorable state,
/// so recovery byte-identity is defined over runs without `MemorySampled`.
fn run_config(shards: usize) -> RunConfig {
    RunConfig {
        mem_sample_every: 0,
        shards,
        ..RunConfig::default()
    }
}

fn feeds_for(level: RLevel, cfg: &ChaosConfig) -> Vec<Vec<TimedElement<Value>>> {
    if level >= RLevel::R3 {
        general_feeds(cfg).1
    } else {
        restricted_feeds(cfg).1
    }
}

fn queries(feeds: &[Vec<TimedElement<Value>>], chunk: usize) -> Vec<Query<Value>> {
    feeds
        .iter()
        .map(|f| {
            let chain: Vec<Box<dyn Operator<Value>>> = vec![Box::new(Chunker::new(chunk))];
            Query::new(f.clone(), chain)
        })
        .collect()
}

/// A fresh sink over `dir`, snapshotting only at seq 0 so the reference
/// and the restarted chain agree on every `delta` flag (a reopened store
/// always deltas against its restored base; a mid-chain re-snapshot
/// cadence would depend on where the kill fell). Restores still replay the
/// full snapshot + delta chain.
fn sink(dir: &PathBuf) -> DurableCheckpointSink<Value> {
    let store = CheckpointStore::create(dir)
        .expect("checkpoint dir")
        .with_snapshot_every(u64::MAX);
    DurableCheckpointSink::new(store)
}

/// Run the workload once unkilled, then as `kill_seqs.len() + 1`
/// incarnations killed right after each named checkpoint, and assert the
/// stitched run is indistinguishable from the reference.
fn assert_recovery_byte_identical(
    tag: &str,
    build: &dyn Fn() -> Box<dyn LogicalMerge<Value>>,
    feeds: &[Vec<TimedElement<Value>>],
    config: RunConfig,
    kill_seqs: &[u64],
) {
    // Reference: checkpoints at the same cuts, never killed.
    let ref_dir = tmp_dir(&format!("{tag}-ref"));
    let mut ref_sink = sink(&ref_dir);
    let mut ref_trace = Tracer::new();
    let ref_metrics = MergeRun::new(queries(feeds, 4), build(), config)
        .run_with_checkpoints(&mut ref_trace, &mut ref_sink);
    assert!(ref_sink.error.is_none(), "{tag}: reference persistence");
    assert!(ref_metrics.output_complete_at.is_some());
    let cuts = ref_sink.store().next_seq();
    let last_kill = *kill_seqs.last().expect("at least one kill");
    assert!(
        cuts > last_kill + 1,
        "{tag}: workload too small — {cuts} checkpoints, last kill at {last_kill}"
    );
    let ref_jsonl = to_jsonl(ref_trace.events());

    // The killed chain shares one live checkpoint directory, like a real
    // process restarting in place.
    let dir = tmp_dir(&format!("{tag}-live"));
    let mut stitched = String::new();
    let mut trace = Tracer::new();
    let mut first_sink = sink(&dir).halt_after(kill_seqs[0]);
    let killed = MergeRun::new(queries(feeds, 4), build(), config)
        .run_with_checkpoints(&mut trace, &mut first_sink);
    assert!(first_sink.error.is_none());
    assert!(
        killed.output_complete_at.is_none(),
        "{tag}: the kill must land mid-run"
    );
    stitched.push_str(&to_jsonl(trace.events()));

    let mut final_metrics: Option<RunMetrics> = None;
    for (i, halt) in kill_seqs[1..]
        .iter()
        .map(|s| Some(*s))
        .chain(std::iter::once(None))
        .enumerate()
    {
        let (seq, image) =
            CheckpointStore::<Value>::load_latest(&dir).expect("restorable checkpoint");
        assert_eq!(seq, kill_seqs[i], "{tag}: restored the kill-point cut");
        let mut merge = build();
        assert!(
            merge.restore_state(image.merge.clone()),
            "{tag}: image restores into a fresh build"
        );
        let mut resume_sink = sink(&dir);
        if let Some(s) = halt {
            resume_sink = resume_sink.halt_after(s);
        }
        let mut resume_trace = Tracer::new();
        let metrics = MergeRun::resumed(queries(feeds, 4), merge, config, image.exec)
            .run_with_checkpoints(&mut resume_trace, &mut resume_sink);
        assert!(resume_sink.error.is_none());
        stitched.push_str(&to_jsonl(resume_trace.events()));
        match halt {
            Some(_) => assert!(
                metrics.output_complete_at.is_none(),
                "{tag}: second kill must land mid-restore"
            ),
            None => final_metrics = Some(metrics),
        }
    }

    let final_metrics = final_metrics.unwrap();
    assert_eq!(
        ref_jsonl, stitched,
        "{tag}: stitched trace differs from the unkilled run"
    );
    assert_eq!(
        ref_metrics.merge, final_metrics.merge,
        "{tag}: merge stats survive recovery"
    );
    assert_eq!(
        ref_metrics.output_complete_at, final_metrics.output_complete_at,
        "{tag}: completion time survives recovery"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill-restore-replay across the whole spectrum: each of the six variants
/// is killed right after checkpoint 1 and must recover byte-identically.
#[test]
fn every_variant_recovers_byte_identically() {
    let cfg = ChaosConfig::small(0xD0_0001);
    for v in ALL_VARIANTS {
        let feeds = feeds_for(v.level(), &cfg);
        let build = move || v.build(cfg.n_inputs, cfg.robustness);
        assert_recovery_byte_identical(v.name(), &build, &feeds, run_config(1), &[1]);
    }
}

/// The same contract with the merge state hash-partitioned across K = 4
/// shards: the recursive shard-tree image restores every partition.
#[test]
fn sharded_merge_recovers_byte_identically() {
    let cfg = ChaosConfig::small(0xD0_0002);
    let feeds = feeds_for(RLevel::R4, &cfg);
    let config = run_config(4);
    let build = move || {
        config.shard_merge(cfg.n_inputs, || {
            Variant::R4.build(cfg.n_inputs, cfg.robustness)
        })
    };
    assert_recovery_byte_identical("sharded-k4", &build, &feeds, config, &[1]);
}

/// A second crash while the first restore is still catching up: the chain
/// kill → restore → kill → restore must still stitch byte-identically.
#[test]
fn second_kill_mid_restore_recovers() {
    let cfg = ChaosConfig {
        events: 240,
        ..ChaosConfig::small(0xD0_0003)
    };
    for v in [Variant::R3, Variant::R4] {
        let feeds = feeds_for(v.level(), &cfg);
        let build = move || v.build(cfg.n_inputs, cfg.robustness);
        assert_recovery_byte_identical(
            &format!("{}-double", v.name()),
            &build,
            &feeds,
            run_config(1),
            &[1, 3],
        );
    }
}
