//! End-to-end engine pipelines: source → operators → LMerge → sink, under
//! the virtual-time executor.

use lmerge::core::{LMergeR1, LMergeR3, LogicalMerge};
use lmerge::engine::ops::{AlterLifetime, Cleanse, Filter, IntervalCount, TopK};
use lmerge::engine::{MergeRun, Operator, Query, RunConfig, TimedElement};
use lmerge::gen::union::union;
use lmerge::gen::{assign_times, diverge, generate, DivergenceConfig, GenConfig};
use lmerge::properties::{infer, select, PlanNode, RLevel, StreamProperties};
use lmerge::temporal::reconstitute::tdb_of;
use lmerge::temporal::{Element, StreamId, Time, Value};

fn timed(elems: &[Element<Value>], rate: f64) -> Vec<TimedElement<Value>> {
    assign_times(elems, rate)
        .into_iter()
        .map(|(at, e)| TimedElement::new(at, e))
        .collect()
}

/// Replicated count queries over divergent inputs, merged by LMR3+: the
/// merged output equals running the count once over the reference.
#[test]
fn replicated_count_queries_merge_to_reference_result() {
    let r = generate(&GenConfig::small(800, 5).with_disorder(0.3));
    let div = DivergenceConfig {
        revision_prob: 0.0,
        ..Default::default()
    };
    // Ground truth: the count over the reference stream.
    let mut truth_op = IntervalCount::new(4);
    let mut truth = Vec::new();
    let mut buf = Vec::new();
    for e in &r.elements {
        buf.clear();
        truth_op.on_element(e, &mut buf);
        truth.append(&mut buf);
    }
    let want = tdb_of(&truth).unwrap();

    let queries: Vec<Query<Value>> = (0..3u64)
        .map(|i| {
            let copy = diverge(&r.elements, &div, i);
            Query::new(
                timed(&copy, 20_000.0),
                vec![Box::new(IntervalCount::new(4)) as Box<dyn Operator<Value>>],
            )
        })
        .collect();
    let lm: Box<dyn LogicalMerge<Value>> = Box::new(LMergeR3::new(3));
    let metrics = MergeRun::new(queries, lm, RunConfig::default()).run();
    assert!(metrics.output_complete_at.is_some(), "run must complete");
    assert!(metrics.merge.satisfies_theorem1());

    // Re-run collecting actual output elements (drive the merge directly).
    let subs: Vec<Vec<Element<Value>>> = (0..3u64)
        .map(|i| {
            let copy = diverge(&r.elements, &div, i);
            let mut op = IntervalCount::new(4);
            let mut out = Vec::new();
            let mut b = Vec::new();
            for e in &copy {
                b.clear();
                op.on_element(e, &mut b);
                out.append(&mut b);
            }
            out
        })
        .collect();
    let mut lm: LMergeR3<Value> = LMergeR3::new(3);
    let mut out = Vec::new();
    let longest = subs.iter().map(Vec::len).max().unwrap();
    for k in 0..longest {
        for (i, s) in subs.iter().enumerate() {
            if let Some(e) = s.get(k) {
                lm.push(StreamId(i as u32), e, &mut out);
            }
        }
    }
    assert_eq!(tdb_of(&out).unwrap(), want);
}

/// The full C+LMR1 pipeline from Section VI-D produces the same logical
/// content as the direct LMR3+ merge.
#[test]
fn cleanse_pipeline_equals_direct_merge() {
    let r = generate(&GenConfig::small(500, 8).with_disorder(0.4));
    let div = DivergenceConfig::default();
    let copies: Vec<_> = (0..2).map(|i| diverge(&r.elements, &div, i)).collect();

    // Direct LMR3+.
    let mut lm3: LMergeR3<Value> = LMergeR3::new(2);
    let mut direct = Vec::new();
    for (i, c) in copies.iter().enumerate() {
        for e in c {
            lm3.push(StreamId(i as u32), e, &mut direct);
        }
    }

    // Cleanse each input, then LMR1.
    let mut lm1: LMergeR1<Value> = LMergeR1::new(2);
    let mut piped = Vec::new();
    let mut cleanses: Vec<Cleanse<Value>> = (0..2).map(|_| Cleanse::new()).collect();
    let longest = copies.iter().map(Vec::len).max().unwrap();
    let mut buf = Vec::new();
    for k in 0..longest {
        for (i, c) in copies.iter().enumerate() {
            if let Some(e) = c.get(k) {
                buf.clear();
                cleanses[i].on_element(e, &mut buf);
                for ce in &buf {
                    lm1.push(StreamId(i as u32), ce, &mut piped);
                }
            }
        }
    }

    assert_eq!(tdb_of(&direct).unwrap(), r.tdb);
    assert_eq!(tdb_of(&piped).unwrap(), r.tdb);
}

/// Top-k over an ordered stream is an R1-class stream that LMR1 merges.
#[test]
fn topk_feeds_lmr1() {
    let mut cfg = GenConfig::small(600, 11).with_disorder(0.0);
    cfg.min_gap_ms = 1;
    let r = generate(&cfg);
    // Batch events into shared timestamps so Top-k has ties to rank
    // (rescaling punctuation the same way keeps the stream well formed).
    let batched: Vec<Element<Value>> = r
        .elements
        .iter()
        .map(|e| match e {
            Element::Insert(ev) => Element::insert(
                ev.payload.clone(),
                Time(ev.vs.0 / 64),
                Time(ev.vs.0 / 64 + 100),
            ),
            Element::Stable(t) if !t.is_infinite() => Element::stable(Time(t.0 / 64)),
            other => other.clone(),
        })
        .collect();

    let run_topk = |elems: &[Element<Value>]| {
        let mut op = TopK::new(3);
        let mut out = Vec::new();
        let mut b = Vec::new();
        for e in elems {
            // TopK needs non-decreasing Vs and insert-only input; the
            // batched stream satisfies both. Stables pass through.
            b.clear();
            op.on_element(e, &mut b);
            out.append(&mut b);
        }
        out
    };
    let s = run_topk(&batched);
    let want = tdb_of(&s).unwrap();

    let mut lm: LMergeR1<Value> = LMergeR1::new(2);
    let mut out = Vec::new();
    for e in &s {
        lm.push(StreamId(0), e, &mut out);
    }
    for e in &s {
        lm.push(StreamId(1), e, &mut out);
    }
    assert_eq!(tdb_of(&out).unwrap(), want, "duplicate copy fully absorbed");
}

/// Property inference picks the algorithm the engine then runs correctly:
/// the paper's six scenarios, wired end to end.
#[test]
fn inference_matches_engine_behaviour() {
    let ordered = PlanNode::source(StreamProperties::r0());
    let disordered = PlanNode::source(StreamProperties {
        insert_only: true,
        ordering: lmerge::properties::Ordering::None,
        deterministic_ties: false,
        key_vs_payload: false,
    });
    assert_eq!(
        select(infer(&ordered.clone().aggregate(false, false))),
        RLevel::R0
    );
    assert_eq!(
        select(infer(&ordered.clone().aggregate(false, true))),
        RLevel::R1
    );
    assert_eq!(
        select(infer(&ordered.clone().aggregate(true, false))),
        RLevel::R2
    );
    assert_eq!(
        select(infer(&disordered.clone().aggregate(true, false))),
        RLevel::R3
    );
    assert_eq!(select(infer(&disordered.clone().cleanse())), RLevel::R1);
    assert_eq!(
        select(infer(&disordered.aggregate(false, true))),
        RLevel::R4
    );
}

/// Union of ordered per-machine feeds is disordered (the paper's
/// data-center motivation); the count over it still merges cleanly.
#[test]
fn union_then_count_then_merge() {
    // Three ordered "machines".
    let machines: Vec<Vec<Element<Value>>> = (0..3u64)
        .map(|m| {
            let mut cfg = GenConfig::small(150, 30 + m).with_disorder(0.0);
            cfg.min_gap_ms = 1;
            generate(&cfg).elements
        })
        .collect();
    let unioned = union(&machines);

    // The union is disordered even though each input was ordered …
    let mut last = lmerge::temporal::Time::MIN;
    let mut inversions = 0;
    for e in &unioned {
        if let Some((vs, _)) = e.key() {
            if vs < last {
                inversions += 1;
            }
            last = last.max(vs);
        }
    }
    assert!(inversions > 0, "union should introduce disorder");

    // … and the adjust-generating count over two divergent copies of it
    // still merges to a single clean stream.
    let div = DivergenceConfig {
        revision_prob: 0.0,
        ..Default::default()
    };
    let subs: Vec<Vec<Element<Value>>> = (0..2u64)
        .map(|i| {
            let copy = diverge(&unioned, &div, i);
            let mut op = IntervalCount::new(2);
            let mut out = Vec::new();
            let mut b = Vec::new();
            for e in &copy {
                b.clear();
                op.on_element(e, &mut b);
                out.append(&mut b);
            }
            out
        })
        .collect();
    let want = tdb_of(&subs[0]).unwrap();
    let mut lm: LMergeR3<Value> = LMergeR3::new(2);
    let mut out = Vec::new();
    let longest = subs.iter().map(Vec::len).max().unwrap();
    for k in 0..longest {
        for (i, s) in subs.iter().enumerate() {
            if let Some(e) = s.get(k) {
                lm.push(StreamId(i as u32), e, &mut out);
            }
        }
    }
    assert_eq!(tdb_of(&out).unwrap(), want);
}

/// Filters and lifetime clipping compose with the merge.
#[test]
fn filter_and_clip_compose() {
    let r = generate(&GenConfig::small(300, 50));
    let div = DivergenceConfig::default();
    let process = |elems: &[Element<Value>]| {
        let mut f = Filter::new("evens", |v: &Value| v.key % 2 == 0);
        let mut clip = AlterLifetime::clip(200);
        let mut out = Vec::new();
        let (mut b1, mut b2) = (Vec::new(), Vec::new());
        for e in elems {
            b1.clear();
            f.on_element(e, &mut b1);
            for fe in &b1 {
                b2.clear();
                clip.on_element(fe, &mut b2);
                out.append(&mut b2);
            }
        }
        out
    };
    let subs: Vec<_> = (0..2)
        .map(|i| process(&diverge(&r.elements, &div, i)))
        .collect();
    let want = tdb_of(&subs[0]).unwrap();
    assert_eq!(
        tdb_of(&subs[1]).unwrap(),
        want,
        "processing is deterministic"
    );

    let mut lm: LMergeR3<Value> = LMergeR3::new(2);
    let mut out = Vec::new();
    for (i, s) in subs.iter().enumerate() {
        for e in s {
            lm.push(StreamId(i as u32), e, &mut out);
        }
    }
    assert_eq!(tdb_of(&out).unwrap(), want);
}
