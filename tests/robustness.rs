//! Adversarial robustness: the general mergers must never panic and never
//! emit an ill-formed output stream, even when the inputs violate every
//! contract they have (mutual consistency, punctuation discipline, adjust
//! chains). Garbage in → clean (possibly wrong) stream out.

use lmerge::core::{LMergeR3, LMergeR4, LogicalMerge, MergePolicy};
use lmerge::temporal::reconstitute::Reconstituter;
use lmerge::temporal::{Element, StreamId, Time};
use proptest::prelude::*;

/// An arbitrary element over a tiny payload/time domain, so collisions,
/// stale adjusts, and punctuation violations are all common.
fn arb_element() -> impl Strategy<Value = Element<&'static str>> {
    let payloads = prop::sample::select(vec!["a", "b", "c"]);
    let times = 0i64..20;
    prop_oneof![
        (payloads.clone(), times.clone(), times.clone()).prop_map(|(p, vs, d)| {
            Element::insert(p, vs, vs + d.max(0) + 1)
        }),
        (payloads, times.clone(), times.clone(), times.clone()).prop_map(
            |(p, vs, vold, ve)| Element::adjust(p, vs, vs + vold, vs + ve)
        ),
        times.prop_map(Element::stable),
        Just(Element::stable(Time::INFINITY)),
    ]
}

fn arb_feed() -> impl Strategy<Value = Vec<(u8, Element<&'static str>)>> {
    prop::collection::vec((0u8..3, arb_element()), 0..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// R3 under the default policy: garbage in, well-formed stream out.
    #[test]
    fn r3_never_emits_ill_formed_output(feed in arb_feed()) {
        let mut lm: LMergeR3<&str> = LMergeR3::new(3);
        let mut out = Vec::new();
        let mut rec: Reconstituter<&str> = Reconstituter::new();
        let mut consumed = 0usize;
        for (s, e) in &feed {
            lm.push(StreamId(u32::from(*s)), e, &mut out);
            for oe in &out[consumed..] {
                rec.apply(oe).expect("output must stay well formed");
            }
            consumed = out.len();
        }
    }

    /// Same under the eager-adjust policy (the chattier code path).
    #[test]
    fn r3_eager_never_emits_ill_formed_output(feed in arb_feed()) {
        let mut lm: LMergeR3<&str> = LMergeR3::with_policy(3, MergePolicy::eager());
        let mut out = Vec::new();
        let mut rec: Reconstituter<&str> = Reconstituter::new();
        let mut consumed = 0usize;
        for (s, e) in &feed {
            lm.push(StreamId(u32::from(*s)), e, &mut out);
            for oe in &out[consumed..] {
                rec.apply(oe).expect("output must stay well formed");
            }
            consumed = out.len();
        }
    }

    /// Same under the conservative policy (deferred-emission code path).
    #[test]
    fn r3_conservative_never_emits_ill_formed_output(feed in arb_feed()) {
        let mut lm: LMergeR3<&str> = LMergeR3::with_policy(3, MergePolicy::conservative());
        let mut out = Vec::new();
        let mut rec: Reconstituter<&str> = Reconstituter::new();
        let mut consumed = 0usize;
        for (s, e) in &feed {
            lm.push(StreamId(u32::from(*s)), e, &mut out);
            for oe in &out[consumed..] {
                rec.apply(oe).expect("output must stay well formed");
            }
            consumed = out.len();
        }
    }

    /// R4 (multiset machinery): garbage in, well-formed stream out.
    #[test]
    fn r4_never_emits_ill_formed_output(feed in arb_feed()) {
        let mut lm: LMergeR4<&str> = LMergeR4::new(3);
        let mut out = Vec::new();
        let mut rec: Reconstituter<&str> = Reconstituter::new();
        let mut consumed = 0usize;
        for (s, e) in &feed {
            lm.push(StreamId(u32::from(*s)), e, &mut out);
            for oe in &out[consumed..] {
                rec.apply(oe).expect("output must stay well formed");
            }
            consumed = out.len();
        }
    }

    /// Attach/detach churn mid-garbage never corrupts the output either.
    #[test]
    fn churn_under_garbage(feed in arb_feed(), churn_at in 0usize..100) {
        let mut lm: LMergeR3<&str> = LMergeR3::new(2);
        let mut out = Vec::new();
        let mut rec: Reconstituter<&str> = Reconstituter::new();
        let mut consumed = 0usize;
        for (i, (s, e)) in feed.iter().enumerate() {
            if i == churn_at {
                lm.detach(StreamId(0));
                let _ = lm.attach(Time(5));
            }
            lm.push(StreamId(u32::from(*s % 2)), e, &mut out);
            for oe in &out[consumed..] {
                rec.apply(oe).expect("output must stay well formed");
            }
            consumed = out.len();
        }
    }
}
