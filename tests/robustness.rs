//! Adversarial robustness: the general mergers must never panic and never
//! emit an ill-formed output stream, even when the inputs violate every
//! contract they have (mutual consistency, punctuation discipline, adjust
//! chains). Garbage in → clean (possibly wrong) stream out.
//!
//! Seeded random loops stand in for property tests: each case derives from
//! a fixed master seed, so failures are reproducible, and the failing case
//! number prints in the panic message.

use lmerge::core::{InputHealth, LMergeR3, LMergeR4, LogicalMerge, MergePolicy, RobustnessPolicy};
use lmerge::temporal::reconstitute::Reconstituter;
use lmerge::temporal::{Element, StreamId, Time};
use rand::prelude::*;

/// An arbitrary element over a tiny payload/time domain, so collisions,
/// stale adjusts, and punctuation violations are all common.
fn arb_element(rng: &mut StdRng) -> Element<&'static str> {
    let payload = ["a", "b", "c"][rng.random_range(0usize..3)];
    let t = |rng: &mut StdRng| rng.random_range(0i64..20);
    match rng.random_range(0u32..4) {
        0 => {
            let vs = t(rng);
            Element::insert(payload, vs, vs + t(rng).max(0) + 1)
        }
        1 => {
            let vs = t(rng);
            Element::adjust(payload, vs, vs + t(rng), vs + t(rng))
        }
        2 => Element::stable(t(rng)),
        _ => Element::stable(Time::INFINITY),
    }
}

fn arb_feed(rng: &mut StdRng) -> Vec<(u8, Element<&'static str>)> {
    let len = rng.random_range(0usize..120);
    (0..len)
        .map(|_| (rng.random_range(0u8..3), arb_element(rng)))
        .collect()
}

/// Drive a garbage feed and require every emitted prefix to reconstitute.
fn assert_output_well_formed(
    mut lm: Box<dyn LogicalMerge<&'static str>>,
    feed: &[(u8, Element<&'static str>)],
    case: usize,
) {
    let mut out = Vec::new();
    let mut rec: Reconstituter<&str> = Reconstituter::new();
    let mut consumed = 0usize;
    for (s, e) in feed {
        lm.push(StreamId(u32::from(*s)), e, &mut out);
        for oe in &out[consumed..] {
            rec.apply(oe)
                .unwrap_or_else(|err| panic!("case {case}: ill-formed output: {err:?}"));
        }
        consumed = out.len();
    }
}

/// R3 under the default policy: garbage in, well-formed stream out.
#[test]
fn r3_never_emits_ill_formed_output() {
    let mut rng = StdRng::seed_from_u64(0x52_0001);
    for case in 0..256 {
        let feed = arb_feed(&mut rng);
        assert_output_well_formed(Box::new(LMergeR3::<&str>::new(3)), &feed, case);
    }
}

/// Same under the eager-adjust policy (the chattier code path).
#[test]
fn r3_eager_never_emits_ill_formed_output() {
    let mut rng = StdRng::seed_from_u64(0x52_0002);
    for case in 0..256 {
        let feed = arb_feed(&mut rng);
        assert_output_well_formed(
            Box::new(LMergeR3::<&str>::with_policy(3, MergePolicy::eager())),
            &feed,
            case,
        );
    }
}

/// Same under the conservative policy (deferred-emission code path).
#[test]
fn r3_conservative_never_emits_ill_formed_output() {
    let mut rng = StdRng::seed_from_u64(0x52_0003);
    for case in 0..256 {
        let feed = arb_feed(&mut rng);
        assert_output_well_formed(
            Box::new(LMergeR3::<&str>::with_policy(
                3,
                MergePolicy::conservative(),
            )),
            &feed,
            case,
        );
    }
}

/// R4 (multiset machinery): garbage in, well-formed stream out.
#[test]
fn r4_never_emits_ill_formed_output() {
    let mut rng = StdRng::seed_from_u64(0x52_0004);
    for case in 0..256 {
        let feed = arb_feed(&mut rng);
        assert_output_well_formed(Box::new(LMergeR4::<&str>::new(3)), &feed, case);
    }
}

/// The bounded-memory guard pins the accounting: once an input floods
/// enough never-freezing entries to get demoted, its index contribution is
/// purged (the `hash_table_bytes` model drops to the surviving tables) and
/// — the actual guarantee — no further traffic on the demoted input can
/// move `memory_bytes` by a single byte.
#[test]
fn entry_bound_demotion_pins_memory_accounting() {
    let robustness = RobustnessPolicy {
        quarantine_lag: None,
        max_live_entries: Some(8),
    };
    let mks: [&dyn Fn() -> Box<dyn LogicalMerge<&'static str>>; 2] = [
        &|| {
            Box::new(LMergeR3::<&str>::with_policy(
                2,
                MergePolicy {
                    robustness: RobustnessPolicy {
                        quarantine_lag: None,
                        max_live_entries: Some(8),
                    },
                    ..MergePolicy::paper_default()
                },
            ))
        },
        &|| Box::new(LMergeR4::<&str>::with_robustness(2, robustness)),
    ];
    let payloads = [
        "p00", "p01", "p02", "p03", "p04", "p05", "p06", "p07", "p08", "p09", "p10", "p11", "p12",
        "p13", "p14", "p15",
    ];
    for mk in mks {
        let mut lm = mk();
        let mut out = Vec::new();
        // Input 1 floods distinct live (never-frozen) events — all at one
        // `Vs`, so the index grows one tier and the memory delta is purely
        // per-input entries; each insert adds one, so the 8-entry budget
        // trips mid-flood.
        let mut peak = 0usize;
        for p in payloads {
            lm.push(StreamId(1), &Element::insert(p, 100, 200), &mut out);
            peak = peak.max(lm.memory_bytes());
        }
        assert_eq!(
            lm.input_health(StreamId(1)),
            InputHealth::Left,
            "flooding input was demoted"
        );
        let pinned = lm.memory_bytes();
        assert!(
            pinned < peak,
            "purge released the flooded entries: {pinned} < {peak}"
        );

        // Everything the demoted input sends from now on is refused
        // without touching the index: the accounting must not move.
        for (i, p) in payloads.iter().enumerate() {
            let vs = 500 + i as i64;
            lm.push(StreamId(1), &Element::insert(*p, vs, vs + 5), &mut out);
            assert_eq!(lm.memory_bytes(), pinned, "demoted input grew memory");
        }
        let batch: Vec<Element<&'static str>> = (0..32i64)
            .map(|i| Element::insert("flood", 900 + i, 950 + i))
            .collect();
        lm.push_batch(StreamId(1), &batch, &mut out);
        lm.push(StreamId(1), &Element::stable(1_000), &mut out);
        assert_eq!(
            lm.memory_bytes(),
            pinned,
            "batched flood on a demoted input grew memory"
        );

        // The surviving input is unaffected and still drives the merge.
        lm.push(StreamId(0), &Element::insert("live", 10, 20), &mut out);
        lm.push(StreamId(0), &Element::stable(30), &mut out);
        assert_eq!(lm.max_stable(), Time(30));
    }
}

/// Quarantine (the softer demotion) gates punctuation but keeps data
/// flowing; the entry bound still backstops its memory, so a quarantined
/// laggard that floods is demoted and its accounting pinned too.
#[test]
fn quarantined_laggard_is_demoted_before_memory_runs_away() {
    let mut lm: LMergeR4<&str> = LMergeR4::with_robustness(2, RobustnessPolicy::guarded(5, 8));
    let mut out = Vec::new();
    // Input 1 announces an early stable, then input 0 races far ahead:
    // the lag (0 vs 50) exceeds the margin and input 1 is quarantined.
    lm.push(StreamId(1), &Element::stable(0), &mut out);
    lm.push(StreamId(0), &Element::insert("a", 5, 9), &mut out);
    lm.push(StreamId(0), &Element::stable(50), &mut out);
    assert_eq!(lm.input_health(StreamId(1)), InputHealth::Quarantined);

    // Quarantined data still merges — until the flood trips the bound.
    for i in 0..16i64 {
        lm.push(
            StreamId(1),
            &Element::insert("q", 100 + i, 200 + i),
            &mut out,
        );
    }
    assert_eq!(lm.input_health(StreamId(1)), InputHealth::Left);
    let pinned = lm.memory_bytes();
    for i in 0..16i64 {
        lm.push(
            StreamId(1),
            &Element::insert("q2", 300 + i, 400 + i),
            &mut out,
        );
    }
    assert_eq!(lm.memory_bytes(), pinned, "post-demotion flood grew memory");
}

/// Attach/detach churn mid-garbage never corrupts the output either.
#[test]
fn churn_under_garbage() {
    let mut rng = StdRng::seed_from_u64(0x52_0005);
    for case in 0..256 {
        let feed = arb_feed(&mut rng);
        let churn_at = rng.random_range(0usize..100);
        let mut lm: LMergeR3<&str> = LMergeR3::new(2);
        let mut out = Vec::new();
        let mut rec: Reconstituter<&str> = Reconstituter::new();
        let mut consumed = 0usize;
        for (i, (s, e)) in feed.iter().enumerate() {
            if i == churn_at {
                lm.detach(StreamId(0));
                let _ = lm.attach(Time(5));
            }
            lm.push(StreamId(u32::from(*s % 2)), e, &mut out);
            for oe in &out[consumed..] {
                rec.apply(oe)
                    .unwrap_or_else(|err| panic!("case {case}: ill-formed output: {err:?}"));
            }
            consumed = out.len();
        }
    }
}
