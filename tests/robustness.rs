//! Adversarial robustness: the general mergers must never panic and never
//! emit an ill-formed output stream, even when the inputs violate every
//! contract they have (mutual consistency, punctuation discipline, adjust
//! chains). Garbage in → clean (possibly wrong) stream out.
//!
//! Seeded random loops stand in for property tests: each case derives from
//! a fixed master seed, so failures are reproducible, and the failing case
//! number prints in the panic message.

use lmerge::core::{InputHealth, LMergeR3, LMergeR4, LogicalMerge, MergePolicy, RobustnessPolicy};
use lmerge::temporal::reconstitute::Reconstituter;
use lmerge::temporal::{Element, StreamId, Time};
use rand::prelude::*;

/// An arbitrary element over a tiny payload/time domain, so collisions,
/// stale adjusts, and punctuation violations are all common.
fn arb_element(rng: &mut StdRng) -> Element<&'static str> {
    let payload = ["a", "b", "c"][rng.random_range(0usize..3)];
    let t = |rng: &mut StdRng| rng.random_range(0i64..20);
    match rng.random_range(0u32..4) {
        0 => {
            let vs = t(rng);
            Element::insert(payload, vs, vs + t(rng).max(0) + 1)
        }
        1 => {
            let vs = t(rng);
            Element::adjust(payload, vs, vs + t(rng), vs + t(rng))
        }
        2 => Element::stable(t(rng)),
        _ => Element::stable(Time::INFINITY),
    }
}

fn arb_feed(rng: &mut StdRng) -> Vec<(u8, Element<&'static str>)> {
    let len = rng.random_range(0usize..120);
    (0..len)
        .map(|_| (rng.random_range(0u8..3), arb_element(rng)))
        .collect()
}

/// Drive a garbage feed and require every emitted prefix to reconstitute.
fn assert_output_well_formed(
    mut lm: Box<dyn LogicalMerge<&'static str>>,
    feed: &[(u8, Element<&'static str>)],
    case: usize,
) {
    let mut out = Vec::new();
    let mut rec: Reconstituter<&str> = Reconstituter::new();
    let mut consumed = 0usize;
    for (s, e) in feed {
        lm.push(StreamId(u32::from(*s)), e, &mut out);
        for oe in &out[consumed..] {
            rec.apply(oe)
                .unwrap_or_else(|err| panic!("case {case}: ill-formed output: {err:?}"));
        }
        consumed = out.len();
    }
}

/// R3 under the default policy: garbage in, well-formed stream out.
#[test]
fn r3_never_emits_ill_formed_output() {
    let mut rng = StdRng::seed_from_u64(0x52_0001);
    for case in 0..256 {
        let feed = arb_feed(&mut rng);
        assert_output_well_formed(Box::new(LMergeR3::<&str>::new(3)), &feed, case);
    }
}

/// Same under the eager-adjust policy (the chattier code path).
#[test]
fn r3_eager_never_emits_ill_formed_output() {
    let mut rng = StdRng::seed_from_u64(0x52_0002);
    for case in 0..256 {
        let feed = arb_feed(&mut rng);
        assert_output_well_formed(
            Box::new(LMergeR3::<&str>::with_policy(3, MergePolicy::eager())),
            &feed,
            case,
        );
    }
}

/// Same under the conservative policy (deferred-emission code path).
#[test]
fn r3_conservative_never_emits_ill_formed_output() {
    let mut rng = StdRng::seed_from_u64(0x52_0003);
    for case in 0..256 {
        let feed = arb_feed(&mut rng);
        assert_output_well_formed(
            Box::new(LMergeR3::<&str>::with_policy(
                3,
                MergePolicy::conservative(),
            )),
            &feed,
            case,
        );
    }
}

/// R4 (multiset machinery): garbage in, well-formed stream out.
#[test]
fn r4_never_emits_ill_formed_output() {
    let mut rng = StdRng::seed_from_u64(0x52_0004);
    for case in 0..256 {
        let feed = arb_feed(&mut rng);
        assert_output_well_formed(Box::new(LMergeR4::<&str>::new(3)), &feed, case);
    }
}

/// The bounded-memory guard pins the accounting: once an input floods
/// enough never-freezing entries to get demoted, its index contribution is
/// purged (the `hash_table_bytes` model drops to the surviving tables) and
/// — the actual guarantee — no further traffic on the demoted input can
/// move `memory_bytes` by a single byte.
#[test]
fn entry_bound_demotion_pins_memory_accounting() {
    let robustness = RobustnessPolicy {
        quarantine_lag: None,
        max_live_entries: Some(8),
    };
    let mks: [&dyn Fn() -> Box<dyn LogicalMerge<&'static str>>; 2] = [
        &|| {
            Box::new(LMergeR3::<&str>::with_policy(
                2,
                MergePolicy {
                    robustness: RobustnessPolicy {
                        quarantine_lag: None,
                        max_live_entries: Some(8),
                    },
                    ..MergePolicy::paper_default()
                },
            ))
        },
        &|| Box::new(LMergeR4::<&str>::with_robustness(2, robustness)),
    ];
    let payloads = [
        "p00", "p01", "p02", "p03", "p04", "p05", "p06", "p07", "p08", "p09", "p10", "p11", "p12",
        "p13", "p14", "p15",
    ];
    for mk in mks {
        let mut lm = mk();
        let mut out = Vec::new();
        // Input 1 floods distinct live (never-frozen) events — all at one
        // `Vs`, so the index grows one tier and the memory delta is purely
        // per-input entries; each insert adds one, so the 8-entry budget
        // trips mid-flood.
        let mut peak = 0usize;
        for p in payloads {
            lm.push(StreamId(1), &Element::insert(p, 100, 200), &mut out);
            peak = peak.max(lm.memory_bytes());
        }
        assert_eq!(
            lm.input_health(StreamId(1)),
            InputHealth::Left,
            "flooding input was demoted"
        );
        let pinned = lm.memory_bytes();
        assert!(
            pinned < peak,
            "purge released the flooded entries: {pinned} < {peak}"
        );

        // Everything the demoted input sends from now on is refused
        // without touching the index: the accounting must not move.
        for (i, p) in payloads.iter().enumerate() {
            let vs = 500 + i as i64;
            lm.push(StreamId(1), &Element::insert(*p, vs, vs + 5), &mut out);
            assert_eq!(lm.memory_bytes(), pinned, "demoted input grew memory");
        }
        let batch: Vec<Element<&'static str>> = (0..32i64)
            .map(|i| Element::insert("flood", 900 + i, 950 + i))
            .collect();
        lm.push_batch(StreamId(1), &batch, &mut out);
        lm.push(StreamId(1), &Element::stable(1_000), &mut out);
        assert_eq!(
            lm.memory_bytes(),
            pinned,
            "batched flood on a demoted input grew memory"
        );

        // The surviving input is unaffected and still drives the merge.
        lm.push(StreamId(0), &Element::insert("live", 10, 20), &mut out);
        lm.push(StreamId(0), &Element::stable(30), &mut out);
        assert_eq!(lm.max_stable(), Time(30));
    }
}

/// Quarantine (the softer demotion) gates punctuation but keeps data
/// flowing; the entry bound still backstops its memory, so a quarantined
/// laggard that floods is demoted and its accounting pinned too.
#[test]
fn quarantined_laggard_is_demoted_before_memory_runs_away() {
    let mut lm: LMergeR4<&str> = LMergeR4::with_robustness(2, RobustnessPolicy::guarded(5, 8));
    let mut out = Vec::new();
    // Input 1 announces an early stable, then input 0 races far ahead:
    // the lag (0 vs 50) exceeds the margin and input 1 is quarantined.
    lm.push(StreamId(1), &Element::stable(0), &mut out);
    lm.push(StreamId(0), &Element::insert("a", 5, 9), &mut out);
    lm.push(StreamId(0), &Element::stable(50), &mut out);
    assert_eq!(lm.input_health(StreamId(1)), InputHealth::Quarantined);

    // Quarantined data still merges — until the flood trips the bound.
    for i in 0..16i64 {
        lm.push(
            StreamId(1),
            &Element::insert("q", 100 + i, 200 + i),
            &mut out,
        );
    }
    assert_eq!(lm.input_health(StreamId(1)), InputHealth::Left);
    let pinned = lm.memory_bytes();
    for i in 0..16i64 {
        lm.push(
            StreamId(1),
            &Element::insert("q2", 300 + i, 400 + i),
            &mut out,
        );
    }
    assert_eq!(lm.memory_bytes(), pinned, "post-demotion flood grew memory");
}

/// With a spill handler installed, a `max_live_entries` demotion writes
/// the flooding input's half-frozen entries to disk as a sorted run
/// instead of dropping them — and the spill is observationally
/// transparent: output, state image, and counters are identical whether
/// the handler is file-backed, in-memory, or absent. Reading the runs
/// back through the k-way heap must yield exactly the globally sorted
/// `(Vs, payload)` order an in-memory merge of the runs produces, with
/// ties broken by run number.
#[test]
fn spilled_demotion_round_trips_through_the_k_way_merge() {
    use lmerge::core::{SpillHandler, StateEntry};
    use lmerge::durable::{FileSpillHandler, SpillStore};
    use lmerge::engine::SpillNotices;
    use std::sync::{Arc, Mutex};

    type SpilledRuns = Arc<Mutex<Vec<(StreamId, Vec<StateEntry<String>>)>>>;
    struct MemSpill(SpilledRuns);
    impl SpillHandler<String> for MemSpill {
        fn spill(&mut self, input: StreamId, run: &[StateEntry<String>]) -> bool {
            self.0.lock().unwrap().push((input, run.to_vec()));
            true
        }
    }

    let dir = std::env::temp_dir().join(format!("lmerge-spill-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let policy = MergePolicy {
        robustness: RobustnessPolicy {
            quarantine_lag: None,
            max_live_entries: Some(8),
        },
        ..MergePolicy::paper_default()
    };
    let build = || Box::new(LMergeR3::<String>::with_policy(3, policy));

    // Inputs 1 then 2 flood past the bound; interleaved `Vs` ranges so the
    // two spilled runs genuinely interleave on read-back. Input 0 stays
    // healthy and keeps the merge alive.
    let feed: Vec<(u32, Element<String>)> = (0..16i64)
        .map(|i| {
            (
                1,
                Element::insert(format!("a{i:02}"), 100 + 2 * i, 200 + 2 * i),
            )
        })
        .chain((0..16i64).map(|i| {
            (
                2,
                Element::insert(format!("b{i:02}"), 101 + 2 * i, 201 + 2 * i),
            )
        }))
        .chain(std::iter::once((
            0,
            Element::insert("live".to_string(), 10, 20),
        )))
        .collect();

    let drive = |mut lm: Box<LMergeR3<String>>| {
        let mut out = Vec::new();
        for (s, e) in &feed {
            lm.push(StreamId(*s), e, &mut out);
        }
        (lm.export_state().expect("exports"), out)
    };

    // Three identical merges: no handler, in-memory handler, file handler.
    let (plain_state, plain_out) = drive(build());

    let runs = Arc::new(Mutex::new(Vec::new()));
    let mut mem_merge = build();
    mem_merge.set_spill_handler(Box::new(MemSpill(runs.clone())));
    let (mem_state, mem_out) = drive(mem_merge);

    let notices = SpillNotices::new();
    let mut file_merge = build();
    file_merge.set_spill_handler(Box::new(
        FileSpillHandler::new(SpillStore::create(&dir).unwrap()).with_notices(notices.clone()),
    ));
    let (file_state, file_out) = drive(file_merge);

    // Spilling never perturbs the merge itself.
    assert_eq!(plain_out, mem_out);
    assert_eq!(plain_out, file_out);
    assert_eq!(plain_state, mem_state);
    assert_eq!(plain_state, file_state);

    // Both floods were demoted and produced one run each.
    let runs = runs.lock().unwrap();
    assert_eq!(runs.len(), 2, "both flooding inputs spilled");
    assert_eq!(runs[0].0, StreamId(1));
    assert_eq!(runs[1].0, StreamId(2));
    let posted = notices.drain();
    assert_eq!(
        posted,
        runs.iter()
            .map(|(s, r)| (s.0, r.len() as u64))
            .collect::<Vec<_>>(),
        "notices carry the spilled run sizes"
    );

    // Expected read-back order: the in-memory k-way merge of the runs —
    // global (Vs, payload) order, ties broken by run number, within-run
    // order preserved.
    let mut tagged: Vec<(usize, u32, StateEntry<String>)> = runs
        .iter()
        .enumerate()
        .flat_map(|(n, (s, r))| r.iter().map(move |e| (n, s.0, e.clone())))
        .collect();
    tagged.sort_by(|a, b| (a.2.vs, &a.2.payload, a.0).cmp(&(b.2.vs, &b.2.payload, b.0)));
    let expected: Vec<(u32, StateEntry<String>)> =
        tagged.into_iter().map(|(_, s, e)| (s, e)).collect();

    let store = SpillStore::create(&dir).unwrap();
    assert_eq!(store.runs(), 2, "reopened store sees both runs");
    let read_back: Vec<(u32, StateEntry<String>)> = store
        .read_merged::<String>()
        .unwrap()
        .map(|r| r.map(|(s, e)| (s.0, e)))
        .collect::<Result<_, _>>()
        .expect("clean read-back");
    assert_eq!(
        read_back, expected,
        "heap order matches the in-memory merge"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Attach/detach churn mid-garbage never corrupts the output either.
#[test]
fn churn_under_garbage() {
    let mut rng = StdRng::seed_from_u64(0x52_0005);
    for case in 0..256 {
        let feed = arb_feed(&mut rng);
        let churn_at = rng.random_range(0usize..100);
        let mut lm: LMergeR3<&str> = LMergeR3::new(2);
        let mut out = Vec::new();
        let mut rec: Reconstituter<&str> = Reconstituter::new();
        let mut consumed = 0usize;
        for (i, (s, e)) in feed.iter().enumerate() {
            if i == churn_at {
                lm.detach(StreamId(0));
                let _ = lm.attach(Time(5));
            }
            lm.push(StreamId(u32::from(*s % 2)), e, &mut out);
            for oe in &out[consumed..] {
                rec.apply(oe)
                    .unwrap_or_else(|err| panic!("case {case}: ill-formed output: {err:?}"));
            }
            consumed = out.len();
        }
    }
}
