//! Adversarial robustness: the general mergers must never panic and never
//! emit an ill-formed output stream, even when the inputs violate every
//! contract they have (mutual consistency, punctuation discipline, adjust
//! chains). Garbage in → clean (possibly wrong) stream out.
//!
//! Seeded random loops stand in for property tests: each case derives from
//! a fixed master seed, so failures are reproducible, and the failing case
//! number prints in the panic message.

use lmerge::core::{LMergeR3, LMergeR4, LogicalMerge, MergePolicy};
use lmerge::temporal::reconstitute::Reconstituter;
use lmerge::temporal::{Element, StreamId, Time};
use rand::prelude::*;

/// An arbitrary element over a tiny payload/time domain, so collisions,
/// stale adjusts, and punctuation violations are all common.
fn arb_element(rng: &mut StdRng) -> Element<&'static str> {
    let payload = ["a", "b", "c"][rng.random_range(0usize..3)];
    let t = |rng: &mut StdRng| rng.random_range(0i64..20);
    match rng.random_range(0u32..4) {
        0 => {
            let vs = t(rng);
            Element::insert(payload, vs, vs + t(rng).max(0) + 1)
        }
        1 => {
            let vs = t(rng);
            Element::adjust(payload, vs, vs + t(rng), vs + t(rng))
        }
        2 => Element::stable(t(rng)),
        _ => Element::stable(Time::INFINITY),
    }
}

fn arb_feed(rng: &mut StdRng) -> Vec<(u8, Element<&'static str>)> {
    let len = rng.random_range(0usize..120);
    (0..len)
        .map(|_| (rng.random_range(0u8..3), arb_element(rng)))
        .collect()
}

/// Drive a garbage feed and require every emitted prefix to reconstitute.
fn assert_output_well_formed(
    mut lm: Box<dyn LogicalMerge<&'static str>>,
    feed: &[(u8, Element<&'static str>)],
    case: usize,
) {
    let mut out = Vec::new();
    let mut rec: Reconstituter<&str> = Reconstituter::new();
    let mut consumed = 0usize;
    for (s, e) in feed {
        lm.push(StreamId(u32::from(*s)), e, &mut out);
        for oe in &out[consumed..] {
            rec.apply(oe)
                .unwrap_or_else(|err| panic!("case {case}: ill-formed output: {err:?}"));
        }
        consumed = out.len();
    }
}

/// R3 under the default policy: garbage in, well-formed stream out.
#[test]
fn r3_never_emits_ill_formed_output() {
    let mut rng = StdRng::seed_from_u64(0x52_0001);
    for case in 0..256 {
        let feed = arb_feed(&mut rng);
        assert_output_well_formed(Box::new(LMergeR3::<&str>::new(3)), &feed, case);
    }
}

/// Same under the eager-adjust policy (the chattier code path).
#[test]
fn r3_eager_never_emits_ill_formed_output() {
    let mut rng = StdRng::seed_from_u64(0x52_0002);
    for case in 0..256 {
        let feed = arb_feed(&mut rng);
        assert_output_well_formed(
            Box::new(LMergeR3::<&str>::with_policy(3, MergePolicy::eager())),
            &feed,
            case,
        );
    }
}

/// Same under the conservative policy (deferred-emission code path).
#[test]
fn r3_conservative_never_emits_ill_formed_output() {
    let mut rng = StdRng::seed_from_u64(0x52_0003);
    for case in 0..256 {
        let feed = arb_feed(&mut rng);
        assert_output_well_formed(
            Box::new(LMergeR3::<&str>::with_policy(
                3,
                MergePolicy::conservative(),
            )),
            &feed,
            case,
        );
    }
}

/// R4 (multiset machinery): garbage in, well-formed stream out.
#[test]
fn r4_never_emits_ill_formed_output() {
    let mut rng = StdRng::seed_from_u64(0x52_0004);
    for case in 0..256 {
        let feed = arb_feed(&mut rng);
        assert_output_well_formed(Box::new(LMergeR4::<&str>::new(3)), &feed, case);
    }
}

/// Attach/detach churn mid-garbage never corrupts the output either.
#[test]
fn churn_under_garbage() {
    let mut rng = StdRng::seed_from_u64(0x52_0005);
    for case in 0..256 {
        let feed = arb_feed(&mut rng);
        let churn_at = rng.random_range(0usize..100);
        let mut lm: LMergeR3<&str> = LMergeR3::new(2);
        let mut out = Vec::new();
        let mut rec: Reconstituter<&str> = Reconstituter::new();
        let mut consumed = 0usize;
        for (i, (s, e)) in feed.iter().enumerate() {
            if i == churn_at {
                lm.detach(StreamId(0));
                let _ = lm.attach(Time(5));
            }
            lm.push(StreamId(u32::from(*s % 2)), e, &mut out);
            for oe in &out[consumed..] {
                rec.apply(oe)
                    .unwrap_or_else(|err| panic!("case {case}: ill-formed output: {err:?}"));
            }
            consumed = out.len();
        }
    }
}
