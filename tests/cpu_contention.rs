//! Fast availability under CPU asymmetry (paper Section II-2): identical
//! plans on machines with different processor resources — the merge follows
//! whichever replica is faster, and completion tracks the fast machine.

use lmerge::core::LMergeR3;
use lmerge::engine::{MergeRun, Query, RunConfig, TimedElement};
use lmerge::gen::{diverge, generate, DivergenceConfig, GenConfig};
use lmerge::temporal::{VTime, Value};

fn sources() -> Vec<Vec<TimedElement<Value>>> {
    let r = generate(&GenConfig::small(2_000, 91).with_disorder(0.2));
    let div = DivergenceConfig::default();
    (0..2u64)
        .map(|i| {
            diverge(&r.elements, &div, i)
                .into_iter()
                .map(|e| TimedElement::new(VTime::ZERO, e))
                .collect()
        })
        .collect()
}

#[test]
fn completion_tracks_the_fast_machine() {
    let run = |costs: [u64; 2]| {
        let mut srcs = sources().into_iter();
        let queries = vec![
            Query::passthrough(srcs.next().unwrap()).with_base_cost(costs[0]),
            Query::passthrough(srcs.next().unwrap()).with_base_cost(costs[1]),
        ];
        MergeRun::new(
            queries,
            Box::new(LMergeR3::<Value>::new(2)),
            RunConfig::default(),
        )
        .run()
    };

    // Balanced machines.
    let balanced = run([10, 10]);
    // One machine 20x slower (CPU contention).
    let skewed = run([10, 200]);
    // Both slow.
    let both_slow = run([200, 200]);

    let b = balanced.completion().as_secs_f64();
    let s = skewed.completion().as_secs_f64();
    let w = both_slow.completion().as_secs_f64();
    assert!(
        s < 1.5 * b,
        "one slow replica must barely matter: balanced {b:.3}s vs skewed {s:.3}s"
    );
    assert!(
        w > 5.0 * b,
        "both slow is the real worst case: {w:.3}s vs {b:.3}s"
    );
    // Same logical output volume regardless of which machine led.
    assert_eq!(balanced.merge.inserts_out, skewed.merge.inserts_out);
}

#[test]
fn slow_replica_contributes_nothing_but_costs_nothing() {
    let mut srcs = sources().into_iter();
    let queries = vec![
        Query::passthrough(srcs.next().unwrap()).with_base_cost(1),
        Query::passthrough(srcs.next().unwrap()).with_base_cost(500),
    ];
    let metrics = MergeRun::new(
        queries,
        Box::new(LMergeR3::<Value>::new(2)),
        RunConfig::default(),
    )
    .run();
    // The fast replica supplies (essentially) every output.
    let fast_delivered: u64 = metrics.input_series[0].total();
    let slow_delivered: u64 = metrics.input_series[1].total();
    assert!(
        fast_delivered > 5 * slow_delivered.max(1),
        "fast replica should dominate deliveries before completion: {fast_delivered} vs {slow_delivered}"
    );
}
