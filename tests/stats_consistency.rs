//! Counter-consistency: the numbers MergeStats and the per-input counters
//! report must agree with what actually flowed through the operator, for
//! every variant R0–R4.
//!
//! Three invariants, checked over a generated divergent workload:
//!
//! 1. `inserts_out + adjusts_out` equals the data elements observed on the
//!    output trace;
//! 2. per-input delivered counts (`InputCounters`) equal what the driver
//!    actually pushed to each replica;
//! 3. `inserts_in + adjusts_in + stables_in` equals the total pushed, and
//!    the output stable point never exceeds any reported input count's
//!    announced stable point while it is live.

use lmerge::core::{LMergeR0, LMergeR1, LMergeR2, LMergeR3, LMergeR3Naive, LMergeR4, LogicalMerge};
use lmerge::gen::{diverge, generate, DivergenceConfig, GenConfig};
use lmerge::temporal::{Element, StreamId, Time, Value};

/// Build three divergent copies of one logical stream (disorder only for
/// the adjust-tolerant variants).
fn copies(disorder: f64, revision_prob: f64) -> Vec<Vec<Element<Value>>> {
    let mut cfg = GenConfig::small(300, 97).with_disorder(disorder);
    if disorder == 0.0 {
        cfg.min_gap_ms = 1; // strictly increasing, as the R0 contract requires
    }
    let r = generate(&cfg);
    let div = DivergenceConfig {
        revision_prob,
        ..Default::default()
    };
    (0..3).map(|i| diverge(&r.elements, &div, i)).collect()
}

/// What the driver pushed to one input, by element kind.
#[derive(Default, Clone, Copy, PartialEq, Eq, Debug)]
struct Pushed {
    inserts: u64,
    adjusts: u64,
    stables: u64,
}

/// Drive `copies` through `lm` round-robin and check every invariant.
fn check(mut lm: Box<dyn LogicalMerge<Value>>, copies: &[Vec<Element<Value>>], label: &str) {
    let mut out = Vec::new();
    let mut pushed = vec![Pushed::default(); copies.len()];
    let longest = copies.iter().map(Vec::len).max().unwrap_or(0);
    for k in 0..longest {
        for (i, c) in copies.iter().enumerate() {
            let Some(e) = c.get(k) else { continue };
            match e {
                Element::Insert(_) => pushed[i].inserts += 1,
                Element::Adjust { .. } => pushed[i].adjusts += 1,
                Element::Stable(_) => pushed[i].stables += 1,
            }
            lm.push(StreamId(i as u32), e, &mut out);
        }
    }

    let stats = lm.stats();

    // 1. Output counters match the output trace.
    let data_out = out.iter().filter(|e| !e.is_stable()).count() as u64;
    let stables_out = out.iter().filter(|e| e.is_stable()).count() as u64;
    assert_eq!(
        stats.inserts_out + stats.adjusts_out,
        data_out,
        "{label}: inserts_out+adjusts_out must equal output data elements"
    );
    assert_eq!(
        stats.stables_out, stables_out,
        "{label}: stables_out must equal output stable elements"
    );

    // 2. Per-input delivered counts match what the driver pushed.
    let counters = lm.input_counters();
    assert_eq!(
        counters.len(),
        copies.len(),
        "{label}: one counter per input"
    );
    for (i, (c, p)) in counters.iter().zip(&pushed).enumerate() {
        assert_eq!(
            (c.inserts, c.adjusts, c.stables),
            (p.inserts, p.adjusts, p.stables),
            "{label}: input {i} delivered counts must match the driver"
        );
    }

    // 3. Aggregate input counters match, and per-input sums tie out.
    let total_pushed: u64 = pushed
        .iter()
        .map(|p| p.inserts + p.adjusts + p.stables)
        .sum();
    assert_eq!(
        stats.inserts_in + stats.adjusts_in + stats.stables_in,
        total_pushed,
        "{label}: aggregate input counters must equal total pushed"
    );
    let per_input_total: u64 = counters.iter().map(|c| c.elements()).sum();
    assert_eq!(
        per_input_total, total_pushed,
        "{label}: per-input sums tie out"
    );

    // The merged stable point can never outrun every replica's announced
    // stable point (it is the max over inputs, and Time::MIN before any).
    let max_input_stable = (0..copies.len() as u32)
        .map(|i| lm.input_stable(StreamId(i)))
        .max()
        .unwrap_or(Time::MIN);
    assert!(
        lm.max_stable() <= max_input_stable || max_input_stable == Time::MIN,
        "{label}: output stable {:?} outran every input stable {:?}",
        lm.max_stable(),
        max_input_stable
    );
}

/// Ordered insert-only copies: every variant must keep consistent books.
#[test]
fn all_variants_count_consistently_on_ordered_streams() {
    let cs = copies(0.0, 0.0);
    check(Box::new(LMergeR0::<Value>::new(3)), &cs, "R0");
    check(Box::new(LMergeR1::<Value>::new(3)), &cs, "R1");
    check(Box::new(LMergeR2::<Value>::new(3)), &cs, "R2");
    check(Box::new(LMergeR3::<Value>::new(3)), &cs, "R3+");
    check(Box::new(LMergeR3Naive::<Value>::new(3)), &cs, "R3-");
    check(Box::new(LMergeR4::<Value>::new(3)), &cs, "R4");
}

/// Disordered, revision-heavy copies: the general variants must keep
/// consistent books through adjust processing too.
#[test]
fn general_variants_count_consistently_under_revisions() {
    let cs = copies(0.3, 0.2);
    check(Box::new(LMergeR3::<Value>::new(3)), &cs, "R3+ (revisions)");
    check(
        Box::new(LMergeR3Naive::<Value>::new(3)),
        &cs,
        "R3- (revisions)",
    );
    check(Box::new(LMergeR4::<Value>::new(3)), &cs, "R4 (revisions)");
}

/// The per-input gauges single out the replica that is actually behind.
#[test]
fn input_stable_tracks_each_replica_independently() {
    let mut lm: LMergeR3<&str> = LMergeR3::new(2);
    let mut out = Vec::new();
    lm.push(StreamId(0), &Element::insert("a", 1, 10), &mut out);
    lm.push(StreamId(1), &Element::insert("a", 1, 10), &mut out);
    lm.push(StreamId(0), &Element::stable(50), &mut out);
    assert_eq!(lm.input_stable(StreamId(0)), Time(50));
    assert_eq!(
        lm.input_stable(StreamId(1)),
        Time::MIN,
        "replica 1 announced nothing yet"
    );
    lm.push(StreamId(1), &Element::stable(20), &mut out);
    assert_eq!(lm.input_stable(StreamId(1)), Time(20));
    // Out-of-range ids read as never-announced rather than panicking.
    assert_eq!(lm.input_stable(StreamId(7)), Time::MIN);
}
