//! Subscription-plane differential conformance: every subscriber — no
//! matter when it joined, which filter class it picked, how hostile its
//! transport was, or whether it (or the merge process itself) crashed
//! mid-stream — must end up with a **byte-identical** filtered copy of
//! the single-writer reference output.
//!
//! The reference on each run is twofold: the in-process `NetHooks`
//! collector (what the merge emitted, element by element) and the
//! full-stream subscriber's wire bytes (what the fan-out encoded). A
//! filtered class's expectation is derived mechanically from the latter
//! by re-encoding the admitted frames, so the comparison pins the whole
//! chain: one shared encoding, shared bitmaps, per-session cursors,
//! credit flow, resume stitching.

use lmerge::chaos::{general_feeds, ChaosConfig, Variant};
use lmerge::core::{new_for_level, MergePolicy};
use lmerge::durable::{CheckpointStore, DurableCheckpointSink};
use lmerge::engine::{MergeRun, Query, RunConfig, TimedElement};
use lmerge::net::client::{replay, replay_until_clean, ReplayConfig};
use lmerge::net::egress::NetHooks;
use lmerge::net::proxy::{ChaosProxy, ProxyPlan};
use lmerge::net::server::{IngestConfig, IngestServer};
use lmerge::net::wire::{self, Frame};
use lmerge::obs::NullSink;
use lmerge::properties::RLevel;
use lmerge::sub::{
    subscribe, subscribe_until_finished, BroadcastHooks, EpochBuffer, SubConfig, SubFilter,
    SubOutcome, SubPolicy, SubServer, SubscribeConfig,
};
use lmerge::temporal::{Element, Time, VTime, Value};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Retain everything: these tests compare full streams, so late joiners
/// and post-run subscribers must still see sequence 0.
fn retain_all() -> SubPolicy {
    SubPolicy {
        retain_min_epochs: u64::MAX,
        ..SubPolicy::default()
    }
}

/// Re-encode the frames of `full` (a class-0 subscriber's view) that
/// `filter` admits: the byte-exact expectation for that filter class.
fn expected_bytes(full: &SubOutcome, filter: &SubFilter) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (seq, at, element) in &full.frames {
        if filter.admits(element) {
            wire::encode_into(
                &Frame::Data {
                    seq: *seq,
                    at: *at,
                    element: element.clone(),
                },
                &mut bytes,
            );
        }
    }
    bytes
}

/// N subscribers with mixed join times, filter classes, credit windows,
/// a mid-stream kill+resume, and a chaos proxy on the wire — every one
/// of them receives exactly its filtered slice of the reference.
#[test]
fn mixed_subscribers_receive_byte_identical_filtered_slices() {
    let cfg = ChaosConfig::small(19);
    let (_reference, feeds) = general_feeds(&cfg);

    let mut sub_config = SubConfig::new(); // class 0: All
    let mod_class = sub_config.add_filter(SubFilter::KeyMod {
        modulus: 2,
        residue: 0,
    });
    let range_class = sub_config.add_filter(SubFilter::KeyRange {
        min: i32::MIN,
        max: 40,
    });

    let buf = Arc::new(EpochBuffer::new(retain_all()));
    let mut server =
        SubServer::bind("127.0.0.1:0", Arc::clone(&buf), sub_config.clone()).expect("bind");
    let addr = server.local_addr().to_string();
    let sub_addr = server.local_addr();

    // The subscriber mix, live while the merge is still producing.
    let full = {
        let addr = addr.clone();
        thread::spawn(move || subscribe(&addr, &SubscribeConfig::new(1)).expect("full subscriber"))
    };
    let moddy = {
        let addr = addr.clone();
        // Tiny credit window: correctness must not depend on batch size.
        thread::spawn(move || {
            subscribe(
                &addr,
                &SubscribeConfig::new(2)
                    .with_filter(mod_class)
                    .with_credits(3),
            )
            .expect("mod subscriber")
        })
    };
    let ranged = {
        let addr = addr.clone();
        // Joins late, after the merge has already emitted some epochs.
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            subscribe(&addr, &SubscribeConfig::new(3).with_filter(range_class))
                .expect("late range subscriber")
        })
    };
    let killed = {
        let addr = addr.clone();
        // Crashes after 9 frames, reconnects with resume_from, stitches.
        thread::spawn(move || {
            subscribe_until_finished(&addr, &SubscribeConfig::new(4).with_kill_after(9), 10)
                .expect("kill+resume subscriber")
        })
    };
    let proxy = ChaosProxy::spawn(sub_addr, ProxyPlan::seeded(7, 400, 4)).expect("proxy");
    let proxied = {
        let addr = proxy.local_addr().to_string();
        thread::spawn(move || {
            subscribe_until_finished(&addr, &SubscribeConfig::new(5).with_filter(mod_class), 50)
                .expect("proxied subscriber")
        })
    };

    // The producer: an in-process merge publishing through the broadcast
    // buffer, with the NetHooks collector as the single-writer reference.
    let queries: Vec<Query<Value>> = feeds
        .iter()
        .map(|f| Query::new(f.clone(), Vec::new()))
        .collect();
    let merge = Variant::R3.build(cfg.n_inputs, cfg.robustness);
    let mut hooks = BroadcastHooks::wrap(NetHooks::collector(), Arc::clone(&buf));
    MergeRun::new(queries, merge, RunConfig::default()).run_with_hooks(&mut NullSink, &mut hooks);
    hooks.finish();
    let collected = hooks.into_inner().into_parts().0;

    let full = full.join().expect("full");
    let moddy = moddy.join().expect("moddy");
    let ranged = ranged.join().expect("ranged");
    let killed = killed.join().expect("killed");
    let proxied = proxied.join().expect("proxied");
    assert!(server.await_sessions_closed(Duration::from_secs(5)));
    server.shutdown();

    for (name, o) in [
        ("full", &full),
        ("mod", &moddy),
        ("range", &ranged),
        ("killed", &killed),
        ("proxied", &proxied),
    ] {
        assert!(o.clean && o.finished, "{name}: unclean close");
    }

    // The full-stream subscriber IS the collector output, element for
    // element — the wire added and lost nothing.
    let full_elements: Vec<Element<Value>> =
        full.frames.iter().map(|(_, _, e)| e.clone()).collect();
    assert_eq!(full_elements, collected, "fan-out diverged from the merge");
    assert!(!collected.is_empty(), "differential is vacuous");

    // Every filtered/chaotic subscriber got exactly its slice, by bytes.
    let mod_expected = expected_bytes(&full, &sub_config.filters[mod_class as usize]);
    let range_expected = expected_bytes(&full, &sub_config.filters[range_class as usize]);
    assert_eq!(killed.bytes, full.bytes, "kill+resume stitched wrong");
    assert!(killed.attempts > 1, "the kill never fired");
    assert_eq!(moddy.bytes, mod_expected, "mod-filter slice wrong");
    assert_eq!(proxied.bytes, mod_expected, "proxied slice wrong");
    assert_eq!(ranged.bytes, range_expected, "range-filter slice wrong");
    assert!(
        proxy.applied() > 0,
        "the proxy never disturbed the transport"
    );
    // The mod filter is a proper slice: smaller than the full stream but
    // more than the stable punctuation alone.
    let stables = full
        .frames
        .iter()
        .filter(|(_, _, e)| matches!(e, Element::Stable(_)))
        .count() as u64;
    assert!(moddy.received < full.received, "mod filter admitted all");
    assert!(moddy.received > stables, "mod filter admitted nothing");
}

/// The acceptance bar: a subscriber severed mid-stream reconnects with
/// `resume_from` across a **merge-process restart from a checkpoint**
/// and still sees every frame exactly once — its stitched bytes are
/// identical to a subscriber that watched an uninterrupted stream.
#[test]
fn subscriber_resume_is_exactly_once_across_merge_restart() {
    // One networked input with periodic finite stables, so checkpoints
    // cut mid-feed (same shape as the net-restore conformance test).
    let feed: Vec<TimedElement<Value>> = {
        let mut v = Vec::new();
        for i in 0..60u64 {
            v.push(TimedElement::new(
                VTime(i * 10),
                Element::insert(Value::bare(i as i32), i as i64, i as i64 + 5),
            ));
            if (i + 1) % 8 == 0 {
                v.push(TimedElement::new(
                    VTime(i * 10 + 5),
                    Element::stable(Time(i as i64)),
                ));
            }
        }
        v.push(TimedElement::new(
            VTime(600),
            Element::stable(Time::INFINITY),
        ));
        v
    };

    let dir = std::env::temp_dir().join(format!("lmerge-subck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Incarnation 1: ingest over TCP, fan out through the broadcast
    // buffer, checkpoint egress + cursors at every cut, die after cut 2.
    let mut server = IngestServer::bind("127.0.0.1:0", IngestConfig::new(1)).expect("bind");
    let addr = server.local_addr().to_string();
    let feed1 = feed.clone();
    let ingest = thread::spawn(move || {
        // The merge halts mid-run; clean close is irrelevant here.
        let _ = replay(&addr, &feed1, &ReplayConfig::new(0));
    });
    let buf1 = Arc::new(EpochBuffer::new(retain_all()));
    let mut sub_server =
        SubServer::bind("127.0.0.1:0", Arc::clone(&buf1), SubConfig::new()).expect("sub bind");
    let sub_addr1 = sub_server.local_addr().to_string();
    // The subscriber crashes after 5 frames — before the merge dies.
    let watcher = thread::spawn(move || {
        subscribe(&sub_addr1, &SubscribeConfig::new(77).with_kill_after(5)).expect("watch")
    });
    let queries: Vec<Query<Value>> = server
        .sources()
        .into_iter()
        .map(|src| Query::from_source(Box::new(src), Vec::new()))
        .collect();
    let cursors = server.cursor_handle();
    let egress_buf = Arc::clone(&buf1);
    let mut ck = DurableCheckpointSink::new(CheckpointStore::create(&dir).expect("store"))
        .with_cursor_source(Box::new(move || cursors.cursors()))
        .with_egress_source(Box::new(move || egress_buf.image()))
        .halt_after(2);
    let mut hooks = BroadcastHooks::wrap(NetHooks::collector(), Arc::clone(&buf1));
    MergeRun::new(
        queries,
        new_for_level(RLevel::R3, 1, MergePolicy::default()),
        RunConfig::default(),
    )
    .run_checkpointed(&mut NullSink, &mut hooks, &mut ck);
    assert!(ck.error.is_none(), "{:?}", ck.error);
    let part1 = watcher.join().expect("watcher");
    assert!(!part1.clean && !part1.finished, "the kill really severed");
    assert_eq!(part1.received, 5);
    server.shutdown();
    ingest.join().unwrap();
    sub_server.shutdown();
    drop(sub_server);
    drop(server);

    // Incarnation 2: restore the checkpoint — merge state, ingest
    // cursors, AND the egress image — and finish the run.
    let (seq, image) = CheckpointStore::<Value>::load_latest(&dir).expect("restore");
    assert_eq!(seq, 2, "died right after checkpoint 2");
    assert!(
        image.egress.next_seq > 0,
        "the egress image captured retained frames"
    );
    assert!(
        image.egress.cursors.iter().any(|&(id, _)| id == 77),
        "the watcher's cursor persisted through the checkpoint"
    );
    let buf2 = Arc::new(EpochBuffer::restore(&image.egress, retain_all()).expect("egress restore"));
    let mut server = IngestServer::bind("127.0.0.1:0", IngestConfig::new(1)).expect("rebind");
    server.restore_cursors(&image.cursors);
    let addr = server.local_addr().to_string();
    let feed2 = feed.clone();
    let ingest = thread::spawn(move || {
        replay_until_clean(&addr, &feed2, &ReplayConfig::new(0), 10).expect("rejoin")
    });
    let mut sub_server =
        SubServer::bind("127.0.0.1:0", Arc::clone(&buf2), SubConfig::new()).expect("sub rebind");
    let sub_addr2 = sub_server.local_addr().to_string();
    // The crashed watcher reconnects at its next unseen sequence; an
    // uninterrupted observer replays the whole stream from 0.
    let resume_at = part1.frames.last().map(|(s, _, _)| s + 1).unwrap();
    let stitched_tail = {
        let sub_addr2 = sub_addr2.clone();
        thread::spawn(move || {
            subscribe_until_finished(
                &sub_addr2,
                &SubscribeConfig::new(77).with_resume_from(resume_at),
                10,
            )
            .expect("resume")
        })
    };
    let uninterrupted =
        thread::spawn(move || subscribe(&sub_addr2, &SubscribeConfig::new(88)).expect("observer"));
    let queries: Vec<Query<Value>> = server
        .sources()
        .into_iter()
        .map(|src| Query::from_source(Box::new(src), Vec::new()))
        .collect();
    let mut merge = new_for_level(RLevel::R3, 1, MergePolicy::default());
    assert!(merge.restore_state(image.merge), "image matches the level");
    let mut hooks = BroadcastHooks::wrap(NetHooks::collector(), Arc::clone(&buf2));
    MergeRun::new(queries, merge, RunConfig::default()).run_with_hooks(&mut NullSink, &mut hooks);
    server.await_sessions_closed(Duration::from_secs(5));
    hooks.finish();
    let tail = stitched_tail.join().expect("stitched tail");
    let uninterrupted = uninterrupted.join().expect("uninterrupted");
    assert!(sub_server.await_sessions_closed(Duration::from_secs(5)));
    let ingest_outcome = ingest.join().unwrap();
    assert!(ingest_outcome.clean);
    server.shutdown();
    sub_server.shutdown();

    // Exactly-once across both crashes: the watcher's incarnation-1
    // prefix plus its resumed tail is byte-identical to the subscriber
    // that never saw a failure.
    assert!(tail.clean && tail.finished);
    assert!(uninterrupted.clean && uninterrupted.finished);
    assert_eq!(tail.resumed_from, resume_at, "resume cursor honored");
    let mut stitched = part1.bytes.clone();
    stitched.extend_from_slice(&tail.bytes);
    assert_eq!(
        stitched, uninterrupted.bytes,
        "restart lost or duplicated subscriber output"
    );
    assert_eq!(
        part1.received + tail.received,
        uninterrupted.received,
        "frame counts disagree"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
