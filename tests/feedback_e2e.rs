//! Feedback / fast-forward end to end (paper Section V-D): correctness is
//! preserved while work is skipped.

use lmerge::core::{LMergeR3, LogicalMerge};
use lmerge::engine::ops::{IntervalCount, UdfSelect};
use lmerge::engine::{MergeRun, Operator, Query, RunConfig, TimedElement};
use lmerge::gen::batched::{generate_batched, BatchedConfig};
use lmerge::temporal::{VTime, Value};

fn cfg(events: usize) -> BatchedConfig {
    BatchedConfig {
        num_events: events,
        min_batch: events / 10,
        max_batch: events / 8,
        event_duration_ms: (events / 100).max(50) as i64,
        stable_every: (events / 100).max(50),
        ..Default::default()
    }
}

fn udf_queries(c: &BatchedConfig) -> Vec<Query<Value>> {
    let (elems, _) = generate_batched(c);
    let source: Vec<TimedElement<Value>> = elems
        .into_iter()
        .map(|e| TimedElement::new(VTime::ZERO, e))
        .collect();
    vec![
        Query::new(
            source.clone(),
            vec![Box::new(UdfSelect::udf0(200, 400, 10)) as Box<dyn Operator<Value>>],
        )
        .with_base_cost(0),
        Query::new(
            source,
            vec![Box::new(UdfSelect::udf1(200, 400, 10)) as Box<dyn Operator<Value>>],
        )
        .with_base_cost(0),
    ]
}

/// Feedback speeds up completion without changing the merged result.
#[test]
fn feedback_preserves_output_counts() {
    let c = cfg(10_000);
    let run = |feedback: bool| {
        MergeRun::new(
            udf_queries(&c),
            Box::new(LMergeR3::<Value>::new(2)),
            RunConfig {
                feedback,
                ..Default::default()
            },
        )
        .run()
    };
    let plain = run(false);
    let fed = run(true);
    assert!(plain.output_complete_at.is_some());
    assert!(fed.output_complete_at.is_some());
    // Same number of logical events reach the output either way: feedback
    // only skips elements that were already settled.
    assert_eq!(plain.merge.inserts_out, fed.merge.inserts_out);
    // And it is faster.
    assert!(
        fed.completion() < plain.completion(),
        "feedback: {} vs {}",
        fed.completion(),
        plain.completion()
    );
}

/// Feedback signals propagate through operator chains: a stateful operator
/// downstream of the UDF purges its frozen state on feedback.
#[test]
fn feedback_propagates_through_chains() {
    let c = cfg(4_000);
    let (elems, _) = generate_batched(&c);
    let source: Vec<TimedElement<Value>> = elems
        .into_iter()
        .map(|e| TimedElement::new(VTime::ZERO, e))
        .collect();
    let queries = vec![
        Query::new(
            source.clone(),
            vec![
                Box::new(UdfSelect::udf0(200, 400, 10)) as Box<dyn Operator<Value>>,
                Box::new(IntervalCount::new(2)) as Box<dyn Operator<Value>>,
            ],
        )
        .with_base_cost(0),
        Query::new(
            source,
            vec![
                Box::new(UdfSelect::udf1(200, 400, 10)) as Box<dyn Operator<Value>>,
                Box::new(IntervalCount::new(2)) as Box<dyn Operator<Value>>,
            ],
        )
        .with_base_cost(0),
    ];
    let metrics = MergeRun::new(
        queries,
        Box::new(LMergeR3::<Value>::new(2)),
        RunConfig {
            feedback: true,
            ..Default::default()
        },
    )
    .run();
    assert!(metrics.output_complete_at.is_some());
    assert!(metrics.merge.inserts_out > 0);
}

/// The feedback point never regresses and never exceeds the stable point.
#[test]
fn feedback_point_is_monotone() {
    use lmerge::temporal::{Element, StreamId, Time};
    let mut lm: LMergeR3<&str> = LMergeR3::new(2);
    let mut out = Vec::new();
    let mut last = Time::MIN;
    for t in [5i64, 12, 12, 30] {
        lm.push(StreamId(0), &Element::insert("x", t, t + 100), &mut out);
        lm.push(StreamId(0), &Element::stable(t), &mut out);
        let fp = lm.feedback_point();
        assert!(fp >= last, "feedback point regressed");
        assert!(fp <= lm.max_stable());
        last = fp;
    }
}
