//! Differential chaos conformance: every seeded fault plan must leave
//! every algorithm in the spectrum compatible with its delivered inputs,
//! and the whole run must be a pure function of the seed.
//!
//! Three master seeds run by default (CI's smoke matrix). Set
//! `LMERGE_CHAOS_CASES=<n>` to widen each master seed into `n` derived
//! cases — the long-run soak mode the CI chaos job runs on a schedule.

use lmerge::chaos::{run_case, run_variant, ChaosConfig, Fault, FaultPlan, Variant, ALL_VARIANTS};
use lmerge::core::RobustnessPolicy;
use lmerge::temporal::VTime;

const MASTER_SEEDS: [u64; 3] = [0xC4A0_0001, 0xC4A0_0002, 0xC4A0_0003];

/// Derived cases per master seed: 1 by default, more under
/// `LMERGE_CHAOS_CASES` (the env-gated soak mode).
fn cases_per_seed() -> u64 {
    std::env::var("LMERGE_CHAOS_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|n| *n >= 1)
        .unwrap_or(1)
}

/// Random fault plans: R0–R4 and the naive baseline each absorb the same
/// plan (degraded per level), pass the compatibility oracle at every
/// stable advance, complete, and reconstitute the reference TDB.
#[test]
fn random_fault_plans_stay_conformant_across_the_spectrum() {
    for &master in &MASTER_SEEDS {
        for case in 0..cases_per_seed() {
            let seed = master.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let cfg = ChaosConfig::small(seed);
            for o in run_case(&cfg) {
                assert!(
                    o.ok(),
                    "seed={seed:#x} variant={}: violations={:?} completed={} tdb_matches={} \
                     applied={:?}",
                    o.variant.name(),
                    o.violations,
                    o.completed,
                    o.tdb_matches,
                    o.applied,
                );
                assert!(o.checks > 0, "seed={seed:#x}: oracle never ran");
            }
        }
    }
}

/// Every fault scenario in the DSL, pinned one at a time, against every
/// variant — so a regression in one fault's handling names itself.
#[test]
fn each_fault_scenario_passes_the_oracle_for_every_variant() {
    let scenarios = [
        Fault::Crash {
            input: 1,
            at: VTime(900),
        },
        Fault::CrashRejoin {
            input: 1,
            at: VTime(900),
            rejoin_at: VTime(2_400),
        },
        Fault::DuplicateBatches {
            input: 1,
            from: VTime(400),
            until: VTime(2_000),
        },
        Fault::ReorderBatches {
            input: 1,
            from: VTime(400),
            until: VTime(2_000),
        },
        Fault::FreezeStable {
            input: 1,
            from: VTime(400),
        },
        Fault::StallInput {
            input: 1,
            at: VTime(400),
            until: VTime(1_600),
        },
        Fault::Overflow {
            input: 1,
            from: VTime(400),
            until: VTime(1_200),
        },
    ];
    let cfg = ChaosConfig::small(0xFA01);
    for fault in scenarios {
        let plan = FaultPlan {
            seed: cfg.seed,
            faults: vec![fault],
        };
        for v in ALL_VARIANTS {
            let o = run_variant(v, &cfg, &plan);
            assert!(
                o.ok(),
                "{} under {}: violations={:?} completed={} tdb_matches={}",
                v.name(),
                fault.label(),
                o.violations,
                o.completed,
                o.tdb_matches,
            );
        }
    }
}

/// A merge-process crash mid-run: the injector round-trips the live merge
/// state through the durable codec, restores it into a fresh build, and
/// the compatibility oracle must keep holding at every stable advance
/// across the crash boundary — alone, and stacked with an input-side
/// fault so recovery composes with degradation.
#[test]
fn merge_crash_recovers_and_stays_conformant() {
    let cfg = ChaosConfig::small(MASTER_SEEDS[2]);
    let plans = [
        vec![Fault::CrashMerge { at: VTime(900) }],
        vec![
            Fault::CrashMerge { at: VTime(1_200) },
            Fault::DuplicateBatches {
                input: 1,
                from: VTime(400),
                until: VTime(2_000),
            },
        ],
    ];
    for faults in plans {
        let plan = FaultPlan {
            seed: cfg.seed,
            faults,
        };
        for v in ALL_VARIANTS {
            let o = run_variant(v, &cfg, &plan);
            assert!(
                o.ok(),
                "{} across a merge crash: violations={:?} completed={} tdb_matches={}",
                v.name(),
                o.violations,
                o.completed,
                o.tdb_matches,
            );
            assert!(
                o.applied.iter().any(|(k, n)| k == "crash_merge" && *n > 0),
                "{}: the crash never fired: applied={:?}",
                v.name(),
                o.applied,
            );
            assert!(
                o.checks > 0,
                "{}: oracle never ran across the crash boundary",
                v.name()
            );
            // The crash is part of the deterministic replay contract too.
            let again = run_variant(v, &cfg, &plan);
            assert_eq!(
                o.trace,
                again.trace,
                "{}: a crashing run must still replay byte-identically",
                v.name()
            );
        }
    }
}

/// Determinism is the debugging contract: the same seed must reproduce
/// the same run down to the last byte of the observability trace.
#[test]
fn same_seed_yields_byte_identical_traces() {
    let cfg = ChaosConfig::small(MASTER_SEEDS[0]);
    let plan = FaultPlan::random(cfg.seed, cfg.n_inputs, cfg.horizon());
    for v in ALL_VARIANTS {
        let a = run_variant(v, &cfg, &plan);
        let b = run_variant(v, &cfg, &plan);
        assert!(!a.trace.is_empty(), "{}: trace captured", v.name());
        assert_eq!(
            a.trace,
            b.trace,
            "{}: same seed must replay byte-identically",
            v.name()
        );
        assert_eq!(a.applied, b.applied);
        assert_eq!(a.output_stable, b.output_stable);
    }
}

/// The quarantine differential: with the guard on, a replica whose stable
/// point froze is demoted to `Quarantined` (visible in the trace) while
/// the merged output sails on; with the guard off the run still completes
/// — input 0 is clean — but no demotion is ever recorded.
#[test]
fn quarantine_guard_is_visible_in_the_trace() {
    let base = ChaosConfig::small(MASTER_SEEDS[1]);
    // Freeze mid-run: the replica must have *announced* stables before the
    // freeze — an input that never punctuated is indistinguishable from one
    // that has not started, and is exempt from quarantine.
    let plan = FaultPlan {
        seed: base.seed,
        faults: vec![Fault::FreezeStable {
            input: 1,
            from: VTime(1_200),
        }],
    };
    let guarded = run_variant(Variant::R4, &base, &plan);
    assert!(guarded.ok(), "guarded: {:?}", guarded.violations);
    assert!(
        guarded.trace.contains("\"quarantined\""),
        "guarded run must record the demotion"
    );

    let off = run_variant(
        Variant::R4,
        &ChaosConfig {
            robustness: RobustnessPolicy::off(),
            ..base
        },
        &plan,
    );
    assert!(off.ok(), "unguarded: {:?}", off.violations);
    assert!(
        !off.trace.contains("\"quarantined\""),
        "no policy, no demotion"
    );
}
