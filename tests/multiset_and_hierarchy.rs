//! R4 over genuine multiset TDBs, and hierarchical LMerge composition
//! ("we can also achieve resiliency on a query-fragment level by deploying
//! a hierarchy of LMerge operators", paper Section II-1).

use lmerge::core::{LMergeR3, LMergeR4, LogicalMerge};
use lmerge::gen::{diverge, generate, DivergenceConfig, GenConfig};
use lmerge::temporal::reconstitute::tdb_of;
use lmerge::temporal::{Element, StreamId, Value};
use rand::prelude::*;

fn merge<L: LogicalMerge<Value>>(
    lm: &mut L,
    copies: &[Vec<Element<Value>>],
) -> Vec<Element<Value>> {
    let mut out = Vec::new();
    let longest = copies.iter().map(Vec::len).max().unwrap_or(0);
    for k in 0..longest {
        for (i, c) in copies.iter().enumerate() {
            if let Some(e) = c.get(k) {
                lm.push(StreamId(i as u32), e, &mut out);
            }
        }
    }
    out
}

/// R4 reproduces a multiset TDB (duplicate events) from divergent copies.
#[test]
fn r4_merges_duplicate_laden_streams() {
    let mut cfg = GenConfig::small(400, 61);
    cfg.duplicate_prob = 0.25;
    let r = generate(&cfg);
    let div = DivergenceConfig::default();
    let copies: Vec<_> = (0..3).map(|i| diverge(&r.elements, &div, i)).collect();
    let mut lm: LMergeR4<Value> = LMergeR4::new(3);
    let out = merge(&mut lm, &copies);
    assert_eq!(tdb_of(&out).unwrap(), r.tdb, "multiset content preserved");
    assert!(
        r.tdb.iter().any(|(_, _, c)| c > 1),
        "workload must actually contain duplicates"
    );
}

/// Hierarchical merging: LMerge output is itself a valid LMerge input, so a
/// tree of merges equals one flat merge.
#[test]
fn hierarchy_of_merges_equals_flat_merge() {
    let r = generate(&GenConfig::small(300, 62).with_disorder(0.3));
    let div = DivergenceConfig::default();
    let copies: Vec<_> = (0..4).map(|i| diverge(&r.elements, &div, i)).collect();

    // Flat: all four into one operator.
    let mut flat_lm: LMergeR3<Value> = LMergeR3::new(4);
    let flat = merge(&mut flat_lm, &copies);

    // Tree: (0,1) → left, (2,3) → right, then (left, right) → root.
    let mut left_lm: LMergeR3<Value> = LMergeR3::new(2);
    let left = merge(&mut left_lm, &copies[..2]);
    let mut right_lm: LMergeR3<Value> = LMergeR3::new(2);
    let right = merge(&mut right_lm, &copies[2..]);
    let mut root_lm: LMergeR3<Value> = LMergeR3::new(2);
    let root = merge(&mut root_lm, &[left, right]);

    assert_eq!(tdb_of(&flat).unwrap(), r.tdb);
    assert_eq!(tdb_of(&root).unwrap(), r.tdb, "tree ≡ flat ≡ reference");
}

/// A three-level hierarchy with R4 at the root still converges.
#[test]
fn mixed_level_hierarchy() {
    let r = generate(&GenConfig::small(200, 63).with_disorder(0.2));
    let div = DivergenceConfig::default();
    let copies: Vec<_> = (0..4).map(|i| diverge(&r.elements, &div, i)).collect();
    let mut l1: LMergeR3<Value> = LMergeR3::new(2);
    let a = merge(&mut l1, &copies[..2]);
    let mut l2: LMergeR4<Value> = LMergeR4::new(2);
    let b = merge(&mut l2, &copies[2..]);
    let mut root: LMergeR4<Value> = LMergeR4::new(2);
    let out = merge(&mut root, &[a, b]);
    assert_eq!(tdb_of(&out).unwrap(), r.tdb);
}

/// Randomized: R4 over duplicate-laden divergent copies always equals the
/// reference multiset. (Seeded loop stands in for a property test; the
/// failing `seed`/knob combination prints in the panic message.)
#[test]
fn r4_multiset_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x4d53_0001);
    for _ in 0..16 {
        let seed = rng.random_range(0u64..500);
        let dup = rng.random_range(0.0f64..0.4);
        let disorder = rng.random_range(0.0f64..0.4);
        let mut cfg = GenConfig::small(60, seed).with_disorder(disorder);
        cfg.duplicate_prob = dup;
        let r = generate(&cfg);
        let div = DivergenceConfig {
            seed: seed.wrapping_add(1),
            ..Default::default()
        };
        let copies: Vec<_> = (0..2).map(|i| diverge(&r.elements, &div, i)).collect();
        let mut lm: LMergeR4<Value> = LMergeR4::new(2);
        let out = merge(&mut lm, &copies);
        assert_eq!(
            tdb_of(&out).unwrap(),
            r.tdb,
            "seed={seed} dup={dup:.3} disorder={disorder:.3}"
        );
    }
}

/// Randomized hierarchy: merge-of-merges is always equivalent to the
/// reference (the composability claim of Section II).
#[test]
fn hierarchy_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x4d53_0002);
    for _ in 0..16 {
        let seed = rng.random_range(0u64..500);
        let disorder = rng.random_range(0.0f64..0.4);
        let r = generate(&GenConfig::small(50, seed).with_disorder(disorder));
        let div = DivergenceConfig {
            seed: seed.wrapping_add(9),
            ..Default::default()
        };
        let copies: Vec<_> = (0..4).map(|i| diverge(&r.elements, &div, i)).collect();
        let mut l: LMergeR3<Value> = LMergeR3::new(2);
        let a = merge(&mut l, &copies[..2]);
        let mut rg: LMergeR3<Value> = LMergeR3::new(2);
        let b = merge(&mut rg, &copies[2..]);
        let mut root: LMergeR3<Value> = LMergeR3::new(2);
        let out = merge(&mut root, &[a, b]);
        assert_eq!(
            tdb_of(&out).unwrap(),
            r.tdb,
            "seed={seed} disorder={disorder:.3}"
        );
    }
}
