//! The paper's Section I-3 scenario, end to end: two *identical* join
//! queries, fed the same logical inputs with different arrival
//! interleavings, produce physically different output streams — which
//! LMerge combines into one clean stream.

use lmerge::core::{LMergeR3, LogicalMerge};
use lmerge::engine::ops::join_streams;
use lmerge::gen::{diverge, generate, DivergenceConfig, GenConfig};
use lmerge::temporal::reconstitute::tdb_of;
use lmerge::temporal::{Element, StreamId, Value};

fn side(events: usize, seed: u64) -> Vec<Element<Value>> {
    let mut cfg = GenConfig::small(events, seed).with_disorder(0.2);
    cfg.key_range = 25; // dense keys so the join actually matches
    cfg.event_duration_ms = 300;
    generate(&cfg).elements
}

#[test]
fn replicated_joins_diverge_physically_but_merge_cleanly() {
    let left = side(250, 100);
    let right = side(250, 200);
    let div = DivergenceConfig::default();

    // Each replica sees its own physical presentation of both inputs.
    let outputs: Vec<Vec<Element<Value>>> = (0..2u64)
        .map(|i| join_streams(&diverge(&left, &div, i), &diverge(&right, &div, 10 + i)))
        .collect();

    // The replicas' outputs are physically different…
    assert_ne!(outputs[0], outputs[1], "join outputs should diverge");
    // …but logically identical.
    let want = tdb_of(&outputs[0]).expect("replica 0 well formed");
    assert_eq!(tdb_of(&outputs[1]).unwrap(), want);
    assert!(!want.is_empty(), "the join must produce something");

    // And LMerge reconciles them.
    let mut lm: LMergeR3<Value> = LMergeR3::new(2);
    let mut merged = Vec::new();
    let longest = outputs.iter().map(Vec::len).max().unwrap();
    for k in 0..longest {
        for (i, o) in outputs.iter().enumerate() {
            if let Some(e) = o.get(k) {
                lm.push(StreamId(i as u32), e, &mut merged);
            }
        }
    }
    assert_eq!(tdb_of(&merged).unwrap(), want);
    assert!(lm.stats().satisfies_theorem1());
}

#[test]
fn join_output_feeds_hierarchical_merge() {
    // Three replicas, merged pairwise then at a root — the query-fragment
    // resilience deployment of Section II-1.
    let left = side(150, 300);
    let right = side(150, 400);
    let div = DivergenceConfig::default();
    let outputs: Vec<Vec<Element<Value>>> = (0..3u64)
        .map(|i| join_streams(&diverge(&left, &div, i), &diverge(&right, &div, 20 + i)))
        .collect();
    let want = tdb_of(&outputs[0]).unwrap();

    let merge2 = |a: &[Element<Value>], b: &[Element<Value>]| {
        let mut lm: LMergeR3<Value> = LMergeR3::new(2);
        let mut out = Vec::new();
        for k in 0..a.len().max(b.len()) {
            if let Some(e) = a.get(k) {
                lm.push(StreamId(0), e, &mut out);
            }
            if let Some(e) = b.get(k) {
                lm.push(StreamId(1), e, &mut out);
            }
        }
        out
    };
    let lower = merge2(&outputs[0], &outputs[1]);
    let root = merge2(&lower, &outputs[2]);
    assert_eq!(tdb_of(&root).unwrap(), want);
}
