//! Joining and leaving input streams (paper Section V-B), plus the
//! missing-elements semantics of Section V-C.

use lmerge::core::{LMergeR3, LMergeR4, LogicalMerge};
use lmerge::gen::{diverge, generate, DivergenceConfig, GenConfig};
use lmerge::temporal::reconstitute::tdb_of;
use lmerge::temporal::{Element, StreamId, Time, Value};

fn copies(
    events: usize,
    seed: u64,
    n: usize,
) -> (Vec<Vec<Element<Value>>>, lmerge::temporal::Tdb<Value>) {
    let r = generate(&GenConfig::small(events, seed));
    let div = DivergenceConfig::default();
    (
        (0..n)
            .map(|i| diverge(&r.elements, &div, i as u64))
            .collect(),
        r.tdb,
    )
}

/// Detaching the leading stream mid-run: the survivors carry the merge to
/// the same logical result.
#[test]
fn detach_leader_midway() {
    let (copies, reference) = copies(400, 3, 3);
    let mut lm: LMergeR3<Value> = LMergeR3::new(3);
    let mut out = Vec::new();
    let half = copies[0].len() / 2;
    // Stream 0 leads alone for the first half…
    for e in &copies[0][..half] {
        lm.push(StreamId(0), e, &mut out);
    }
    // …then dies. The other two replay from the beginning (they were
    // attached all along, just silent).
    lm.detach(StreamId(0));
    for k in 0..copies[1].len().max(copies[2].len()) {
        for i in [1usize, 2] {
            if let Some(e) = copies[i].get(k) {
                lm.push(StreamId(i as u32), e, &mut out);
            }
        }
    }
    assert_eq!(tdb_of(&out).unwrap(), reference);
}

/// A joining stream's punctuation is gated until the merge's stable point
/// covers its join time; its data is usable immediately.
#[test]
fn join_gating_protects_progress() {
    let mut lm: LMergeR3<&str> = LMergeR3::new(1);
    let mut out = Vec::new();
    lm.push(StreamId(0), &Element::insert("A", 5, 50), &mut out);
    lm.push(StreamId(0), &Element::stable(10), &mut out);

    // Newcomer guarantees correctness only from t = 40.
    let id = lm.attach(Time(40));
    // Its early stable would skip events it never saw — must be ignored.
    lm.push(id, &Element::stable(60), &mut out);
    assert_eq!(lm.max_stable(), Time(10), "joining stable gated");
    // Its data still counts.
    lm.push(id, &Element::insert("B", 45, 90), &mut out);
    assert!(out
        .iter()
        .any(|e| matches!(e, Element::Insert(ev) if ev.payload == "B")));

    // Established stream advances past the join point → newcomer trusted.
    lm.push(StreamId(0), &Element::stable(40), &mut out);
    lm.push(id, &Element::stable(60), &mut out);
    assert_eq!(lm.max_stable(), Time(60));
}

/// After joining, the newcomer alone can finish the merge ("LMerge can
/// tolerate the simultaneous failure or removal of all the other streams").
#[test]
fn joined_stream_can_finish_alone() {
    let (copies, reference) = copies(300, 9, 2);
    let mut lm: LMergeR3<Value> = LMergeR3::new(1);
    let mut out = Vec::new();
    // Stream 0 runs for a while.
    let third = copies[0].len() / 3;
    for e in &copies[0][..third] {
        lm.push(StreamId(0), e, &mut out);
    }
    // A replacement attaches, replaying from the logical beginning.
    let id = lm.attach(Time::MIN);
    lm.detach(StreamId(0));
    for e in &copies[1] {
        lm.push(id, e, &mut out);
    }
    assert_eq!(tdb_of(&out).unwrap(), reference);
}

/// Section V-C: R0/R1/R2 output elements missing from one stream as long
/// as another stream delivers them before anyone moves past their Vs.
#[test]
fn missing_elements_covered_by_other_streams() {
    let mut lm = lmerge::core::LMergeR0::<&str>::new(2);
    let mut out = Vec::new();
    lm.push(StreamId(0), &Element::insert("a", 1, 5), &mut out);
    // Stream 1 never saw "a"; it delivers "b" next.
    lm.push(StreamId(1), &Element::insert("b", 2, 6), &mut out);
    // Stream 0 catches up on b (duplicate), both proceed.
    lm.push(StreamId(0), &Element::insert("b", 2, 6), &mut out);
    assert_eq!(
        out.iter().filter(|e| e.is_insert()).count(),
        2,
        "both events present exactly once"
    );
}

/// Section V-C for R3/R4: an element missing from the stream that drives
/// the stable past its Vs is dropped from the output — progress is never
/// held hostage by the slowest stream.
#[test]
fn r3_missing_element_semantics() {
    let (mut copies, reference) = copies(300, 21, 2);
    // Make stream 1 drop ~15% of its inserts.
    let r = generate(&GenConfig::small(300, 21));
    let div = DivergenceConfig {
        drop_prob: 0.15,
        revision_prob: 0.0,
        ..Default::default()
    };
    copies[1] = diverge(&r.elements, &div, 1);

    let mut lm: LMergeR3<Value> = LMergeR3::new(2);
    let mut out = Vec::new();
    // Complete stream 0 delivers everything first; lossy stream 1 follows.
    for e in &copies[0] {
        lm.push(StreamId(0), e, &mut out);
    }
    for e in &copies[1] {
        lm.push(StreamId(1), e, &mut out);
    }
    // Stream 0 drove every stable, so nothing is missing.
    assert_eq!(tdb_of(&out).unwrap(), reference);
}

/// Detach also works for R4, purging the stream's multiset state.
#[test]
fn r4_detach_purges_state() {
    let mut lm: LMergeR4<&str> = LMergeR4::new(2);
    let mut out = Vec::new();
    lm.push(StreamId(0), &Element::insert("A", 1, 9), &mut out);
    lm.push(StreamId(1), &Element::insert("A", 1, 9), &mut out);
    lm.detach(StreamId(0));
    lm.push(StreamId(1), &Element::stable(20), &mut out);
    let tdb = tdb_of(&out).unwrap();
    assert_eq!(tdb.count(&"A", Time(1), Time(9)), 1);
    assert_eq!(lm.live_nodes(), 0);
}

/// Elements pushed under a detached id are ignored entirely.
#[test]
fn detached_input_is_silent() {
    let mut lm: LMergeR3<&str> = LMergeR3::new(2);
    let mut out = Vec::new();
    lm.detach(StreamId(1));
    lm.push(StreamId(1), &Element::insert("X", 1, 9), &mut out);
    lm.push(StreamId(1), &Element::stable(100), &mut out);
    assert!(out.is_empty());
    assert_eq!(lm.max_stable(), Time::MIN);
}
