//! Batched-push equivalence: `push_batch` must be observationally identical
//! to pushing the same elements one at a time — same statistics, same
//! per-input counters, same logical output — for every variant, including
//! the R3/R4 overrides with their hoisted gating and O(1) frozen-batch
//! discard.
//!
//! Seeded random loops in the style of `robustness.rs`: each case derives
//! from a fixed master seed and the failing case number prints on panic.
//! Outputs of the indexed variants may differ in hash-iteration order
//! between two operator instances, so the general comparison checks
//! order-insensitive equality plus the reconstituted TDB; the restricted
//! variants (R0–R2) are compared element-for-element.

use lmerge::core::{
    LMergeR0, LMergeR1, LMergeR2, LMergeR3, LMergeR3Naive, LMergeR4, LogicalMerge, MergePolicy,
};
use lmerge::temporal::reconstitute::Reconstituter;
use lmerge::temporal::{Element, StreamId};
use rand::prelude::*;

type E = Element<&'static str>;

/// An arbitrary element over a tiny domain (collisions and stale data are
/// common; the general variants must absorb them identically either way).
fn arb_element(rng: &mut StdRng) -> E {
    let payload = ["a", "b", "c"][rng.random_range(0usize..3)];
    let t = |rng: &mut StdRng| rng.random_range(0i64..24);
    match rng.random_range(0u32..5) {
        0 | 1 => {
            let vs = t(rng);
            Element::insert(payload, vs, vs + t(rng) + 1)
        }
        2 => {
            let vs = t(rng);
            Element::adjust(payload, vs, vs + t(rng), vs + t(rng))
        }
        _ => Element::stable(t(rng)),
    }
}

/// A well-formed ordered insert-only feed (strictly increasing `Vs`), as
/// the R0 contract requires; stables interleave.
fn ordered_feed(rng: &mut StdRng) -> Vec<(u8, E)> {
    let len = rng.random_range(1usize..150);
    let mut vs = 0i64;
    let mut feed = Vec::new();
    for _ in 0..len {
        vs += rng.random_range(1i64..4);
        let s = rng.random_range(0u8..3);
        if rng.random_range(0u32..8) == 0 {
            feed.push((s, Element::stable(vs - 1)));
        } else {
            feed.push((s, Element::insert("p", vs, vs + 10)));
        }
    }
    feed
}

fn garbage_feed(rng: &mut StdRng) -> Vec<(u8, E)> {
    let len = rng.random_range(1usize..150);
    (0..len)
        .map(|_| (rng.random_range(0u8..3), arb_element(rng)))
        .collect()
}

/// Drive per-element.
fn drive_elements(lm: &mut dyn LogicalMerge<&'static str>, feed: &[(u8, E)]) -> Vec<E> {
    let mut out = Vec::new();
    for (s, e) in feed {
        lm.push(StreamId(u32::from(*s)), e, &mut out);
    }
    out
}

/// Drive the same feed via `push_batch`, splitting each input run into
/// random-sized batches (including empty ones). Consecutive elements from
/// the same input form one run; runs are delivered in feed order, so the
/// element sequence seen by the operator is identical.
fn drive_batches(
    lm: &mut dyn LogicalMerge<&'static str>,
    feed: &[(u8, E)],
    rng: &mut StdRng,
) -> Vec<E> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < feed.len() {
        let s = feed[i].0;
        let mut run = Vec::new();
        while i < feed.len() && feed[i].0 == s {
            run.push(feed[i].1.clone());
            i += 1;
        }
        let mut j = 0usize;
        while j < run.len() {
            let take = rng.random_range(0usize..8).min(run.len() - j);
            lm.push_batch(StreamId(u32::from(s)), &run[j..j + take], &mut out);
            j += take.max(1); // empty batches are legal but must not stall
            if take == 0 {
                lm.push(StreamId(u32::from(s)), &run[j - 1], &mut out);
            }
        }
    }
    out
}

/// Order-insensitive output fingerprint.
fn sorted_debug(out: &[E]) -> Vec<String> {
    let mut v: Vec<String> = out.iter().map(|e| format!("{e:?}")).collect();
    v.sort();
    v
}

/// Reconstitute (asserting well-formedness) and return the final TDB as a
/// sorted debug string.
fn tdb_fingerprint(out: &[E], case: usize, path: &str) -> String {
    let mut rec: Reconstituter<&str> = Reconstituter::new();
    for e in out {
        rec.apply(e)
            .unwrap_or_else(|err| panic!("case {case} ({path}): ill-formed output: {err:?}"));
    }
    format!("{:?}", rec.tdb())
}

/// Compare the two drive modes for one operator factory.
fn assert_equivalent(
    mk: &dyn Fn() -> Box<dyn LogicalMerge<&'static str>>,
    feed: &[(u8, E)],
    split_rng: &mut StdRng,
    exact: bool,
    case: usize,
) {
    let mut by_element = mk();
    let out_e = drive_elements(by_element.as_mut(), feed);
    let mut by_batch = mk();
    let out_b = drive_batches(by_batch.as_mut(), feed, split_rng);

    assert_eq!(
        by_element.stats(),
        by_batch.stats(),
        "case {case}: stats diverge"
    );
    assert_eq!(
        by_element.input_counters(),
        by_batch.input_counters(),
        "case {case}: per-input counters diverge"
    );
    assert_eq!(
        by_element.max_stable(),
        by_batch.max_stable(),
        "case {case}: stable point diverges"
    );
    if exact {
        assert_eq!(out_e, out_b, "case {case}: outputs diverge");
    } else {
        assert_eq!(
            sorted_debug(&out_e),
            sorted_debug(&out_b),
            "case {case}: output multisets diverge"
        );
        assert_eq!(
            tdb_fingerprint(&out_e, case, "per-element"),
            tdb_fingerprint(&out_b, case, "batched"),
            "case {case}: reconstituted TDBs diverge"
        );
    }
}

#[test]
fn restricted_variants_match_exactly() {
    let mut rng = StdRng::seed_from_u64(0xBA7C_0001);
    for case in 0..200 {
        let feed = ordered_feed(&mut rng);
        let split_seed = rng.next_u64();
        let mks: [&dyn Fn() -> Box<dyn LogicalMerge<&'static str>>; 3] = [
            &|| Box::new(LMergeR0::new(3)),
            &|| Box::new(LMergeR1::new(3)),
            &|| Box::new(LMergeR2::new(3)),
        ];
        for mk in mks {
            let mut split_rng = StdRng::seed_from_u64(split_seed);
            assert_equivalent(mk, &feed, &mut split_rng, true, case);
        }
    }
}

#[test]
fn indexed_variants_match_under_garbage() {
    let mut rng = StdRng::seed_from_u64(0xBA7C_0002);
    for case in 0..200 {
        let feed = garbage_feed(&mut rng);
        let split_seed = rng.next_u64();
        let mks: [&dyn Fn() -> Box<dyn LogicalMerge<&'static str>>; 4] = [
            &|| Box::new(LMergeR3::new(3)),
            &|| Box::new(LMergeR3::with_policy(3, MergePolicy::eager())),
            &|| Box::new(LMergeR3Naive::new(3)),
            &|| Box::new(LMergeR4::new(3)),
        ];
        for mk in mks {
            let mut split_rng = StdRng::seed_from_u64(split_seed);
            assert_equivalent(mk, &feed, &mut split_rng, false, case);
        }
    }
}

/// The O(1) discard path specifically: a lagging replica replays a wholly
/// frozen prefix in data-only batches. Stats, counters, and output must
/// match the per-element drops exactly.
#[test]
fn frozen_batch_discard_matches_per_element_drops() {
    let stale: Vec<E> = (0..40i64)
        .map(|i| {
            if i % 5 == 4 {
                Element::adjust("a", i, i + 3, i + 4)
            } else {
                Element::insert("a", i, i + 3)
            }
        })
        .collect();
    let mk = || {
        let mut lm: LMergeR3<&'static str> = LMergeR3::new(2);
        let mut out = Vec::new();
        // Input 0 freezes far past the stale range; the index empties.
        lm.push(StreamId(0), &Element::insert("z", 500, 510), &mut out);
        lm.push(StreamId(0), &Element::stable(1_000), &mut out);
        (lm, out.len())
    };

    let (mut by_batch, _) = mk();
    let mut out_b = Vec::new();
    by_batch.push_batch(StreamId(1), &stale, &mut out_b);

    let (mut by_element, _) = mk();
    let mut out_e = Vec::new();
    for e in &stale {
        by_element.push(StreamId(1), e, &mut out_e);
    }

    assert!(out_b.is_empty() && out_e.is_empty(), "everything is stale");
    assert_eq!(by_batch.stats(), by_element.stats());
    assert_eq!(by_batch.stats().dropped, 40);
    assert_eq!(by_batch.input_counters(), by_element.input_counters());
}

/// Detach between batches must not change what the O(1) discard admits:
/// purging a stream can only *shrink* the live index (raise or empty
/// `min_live_vs`), so every batch the fast path drops after a detach is a
/// batch whose elements the per-element path would also have dropped one
/// by one against the purged index.
#[test]
fn frozen_discard_stays_sound_across_detach() {
    let stale_a: Vec<E> = (10..45i64)
        .map(|i| Element::insert("a", i, i + 2))
        .collect();
    let stale_b: Vec<E> = (20..48i64)
        .map(|i| Element::insert("b", i, i + 2))
        .collect();
    let mks: [&dyn Fn() -> Box<dyn LogicalMerge<&'static str>>; 3] = [
        &|| Box::new(LMergeR3::new(2)),
        &|| Box::new(LMergeR3Naive::new(2)),
        &|| Box::new(LMergeR4::new(2)),
    ];
    for mk in mks {
        let drive = |batched: bool| {
            let mut lm = mk();
            let mut out = Vec::new();
            // A live node held only by input 0, above the freeze point.
            lm.push(StreamId(0), &Element::insert("hi", 60, 70), &mut out);
            lm.push(StreamId(0), &Element::stable(50), &mut out);
            lm.push(StreamId(1), &Element::stable(50), &mut out);
            let preamble = out.len();
            let feed =
                |lm: &mut Box<dyn LogicalMerge<&'static str>>, batch: &[E], out: &mut Vec<E>| {
                    if batched {
                        lm.push_batch(StreamId(1), batch, out);
                    } else {
                        for e in batch {
                            lm.push(StreamId(1), e, out);
                        }
                    }
                };
            // Wholly stale batch while the live node still bounds the index.
            feed(&mut lm, &stale_a, &mut out);
            // Detach purges input 0's live entry; the bound only tightens.
            lm.detach(StreamId(0));
            feed(&mut lm, &stale_b, &mut out);
            assert_eq!(out.len(), preamble, "stale batches emit nothing");
            (lm.stats(), lm.input_counters().to_vec(), lm.max_stable())
        };
        assert_eq!(drive(true), drive(false));
    }
}

/// Full equivalence with a detach landing at a random point mid-feed: the
/// batched and per-element drives must agree on stats, counters, output
/// multiset, and reconstituted TDB for the indexed variants.
#[test]
fn detach_mid_feed_matches_per_element() {
    let mut rng = StdRng::seed_from_u64(0xBA7C_0003);
    for case in 0..100 {
        let feed = garbage_feed(&mut rng);
        let cut = rng.random_range(0..=feed.len());
        let split_seed = rng.next_u64();
        let mks: [&dyn Fn() -> Box<dyn LogicalMerge<&'static str>>; 3] = [
            &|| Box::new(LMergeR3::new(3)),
            &|| Box::new(LMergeR3Naive::new(3)),
            &|| Box::new(LMergeR4::new(3)),
        ];
        for mk in mks {
            let mut by_element = mk();
            let mut out_e = drive_elements(by_element.as_mut(), &feed[..cut]);
            by_element.detach(StreamId(2));
            out_e.extend(drive_elements(by_element.as_mut(), &feed[cut..]));

            let mut split_rng = StdRng::seed_from_u64(split_seed);
            let mut by_batch = mk();
            let mut out_b = drive_batches(by_batch.as_mut(), &feed[..cut], &mut split_rng);
            by_batch.detach(StreamId(2));
            out_b.extend(drive_batches(
                by_batch.as_mut(),
                &feed[cut..],
                &mut split_rng,
            ));

            assert_eq!(
                by_element.stats(),
                by_batch.stats(),
                "case {case}: stats diverge after detach"
            );
            assert_eq!(
                by_element.input_counters(),
                by_batch.input_counters(),
                "case {case}: counters diverge after detach"
            );
            assert_eq!(
                sorted_debug(&out_e),
                sorted_debug(&out_b),
                "case {case}: output multisets diverge after detach"
            );
            assert_eq!(
                tdb_fingerprint(&out_e, case, "per-element+detach"),
                tdb_fingerprint(&out_b, case, "batched+detach"),
                "case {case}: TDBs diverge after detach"
            );
        }
    }
}

/// Same discard scenario for R4's multiset index.
#[test]
fn r4_frozen_batch_discard_matches() {
    let stale: Vec<E> = (0..40i64).map(|i| Element::insert("a", i, i + 3)).collect();
    let drive = |batched: bool| {
        let mut lm: LMergeR4<&'static str> = LMergeR4::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &Element::stable(1_000), &mut out);
        out.clear();
        if batched {
            lm.push_batch(StreamId(1), &stale, &mut out);
        } else {
            for e in &stale {
                lm.push(StreamId(1), e, &mut out);
            }
        }
        assert!(out.is_empty());
        (lm.stats(), lm.input_counters().to_vec())
    };
    assert_eq!(drive(true), drive(false));
}
