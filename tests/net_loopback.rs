//! Loopback differential matrix: networked delivery over real TCP must be
//! **byte-identical** to in-process delivery.
//!
//! The paper's premise is that LMerge's inputs are physically independent;
//! the lmerge-net subsystem makes that literal by shipping each replica's
//! feed over its own socket. These tests pin the crate's central
//! invariant: because virtual arrival times travel inside the frames, a
//! networked run consumes exactly the `TimedElement` sequence an
//! in-process run does, so the merged output — and the full obs trace —
//! match byte for byte, for every variant of the spectrum, through a
//! crash-and-rejoin, and through a fault-injecting proxy.

use lmerge::chaos::{
    general_feeds, restricted_feeds, ChaosConfig, ChaosInjector, Chunker, Variant, ALL_VARIANTS,
};
use lmerge::core::{new_for_level, MergePolicy};
use lmerge::durable::{CheckpointStore, DurableCheckpointSink};
use lmerge::engine::{
    run_pipeline, MergeRun, Operator, PipeItem, PipelineConfig, Query, RunConfig, TimedElement,
};
use lmerge::net::client::{replay, replay_until_clean, ReplayConfig};
use lmerge::net::egress::NetHooks;
use lmerge::net::proxy::{ChaosProxy, ProxyPlan};
use lmerge::net::server::{drain_sources, IngestConfig, IngestServer};
use lmerge::obs::{
    default_rules, parse_prometheus, scrape, AlertEngine, EngineMetrics, MeteredSink,
    MetricsRegistry, MetricsServer, ScrapeAlerts, TraceSink, Tracer,
};
use lmerge::properties::RLevel;
use lmerge::temporal::{Element, StreamId, Time, VTime, Value};
use std::sync::{Arc, Mutex};
use std::thread;

/// How each input's replica reaches the server in a networked run.
enum ClientPlan {
    /// Connect directly and stream to completion.
    Direct,
    /// Crash (sever without `Bye`) after this many frames, then rejoin
    /// and resume from the server's acked offset.
    KillThenResume(u64),
    /// Connect through a chaos proxy driving this fault plan.
    Proxied(ProxyPlan),
}

/// The comparable results of one run (either delivery path).
struct RunResult {
    output: Vec<Element<Value>>,
    trace_jsonl: String,
    violations: usize,
    checks: usize,
    tdb_matches: bool,
    /// Proxy faults that actually fired during this run (0 when no
    /// proxies were involved).
    faults_applied: usize,
}

fn feeds_for(
    variant: Variant,
    cfg: &ChaosConfig,
) -> (lmerge::temporal::Tdb<Value>, Vec<Vec<TimedElement<Value>>>) {
    if variant.level() >= RLevel::R3 {
        general_feeds(cfg)
    } else {
        restricted_feeds(cfg)
    }
}

/// Run `variant` with the feeds delivered in-process (the baseline). The
/// hooks stack — `NetHooks` wrapping a clean-plan `ChaosInjector` oracle —
/// is identical to the networked run's, so the executor walks the same
/// code path on both sides of the differential.
fn run_in_process(
    variant: Variant,
    cfg: &ChaosConfig,
    reference: &lmerge::temporal::Tdb<Value>,
    feeds: &[Vec<TimedElement<Value>>],
) -> RunResult {
    let queries: Vec<Query<Value>> = feeds
        .iter()
        .map(|f| {
            let chain: Vec<Box<dyn Operator<Value>>> = vec![Box::new(Chunker::new(cfg.chunk))];
            Query::new(f.clone(), chain)
        })
        .collect();
    let merge = variant.build(cfg.n_inputs, cfg.robustness);
    let mut hooks = NetHooks::wrap(ChaosInjector::oracle(variant.level(), feeds));
    let mut tracer = Tracer::new();
    MergeRun::new(queries, merge, RunConfig::default()).run_with_hooks(&mut tracer, &mut hooks);
    finish(hooks, tracer, reference)
}

/// Run `variant` with each feed streamed over its own TCP connection.
fn run_networked(
    variant: Variant,
    cfg: &ChaosConfig,
    reference: &lmerge::temporal::Tdb<Value>,
    feeds: &[Vec<TimedElement<Value>>],
    plans: Vec<ClientPlan>,
) -> RunResult {
    assert_eq!(plans.len(), feeds.len());
    let mut server = IngestServer::bind("127.0.0.1:0", IngestConfig::new(feeds.len()))
        .expect("bind ingest server");
    let server_addr = server.local_addr();

    let clients: Vec<_> = plans
        .into_iter()
        .enumerate()
        .map(|(i, plan)| {
            let feed = feeds[i].clone();
            thread::spawn(move || match plan {
                ClientPlan::Direct => {
                    let out = replay_until_clean(
                        &server_addr.to_string(),
                        &feed,
                        &ReplayConfig::new(i as u32),
                        10,
                    )
                    .expect("direct replay");
                    assert!(out.clean);
                    0
                }
                ClientPlan::KillThenResume(kill_at) => {
                    let addr = server_addr.to_string();
                    let crashed = replay(
                        &addr,
                        &feed,
                        &ReplayConfig::new(i as u32).with_kill_after(kill_at),
                    )
                    .expect("crash session");
                    assert!(!crashed.clean, "the kill really severed the session");
                    assert_eq!(crashed.sent, kill_at);
                    let resumed =
                        replay_until_clean(&addr, &feed, &ReplayConfig::new(i as u32), 10)
                            .expect("rejoin");
                    assert!(resumed.clean);
                    assert!(
                        resumed.resumed_from >= kill_at.saturating_sub(1),
                        "welcome carried the crash point: resumed_from={} kill_at={kill_at}",
                        resumed.resumed_from
                    );
                    0
                }
                ClientPlan::Proxied(plan) => {
                    let proxy = ChaosProxy::spawn(server_addr, plan).expect("spawn proxy");
                    let out = replay_until_clean(
                        &proxy.local_addr().to_string(),
                        &feed,
                        &ReplayConfig::new(i as u32),
                        50,
                    )
                    .expect("proxied replay");
                    assert!(out.clean);
                    proxy.applied()
                }
            })
        })
        .collect();

    let queries: Vec<Query<Value>> = server
        .sources()
        .into_iter()
        .map(|src| {
            let chain: Vec<Box<dyn Operator<Value>>> = vec![Box::new(Chunker::new(cfg.chunk))];
            Query::from_source(Box::new(src), chain)
        })
        .collect();
    let merge = variant.build(cfg.n_inputs, cfg.robustness);
    let mut hooks = NetHooks::wrap(ChaosInjector::oracle(variant.level(), feeds));
    let mut tracer = Tracer::new();
    MergeRun::new(queries, merge, RunConfig::default()).run_with_hooks(&mut tracer, &mut hooks);

    let faults_applied: usize = clients.into_iter().map(|c| c.join().expect("client")).sum();
    server.shutdown();
    let mut result = finish(hooks, tracer, reference);
    result.faults_applied = faults_applied;
    result
}

fn finish(
    hooks: NetHooks<ChaosInjector>,
    tracer: Tracer,
    reference: &lmerge::temporal::Tdb<Value>,
) -> RunResult {
    let (output, mut oracle) = hooks.into_parts();
    oracle.check_now();
    RunResult {
        output,
        trace_jsonl: tracer.to_jsonl(),
        violations: oracle.violations().len(),
        checks: oracle.checks(),
        tdb_matches: oracle.output().tdb() == reference,
        faults_applied: 0,
    }
}

fn assert_identical(variant: Variant, base: &RunResult, net: &RunResult) {
    assert_eq!(
        base.output,
        net.output,
        "{}: networked output diverged from in-process",
        variant.name()
    );
    assert_eq!(
        base.trace_jsonl,
        net.trace_jsonl,
        "{}: networked trace diverged from in-process",
        variant.name()
    );
    assert_eq!(net.violations, 0, "{}: oracle violations", variant.name());
    assert_eq!(
        base.violations,
        0,
        "{}: baseline violations",
        variant.name()
    );
    assert!(net.checks > 0, "{}: oracle never checked", variant.name());
    assert!(net.tdb_matches, "{}: TDB mismatch", variant.name());
    assert!(
        !base.output.is_empty(),
        "{}: differential is vacuous",
        variant.name()
    );
}

#[test]
fn loopback_matrix_matches_in_process_for_all_variants() {
    let cfg = ChaosConfig::small(11);
    for variant in ALL_VARIANTS {
        let (reference, feeds) = feeds_for(variant, &cfg);
        let base = run_in_process(variant, &cfg, &reference, &feeds);
        let plans = (0..feeds.len()).map(|_| ClientPlan::Direct).collect();
        let net = run_networked(variant, &cfg, &reference, &feeds, plans);
        assert_identical(variant, &base, &net);
    }
}

#[test]
fn kill_and_rejoin_resumes_exactly_once() {
    let cfg = ChaosConfig::small(23);
    let variant = Variant::R3;
    let (reference, feeds) = feeds_for(variant, &cfg);
    assert!(
        feeds[0].len() > 60,
        "feed long enough to kill mid-stream ({} elements)",
        feeds[0].len()
    );
    let base = run_in_process(variant, &cfg, &reference, &feeds);
    let plans = vec![
        ClientPlan::KillThenResume(40),
        ClientPlan::Direct,
        ClientPlan::KillThenResume(15),
    ];
    let net = run_networked(variant, &cfg, &reference, &feeds, plans);
    assert_identical(variant, &base, &net);
}

#[test]
fn proxy_faults_do_not_perturb_the_merge() {
    let cfg = ChaosConfig::small(37);
    let variant = Variant::R4;
    let (reference, feeds) = feeds_for(variant, &cfg);
    let base = run_in_process(variant, &cfg, &reference, &feeds);
    let plans = (0..feeds.len() as u64)
        .map(|i| ClientPlan::Proxied(ProxyPlan::seeded(1000 + i, 6_000, 5)))
        .collect();
    let net = run_networked(variant, &cfg, &reference, &feeds, plans);
    assert!(
        net.faults_applied > 0,
        "the proxies really disturbed the transport ({} faults)",
        net.faults_applied
    );
    assert_identical(variant, &base, &net);
}

/// The telemetry-plane acceptance path: run the loopback merge with the
/// live registry attached end to end — ingest server, metered run sink,
/// sharded pipeline export, SLO alert engine — and scrape the endpoint
/// over real TCP. The exposition must be valid Prometheus text carrying
/// per-session, per-shard, and alert series.
#[test]
fn live_scrape_exposes_session_shard_and_alert_series() {
    let cfg = ChaosConfig::small(71);
    let variant = Variant::R3;
    let (_reference, feeds) = feeds_for(variant, &cfg);
    assert!(feeds[0].len() > 20, "feed long enough to kill mid-stream");

    let registry = MetricsRegistry::new();
    let mut server =
        IngestServer::bind_with_metrics("127.0.0.1:0", IngestConfig::new(feeds.len()), &registry)
            .expect("bind ingest server");
    let server_addr = server.local_addr().to_string();

    let alert_sink: Arc<Mutex<dyn TraceSink + Send>> = Arc::new(Mutex::new(Tracer::new()));
    let metrics_server = MetricsServer::bind_with_alerts(
        "127.0.0.1:0",
        registry.clone(),
        ScrapeAlerts {
            engine: AlertEngine::new(&registry, default_rules()),
            sink: alert_sink,
        },
    )
    .expect("bind metrics server");

    // Input 0 crashes after 10 frames and rejoins, so the resume series
    // is provably non-zero; the rest stream straight through.
    let clients: Vec<_> = feeds
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, feed)| {
            let addr = server_addr.clone();
            thread::spawn(move || {
                if i == 0 {
                    let crashed = replay(&addr, &feed, &ReplayConfig::new(0).with_kill_after(10))
                        .expect("crash session");
                    assert!(!crashed.clean);
                }
                let out = replay_until_clean(&addr, &feed, &ReplayConfig::new(i as u32), 10)
                    .expect("replay");
                assert!(out.clean);
            })
        })
        .collect();

    let queries: Vec<Query<Value>> = server
        .sources()
        .into_iter()
        .map(|src| Query::from_source(Box::new(src), Vec::new()))
        .collect();
    let merge = variant.build(cfg.n_inputs, cfg.robustness);
    let mut sink = MeteredSink::new(Tracer::new(), EngineMetrics::new(&registry));
    MergeRun::new(queries, merge, RunConfig::default()).run_with(&mut sink);
    sink.metrics()
        .set_ring_dropped(sink.inner().ring().dropped());
    for c in clients {
        c.join().expect("client");
    }
    server.shutdown();

    // Per-shard series come from the pipelined executor's export.
    let pipe_feed: Vec<PipeItem<Value>> = feeds[0]
        .iter()
        .map(|te| PipeItem::Deliver(StreamId(0), te.element.clone()))
        .collect();
    let pipe = run_pipeline(
        || variant.build(cfg.n_inputs, cfg.robustness),
        &pipe_feed,
        PipelineConfig {
            shards: 2,
            queue_capacity: 64,
            sample_every: 1024,
        },
        &mut lmerge::obs::NullSink,
    );
    pipe.export_metrics(&registry);

    // A live scrape over TCP, parsed back from the wire format.
    let body = scrape(metrics_server.local_addr()).expect("scrape");
    let samples = parse_prometheus(&body);
    let data_lines = body
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .count();
    assert_eq!(
        samples.len(),
        data_lines,
        "every exposition line parses as a sample"
    );

    // Per-session series: every input streamed frames and closed cleanly.
    for i in 0..feeds.len() {
        let id = i.to_string();
        let frames = samples
            .iter()
            .find(|s| s.name == "lmerge_net_frames_total" && s.label("input") == Some(&id))
            .unwrap_or_else(|| panic!("no frame series for input {i}"));
        assert!(frames.value > 0.0, "input {i} streamed no frames");
    }
    let resumes: f64 = samples
        .iter()
        .filter(|s| s.name == "lmerge_net_resumes_total")
        .map(|s| s.value)
        .sum();
    assert!(resumes >= 1.0, "the kill+rejoin registered as a resume");

    // Per-shard series from the pipeline export.
    let shard_series = samples
        .iter()
        .filter(|s| s.name == "lmerge_shard_queue_max_depth")
        .count();
    assert_eq!(shard_series, 2, "one queue-depth series per shard");

    // Alert series: the engine evaluated during the scrape, so the
    // default rules are all present (firing or not).
    let alert_rules = samples
        .iter()
        .filter(|s| s.name == "lmerge_alert_active")
        .count();
    assert_eq!(alert_rules, default_rules().len(), "every rule exposed");

    // Engine series folded by the metered sink.
    assert!(
        registry
            .sum_value("lmerge_elements_emitted_total")
            .unwrap_or(0.0)
            > 0.0,
        "metered run folded output counts"
    );
}

/// The executor offers its checkpoint cut *after* staging each query's
/// next batch, so at every cut a live input has one frame popped from its
/// ingest ring that the merge image does not contain. The persisted
/// transport cursor must discount that staged frame — otherwise the
/// restore handshake skips a frame the merge never saw, and a restarted
/// server silently drops up to one element per input per crash.
#[test]
fn networked_restore_replays_frames_staged_at_the_kill() {
    // One input; a finite stable every 8 inserts, so each stable advance
    // offers a checkpoint cut mid-feed.
    let feed: Vec<TimedElement<Value>> = {
        let mut v = Vec::new();
        for i in 0..60u64 {
            v.push(TimedElement::new(
                VTime(i * 10),
                Element::insert(Value::bare(i as i32), i as i64, i as i64 + 5),
            ));
            if (i + 1) % 8 == 0 {
                v.push(TimedElement::new(
                    VTime(i * 10 + 5),
                    Element::stable(Time(i as i64)),
                ));
            }
        }
        v.push(TimedElement::new(
            VTime(600),
            Element::stable(Time::INFINITY),
        ));
        v
    };

    // Reference: the same feed merged by a process that never dies.
    let reference = {
        let queries = vec![Query::new(feed.clone(), Vec::new())];
        let merge = new_for_level(RLevel::R3, 1, MergePolicy::default());
        let mut hooks = NetHooks::collector();
        MergeRun::new(queries, merge, RunConfig::default())
            .run_with_hooks(&mut lmerge::obs::NullSink, &mut hooks);
        hooks.into_parts().0
    };

    let dir = std::env::temp_dir().join(format!("lmerge-netck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Incarnation 1: checkpoint at every cut through the live transport
    // cursors, and "die" right after checkpoint 2 lands on disk.
    let mut server = IngestServer::bind("127.0.0.1:0", IngestConfig::new(1)).expect("bind");
    let addr = server.local_addr().to_string();
    let feed1 = feed.clone();
    let client = thread::spawn(move || {
        // The merge halts mid-run and the server is then dropped; whether
        // this session still closed cleanly is irrelevant.
        let _ = replay(&addr, &feed1, &ReplayConfig::new(0));
    });
    let queries: Vec<Query<Value>> = server
        .sources()
        .into_iter()
        .map(|src| Query::from_source(Box::new(src), Vec::new()))
        .collect();
    let cursors = server.cursor_handle();
    let mut ck = DurableCheckpointSink::new(CheckpointStore::create(&dir).expect("store"))
        .with_cursor_source(Box::new(move || cursors.cursors()))
        .halt_after(2);
    let mut hooks = NetHooks::collector();
    MergeRun::new(
        queries,
        new_for_level(RLevel::R3, 1, MergePolicy::default()),
        RunConfig::default(),
    )
    .run_checkpointed(&mut lmerge::obs::NullSink, &mut hooks, &mut ck);
    assert!(ck.error.is_none(), "{:?}", ck.error);
    let out1 = hooks.into_parts().0;
    server.shutdown();
    client.join().unwrap();
    drop(server);

    // Incarnation 2: restore the newest checkpoint, pre-seed the resume
    // handshake from its cursors, and finish with a fresh executor over
    // the restored merge — the lmerge-ingest --restore-from path.
    let (seq, image) = CheckpointStore::<Value>::load_latest(&dir).expect("restore");
    assert_eq!(seq, 2, "died right after checkpoint 2");
    assert!(
        image.exec.staged[0].is_some(),
        "the kill landed between staging and delivery"
    );
    let mut server = IngestServer::bind("127.0.0.1:0", IngestConfig::new(1)).expect("rebind");
    server.restore_cursors(&image.cursors);
    let addr = server.local_addr().to_string();
    let feed2 = feed.clone();
    let client = thread::spawn(move || {
        replay_until_clean(&addr, &feed2, &ReplayConfig::new(0), 10).expect("rejoin")
    });
    let queries: Vec<Query<Value>> = server
        .sources()
        .into_iter()
        .map(|src| Query::from_source(Box::new(src), Vec::new()))
        .collect();
    let mut merge = new_for_level(RLevel::R3, 1, MergePolicy::default());
    assert!(merge.restore_state(image.merge), "image matches the level");
    let mut hooks = NetHooks::collector();
    MergeRun::new(queries, merge, RunConfig::default())
        .run_with_hooks(&mut lmerge::obs::NullSink, &mut hooks);
    server.await_sessions_closed(std::time::Duration::from_secs(5));
    let outcome = client.join().unwrap();
    assert!(outcome.clean);
    let out2 = hooks.into_parts().0;
    server.shutdown();

    // Exactly-once across the crash: what incarnation 1 emitted, then
    // what incarnation 2 emitted, must equal the never-killed run's
    // output — nothing lost (the staged frame!) and nothing duplicated.
    let mut stitched = out1;
    stitched.extend(out2);
    assert_eq!(stitched, reference, "restart lost or duplicated output");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drained_net_feeds_drive_the_sharded_pipeline() {
    let cfg = ChaosConfig::small(53);
    let variant = Variant::R3;
    let (_reference, feeds) = feeds_for(variant, &cfg);

    // Stream the feeds over TCP, collect them back with drain_sources.
    let mut server =
        IngestServer::bind("127.0.0.1:0", IngestConfig::new(feeds.len())).expect("bind");
    let addr = server.local_addr().to_string();
    let clients: Vec<_> = feeds
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, feed)| {
            let addr = addr.clone();
            thread::spawn(move || {
                replay_until_clean(&addr, &feed, &ReplayConfig::new(i as u32), 5).expect("replay")
            })
        })
        .collect();
    let drained = drain_sources(server.sources());
    for c in clients {
        c.join().unwrap();
    }
    server.shutdown();
    assert_eq!(drained, feeds, "network drain reproduces the feeds exactly");

    // Interleave by virtual arrival (ties by input, the executor's own
    // ordering) and push the result through the sharded pipeline.
    let mut interleaved: Vec<(u64, u32, Element<Value>)> = drained
        .into_iter()
        .enumerate()
        .flat_map(|(i, feed)| {
            feed.into_iter()
                .map(move |te| (te.at.0, i as u32, te.element))
        })
        .collect();
    interleaved.sort_by_key(|&(at, input, _)| (at, input));
    let pipe_feed: Vec<PipeItem<Value>> = interleaved
        .into_iter()
        .map(|(_, input, e)| PipeItem::Deliver(StreamId(input), e))
        .collect();
    let pipe = run_pipeline(
        || variant.build(cfg.n_inputs, cfg.robustness),
        &pipe_feed,
        PipelineConfig {
            shards: 2,
            queue_capacity: 64,
            sample_every: 1024,
        },
        &mut lmerge::obs::NullSink,
    );
    assert!(
        !pipe.output.is_empty(),
        "networked feeds drive the sharded pipeline end to end"
    );
}
