//! **lmerge-obs** — virtual-time tracing and diagnostics for the LMerge
//! engine.
//!
//! The paper's evaluation (Section VI-B) and its key diagnostic plots —
//! *which physically divergent input is holding the merge back, and when
//! did feedback fast-forward it* (Section V-D) — require seeing inside a
//! run. This crate provides that visibility without taxing runs that don't
//! want it:
//!
//! * [`event::TraceEvent`] — a typed vocabulary of run observations, each
//!   stamped with virtual time so traces replay deterministically;
//! * [`ring::EventRing`] — a bounded drop-oldest store, O(capacity) memory
//!   on arbitrarily long runs;
//! * [`sink::TraceSink`] — the recording interface. The executor is generic
//!   over it; the default [`sink::NullSink`] is statically disabled and the
//!   whole instrumentation path compiles away;
//! * [`sink::Tracer`] — ring + [`lag::LagGauges`]: per-input stable points
//!   tracked against the output stable point, straggler identification,
//!   feedback fast-forward accounting;
//! * [`hist::LogHistogram`] — log-bucketed latency histogram with
//!   nearest-rank quantiles, O(#buckets) memory;
//! * [`export`] — JSONL event dumps, Chrome trace-event (`about://tracing`
//!   / Perfetto) timelines, and the human-readable summary table.
//!
//! ```
//! use lmerge_obs::{StableScope, TraceEvent, TraceSink, Tracer};
//! use lmerge_temporal::{Time, VTime};
//!
//! let mut tracer = Tracer::new();
//! tracer.record(TraceEvent::StablePointAdvanced {
//!     at: VTime(9),
//!     scope: StableScope::Input(0),
//!     stable: Time(100),
//! });
//! tracer.record(TraceEvent::StablePointAdvanced {
//!     at: VTime(10),
//!     scope: StableScope::Output,
//!     stable: Time(100),
//! });
//! tracer.record(TraceEvent::StablePointAdvanced {
//!     at: VTime(12),
//!     scope: StableScope::Input(1),
//!     stable: Time(40),
//! });
//! assert_eq!(tracer.lag().straggler(), Some((1, 60)));
//! println!("{}", tracer.summary());
//! ```

//!
//! PR 6 adds the *wall-clock* complement to the virtual-time trace plane:
//!
//! * [`metrics`] — an atomic registry of counters/gauges/histograms with
//!   Prometheus text exposition, plus [`metrics::MeteredSink`] to fold the
//!   trace event stream into live series;
//! * [`alert`] — a declarative SLO rule engine (watermark lag, straggler
//!   gap, resume rate, ring drops) firing typed alert events;
//! * [`serve`] — a side-listener scrape endpoint ([`serve::MetricsServer`])
//!   and the matching [`serve::scrape`] client.

pub mod alert;
pub mod event;
pub mod export;
pub mod hist;
pub mod json;
pub mod lag;
pub mod metrics;
pub mod net;
pub mod ring;
pub mod serve;
pub mod shard;
pub mod sink;

pub use alert::{default_rules, AlertEngine, AlertRule};
pub use event::{AlertKind, ElementKind, FaultKind, HealthTag, Severity, StableScope, TraceEvent};
pub use hist::LogHistogram;
pub use lag::{InputLag, LagGauges};
pub use metrics::{
    parse_prometheus, AtomicHistogram, Counter, EngineMetrics, Gauge, MeteredSink, MetricsRegistry,
    ScrapedSample,
};
pub use net::{NetGauges, NetLag};
pub use ring::EventRing;
pub use serve::{scrape, MetricsServer, ScrapeAlerts};
pub use shard::{ShardGauges, ShardLag};
pub use sink::{NullSink, TraceConfig, TraceSink, Tracer};
