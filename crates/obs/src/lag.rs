//! Per-input lag gauges: who is holding the merge back, and when did
//! feedback fast-forward them.
//!
//! The paper's Figures 5, 8–10 all hinge on the same diagnostic: each
//! physically divergent replica announces its own `stable` punctuation, the
//! merged output advances at the pace of whichever replica is *leading*,
//! and a lagging replica either catches up on its own or is fast-forwarded
//! by the Section V-D feedback signal. The gauges reduce a run's event
//! trace to exactly that story, per input.

use crate::event::{StableScope, TraceEvent};
use lmerge_temporal::{Time, VTime};

/// Application-time distance from `behind` up to `ahead` (0 when not behind).
///
/// `Time::MIN` (never announced) reads as infinitely behind, saturating at
/// `i64::MAX`; an input at or past the reference reads as 0.
fn lag_between(ahead: Time, behind: Time) -> i64 {
    if behind >= ahead {
        0
    } else {
        ahead.0.saturating_sub(behind.0)
    }
}

/// Running diagnostics for one input replica.
#[derive(Clone, Copy, Debug)]
pub struct InputLag {
    /// The input's latest announced stable point (`Time::MIN` if none yet).
    pub stable: Time,
    /// Virtual time of the latest stable advance.
    pub stable_at: VTime,
    /// Data elements delivered by this input.
    pub delivered: u64,
    /// Batches delivered by this input.
    pub batches: u64,
    /// Largest `output_stable − input_stable` gap observed (app-time units).
    pub max_behind: i64,
    /// Feedback propagations that jumped past this input's stable point.
    pub fast_forwards: u64,
    /// Virtual time of the latest such fast-forward.
    pub last_fast_forward: Option<VTime>,
    /// First virtual time the input caught back up after being behind.
    pub caught_up_at: Option<VTime>,
}

impl Default for InputLag {
    fn default() -> InputLag {
        InputLag {
            stable: Time::MIN,
            stable_at: VTime::ZERO,
            delivered: 0,
            batches: 0,
            max_behind: 0,
            fast_forwards: 0,
            last_fast_forward: None,
            caught_up_at: None,
        }
    }
}

/// Gauges tracking every input's stable point against the output's.
#[derive(Clone, Debug, Default)]
pub struct LagGauges {
    inputs: Vec<InputLag>,
    output_stable: Time,
    output_stable_at: VTime,
    has_output: bool,
}

impl LagGauges {
    /// Gauges for `n` inputs (more are added on demand as events mention
    /// higher input ids).
    pub fn new(n: usize) -> LagGauges {
        LagGauges {
            inputs: vec![InputLag::default(); n],
            ..Default::default()
        }
    }

    fn input_mut(&mut self, i: u32) -> &mut InputLag {
        let i = i as usize;
        if i >= self.inputs.len() {
            self.inputs.resize(i + 1, InputLag::default());
        }
        &mut self.inputs[i]
    }

    /// Update the gauges from one trace event. Unrelated events are ignored,
    /// so a [`LagGauges`] can consume a full trace stream unfiltered.
    pub fn on_event(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::BatchDelivered { input, data, .. } => {
                let il = self.input_mut(input);
                il.delivered += data as u64;
                il.batches += 1;
            }
            TraceEvent::StablePointAdvanced { at, scope, stable } => match scope {
                StableScope::Output => {
                    self.output_stable = self.output_stable.max(stable);
                    self.output_stable_at = at;
                    self.has_output = true;
                    let out = self.output_stable;
                    for il in &mut self.inputs {
                        // An input that has never announced reads as
                        // infinitely behind live (`behind()`), but that
                        // startup state is not a meaningful historical max.
                        if il.stable != Time::MIN {
                            il.max_behind = il.max_behind.max(lag_between(out, il.stable));
                        }
                    }
                }
                // Shard scopes are folded by `shard::ShardGauges`.
                StableScope::Shard(_) => {}
                StableScope::Input(i) => {
                    let out = self.output_stable;
                    let was_behind = {
                        let il = self.input_mut(i);
                        lag_between(out, il.stable) > 0
                    };
                    let il = self.input_mut(i);
                    il.stable = il.stable.max(stable);
                    il.stable_at = at;
                    il.max_behind = il.max_behind.max(lag_between(out, il.stable));
                    if was_behind && lag_between(out, il.stable) == 0 && il.caught_up_at.is_none() {
                        il.caught_up_at = Some(at);
                    }
                }
            },
            TraceEvent::FeedbackPropagated { at, point } => {
                for il in &mut self.inputs {
                    if il.stable < point {
                        il.fast_forwards += 1;
                        il.last_fast_forward = Some(at);
                    }
                }
            }
            _ => {}
        }
    }

    /// Per-input gauges, indexed by input id.
    pub fn inputs(&self) -> &[InputLag] {
        &self.inputs
    }

    /// The output stable point the gauges have seen.
    pub fn output_stable(&self) -> Time {
        self.output_stable
    }

    /// Virtual time of the latest output stable advance.
    pub fn output_stable_at(&self) -> VTime {
        self.output_stable_at
    }

    /// How far input `i` currently trails the output stable point
    /// (0 when level or ahead; `None` for an unknown input).
    pub fn behind(&self, i: usize) -> Option<i64> {
        let il = self.inputs.get(i)?;
        if !self.has_output {
            return Some(0);
        }
        Some(lag_between(self.output_stable, il.stable))
    }

    /// The input currently farthest behind the output stable point, with its
    /// lag — the replica holding the merge back. `None` when no input lags.
    pub fn straggler(&self) -> Option<(usize, i64)> {
        (0..self.inputs.len())
            .filter_map(|i| self.behind(i).map(|b| (i, b)))
            .filter(|&(_, b)| b > 0)
            .max_by_key(|&(i, b)| (b, std::cmp::Reverse(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StableScope::{Input, Output};

    fn adv(g: &mut LagGauges, at: u64, scope: StableScope, stable: i64) {
        g.on_event(&TraceEvent::StablePointAdvanced {
            at: VTime(at),
            scope,
            stable: Time(stable),
        });
    }

    #[test]
    fn tracks_behind_and_straggler() {
        let mut g = LagGauges::new(2);
        adv(&mut g, 10, Input(0), 100);
        adv(&mut g, 10, Output, 100);
        adv(&mut g, 20, Input(1), 40);
        assert_eq!(g.behind(0), Some(0));
        assert_eq!(g.behind(1), Some(60));
        assert_eq!(g.straggler(), Some((1, 60)));
        assert_eq!(g.inputs()[1].max_behind, 60);
    }

    #[test]
    fn never_announced_reads_as_infinitely_behind() {
        let mut g = LagGauges::new(2);
        adv(&mut g, 5, Output, 50);
        assert_eq!(g.behind(0), Some(i64::MAX), "saturates");
        assert_eq!(g.behind(2), None, "unknown input");
    }

    #[test]
    fn no_output_progress_means_no_lag() {
        let mut g = LagGauges::new(1);
        adv(&mut g, 5, Input(0), 10);
        assert_eq!(g.behind(0), Some(0));
        assert_eq!(g.straggler(), None);
    }

    #[test]
    fn catch_up_moment_is_recorded() {
        let mut g = LagGauges::new(2);
        adv(&mut g, 10, Input(0), 100);
        adv(&mut g, 10, Output, 100);
        adv(&mut g, 20, Input(1), 40); // behind by 60
        adv(&mut g, 30, Input(1), 100); // caught up
        assert_eq!(g.inputs()[1].caught_up_at, Some(VTime(30)));
        assert_eq!(g.behind(1), Some(0));
        assert_eq!(g.inputs()[1].max_behind, 60, "history preserved");
    }

    #[test]
    fn feedback_fast_forward_counts_laggards_only() {
        let mut g = LagGauges::new(2);
        adv(&mut g, 10, Input(0), 100);
        adv(&mut g, 12, Input(1), 30);
        g.on_event(&TraceEvent::FeedbackPropagated {
            at: VTime(15),
            point: Time(80),
        });
        assert_eq!(g.inputs()[0].fast_forwards, 0, "already past the point");
        assert_eq!(g.inputs()[1].fast_forwards, 1);
        assert_eq!(g.inputs()[1].last_fast_forward, Some(VTime(15)));
    }

    #[test]
    fn delivered_counts_accumulate() {
        let mut g = LagGauges::new(1);
        for k in 0..3 {
            g.on_event(&TraceEvent::BatchDelivered {
                at: VTime(k),
                input: 0,
                elements: 5,
                data: 4,
            });
        }
        assert_eq!(g.inputs()[0].delivered, 12);
        assert_eq!(g.inputs()[0].batches, 3);
    }

    #[test]
    fn inputs_grow_on_demand() {
        let mut g = LagGauges::new(1);
        adv(&mut g, 1, Input(3), 5);
        assert_eq!(g.inputs().len(), 4);
        assert_eq!(g.inputs()[3].stable, Time(5));
    }
}
