//! A minimal JSON value: build, render, and parse.
//!
//! The exporters need to *emit* strictly valid JSON and the tests need to
//! *parse it back* to prove it. The build environment has no registry
//! access, so rather than gating the exporters behind an unavailable
//! `serde_json`, this module implements the small slice of JSON the trace
//! formats use: objects with ordered keys, arrays, strings, integers,
//! floats, booleans, and null.
//!
//! Keys keep insertion order so rendered traces are stable and diffable.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON integers this crate emits fit in `i128` (superset of
    /// `i64` and `u64`).
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

macro_rules! from_int {
    ($($t:ty),* $(,)?) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Json {
                Json::Int(v as i128)
            }
        }
    )*};
}

from_int!(i32, i64, u32, u64, usize);

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Insert (or overwrite) `key` in an object. Panics on non-objects —
    /// exporter code only ever calls this on objects it just built.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Object(pairs) => {
                let value = value.into();
                if let Some(p) = pairs.iter_mut().find(|(k, _)| k == key) {
                    p.1 = value;
                } else {
                    pairs.push((key.to_string(), value));
                }
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Builder-style [`set`](Json::set).
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric lookup: floats as-is, integers widened.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Json::Str(_))
    }

    /// Compact rendering (no whitespace). Same output as `Display`.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// Pretty rendering with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        s
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::Object(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                    out.push_str(&format!("{}: ", Json::Str(k.clone())));
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::Float(v) => {
                if v.is_finite() {
                    // Always keep a decimal point so the value parses back
                    // as a float.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse a JSON document. Strict enough to catch malformed exporter
/// output: rejects trailing garbage, trailing commas, and unknown tokens.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid token at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Json::object()
            .with("name", "batch \"zero\"")
            .with("count", 3u64)
            .with("lag", -7i64)
            .with("ok", true)
            .with("ratio", 0.5)
            .with("items", Json::Array(vec![Json::Int(1), Json::Null]));
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn roundtrip_pretty() {
        let v = Json::object().with(
            "traceEvents",
            Json::Array(vec![Json::object().with("ph", "i").with("ts", 12u64)]),
        );
        let text = v.render_pretty();
        assert!(text.contains('\n'), "pretty output is multi-line");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("a\nb\t\"c\"\u{1}".to_string());
        let text = v.render();
        assert_eq!(text, "\"a\\nb\\t\\\"c\\\"\\u0001\"");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn set_overwrites_existing_key() {
        let mut v = Json::object().with("k", 1u32);
        v.set("k", 2u32);
        assert_eq!(v.get("k").and_then(Json::as_int), Some(2));
    }

    #[test]
    fn parses_unicode_escape_and_floats() {
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Json::Str("é".to_string()));
        assert_eq!(parse("1.5e3").unwrap(), Json::Float(1500.0));
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
    }
}
