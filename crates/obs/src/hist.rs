//! A log-bucketed histogram with nearest-rank quantiles.
//!
//! Replaces the unbounded `Vec<u64>` latency store: memory is O(#buckets)
//! regardless of sample count, so week-long virtual runs cost the same as
//! ten-second ones. Buckets are 16 linear sub-buckets per power of two
//! (HDR-histogram style), which keeps relative error under 1/16 ≈ 6.25%
//! everywhere and records values below 32 exactly.

/// log2 of the sub-bucket count per octave.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total buckets needed to cover the full `u64` range.
pub(crate) const NUM_BUCKETS: usize = (2 * SUB + (63 - SUB_BITS as u64) * SUB) as usize;

/// Bucket index of a value: identity below `2·SUB`, log/linear above.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < 2 * SUB {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros(); // ≥ SUB_BITS + 1
        let sub = (v >> (octave - SUB_BITS)) - SUB; // in [0, SUB)
        ((octave - SUB_BITS) as u64 * SUB + SUB + sub) as usize
    }
}

/// Smallest value mapping to bucket `i`.
#[inline]
pub(crate) fn bucket_lower_bound(i: usize) -> u64 {
    if i < 2 * SUB as usize {
        i as u64
    } else {
        let block = (i as u64 - SUB) / SUB;
        let sub = (i as u64 - SUB) % SUB;
        (SUB + sub) << block
    }
}

/// A histogram of `u64` samples with logarithmic bucketing.
///
/// [`quantile`](LogHistogram::quantile) uses the nearest-rank definition —
/// the value whose rank is `⌈q·n⌉` — so small samples never underestimate
/// high quantiles, and the reported value is clamped to the observed
/// `[min, max]` range.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// Allocated lazily on first record; always `NUM_BUCKETS` long after.
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram (no allocation until the first sample).
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; NUM_BUCKETS];
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.counts[bucket_index(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether any sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.max
        }
    }

    /// Exact arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank `q`-quantile (`q` in `[0, 1]`), 0 when empty.
    ///
    /// The returned value is the lower bound of the bucket holding the
    /// rank-`⌈q·n⌉` sample, clamped to the observed `[min, max]`; values
    /// below 32 are reported exactly.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme ranks are known exactly, not just to bucket precision.
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_lower_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; NUM_BUCKETS];
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower_bound(i), c))
    }

    /// Heap footprint of the histogram — O(#buckets), not O(#samples).
    pub fn memory_bytes(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<u64>()
    }

    /// Rebuild a histogram from raw parts — the bridge from the wall-clock
    /// [`AtomicHistogram`](crate::metrics::AtomicHistogram), which shares
    /// this bucketing but accumulates lock-free. `counts` shorter than the
    /// full bucket table is padded with zeros.
    pub(crate) fn from_parts(counts: Vec<u64>, count: u64, sum: u128, min: u64, max: u64) -> Self {
        if count == 0 {
            return LogHistogram::new();
        }
        let mut counts = counts;
        counts.resize(NUM_BUCKETS, 0);
        LogHistogram {
            counts,
            count,
            sum,
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_roundtrips() {
        for v in [0u64, 1, 15, 16, 31, 32, 33, 63, 64, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} for {v}");
            let lo = bucket_lower_bound(i);
            assert!(lo <= v, "lower bound {lo} exceeds {v}");
            if i + 1 < NUM_BUCKETS {
                assert!(bucket_lower_bound(i + 1) > v, "value {v} beyond bucket {i}");
            }
        }
        // Small values are exact.
        for v in 0..32u64 {
            assert_eq!(bucket_lower_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn nearest_rank_quantiles_exact_for_small_values() {
        let mut h = LogHistogram::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(0.5), 5, "rank ⌈0.5·10⌉ = 5");
        assert_eq!(h.quantile(0.9), 9);
        // The old `.round()` selection returned 9 here; nearest-rank says
        // rank ⌈0.91·10⌉ = 10 → the maximum.
        assert_eq!(h.quantile(0.91), 10);
        assert_eq!(h.quantile(1.0), 10);
    }

    #[test]
    fn quantile_clamps_to_observed_range() {
        let mut h = LogHistogram::new();
        h.record(1000); // bucket [992, 1024)
        assert_eq!(h.quantile(0.5), 1000, "single sample reports itself");
        assert_eq!(h.quantile(1.0), 1000);
        h.record(10);
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = LogHistogram::new();
        for v in (0..10_000u64).map(|i| i * 37 + 5) {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let approx = h.quantile(q) as f64;
            let exact = (q * 10_000f64).ceil().clamp(1.0, 10_000.0) as u64;
            let exact = ((exact - 1) * 37 + 5) as f64;
            let err = (approx - exact).abs() / exact;
            assert!(err < 1.0 / 16.0, "q={q}: {approx} vs {exact} (err {err})");
        }
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.mean(), 220.0);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
        assert_eq!(h.memory_bytes(), 0, "no allocation before first sample");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record_n(5, 3);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.quantile(1.0), 1000);
        assert_eq!(a.quantile(0.5), 5);
    }

    #[test]
    fn memory_is_bounded_by_buckets() {
        let mut h = LogHistogram::new();
        for i in 0..1_000_000u64 {
            h.record(i % 100_000);
        }
        assert_eq!(h.count(), 1_000_000);
        assert!(h.memory_bytes() <= NUM_BUCKETS * 8 + 64);
    }

    // Pinned semantics: an empty histogram answers every statistical query
    // with zero — callers never need an `is_empty` guard before reporting.
    #[test]
    fn empty_histogram_quantiles_are_zero_for_all_q() {
        let h = LogHistogram::new();
        for q in [-1.0, 0.0, 0.25, 0.5, 0.999, 1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile(q), 0, "q={q} on empty must be 0");
        }
    }

    // Pinned semantics: out-of-range q clamps to the observed extremes
    // rather than panicking or extrapolating — q ≤ 0 reports min, q ≥ 1
    // reports max.
    #[test]
    fn out_of_range_q_clamps_to_min_max() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.quantile(-0.5), 10);
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.quantile(1.0), 30);
        assert_eq!(h.quantile(7.0), 30);
    }

    // Pinned semantics: the top bucket saturates gracefully. `u64::MAX`
    // lands in the last bucket, quantiles clamp to the observed max, and
    // the u128 running sum cannot overflow even at full saturation.
    #[test]
    fn saturated_top_bucket_reports_exact_max() {
        let mut h = LogHistogram::new();
        h.record_n(u64::MAX, 3);
        h.record(u64::MAX - 1);
        h.record(7);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 7);
        // Interior ranks fall in the top bucket, whose lower bound is far
        // below u64::MAX; the clamp keeps the report inside [min, max] and
        // the extreme ranks are exact.
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert!(h.quantile(0.6) >= bucket_lower_bound(bucket_index(u64::MAX - 1)));
        assert!(h.quantile(0.6) <= h.max());
        // Sum stays exact in u128: 3·(2^64-1) + (2^64-2) + 7.
        let expect = 3 * (u64::MAX as u128) + (u64::MAX as u128 - 1) + 7;
        assert_eq!(h.mean(), expect as f64 / 5.0);
    }

    // A histogram holding nothing but one saturated value still roundtrips
    // through merge without disturbing the extremes.
    #[test]
    fn merge_preserves_saturated_extremes() {
        let mut a = LogHistogram::new();
        a.record(42);
        let mut b = LogHistogram::new();
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.max(), u64::MAX);
        assert_eq!(a.quantile(1.0), u64::MAX);
        assert_eq!(a.quantile(0.0), 42);
    }

    #[test]
    fn buckets_iterate_nonzero_ascending() {
        let mut h = LogHistogram::new();
        h.record_n(3, 2);
        h.record(100);
        let b: Vec<_> = h.buckets().collect();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0], (3, 2));
        assert!(b[1].0 <= 100 && b[1].1 == 1);
    }
}
