//! The typed trace-event vocabulary of the observability layer.
//!
//! Every event is stamped with the virtual time ([`VTime`]) at which the
//! executor observed it, so a trace replays the run exactly — lag, bursts,
//! and congestion included — independent of the wall clock of the machine
//! that produced it. Events are small `Copy` values so the ring buffer can
//! hold hundreds of thousands of them without allocation.

use lmerge_temporal::{Time, VTime};

/// The kind of a physical stream element, without its payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElementKind {
    /// `insert(⟨p, Vs, Ve⟩)`.
    Insert,
    /// `adjust(p, Vs, Vold, Ve)` — the chattiness-relevant kind.
    Adjust,
    /// `stable(Vc)` punctuation.
    Stable,
}

impl ElementKind {
    /// Lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            ElementKind::Insert => "insert",
            ElementKind::Adjust => "adjust",
            ElementKind::Stable => "stable",
        }
    }
}

/// The mechanical action an injected fault took at the executor boundary.
///
/// This is deliberately the *mechanism*, not the scenario: a chaos plan's
/// "crash with rejoin" shows up in the trace as a `Detach` followed later by
/// an `Attach`, so traces stay truthful about what actually happened to the
/// run regardless of which higher-level fault produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A staged batch was discarded before delivery.
    DropBatch,
    /// A staged batch was delivered with substituted contents.
    ReplaceBatch,
    /// A staged batch was re-queued for a later virtual time.
    DelayBatch,
    /// An input was forcibly detached from the merge.
    Detach,
    /// An input was (re)attached to the merge mid-run.
    Attach,
    /// An input's delivery was frozen until a later virtual time.
    Stall,
    /// The merge operator was killed and rebuilt from a durable state image
    /// mid-run (the whole merge, so `input` is `u32::MAX` in the trace).
    CrashMerge,
}

impl FaultKind {
    /// Lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DropBatch => "drop_batch",
            FaultKind::ReplaceBatch => "replace_batch",
            FaultKind::DelayBatch => "delay_batch",
            FaultKind::Detach => "detach",
            FaultKind::Attach => "attach",
            FaultKind::Stall => "stall",
            FaultKind::CrashMerge => "crash_merge",
        }
    }
}

/// An input's health as reported by the merge operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthTag {
    /// Attached and trusted for both data and punctuation.
    Active,
    /// Attached but still before its join point.
    Joining,
    /// Demoted by a robustness policy: data merged, punctuation ignored.
    Quarantined,
    /// Detached; all elements ignored.
    Left,
}

impl HealthTag {
    /// Lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            HealthTag::Active => "active",
            HealthTag::Joining => "joining",
            HealthTag::Quarantined => "quarantined",
            HealthTag::Left => "left",
        }
    }
}

/// The SLO condition an alert rule watches (see `alert::AlertRule`).
///
/// Each kind names the live signal it thresholds, not the remedy — the
/// same `WatermarkLag` alert covers a slow input, a stalled shard, and a
/// dead network session; the per-input/per-shard series say which.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertKind {
    /// The output stable point has not advanced for too many wall-clock ms.
    WatermarkLag,
    /// The worst input's stable point trails the output beyond the bound
    /// (application-time units).
    StragglerGap,
    /// Too many session resumes per evaluation window — a flapping client
    /// or network.
    ResumeRate,
    /// The bounded trace ring evicted events; the exported trace is no
    /// longer complete.
    RingDrop,
}

impl AlertKind {
    /// Snake-case label used by the exporters and the metrics plane.
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::WatermarkLag => "watermark_lag",
            AlertKind::StragglerGap => "straggler_gap",
            AlertKind::ResumeRate => "resume_rate",
            AlertKind::RingDrop => "ring_drop",
        }
    }
}

/// How loudly an alert rule fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Operator should know eventually.
    Info,
    /// Operator should look soon.
    Warn,
    /// Operator should look now.
    Critical,
}

impl Severity {
    /// Lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }
}

/// Whose stable point advanced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StableScope {
    /// The merged output's stable point (`MaxStable`).
    Output,
    /// The latest punctuation announced by one input replica.
    Input(u32),
    /// One shard's local stable point under hash-partitioned execution.
    /// The output stable point is the minimum over shard scopes — a shard
    /// that trails here is the one holding the aggregate back.
    Shard(u32),
}

/// One observation recorded during an executor run.
///
/// The variants mirror the paper's evaluation questions: what was delivered
/// when ([`BatchDelivered`](TraceEvent::BatchDelivered)), what the merge
/// emitted ([`ElementEmitted`](TraceEvent::ElementEmitted)), how far each
/// replica's punctuation ran ahead of or behind the output
/// ([`StablePointAdvanced`](TraceEvent::StablePointAdvanced)), and when
/// Section V-D feedback fast-forwarded the stragglers
/// ([`FeedbackPropagated`](TraceEvent::FeedbackPropagated)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A query handed one batch to LMerge.
    BatchDelivered {
        /// Virtual delivery time.
        at: VTime,
        /// The delivering input (query index).
        input: u32,
        /// Total elements in the batch (data + punctuation).
        elements: u32,
        /// Data elements (inserts + adjusts) in the batch.
        data: u32,
    },
    /// LMerge emitted one output element.
    ElementEmitted {
        /// Virtual emission time.
        at: VTime,
        /// What kind of element left the merge.
        kind: ElementKind,
        /// The element's `Vs` (for `stable`, the punctuation time).
        vs: Time,
    },
    /// A stable point moved forward.
    StablePointAdvanced {
        /// Virtual time of the advance.
        at: VTime,
        /// Output stable point or a specific input's.
        scope: StableScope,
        /// The new stable point.
        stable: Time,
    },
    /// The executor carried LMerge's feedback point back to the queries.
    FeedbackPropagated {
        /// Virtual time of the propagation.
        at: VTime,
        /// The feedback point (Section V-D): work before it is skippable.
        point: Time,
    },
    /// Periodic sample of how many batches are staged awaiting delivery.
    QueueDepthSampled {
        /// Virtual sample time.
        at: VTime,
        /// Batches staged in the executor's delivery heap.
        staged: u32,
    },
    /// Periodic sample of operator + query state size.
    MemorySampled {
        /// Virtual sample time.
        at: VTime,
        /// Estimated bytes held by LMerge and the query operators.
        bytes: u64,
    },
    /// An input ran out of elements.
    InputDrained {
        /// Virtual time the executor noticed.
        at: VTime,
        /// The drained input.
        input: u32,
    },
    /// The run ended (output complete or all inputs drained).
    RunCompleted {
        /// Virtual end time.
        at: VTime,
    },
    /// A fault-injection hook altered the run at this point.
    FaultInjected {
        /// Virtual time of the injection.
        at: VTime,
        /// The affected input.
        input: u32,
        /// The mechanical action taken.
        kind: FaultKind,
    },
    /// The merge's view of an input's health changed.
    InputHealthChanged {
        /// Virtual time the executor observed the transition.
        at: VTime,
        /// The input whose health changed.
        input: u32,
        /// The new health.
        health: HealthTag,
    },
    /// Periodic sample of one shard's delivery-queue depth under the
    /// pipelined executor (occupancy = `depth / capacity`).
    ShardQueueSampled {
        /// Virtual sample time.
        at: VTime,
        /// The sampled shard.
        shard: u32,
        /// Elements in flight in the shard's SPSC ring.
        depth: u32,
        /// The ring's capacity in slots.
        capacity: u32,
    },
    /// A network ingest session opened (handshake accepted): one remote
    /// replica is now feeding this input over a socket.
    SessionOpened {
        /// Virtual time of the handshake (the session's resume point for a
        /// rejoin, `VTime::ZERO` for a first connection).
        at: VTime,
        /// The input the session feeds.
        input: u32,
        /// The first frame sequence number the server expects — 0 for a
        /// fresh session, the resume point for a rejoin.
        resume_seq: u64,
    },
    /// A network ingest session ended (clean `bye` or connection loss).
    SessionClosed {
        /// Virtual time of the last element the session delivered.
        at: VTime,
        /// The input the session fed.
        input: u32,
        /// Whether the client said `bye` (vs. a reset/mid-frame drop).
        clean: bool,
    },
    /// The ingest server granted frame credits back to a client
    /// (credit-based backpressure: credits track ring free space).
    CreditGranted {
        /// Virtual time of the latest element popped before the grant.
        at: VTime,
        /// The input whose client received the credits.
        input: u32,
        /// Number of frame credits granted.
        credits: u32,
    },
    /// Periodic sample of one net ingest session's SPSC ring depth
    /// (occupancy = `depth / capacity`; what the credit grants key off).
    NetQueueSampled {
        /// Virtual sample time.
        at: VTime,
        /// The input whose ingest ring was sampled.
        input: u32,
        /// Decoded frames in flight between socket reader and merge.
        depth: u32,
        /// The ring's capacity in slots.
        capacity: u32,
    },
    /// An SLO alert rule crossed its threshold.
    ///
    /// Unlike every other variant, alerts originate on the *wall-clock*
    /// plane: `at` carries milliseconds of monotonic process time (as
    /// micro-granular `VTime`), not virtual time — an alert is about the
    /// operator's now, not the run's replayable history.
    AlertFired {
        /// Wall-clock ms since metrics start, carried as `VTime` micros.
        at: VTime,
        /// Which SLO condition fired.
        kind: AlertKind,
        /// How loudly.
        severity: Severity,
        /// The observed value that crossed the threshold.
        value: i64,
        /// The configured threshold.
        threshold: i64,
    },
    /// A previously fired alert dropped back under its threshold.
    AlertResolved {
        /// Wall-clock ms since metrics start, carried as `VTime` micros.
        at: VTime,
        /// Which SLO condition resolved.
        kind: AlertKind,
        /// The observed value at resolution.
        value: i64,
    },
    /// The durability layer captured a consistent image of the run.
    ///
    /// `seq` is the checkpoint sequence number (monotone per run); a
    /// restored run's first checkpoint continues the killed run's numbering
    /// so concatenated traces stay monotone.
    CheckpointTaken {
        /// Virtual time of the stable advance that triggered the capture.
        at: VTime,
        /// Checkpoint sequence number.
        seq: u64,
        /// Live state entries captured in the merge image.
        entries: u64,
        /// Whether the image was persisted as a delta against the previous
        /// checkpoint (`true`) or a full snapshot (`false`).
        delta: bool,
    },
    /// A run was rebuilt from a durable checkpoint instead of starting
    /// empty.
    CheckpointRestored {
        /// Virtual time the restored executor resumes at.
        at: VTime,
        /// Sequence number of the checkpoint the run was rebuilt from.
        seq: u64,
        /// Live state entries restored into the merge.
        entries: u64,
    },
    /// A robustness demotion spilled an input's half-frozen state to a
    /// durable sorted run instead of dropping it.
    StateSpilled {
        /// Virtual time of the demotion.
        at: VTime,
        /// The input whose state was spilled.
        input: u32,
        /// Entries written to the sorted run.
        entries: u64,
    },
    /// An egress subscription session opened (subscribe accepted): one
    /// remote consumer is now tailing the merged output.
    SubSessionOpened {
        /// The resume sequence carried as a virtual timestamp (subscriber
        /// sessions live on the output-seq axis, not input virtual time).
        at: VTime,
        /// The subscriber's stable identity.
        subscriber: u64,
        /// First output sequence the session will actually send — the
        /// client's `resume_from`, possibly clamped up to the compaction
        /// horizon.
        resume_seq: u64,
    },
    /// An egress subscription session ended (clean `bye` or loss).
    SubSessionClosed {
        /// The last output sequence sent, as a virtual timestamp.
        at: VTime,
        /// The subscriber's stable identity.
        subscriber: u64,
        /// Whether the close was a clean `bye` handshake.
        clean: bool,
    },
    /// One sealed output epoch was delivered to one subscriber (after
    /// filtering; the shared segment is written once and fanned out).
    SubEpochDelivered {
        /// The epoch's base output sequence, as a virtual timestamp.
        at: VTime,
        /// The receiving subscriber.
        subscriber: u64,
        /// The epoch index in the broadcast buffer.
        epoch: u64,
        /// Frames actually sent after the session's filter.
        frames: u32,
    },
}

impl TraceEvent {
    /// The virtual timestamp of the event.
    pub fn at(&self) -> VTime {
        match *self {
            TraceEvent::BatchDelivered { at, .. }
            | TraceEvent::ElementEmitted { at, .. }
            | TraceEvent::StablePointAdvanced { at, .. }
            | TraceEvent::FeedbackPropagated { at, .. }
            | TraceEvent::QueueDepthSampled { at, .. }
            | TraceEvent::MemorySampled { at, .. }
            | TraceEvent::InputDrained { at, .. }
            | TraceEvent::RunCompleted { at }
            | TraceEvent::FaultInjected { at, .. }
            | TraceEvent::InputHealthChanged { at, .. }
            | TraceEvent::ShardQueueSampled { at, .. }
            | TraceEvent::SessionOpened { at, .. }
            | TraceEvent::SessionClosed { at, .. }
            | TraceEvent::CreditGranted { at, .. }
            | TraceEvent::NetQueueSampled { at, .. }
            | TraceEvent::AlertFired { at, .. }
            | TraceEvent::AlertResolved { at, .. }
            | TraceEvent::CheckpointTaken { at, .. }
            | TraceEvent::CheckpointRestored { at, .. }
            | TraceEvent::StateSpilled { at, .. }
            | TraceEvent::SubSessionOpened { at, .. }
            | TraceEvent::SubSessionClosed { at, .. }
            | TraceEvent::SubEpochDelivered { at, .. } => at,
        }
    }

    /// Snake-case event name used by the exporters.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::BatchDelivered { .. } => "batch_delivered",
            TraceEvent::ElementEmitted { .. } => "element_emitted",
            TraceEvent::StablePointAdvanced { .. } => "stable_point_advanced",
            TraceEvent::FeedbackPropagated { .. } => "feedback_propagated",
            TraceEvent::QueueDepthSampled { .. } => "queue_depth_sampled",
            TraceEvent::MemorySampled { .. } => "memory_sampled",
            TraceEvent::InputDrained { .. } => "input_drained",
            TraceEvent::RunCompleted { .. } => "run_completed",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::InputHealthChanged { .. } => "input_health_changed",
            TraceEvent::ShardQueueSampled { .. } => "shard_queue_sampled",
            TraceEvent::SessionOpened { .. } => "session_opened",
            TraceEvent::SessionClosed { .. } => "session_closed",
            TraceEvent::CreditGranted { .. } => "credit_granted",
            TraceEvent::NetQueueSampled { .. } => "net_queue_sampled",
            TraceEvent::AlertFired { .. } => "alert_fired",
            TraceEvent::AlertResolved { .. } => "alert_resolved",
            TraceEvent::CheckpointTaken { .. } => "checkpoint_taken",
            TraceEvent::CheckpointRestored { .. } => "checkpoint_restored",
            TraceEvent::StateSpilled { .. } => "state_spilled",
            TraceEvent::SubSessionOpened { .. } => "sub_session_opened",
            TraceEvent::SubSessionClosed { .. } => "sub_session_closed",
            TraceEvent::SubEpochDelivered { .. } => "sub_epoch_delivered",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_and_names() {
        let e = TraceEvent::BatchDelivered {
            at: VTime(42),
            input: 1,
            elements: 3,
            data: 2,
        };
        assert_eq!(e.at(), VTime(42));
        assert_eq!(e.name(), "batch_delivered");
        let s = TraceEvent::RunCompleted { at: VTime(7) };
        assert_eq!(s.at(), VTime(7));
        assert_eq!(s.name(), "run_completed");
    }

    #[test]
    fn kind_labels() {
        assert_eq!(ElementKind::Insert.label(), "insert");
        assert_eq!(ElementKind::Adjust.label(), "adjust");
        assert_eq!(ElementKind::Stable.label(), "stable");
    }

    #[test]
    fn fault_and_health_events() {
        let f = TraceEvent::FaultInjected {
            at: VTime(3),
            input: 2,
            kind: FaultKind::DropBatch,
        };
        assert_eq!(f.at(), VTime(3));
        assert_eq!(f.name(), "fault_injected");
        let h = TraceEvent::InputHealthChanged {
            at: VTime(4),
            input: 1,
            health: HealthTag::Quarantined,
        };
        assert_eq!(h.at(), VTime(4));
        assert_eq!(h.name(), "input_health_changed");
        assert_eq!(FaultKind::Detach.label(), "detach");
        assert_eq!(FaultKind::Stall.label(), "stall");
        assert_eq!(HealthTag::Left.label(), "left");
        assert_eq!(HealthTag::Active.label(), "active");
    }

    #[test]
    fn alert_events() {
        let f = TraceEvent::AlertFired {
            at: VTime(30),
            kind: AlertKind::WatermarkLag,
            severity: Severity::Warn,
            value: 1200,
            threshold: 1000,
        };
        assert_eq!(f.at(), VTime(30));
        assert_eq!(f.name(), "alert_fired");
        let r = TraceEvent::AlertResolved {
            at: VTime(31),
            kind: AlertKind::WatermarkLag,
            value: 10,
        };
        assert_eq!(r.at(), VTime(31));
        assert_eq!(r.name(), "alert_resolved");
        assert_eq!(AlertKind::StragglerGap.label(), "straggler_gap");
        assert_eq!(AlertKind::ResumeRate.label(), "resume_rate");
        assert_eq!(AlertKind::RingDrop.label(), "ring_drop");
        assert_eq!(Severity::Critical.label(), "critical");
        assert!(Severity::Info < Severity::Warn);
    }

    #[test]
    fn durability_events() {
        let t = TraceEvent::CheckpointTaken {
            at: VTime(50),
            seq: 3,
            entries: 120,
            delta: true,
        };
        assert_eq!(t.at(), VTime(50));
        assert_eq!(t.name(), "checkpoint_taken");
        let r = TraceEvent::CheckpointRestored {
            at: VTime(51),
            seq: 3,
            entries: 120,
        };
        assert_eq!(r.at(), VTime(51));
        assert_eq!(r.name(), "checkpoint_restored");
        let s = TraceEvent::StateSpilled {
            at: VTime(52),
            input: 1,
            entries: 40,
        };
        assert_eq!(s.at(), VTime(52));
        assert_eq!(s.name(), "state_spilled");
        assert_eq!(FaultKind::CrashMerge.label(), "crash_merge");
    }

    #[test]
    fn net_session_events() {
        let o = TraceEvent::SessionOpened {
            at: VTime(5),
            input: 2,
            resume_seq: 17,
        };
        assert_eq!(o.at(), VTime(5));
        assert_eq!(o.name(), "session_opened");
        let c = TraceEvent::SessionClosed {
            at: VTime(9),
            input: 2,
            clean: false,
        };
        assert_eq!(c.at(), VTime(9));
        assert_eq!(c.name(), "session_closed");
        let g = TraceEvent::CreditGranted {
            at: VTime(11),
            input: 0,
            credits: 32,
        };
        assert_eq!(g.at(), VTime(11));
        assert_eq!(g.name(), "credit_granted");
        let q = TraceEvent::NetQueueSampled {
            at: VTime(12),
            input: 0,
            depth: 7,
            capacity: 64,
        };
        assert_eq!(q.at(), VTime(12));
        assert_eq!(q.name(), "net_queue_sampled");
    }
}
