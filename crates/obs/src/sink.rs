//! Where trace events go: the zero-cost-when-disabled [`TraceSink`] trait
//! and the standard [`Tracer`] implementation.
//!
//! The executor is generic over its sink and guards every emission with
//! [`TraceSink::enabled`]. With the default [`NullSink`] the guard is a
//! constant `false`, the event construction is dead code, and the optimizer
//! removes the whole instrumentation path — benchmarks pay nothing for the
//! tracing capability they don't use.

use crate::event::TraceEvent;
use crate::export;
use crate::lag::LagGauges;
use crate::net::NetGauges;
use crate::ring::EventRing;
use crate::shard::ShardGauges;

/// A consumer of trace events.
pub trait TraceSink {
    /// Whether events should be constructed and recorded at all. Callers
    /// must guard emission with this so disabled sinks are truly free.
    fn enabled(&self) -> bool;

    /// Record one event. Only called when [`enabled`](TraceSink::enabled)
    /// returns `true` (calling it anyway is allowed, just not required).
    fn record(&mut self, event: TraceEvent);
}

/// The no-op sink: statically disabled, compiles to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn record(&mut self, event: TraceEvent) {
        (**self).record(event)
    }
}

/// How a [`Tracer`] is sized.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Maximum events retained (drop-oldest beyond this).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig { capacity: 65_536 }
    }
}

/// The standard sink: a bounded event ring plus live lag gauges.
///
/// The ring keeps the most recent events for export; the gauges fold the
/// *entire* stream (including evicted events) into per-input diagnostics,
/// so "who lagged and by how much" is exact even when the ring wrapped.
#[derive(Clone, Debug)]
pub struct Tracer {
    ring: EventRing,
    lag: LagGauges,
    shards: ShardGauges,
    net: NetGauges,
    /// Whether the ring-overflow alert has already been recorded — the
    /// warning fires once per tracer, not once per evicted event.
    overflow_alerted: bool,
}

impl Tracer {
    /// A tracer with the default ring capacity.
    pub fn new() -> Tracer {
        Tracer::with_config(TraceConfig::default())
    }

    /// A tracer with an explicit configuration.
    pub fn with_config(config: TraceConfig) -> Tracer {
        Tracer {
            ring: EventRing::new(config.capacity),
            lag: LagGauges::default(),
            shards: ShardGauges::default(),
            net: NetGauges::default(),
            overflow_alerted: false,
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.ring.iter()
    }

    /// The underlying ring (for capacity / drop accounting).
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// The per-input lag gauges accumulated so far.
    pub fn lag(&self) -> &LagGauges {
        &self.lag
    }

    /// The per-shard gauges accumulated so far (all-zero unless the run
    /// used the sharded pipeline).
    pub fn shards(&self) -> &ShardGauges {
        &self.shards
    }

    /// The per-input network-session gauges accumulated so far (all-zero
    /// unless the run's inputs arrived through the lmerge-net ingest
    /// server).
    pub fn net(&self) -> &NetGauges {
        &self.net
    }

    /// Export the retained events as JSON-lines (one object per line),
    /// closed by a `trace_meta` line carrying the ring's drop accounting —
    /// a consumer can always tell whether the trace it holds is complete.
    pub fn to_jsonl(&self) -> String {
        let mut s = export::to_jsonl(self.events());
        s.push_str(&export::trace_meta(&self.ring));
        s
    }

    /// Export the retained events as a Chrome trace-event (Perfetto /
    /// `about://tracing` compatible) JSON document.
    pub fn to_chrome_trace(&self) -> String {
        export::to_chrome_trace(self.events())
    }

    /// Render the human-readable run summary table.
    pub fn summary(&self) -> String {
        export::summary(self)
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl TraceSink for Tracer {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        self.lag.on_event(&event);
        self.shards.on_event(&event);
        self.net.on_event(&event);
        self.ring.push(event);
        // Surface the first eviction as a warn-level alert *inside* the
        // trace: anyone reading the export learns the ring wrapped without
        // checking the summary. Stamped with the overflowing event's
        // virtual time; fires once.
        if !self.overflow_alerted && self.ring.dropped() > 0 {
            self.overflow_alerted = true;
            self.ring.push(TraceEvent::AlertFired {
                at: event.at(),
                kind: crate::event::AlertKind::RingDrop,
                severity: crate::event::Severity::Warn,
                value: self.ring.dropped() as i64,
                threshold: 0,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StableScope;
    use lmerge_temporal::{Time, VTime};

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(TraceEvent::RunCompleted { at: VTime(1) }); // harmless
    }

    #[test]
    fn tracer_records_and_derives_gauges() {
        let mut t = Tracer::with_config(TraceConfig { capacity: 8 });
        assert!(t.enabled());
        t.record(TraceEvent::StablePointAdvanced {
            at: VTime(1),
            scope: StableScope::Input(0),
            stable: Time(10),
        });
        t.record(TraceEvent::RunCompleted { at: VTime(2) });
        assert_eq!(t.events().count(), 2);
        assert_eq!(t.lag().inputs()[0].stable, Time(10));
    }

    #[test]
    fn gauges_survive_ring_eviction() {
        let mut t = Tracer::with_config(TraceConfig { capacity: 2 });
        for k in 0..100u32 {
            t.record(TraceEvent::BatchDelivered {
                at: VTime(k as u64),
                input: 0,
                elements: 1,
                data: 1,
            });
        }
        assert_eq!(t.ring().len(), 2, "ring stayed bounded");
        // 98 batches evicted, plus one slot evicted by the overflow alert.
        assert_eq!(t.ring().dropped(), 99);
        assert_eq!(t.lag().inputs()[0].delivered, 100, "gauges saw everything");
    }

    #[test]
    fn ring_overflow_fires_one_warn_alert() {
        let mut t = Tracer::with_config(TraceConfig { capacity: 4 });
        // Five records into a four-slot ring: the fifth evicts the first
        // and the overflow alert lands as the newest retained event.
        for k in 0..5u64 {
            t.record(TraceEvent::RunCompleted { at: VTime(k) });
        }
        let alerts: Vec<_> = t
            .events()
            .filter(|e| matches!(e, TraceEvent::AlertFired { .. }))
            .collect();
        assert_eq!(alerts.len(), 1, "alert fires exactly once");
        match alerts[0] {
            TraceEvent::AlertFired {
                kind: crate::event::AlertKind::RingDrop,
                severity: crate::event::Severity::Warn,
                ..
            } => {}
            other => panic!("unexpected alert {other:?}"),
        }
        // Further overflow does not re-fire (drop-oldest may evict the
        // alert itself later; the trace_meta line keeps the evidence).
        for k in 5..20u64 {
            t.record(TraceEvent::RunCompleted { at: VTime(k) });
        }
        let refired = t
            .events()
            .filter(|e| matches!(e, TraceEvent::AlertFired { .. }))
            .count();
        assert_eq!(refired, 0, "no repeat alerts after eviction");
        // The JSONL export ends with the drop accounting.
        let jsonl = t.to_jsonl();
        let last = jsonl.lines().last().unwrap();
        assert!(last.contains("\"event\":\"trace_meta\""), "got: {last}");
        assert!(last.contains("\"dropped\""), "got: {last}");
    }

    #[test]
    fn jsonl_meta_reports_no_drops_on_small_traces() {
        let mut t = Tracer::new();
        t.record(TraceEvent::RunCompleted { at: VTime(1) });
        let jsonl = t.to_jsonl();
        let last = jsonl.lines().last().unwrap();
        assert!(last.contains("\"event\":\"trace_meta\""));
        assert!(last.contains("\"recorded\":1"), "got: {last}");
        assert!(last.contains("\"dropped\":0"), "got: {last}");
    }

    #[test]
    fn mut_ref_forwards() {
        let mut t = Tracer::new();
        let r: &mut Tracer = &mut t;
        let rr = r;
        assert!(rr.enabled());
        rr.record(TraceEvent::RunCompleted { at: VTime(0) });
        assert_eq!(t.events().count(), 1);
    }
}
