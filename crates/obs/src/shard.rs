//! Per-shard gauges for hash-partitioned (sharded) execution.
//!
//! The pipelined executor partitions the merge state across `K` workers,
//! each fed by a bounded SPSC queue, and aggregates the output stable
//! point as the *minimum* over shard stable points. Two diagnostics
//! matter for that topology, and [`ShardGauges`] folds both out of the
//! trace stream:
//!
//! * **Queue pressure** — each [`TraceEvent::ShardQueueSampled`] carries
//!   one shard's in-flight depth and ring capacity; the gauges keep the
//!   latest, the high-water mark, and the mean occupancy. A shard pinned
//!   at full occupancy is the pipeline's bottleneck.
//! * **Stable lag** — each `StablePointAdvanced` with a
//!   [`StableScope::Shard`] scope updates that shard's local stable
//!   point. The shard at the minimum is the one holding the aggregate
//!   watermark back ([`ShardGauges::straggler`]), mirroring what
//!   [`crate::LagGauges`] reports across *inputs*.

use crate::event::{StableScope, TraceEvent};
use lmerge_temporal::Time;

/// Running diagnostics for one shard.
#[derive(Clone, Copy, Debug)]
pub struct ShardLag {
    /// The shard's latest local stable point (`Time::MIN` if none yet).
    pub stable: Time,
    /// Latest sampled queue depth (elements in flight).
    pub depth: u32,
    /// High-water queue depth across all samples.
    pub max_depth: u32,
    /// The shard ring's capacity in slots (from the latest sample).
    pub capacity: u32,
    /// Number of queue samples folded in.
    pub samples: u64,
    /// Sum of sampled depths (for mean occupancy).
    depth_sum: u64,
}

impl Default for ShardLag {
    fn default() -> ShardLag {
        ShardLag {
            stable: Time::MIN,
            depth: 0,
            max_depth: 0,
            capacity: 0,
            samples: 0,
            depth_sum: 0,
        }
    }
}

impl ShardLag {
    /// Latest queue occupancy in `[0, 1]` (0 before any sample).
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.depth as f64 / self.capacity as f64
        }
    }

    /// Mean queue occupancy over all samples.
    pub fn mean_occupancy(&self) -> f64 {
        if self.capacity == 0 || self.samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / (self.samples as f64 * self.capacity as f64)
        }
    }
}

/// Gauges tracking every shard's queue depth and local stable point.
#[derive(Clone, Debug, Default)]
pub struct ShardGauges {
    shards: Vec<ShardLag>,
}

impl ShardGauges {
    /// Gauges for `k` shards (more are added on demand as events mention
    /// higher shard ids).
    pub fn new(k: usize) -> ShardGauges {
        ShardGauges {
            shards: vec![ShardLag::default(); k],
        }
    }

    fn shard_mut(&mut self, s: u32) -> &mut ShardLag {
        let s = s as usize;
        if s >= self.shards.len() {
            self.shards.resize(s + 1, ShardLag::default());
        }
        &mut self.shards[s]
    }

    /// Update the gauges from one trace event. Unrelated events are
    /// ignored, so a [`ShardGauges`] can consume a full stream unfiltered.
    pub fn on_event(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::ShardQueueSampled {
                shard,
                depth,
                capacity,
                ..
            } => {
                let sl = self.shard_mut(shard);
                sl.depth = depth;
                sl.max_depth = sl.max_depth.max(depth);
                sl.capacity = capacity;
                sl.samples += 1;
                sl.depth_sum += depth as u64;
            }
            TraceEvent::StablePointAdvanced {
                scope: StableScope::Shard(s),
                stable,
                ..
            } => {
                let sl = self.shard_mut(s);
                sl.stable = sl.stable.max(stable);
            }
            _ => {}
        }
    }

    /// Per-shard gauges, indexed by shard id.
    pub fn shards(&self) -> &[ShardLag] {
        &self.shards
    }

    /// The aggregate (low-watermark) stable point: the minimum over shard
    /// stable points, `Time::MIN` before any shard reported.
    pub fn watermark(&self) -> Time {
        self.shards
            .iter()
            .map(|s| s.stable)
            .min()
            .unwrap_or(Time::MIN)
    }

    /// How far shard `s` trails the leading shard's stable point
    /// (0 when leading; `None` for an unknown shard).
    pub fn behind(&self, s: usize) -> Option<i64> {
        let sl = self.shards.get(s)?;
        let lead = self.shards.iter().map(|x| x.stable).max()?;
        if sl.stable >= lead {
            Some(0)
        } else if sl.stable == Time::MIN {
            Some(i64::MAX)
        } else {
            Some(lead.0.saturating_sub(sl.stable.0))
        }
    }

    /// The shard farthest behind the leading shard — the one pinning the
    /// aggregate watermark. `None` when all shards are level.
    pub fn straggler(&self) -> Option<(usize, i64)> {
        (0..self.shards.len())
            .filter_map(|s| self.behind(s).map(|b| (s, b)))
            .filter(|&(_, b)| b > 0)
            .max_by_key(|&(s, b)| (b, std::cmp::Reverse(s)))
    }

    /// The shard with the highest mean queue occupancy — the pipeline's
    /// likely throughput bottleneck. `None` before any queue sample.
    pub fn hottest(&self) -> Option<(usize, f64)> {
        (0..self.shards.len())
            .filter(|&s| self.shards[s].samples > 0)
            .map(|s| (s, self.shards[s].mean_occupancy()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::VTime;

    fn sample(g: &mut ShardGauges, shard: u32, depth: u32, capacity: u32) {
        g.on_event(&TraceEvent::ShardQueueSampled {
            at: VTime(0),
            shard,
            depth,
            capacity,
        });
    }

    fn adv(g: &mut ShardGauges, shard: u32, stable: i64) {
        g.on_event(&TraceEvent::StablePointAdvanced {
            at: VTime(0),
            scope: StableScope::Shard(shard),
            stable: Time(stable),
        });
    }

    #[test]
    fn tracks_depth_and_occupancy() {
        let mut g = ShardGauges::new(2);
        sample(&mut g, 0, 8, 64);
        sample(&mut g, 0, 32, 64);
        sample(&mut g, 0, 16, 64);
        assert_eq!(g.shards()[0].depth, 16);
        assert_eq!(g.shards()[0].max_depth, 32);
        assert_eq!(g.shards()[0].occupancy(), 0.25);
        assert!((g.shards()[0].mean_occupancy() - (56.0 / 192.0)).abs() < 1e-9);
        assert_eq!(g.shards()[1].samples, 0, "untouched shard stays zero");
    }

    #[test]
    fn watermark_is_min_and_straggler_is_named() {
        let mut g = ShardGauges::new(3);
        adv(&mut g, 0, 100);
        adv(&mut g, 1, 40);
        adv(&mut g, 2, 100);
        assert_eq!(g.watermark(), Time(40));
        assert_eq!(g.behind(1), Some(60));
        assert_eq!(g.straggler(), Some((1, 60)));
        adv(&mut g, 1, 100);
        assert_eq!(g.straggler(), None, "all level");
        assert_eq!(g.watermark(), Time(100));
    }

    #[test]
    fn silent_shard_reads_infinitely_behind() {
        let mut g = ShardGauges::new(2);
        adv(&mut g, 0, 50);
        assert_eq!(g.behind(1), Some(i64::MAX));
        assert_eq!(g.behind(9), None, "unknown shard");
        assert_eq!(g.watermark(), Time::MIN);
    }

    #[test]
    fn hottest_shard_by_mean_occupancy() {
        let mut g = ShardGauges::new(2);
        sample(&mut g, 0, 4, 64);
        sample(&mut g, 1, 60, 64);
        let (s, occ) = g.hottest().unwrap();
        assert_eq!(s, 1);
        assert!(occ > 0.9);
    }

    #[test]
    fn shards_grow_on_demand() {
        let mut g = ShardGauges::default();
        sample(&mut g, 3, 1, 8);
        assert_eq!(g.shards().len(), 4);
    }
}
