//! Trace exporters: JSONL event dumps, Chrome trace-event timelines, and
//! the human-readable run summary.
//!
//! * [`to_jsonl`] — one self-describing JSON object per line; greppable and
//!   trivially ingestible by any log pipeline.
//! * [`to_chrome_trace`] — the Chrome trace-event format, loadable in
//!   `about://tracing` or [Perfetto](https://ui.perfetto.dev): each input
//!   gets its own track, stable points and queue depth render as counters.
//! * [`summary`] — the per-input lag table printed by examples and benches.

use crate::event::{StableScope, TraceEvent};
use crate::json::Json;
use crate::sink::Tracer;
use lmerge_temporal::Time;
use std::fmt::Write as _;

/// Application time as JSON: finite values as integers, the paper's ±∞ as
/// strings so they survive serialization unambiguously.
fn time_json(t: Time) -> Json {
    if t == Time::INFINITY {
        Json::from("inf")
    } else if t == Time::MIN {
        Json::from("-inf")
    } else {
        Json::from(t.0)
    }
}

/// One event as a flat JSON object (`event`, `at_us`, then per-kind fields).
fn event_json(e: &TraceEvent) -> Json {
    let mut obj = Json::object()
        .with("event", e.name())
        .with("at_us", e.at().as_micros());
    match *e {
        TraceEvent::BatchDelivered {
            input,
            elements,
            data,
            ..
        } => {
            obj.set("input", input)
                .set("elements", elements)
                .set("data", data);
        }
        TraceEvent::ElementEmitted { kind, vs, .. } => {
            obj.set("kind", kind.label()).set("vs", time_json(vs));
        }
        TraceEvent::StablePointAdvanced { scope, stable, .. } => {
            match scope {
                StableScope::Output => obj.set("scope", "output"),
                StableScope::Input(i) => obj.set("input", i),
                StableScope::Shard(s) => obj.set("shard", s),
            };
            obj.set("stable", time_json(stable));
        }
        TraceEvent::FeedbackPropagated { point, .. } => {
            obj.set("point", time_json(point));
        }
        TraceEvent::QueueDepthSampled { staged, .. } => {
            obj.set("staged", staged);
        }
        TraceEvent::MemorySampled { bytes, .. } => {
            obj.set("bytes", bytes);
        }
        TraceEvent::InputDrained { input, .. } => {
            obj.set("input", input);
        }
        TraceEvent::RunCompleted { .. } => {}
        TraceEvent::FaultInjected { input, kind, .. } => {
            obj.set("input", input).set("kind", kind.label());
        }
        TraceEvent::InputHealthChanged { input, health, .. } => {
            obj.set("input", input).set("health", health.label());
        }
        TraceEvent::ShardQueueSampled {
            shard,
            depth,
            capacity,
            ..
        } => {
            obj.set("shard", shard)
                .set("depth", depth)
                .set("capacity", capacity);
        }
        TraceEvent::SessionOpened {
            input, resume_seq, ..
        } => {
            obj.set("input", input).set("resume_seq", resume_seq);
        }
        TraceEvent::SessionClosed { input, clean, .. } => {
            obj.set("input", input).set("clean", clean);
        }
        TraceEvent::CreditGranted { input, credits, .. } => {
            obj.set("input", input).set("credits", credits);
        }
        TraceEvent::NetQueueSampled {
            input,
            depth,
            capacity,
            ..
        } => {
            obj.set("input", input)
                .set("depth", depth)
                .set("capacity", capacity);
        }
        TraceEvent::AlertFired {
            kind,
            severity,
            value,
            threshold,
            ..
        } => {
            obj.set("kind", kind.label())
                .set("severity", severity.label())
                .set("value", value)
                .set("threshold", threshold);
        }
        TraceEvent::AlertResolved { kind, value, .. } => {
            obj.set("kind", kind.label()).set("value", value);
        }
        TraceEvent::CheckpointTaken {
            seq,
            entries,
            delta,
            ..
        } => {
            obj.set("seq", seq)
                .set("entries", entries)
                .set("delta", delta);
        }
        TraceEvent::CheckpointRestored { seq, entries, .. } => {
            obj.set("seq", seq).set("entries", entries);
        }
        TraceEvent::StateSpilled { input, entries, .. } => {
            obj.set("input", input).set("entries", entries);
        }
        TraceEvent::SubSessionOpened {
            subscriber,
            resume_seq,
            ..
        } => {
            obj.set("subscriber", subscriber)
                .set("resume_seq", resume_seq);
        }
        TraceEvent::SubSessionClosed {
            subscriber, clean, ..
        } => {
            obj.set("subscriber", subscriber).set("clean", clean);
        }
        TraceEvent::SubEpochDelivered {
            subscriber,
            epoch,
            frames,
            ..
        } => {
            obj.set("subscriber", subscriber)
                .set("epoch", epoch)
                .set("frames", frames);
        }
    }
    obj
}

/// Serialize events as JSON-lines: one object per line, oldest first.
pub fn to_jsonl<'a>(events: impl Iterator<Item = &'a TraceEvent>) -> String {
    let mut s = String::new();
    for e in events {
        let _ = writeln!(s, "{}", event_json(e));
    }
    s
}

/// The `trace_meta` trailer line: the ring's drop accounting, so a JSONL
/// consumer can tell a complete trace from one whose head was evicted.
pub fn trace_meta(ring: &crate::ring::EventRing) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{}",
        Json::object()
            .with("event", "trace_meta")
            .with("recorded", ring.recorded())
            .with("retained", ring.len() as u64)
            .with("dropped", ring.dropped())
    );
    s
}

/// Track id used for the merge/output lane in the Chrome trace.
const OUTPUT_TID: u32 = 0;

/// Shard lanes render above the input lanes: shard `s` is thread
/// `SHARD_TID_BASE + s` (inputs occupy `1..`, so shards stay clear of any
/// realistic input count).
const SHARD_TID_BASE: u32 = 1000;

/// Network session lanes render above the shard lanes: input `i`'s ingest
/// session is thread `NET_TID_BASE + i`, keeping socket-side events
/// (handshakes, credits, ring depth) visually separate from the same
/// input's virtual-time delivery lane.
const NET_TID_BASE: u32 = 2000;

/// Subscriber lanes render above the net lanes: subscriber `s`'s egress
/// session is thread `SUB_TID_BASE + s` (ids are folded into the lane
/// window so a million-subscriber run still renders).
const SUB_TID_BASE: u32 = 3000;

/// Fold a subscriber id into its chrome lane.
fn sub_tid(subscriber: u64) -> u32 {
    SUB_TID_BASE + (subscriber % 1000) as u32
}

fn chrome_instant(name: &str, ts: u64, tid: u32, args: Json) -> Json {
    Json::object()
        .with("name", name)
        .with("ph", "i")
        .with("s", "t")
        .with("ts", ts)
        .with("pid", 0u32)
        .with("tid", tid)
        .with("args", args)
}

fn chrome_counter_on(name: &str, ts: u64, tid: u32, value: i64) -> Json {
    Json::object()
        .with("name", name)
        .with("ph", "C")
        .with("ts", ts)
        .with("pid", 0u32)
        .with("tid", tid)
        .with("args", Json::object().with("value", value))
}

fn chrome_counter(name: &str, ts: u64, value: i64) -> Json {
    chrome_counter_on(name, ts, OUTPUT_TID, value)
}

/// Serialize events as a Chrome trace-event JSON document.
///
/// Timestamps map 1:1 — the format's `ts` is microseconds, exactly our
/// virtual clock. Input `i` renders on thread `i + 1`; the merge output on
/// thread 0. Stable points, queue depth, and memory render as counters so
/// the "who lags, who catches up" story is a picture, not a log-grep.
pub fn to_chrome_trace<'a>(events: impl Iterator<Item = &'a TraceEvent>) -> String {
    let mut trace: Vec<Json> = Vec::new();
    let mut named: Vec<u32> = Vec::new();
    let mut name_thread = |trace: &mut Vec<Json>, tid: u32, name: String| {
        if !named.contains(&tid) {
            named.push(tid);
            trace.push(
                Json::object()
                    .with("name", "thread_name")
                    .with("ph", "M")
                    .with("pid", 0u32)
                    .with("tid", tid)
                    .with("args", Json::object().with("name", name)),
            );
        }
    };
    name_thread(&mut trace, OUTPUT_TID, "merge output".to_string());

    for e in events {
        let ts = e.at().as_micros();
        match *e {
            TraceEvent::BatchDelivered {
                input,
                elements,
                data,
                ..
            } => {
                name_thread(&mut trace, input + 1, format!("input {input}"));
                trace.push(chrome_instant(
                    "batch",
                    ts,
                    input + 1,
                    Json::object().with("elements", elements).with("data", data),
                ));
            }
            TraceEvent::ElementEmitted { kind, vs, .. } => {
                trace.push(chrome_instant(
                    kind.label(),
                    ts,
                    OUTPUT_TID,
                    Json::object().with("vs", time_json(vs)),
                ));
            }
            TraceEvent::StablePointAdvanced { scope, stable, .. } => {
                let (name, tid) = match scope {
                    StableScope::Output => ("stable[output]".to_string(), OUTPUT_TID),
                    StableScope::Input(i) => {
                        name_thread(&mut trace, i + 1, format!("input {i}"));
                        (format!("stable[input {i}]"), i + 1)
                    }
                    StableScope::Shard(s) => {
                        name_thread(&mut trace, SHARD_TID_BASE + s, format!("shard {s}"));
                        (format!("stable[shard {s}]"), SHARD_TID_BASE + s)
                    }
                };
                if stable == Time::INFINITY || stable == Time::MIN {
                    trace.push(chrome_instant(
                        &name,
                        ts,
                        tid,
                        Json::object().with("stable", time_json(stable)),
                    ));
                } else {
                    trace.push(chrome_counter_on(&name, ts, tid, stable.0));
                }
            }
            TraceEvent::FeedbackPropagated { point, .. } => {
                trace.push(chrome_instant(
                    "feedback",
                    ts,
                    OUTPUT_TID,
                    Json::object().with("point", time_json(point)),
                ));
            }
            TraceEvent::QueueDepthSampled { staged, .. } => {
                trace.push(chrome_counter("staged batches", ts, staged as i64));
            }
            TraceEvent::MemorySampled { bytes, .. } => {
                trace.push(chrome_counter("memory bytes", ts, bytes as i64));
            }
            TraceEvent::InputDrained { input, .. } => {
                name_thread(&mut trace, input + 1, format!("input {input}"));
                trace.push(chrome_instant("drained", ts, input + 1, Json::object()));
            }
            TraceEvent::RunCompleted { .. } => {
                trace.push(chrome_instant(
                    "run complete",
                    ts,
                    OUTPUT_TID,
                    Json::object(),
                ));
            }
            TraceEvent::FaultInjected { input, kind, .. } => {
                name_thread(&mut trace, input + 1, format!("input {input}"));
                trace.push(chrome_instant(
                    &format!("fault[{}]", kind.label()),
                    ts,
                    input + 1,
                    Json::object().with("kind", kind.label()),
                ));
            }
            TraceEvent::InputHealthChanged { input, health, .. } => {
                name_thread(&mut trace, input + 1, format!("input {input}"));
                trace.push(chrome_instant(
                    &format!("health[{}]", health.label()),
                    ts,
                    input + 1,
                    Json::object().with("health", health.label()),
                ));
            }
            TraceEvent::ShardQueueSampled { shard, depth, .. } => {
                name_thread(&mut trace, SHARD_TID_BASE + shard, format!("shard {shard}"));
                trace.push(chrome_counter_on(
                    &format!("queue[shard {shard}]"),
                    ts,
                    SHARD_TID_BASE + shard,
                    depth as i64,
                ));
            }
            TraceEvent::SessionOpened {
                input, resume_seq, ..
            } => {
                name_thread(
                    &mut trace,
                    NET_TID_BASE + input,
                    format!("net input {input}"),
                );
                trace.push(chrome_instant(
                    "session open",
                    ts,
                    NET_TID_BASE + input,
                    Json::object().with("resume_seq", resume_seq),
                ));
            }
            TraceEvent::SessionClosed { input, clean, .. } => {
                name_thread(
                    &mut trace,
                    NET_TID_BASE + input,
                    format!("net input {input}"),
                );
                trace.push(chrome_instant(
                    if clean {
                        "session close"
                    } else {
                        "session lost"
                    },
                    ts,
                    NET_TID_BASE + input,
                    Json::object().with("clean", clean),
                ));
            }
            TraceEvent::CreditGranted { input, credits, .. } => {
                name_thread(
                    &mut trace,
                    NET_TID_BASE + input,
                    format!("net input {input}"),
                );
                trace.push(chrome_counter_on(
                    &format!("credits[input {input}]"),
                    ts,
                    NET_TID_BASE + input,
                    credits as i64,
                ));
            }
            TraceEvent::NetQueueSampled { input, depth, .. } => {
                name_thread(
                    &mut trace,
                    NET_TID_BASE + input,
                    format!("net input {input}"),
                );
                trace.push(chrome_counter_on(
                    &format!("queue[net input {input}]"),
                    ts,
                    NET_TID_BASE + input,
                    depth as i64,
                ));
            }
            TraceEvent::AlertFired {
                kind,
                severity,
                value,
                threshold,
                ..
            } => {
                trace.push(chrome_instant(
                    &format!("alert[{}]", kind.label()),
                    ts,
                    OUTPUT_TID,
                    Json::object()
                        .with("severity", severity.label())
                        .with("value", value)
                        .with("threshold", threshold),
                ));
            }
            TraceEvent::AlertResolved { kind, value, .. } => {
                trace.push(chrome_instant(
                    &format!("alert resolved[{}]", kind.label()),
                    ts,
                    OUTPUT_TID,
                    Json::object().with("value", value),
                ));
            }
            TraceEvent::CheckpointTaken {
                seq,
                entries,
                delta,
                ..
            } => {
                trace.push(chrome_instant(
                    if delta {
                        "checkpoint (delta)"
                    } else {
                        "checkpoint (snapshot)"
                    },
                    ts,
                    OUTPUT_TID,
                    Json::object().with("seq", seq).with("entries", entries),
                ));
            }
            TraceEvent::CheckpointRestored { seq, entries, .. } => {
                trace.push(chrome_instant(
                    "checkpoint restored",
                    ts,
                    OUTPUT_TID,
                    Json::object().with("seq", seq).with("entries", entries),
                ));
            }
            TraceEvent::StateSpilled { input, entries, .. } => {
                name_thread(&mut trace, input + 1, format!("input {input}"));
                trace.push(chrome_instant(
                    "state spilled",
                    ts,
                    input + 1,
                    Json::object().with("entries", entries),
                ));
            }
            TraceEvent::SubSessionOpened {
                subscriber,
                resume_seq,
                ..
            } => {
                name_thread(
                    &mut trace,
                    sub_tid(subscriber),
                    format!("subscriber {subscriber}"),
                );
                trace.push(chrome_instant(
                    "subscribe",
                    ts,
                    sub_tid(subscriber),
                    Json::object().with("resume_seq", resume_seq),
                ));
            }
            TraceEvent::SubSessionClosed {
                subscriber, clean, ..
            } => {
                name_thread(
                    &mut trace,
                    sub_tid(subscriber),
                    format!("subscriber {subscriber}"),
                );
                trace.push(chrome_instant(
                    if clean {
                        "subscriber close"
                    } else {
                        "subscriber lost"
                    },
                    ts,
                    sub_tid(subscriber),
                    Json::object().with("clean", clean),
                ));
            }
            TraceEvent::SubEpochDelivered {
                subscriber,
                epoch,
                frames,
                ..
            } => {
                name_thread(
                    &mut trace,
                    sub_tid(subscriber),
                    format!("subscriber {subscriber}"),
                );
                trace.push(chrome_instant(
                    &format!("epoch {epoch}"),
                    ts,
                    sub_tid(subscriber),
                    Json::object().with("epoch", epoch).with("frames", frames),
                ));
            }
        }
    }

    Json::object()
        .with("displayTimeUnit", "ms")
        .with("traceEvents", Json::Array(trace))
        .render_pretty()
}

fn fmt_time(t: Time) -> String {
    format!("{t}")
}

fn fmt_lag(l: i64) -> String {
    if l == i64::MAX {
        "∞".to_string()
    } else {
        l.to_string()
    }
}

/// Render the per-input lag/delivery summary table for a finished run.
pub fn summary(tracer: &Tracer) -> String {
    let lag = tracer.lag();
    let mut s = String::new();
    let _ = writeln!(s, "== trace summary ==");
    let _ = writeln!(
        s,
        "events recorded: {} (retained {}, dropped {})",
        tracer.ring().recorded(),
        tracer.ring().len(),
        tracer.ring().dropped()
    );
    let _ = writeln!(
        s,
        "output stable point: {} (advanced at {})",
        fmt_time(lag.output_stable()),
        lag.output_stable_at()
    );

    let header = [
        "input",
        "batches",
        "data",
        "stable",
        "behind",
        "max behind",
        "ffwd",
        "caught up",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, il) in lag.inputs().iter().enumerate() {
        rows.push(vec![
            i.to_string(),
            il.batches.to_string(),
            il.delivered.to_string(),
            fmt_time(il.stable),
            fmt_lag(lag.behind(i).unwrap_or(0)),
            fmt_lag(il.max_behind),
            il.fast_forwards.to_string(),
            il.caught_up_at
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in &rows {
        for (w, c) in widths.iter_mut().zip(row) {
            *w = (*w).max(c.chars().count());
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>width$}", width = *w + c.len() - c.chars().count()))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let _ = writeln!(
        s,
        "{}",
        line(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    for row in &rows {
        let _ = writeln!(s, "{}", line(row));
    }
    match lag.straggler() {
        Some((i, l)) => {
            let _ = writeln!(s, "straggler: input {i}, {} behind", fmt_lag(l));
        }
        None => {
            let _ = writeln!(s, "straggler: none (all inputs level with the output)");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ElementKind;
    use crate::json;
    use crate::sink::{TraceConfig, TraceSink, Tracer};
    use lmerge_temporal::VTime;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::BatchDelivered {
                at: VTime(10),
                input: 0,
                elements: 2,
                data: 2,
            },
            TraceEvent::ElementEmitted {
                at: VTime(12),
                kind: ElementKind::Insert,
                vs: Time(5),
            },
            TraceEvent::StablePointAdvanced {
                at: VTime(15),
                scope: StableScope::Input(1),
                stable: Time(9),
            },
            TraceEvent::StablePointAdvanced {
                at: VTime(16),
                scope: StableScope::Output,
                stable: Time::INFINITY,
            },
            TraceEvent::FeedbackPropagated {
                at: VTime(17),
                point: Time(9),
            },
            TraceEvent::QueueDepthSampled {
                at: VTime(18),
                staged: 3,
            },
            TraceEvent::MemorySampled {
                at: VTime(19),
                bytes: 4096,
            },
            TraceEvent::InputDrained {
                at: VTime(20),
                input: 0,
            },
            TraceEvent::RunCompleted { at: VTime(21) },
            TraceEvent::FaultInjected {
                at: VTime(22),
                input: 1,
                kind: crate::event::FaultKind::DropBatch,
            },
            TraceEvent::InputHealthChanged {
                at: VTime(23),
                input: 1,
                health: crate::event::HealthTag::Quarantined,
            },
            TraceEvent::StablePointAdvanced {
                at: VTime(24),
                scope: StableScope::Shard(2),
                stable: Time(11),
            },
            TraceEvent::ShardQueueSampled {
                at: VTime(25),
                shard: 2,
                depth: 5,
                capacity: 64,
            },
            TraceEvent::SessionOpened {
                at: VTime(26),
                input: 1,
                resume_seq: 40,
            },
            TraceEvent::CreditGranted {
                at: VTime(27),
                input: 1,
                credits: 16,
            },
            TraceEvent::NetQueueSampled {
                at: VTime(28),
                input: 1,
                depth: 3,
                capacity: 64,
            },
            TraceEvent::SessionClosed {
                at: VTime(29),
                input: 1,
                clean: true,
            },
            TraceEvent::AlertFired {
                at: VTime(30),
                kind: crate::event::AlertKind::WatermarkLag,
                severity: crate::event::Severity::Warn,
                value: 2500,
                threshold: 1000,
            },
            TraceEvent::AlertResolved {
                at: VTime(31),
                kind: crate::event::AlertKind::WatermarkLag,
                value: 12,
            },
            TraceEvent::CheckpointTaken {
                at: VTime(32),
                seq: 2,
                entries: 64,
                delta: false,
            },
            TraceEvent::CheckpointRestored {
                at: VTime(33),
                seq: 2,
                entries: 64,
            },
            TraceEvent::StateSpilled {
                at: VTime(34),
                input: 1,
                entries: 8,
            },
        ]
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let events = sample_events();
        let out = to_jsonl(events.iter());
        let lines: Vec<_> = out.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, e) in lines.iter().zip(&events) {
            let v = json::parse(line).expect("valid JSON");
            assert_eq!(v.get("event").and_then(Json::as_str), Some(e.name()));
            assert_eq!(
                v.get("at_us").and_then(Json::as_int),
                Some(e.at().as_micros() as i128)
            );
        }
        // Infinity serializes as a string, not a number.
        let stable_line = json::parse(lines[3]).unwrap();
        assert_eq!(
            stable_line.get("stable").and_then(Json::as_str),
            Some("inf")
        );
    }

    #[test]
    fn chrome_trace_is_valid_and_complete() {
        let events = sample_events();
        let out = to_chrome_trace(events.iter());
        let v = json::parse(&out).expect("valid JSON document");
        let trace = v
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // Every event produced at least one entry, plus thread metadata.
        assert!(trace.len() >= events.len());
        let phases: Vec<&str> = trace
            .iter()
            .map(|e| e.get("ph").and_then(Json::as_str).unwrap())
            .collect();
        assert!(phases.contains(&"M"), "thread names present");
        assert!(phases.contains(&"i"), "instants present");
        assert!(phases.contains(&"C"), "counters present");
        for e in trace {
            assert!(e.get("name").is_some_and(Json::is_string));
            if e.get("ph").and_then(Json::as_str) != Some("M") {
                assert!(
                    e.get("ts").and_then(Json::as_int).is_some(),
                    "timestamped: {e}"
                );
            }
        }
    }

    #[test]
    fn summary_names_the_straggler() {
        let mut t = Tracer::with_config(TraceConfig { capacity: 64 });
        t.record(TraceEvent::StablePointAdvanced {
            at: VTime(1),
            scope: StableScope::Input(0),
            stable: Time(100),
        });
        t.record(TraceEvent::StablePointAdvanced {
            at: VTime(1),
            scope: StableScope::Output,
            stable: Time(100),
        });
        t.record(TraceEvent::StablePointAdvanced {
            at: VTime(2),
            scope: StableScope::Input(1),
            stable: Time(25),
        });
        let s = t.summary();
        assert!(s.contains("straggler: input 1, 75 behind"), "got:\n{s}");
        assert!(s.contains("input"), "table header present");
    }

    #[test]
    fn summary_handles_empty_trace() {
        let t = Tracer::new();
        let s = t.summary();
        assert!(s.contains("events recorded: 0"));
        assert!(s.contains("straggler: none"));
    }
}
