//! A bounded, drop-oldest ring buffer for trace events.
//!
//! Long runs emit far more events than anyone wants to keep; the ring keeps
//! the *most recent* `capacity` of them and counts what it sheds, so memory
//! stays O(capacity) no matter how long the run is and the trace still says
//! how much history was lost.

use crate::event::TraceEvent;

/// Fixed-capacity event store with drop-oldest overflow.
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    /// Index of the oldest element when the ring is full.
    head: usize,
    capacity: usize,
    recorded: u64,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing {
            buf: Vec::new(),
            head: 0,
            capacity,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: TraceEvent) {
        self.recorded += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        let (tail, head) = self.buf.split_at(self.head);
        head.iter().chain(tail.iter())
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of events the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever pushed (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted to make room for newer ones.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Approximate heap footprint of the ring.
    pub fn memory_bytes(&self) -> usize {
        self.buf.capacity() * std::mem::size_of::<TraceEvent>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::VTime;

    fn ev(at: u64) -> TraceEvent {
        TraceEvent::RunCompleted { at: VTime(at) }
    }

    fn times(r: &EventRing) -> Vec<u64> {
        r.iter().map(|e| e.at().as_micros()).collect()
    }

    #[test]
    fn fills_in_order_below_capacity() {
        let mut r = EventRing::new(4);
        for t in 0..3 {
            r.push(ev(t));
        }
        assert_eq!(times(&r), vec![0, 1, 2]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.recorded(), 3);
    }

    #[test]
    fn drops_oldest_when_full() {
        let mut r = EventRing::new(3);
        for t in 0..7 {
            r.push(ev(t));
        }
        assert_eq!(times(&r), vec![4, 5, 6], "newest three survive, in order");
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 4);
        assert_eq!(r.recorded(), 7);
    }

    #[test]
    fn wraps_repeatedly() {
        let mut r = EventRing::new(2);
        for t in 0..100 {
            r.push(ev(t));
        }
        assert_eq!(times(&r), vec![98, 99]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.capacity(), 1);
        assert_eq!(times(&r), vec![2]);
    }

    #[test]
    fn empty_ring_iterates_nothing() {
        let r = EventRing::new(8);
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
    }
}
