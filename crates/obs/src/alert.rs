//! A small declarative SLO engine over the wall-clock metrics plane.
//!
//! Rules are data — a condition kind, a threshold, a severity — and the
//! engine evaluates them against live [`MetricsRegistry`] series. Alert
//! state lives in the registry itself (`lmerge_alert_active{rule=…}` and
//! `lmerge_alerts_fired_total{rule=…}`), so a scrape always carries the
//! current alert picture; transitions additionally fire typed
//! [`TraceEvent::AlertFired`] / [`TraceEvent::AlertResolved`] events into
//! whatever sink the caller provides, landing them in the JSONL and Chrome
//! exporters alongside the virtual-time trace.
//!
//! Evaluation is pull-based: call [`AlertEngine::evaluate`] on whatever
//! cadence suits — the scrape endpoint does it once per scrape, so the
//! alert series are exactly as fresh as the metrics they gate.

use crate::event::{AlertKind, Severity, TraceEvent};
use crate::metrics::{Counter, Gauge, MetricsRegistry};
use crate::sink::TraceSink;
use lmerge_temporal::VTime;

/// One declarative SLO rule.
#[derive(Clone, Copy, Debug)]
pub struct AlertRule {
    /// The watched condition.
    pub kind: AlertKind,
    /// How loudly to fire.
    pub severity: Severity,
    /// The threshold the observed value must exceed to fire. Units depend
    /// on the kind: wall ms for `WatermarkLag`, application-time units for
    /// `StragglerGap`, resumes per evaluation for `ResumeRate`, evicted
    /// events for `RingDrop`.
    pub threshold: i64,
}

impl AlertRule {
    /// Convenience constructor.
    pub fn new(kind: AlertKind, severity: Severity, threshold: i64) -> AlertRule {
        AlertRule {
            kind,
            severity,
            threshold,
        }
    }
}

/// A sensible default rule set for production ingest: warn on a watermark
/// stalled for 5 s, a straggler 10 000 application-time units behind, more
/// than 3 resumes between evaluations, or any trace-ring eviction.
pub fn default_rules() -> Vec<AlertRule> {
    vec![
        AlertRule::new(AlertKind::WatermarkLag, Severity::Warn, 5_000),
        AlertRule::new(AlertKind::StragglerGap, Severity::Warn, 10_000),
        AlertRule::new(AlertKind::ResumeRate, Severity::Warn, 3),
        AlertRule::new(AlertKind::RingDrop, Severity::Warn, 0),
    ]
}

struct RuleState {
    rule: AlertRule,
    active: bool,
    /// For rate rules: the counter total at the previous evaluation.
    last_total: f64,
    active_gauge: Gauge,
    fired_total: Counter,
}

/// Evaluates a rule set against a registry; fires transition events.
pub struct AlertEngine {
    registry: MetricsRegistry,
    rules: Vec<RuleState>,
    watermark_lag: Gauge,
}

impl AlertEngine {
    /// Build an engine over `registry`. Registers the per-rule alert
    /// series immediately so scrapes expose them (at zero) from the start.
    pub fn new(registry: &MetricsRegistry, rules: Vec<AlertRule>) -> AlertEngine {
        let states = rules
            .into_iter()
            .map(|rule| RuleState {
                active_gauge: registry.gauge(
                    "lmerge_alert_active",
                    "Whether this alert rule is currently firing (1) or not (0).",
                    &[
                        ("rule", rule.kind.label()),
                        ("severity", rule.severity.label()),
                    ],
                ),
                fired_total: registry.counter(
                    "lmerge_alerts_fired_total",
                    "Times this alert rule transitioned to firing.",
                    &[
                        ("rule", rule.kind.label()),
                        ("severity", rule.severity.label()),
                    ],
                ),
                rule,
                active: false,
                last_total: 0.0,
            })
            .collect();
        AlertEngine {
            rules: states,
            watermark_lag: registry.gauge(
                "lmerge_watermark_lag_ms",
                "Wall-clock ms since the output stable point last advanced.",
                &[],
            ),
            registry: registry.clone(),
        }
    }

    /// The observed value for one rule, or `None` when the source series
    /// does not exist yet (a rule never fires on missing data).
    fn observe(&mut self, idx: usize) -> Option<i64> {
        let kind = self.rules[idx].rule.kind;
        match kind {
            AlertKind::WatermarkLag => {
                let last = self
                    .registry
                    .max_value("lmerge_watermark_last_advance_ms")?;
                let lag = (self.registry.uptime_ms() as f64 - last).max(0.0) as i64;
                self.watermark_lag.set(lag);
                Some(lag)
            }
            AlertKind::StragglerGap => self
                .registry
                .max_value("lmerge_input_behind")
                .map(|v| v as i64),
            AlertKind::ResumeRate => {
                let total = self.registry.sum_value("lmerge_net_resumes_total")?;
                let delta = (total - self.rules[idx].last_total).max(0.0) as i64;
                self.rules[idx].last_total = total;
                Some(delta)
            }
            AlertKind::RingDrop => self
                .registry
                .max_value("lmerge_trace_ring_dropped_total")
                .map(|v| v as i64),
        }
    }

    /// Evaluate every rule once. Fires [`TraceEvent::AlertFired`] /
    /// [`TraceEvent::AlertResolved`] into `sink` on transitions; alert
    /// gauges/counters in the registry always reflect the latest pass.
    /// Returns the number of rules currently firing.
    pub fn evaluate(&mut self, sink: &mut (impl TraceSink + ?Sized)) -> usize {
        let now = VTime(self.registry.uptime_ms());
        let mut firing = 0;
        for idx in 0..self.rules.len() {
            let value = match self.observe(idx) {
                Some(v) => v,
                None => continue,
            };
            let state = &mut self.rules[idx];
            let breach = value > state.rule.threshold;
            if breach {
                firing += 1;
            }
            if breach && !state.active {
                state.active = true;
                state.active_gauge.set(1);
                state.fired_total.inc();
                if sink.enabled() {
                    sink.record(TraceEvent::AlertFired {
                        at: now,
                        kind: state.rule.kind,
                        severity: state.rule.severity,
                        value,
                        threshold: state.rule.threshold,
                    });
                }
            } else if !breach && state.active {
                state.active = false;
                state.active_gauge.set(0);
                if sink.enabled() {
                    sink.record(TraceEvent::AlertResolved {
                        at: now,
                        kind: state.rule.kind,
                        value,
                    });
                }
            }
        }
        firing
    }

    /// The rules this engine watches.
    pub fn rules(&self) -> impl Iterator<Item = &AlertRule> + '_ {
        self.rules.iter().map(|s| &s.rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Tracer;

    #[test]
    fn straggler_rule_fires_and_resolves() {
        let r = MetricsRegistry::new();
        let behind = r.gauge("lmerge_input_behind", "h", &[("input", "1")]);
        let mut engine = AlertEngine::new(
            &r,
            vec![AlertRule::new(
                AlertKind::StragglerGap,
                Severity::Critical,
                100,
            )],
        );
        let mut sink = Tracer::new();

        // Below threshold: nothing fires.
        behind.set(50);
        assert_eq!(engine.evaluate(&mut sink), 0);
        assert_eq!(sink.events().count(), 0);

        // Breach: one AlertFired, gauge flips, counter bumps.
        behind.set(500);
        assert_eq!(engine.evaluate(&mut sink), 1);
        assert_eq!(
            engine.evaluate(&mut sink),
            1,
            "steady breach does not re-fire"
        );
        let fired: Vec<_> = sink
            .events()
            .filter(|e| matches!(e, TraceEvent::AlertFired { .. }))
            .collect();
        assert_eq!(fired.len(), 1);
        match fired[0] {
            TraceEvent::AlertFired {
                kind: AlertKind::StragglerGap,
                severity: Severity::Critical,
                value: 500,
                threshold: 100,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.max_value("lmerge_alert_active"), Some(1.0));
        assert_eq!(r.max_value("lmerge_alerts_fired_total"), Some(1.0));

        // Recovery: one AlertResolved, gauge drops.
        behind.set(10);
        assert_eq!(engine.evaluate(&mut sink), 0);
        assert!(sink
            .events()
            .any(|e| matches!(e, TraceEvent::AlertResolved { .. })));
        assert_eq!(r.max_value("lmerge_alert_active"), Some(0.0));
    }

    #[test]
    fn resume_rate_is_a_delta_per_evaluation() {
        let r = MetricsRegistry::new();
        let resumes = r.counter("lmerge_net_resumes_total", "h", &[("input", "0")]);
        let mut engine = AlertEngine::new(
            &r,
            vec![AlertRule::new(AlertKind::ResumeRate, Severity::Warn, 2)],
        );
        let mut sink = Tracer::new();
        resumes.add(2);
        assert_eq!(engine.evaluate(&mut sink), 0, "2 resumes ≤ threshold 2");
        resumes.add(5);
        assert_eq!(engine.evaluate(&mut sink), 1, "5 new resumes > 2");
        assert_eq!(engine.evaluate(&mut sink), 0, "no new resumes → resolves");
    }

    #[test]
    fn missing_series_never_fires() {
        let r = MetricsRegistry::new();
        let mut engine = AlertEngine::new(&r, default_rules());
        let mut sink = Tracer::new();
        assert_eq!(engine.evaluate(&mut sink), 0);
        assert_eq!(sink.events().count(), 0);
        // The alert series still exist (at zero) for scrapes.
        assert_eq!(r.max_value("lmerge_alert_active"), Some(0.0));
    }

    #[test]
    fn ring_drop_rule_fires_on_any_eviction() {
        let r = MetricsRegistry::new();
        r.gauge("lmerge_trace_ring_dropped_total", "h", &[]).set(7);
        let mut engine = AlertEngine::new(
            &r,
            vec![AlertRule::new(AlertKind::RingDrop, Severity::Warn, 0)],
        );
        let mut sink = Tracer::new();
        assert_eq!(engine.evaluate(&mut sink), 1);
    }
}
