//! Per-input gauges for network ingestion (the lmerge-net subsystem).
//!
//! When inputs arrive over sockets rather than in-process queues, three
//! session-level diagnostics join the usual lag story, and [`NetGauges`]
//! folds them out of the trace stream the same way [`crate::ShardGauges`]
//! does for shards:
//!
//! * **Session churn** — each [`TraceEvent::SessionOpened`] /
//!   [`TraceEvent::SessionClosed`] pair is one connection lifetime; a
//!   reconnecting replica shows up as `sessions > 1` with the later opens
//!   carrying a non-zero resume sequence (the rejoin/catch-up story of
//!   Section V-B over a real socket).
//! * **Credit flow** — each [`TraceEvent::CreditGranted`] is backpressure
//!   in action: the server returning ring slots to the client. A starved
//!   total here means the merge (not the network) is the bottleneck.
//! * **Ring pressure** — [`TraceEvent::NetQueueSampled`] mirrors the shard
//!   queue samples for the per-connection ingest ring; occupancy near 1.0
//!   means the socket reader outruns the merge and credits are about to
//!   throttle the sender.

use crate::event::TraceEvent;

/// Running network-session diagnostics for one input.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetLag {
    /// Sessions opened for this input (reconnects increment this).
    pub sessions: u64,
    /// Sessions that ended with a clean `bye`.
    pub clean_closes: u64,
    /// Sessions that ended in a reset / mid-frame drop.
    pub lost_closes: u64,
    /// The resume sequence of the most recent session open (0 = fresh).
    pub last_resume_seq: u64,
    /// Total frame credits granted back to the client.
    pub credits_granted: u64,
    /// Number of credit grants (batching granularity diagnostic).
    pub credit_grants: u64,
    /// Latest sampled ingest-ring depth (decoded frames in flight).
    pub depth: u32,
    /// High-water ingest-ring depth across all samples.
    pub max_depth: u32,
    /// The ingest ring's capacity in slots (from the latest sample).
    pub capacity: u32,
    /// Number of ring samples folded in.
    pub samples: u64,
    /// Sum of sampled depths (for mean occupancy).
    depth_sum: u64,
}

impl NetLag {
    /// Latest ring occupancy in `[0, 1]` (0 before any sample).
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.depth as f64 / self.capacity as f64
        }
    }

    /// Mean ring occupancy over all samples.
    pub fn mean_occupancy(&self) -> f64 {
        if self.capacity == 0 || self.samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / (self.samples as f64 * self.capacity as f64)
        }
    }

    /// Whether a session is currently believed open (opens exceed closes).
    pub fn connected(&self) -> bool {
        self.sessions > self.clean_closes + self.lost_closes
    }
}

/// Gauges tracking every networked input's session, credit, and ring state.
#[derive(Clone, Debug, Default)]
pub struct NetGauges {
    inputs: Vec<NetLag>,
}

impl NetGauges {
    /// Gauges for `n` inputs (more are added on demand as events mention
    /// higher input ids).
    pub fn new(n: usize) -> NetGauges {
        NetGauges {
            inputs: vec![NetLag::default(); n],
        }
    }

    fn input_mut(&mut self, i: u32) -> &mut NetLag {
        let i = i as usize;
        if i >= self.inputs.len() {
            self.inputs.resize(i + 1, NetLag::default());
        }
        &mut self.inputs[i]
    }

    /// Update the gauges from one trace event. Unrelated events are
    /// ignored, so [`NetGauges`] can consume a full stream unfiltered.
    pub fn on_event(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::SessionOpened {
                input, resume_seq, ..
            } => {
                let nl = self.input_mut(input);
                nl.sessions += 1;
                nl.last_resume_seq = resume_seq;
            }
            TraceEvent::SessionClosed { input, clean, .. } => {
                let nl = self.input_mut(input);
                if clean {
                    nl.clean_closes += 1;
                } else {
                    nl.lost_closes += 1;
                }
            }
            TraceEvent::CreditGranted { input, credits, .. } => {
                let nl = self.input_mut(input);
                nl.credits_granted += credits as u64;
                nl.credit_grants += 1;
            }
            TraceEvent::NetQueueSampled {
                input,
                depth,
                capacity,
                ..
            } => {
                let nl = self.input_mut(input);
                nl.depth = depth;
                nl.max_depth = nl.max_depth.max(depth);
                nl.capacity = capacity;
                nl.samples += 1;
                nl.depth_sum += depth as u64;
            }
            _ => {}
        }
    }

    /// Per-input gauges, indexed by input id.
    pub fn inputs(&self) -> &[NetLag] {
        &self.inputs
    }

    /// Total reconnects across all inputs (sessions beyond each input's
    /// first) — the headline "how rough was the network" number.
    pub fn reconnects(&self) -> u64 {
        self.inputs
            .iter()
            .map(|n| n.sessions.saturating_sub(1))
            .sum()
    }

    /// The input with the highest mean ring occupancy — the connection
    /// most often throttled by backpressure. `None` before any sample.
    pub fn hottest(&self) -> Option<(usize, f64)> {
        (0..self.inputs.len())
            .filter(|&i| self.inputs[i].samples > 0)
            .map(|i| (i, self.inputs[i].mean_occupancy()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::VTime;

    #[test]
    fn sessions_and_reconnects() {
        let mut g = NetGauges::new(2);
        g.on_event(&TraceEvent::SessionOpened {
            at: VTime(0),
            input: 0,
            resume_seq: 0,
        });
        g.on_event(&TraceEvent::SessionClosed {
            at: VTime(5),
            input: 0,
            clean: false,
        });
        g.on_event(&TraceEvent::SessionOpened {
            at: VTime(6),
            input: 0,
            resume_seq: 42,
        });
        assert_eq!(g.inputs()[0].sessions, 2);
        assert_eq!(g.inputs()[0].lost_closes, 1);
        assert_eq!(g.inputs()[0].last_resume_seq, 42, "rejoin resumed mid-feed");
        assert!(g.inputs()[0].connected());
        assert_eq!(g.reconnects(), 1);
        assert_eq!(g.inputs()[1].sessions, 0, "untouched input stays zero");
    }

    #[test]
    fn credits_accumulate() {
        let mut g = NetGauges::default();
        for _ in 0..3 {
            g.on_event(&TraceEvent::CreditGranted {
                at: VTime(1),
                input: 1,
                credits: 16,
            });
        }
        assert_eq!(g.inputs()[1].credits_granted, 48);
        assert_eq!(g.inputs()[1].credit_grants, 3);
    }

    #[test]
    fn ring_occupancy_tracks_like_shard_gauges() {
        let mut g = NetGauges::new(1);
        for depth in [8, 32, 16] {
            g.on_event(&TraceEvent::NetQueueSampled {
                at: VTime(0),
                input: 0,
                depth,
                capacity: 64,
            });
        }
        assert_eq!(g.inputs()[0].depth, 16);
        assert_eq!(g.inputs()[0].max_depth, 32);
        assert_eq!(g.inputs()[0].occupancy(), 0.25);
        assert!((g.inputs()[0].mean_occupancy() - (56.0 / 192.0)).abs() < 1e-9);
        assert_eq!(g.hottest(), Some((0, 56.0 / 192.0)));
    }

    #[test]
    fn unrelated_events_are_ignored() {
        let mut g = NetGauges::default();
        g.on_event(&TraceEvent::RunCompleted { at: VTime(9) });
        assert!(g.inputs().is_empty());
        assert_eq!(g.reconnects(), 0);
        assert_eq!(g.hottest(), None);
    }
}
