//! The wall-clock telemetry plane: an atomic, shard-safe metrics registry
//! with Prometheus text exposition.
//!
//! Everything in [`event`](crate::event) is *virtual-time* tracing — exact,
//! deterministic, and consumed after a run. This module is the complement:
//! live series an operator can scrape *while* the system runs. The two
//! planes deliberately never mix: wall-clock phenomena (router stalls, real
//! watermark lag, socket byte counts) are nondeterministic across thread
//! schedules, so folding them into `TraceEvent`s would break the byte-
//! identical trace guarantees the conformance tests depend on. They live
//! here instead, behind plain atomics.
//!
//! * [`MetricsRegistry`] — cheaply clonable handle store. Registering the
//!   same name + label set twice returns the same underlying atomic, so
//!   shard workers and the scrape thread share series without coordination.
//! * [`Counter`] / [`Gauge`] / [`AtomicHistogram`] — lock-free handles;
//!   the histogram reuses [`LogHistogram`]'s bucketing behind `AtomicU64`s.
//! * [`MetricsRegistry::render`] — Prometheus text format (v0.0.4), with
//!   stable family and series ordering so expositions are golden-testable.
//! * [`parse_prometheus`] — the inverse, used by `lmerge-top` and tests.
//! * [`EngineMetrics`] / [`MeteredSink`] — the bridge from the virtual-time
//!   event stream into live series: wrap any [`TraceSink`] and every event
//!   is folded into counters/gauges on its way through, without altering
//!   the trace itself.

use crate::event::{ElementKind, HealthTag, StableScope, TraceEvent};
use crate::hist::{self, LogHistogram};
use crate::sink::TraceSink;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move in both directions.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the value by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raise the value to `v` if it is larger (monotonic max).
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }
}

/// [`LogHistogram`] bucketing behind atomics: the same 16-sub-buckets-per-
/// octave layout, recordable concurrently from shard workers and readable
/// from the scrape thread without locks.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    /// Initialized to `u64::MAX` so the first `fetch_min` wins.
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> AtomicHistogram {
        AtomicHistogram {
            counts: (0..hist::NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[hist::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy as a [`LogHistogram`] — quantiles, mean, and
    /// buckets come for free. Concurrent recording keeps the snapshot
    /// *consistent enough* for monitoring (fields are read independently).
    pub fn snapshot(&self) -> LogHistogram {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return LogHistogram::new();
        }
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        LogHistogram::from_parts(
            counts,
            count,
            self.sum.load(Ordering::Relaxed) as u128,
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }
}

/// A shareable histogram handle.
pub type Histogram = Arc<AtomicHistogram>;

/// The exposition type of a metric family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    /// Keyed by the canonical rendered label string for stable ordering.
    series: BTreeMap<String, Series>,
}

#[derive(Debug)]
struct Inner {
    start: Instant,
    families: Mutex<BTreeMap<String, Family>>,
}

/// The metric store: clone handles freely, register from any thread.
///
/// Registration takes the family lock; the returned [`Counter`] / [`Gauge`]
/// / [`Histogram`] handles are lock-free afterwards. Hot paths should
/// register once and cache the handle (see [`EngineMetrics`]).
#[derive(Clone, Debug)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl MetricsRegistry {
    /// An empty registry; the wall clock starts now.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::new(Inner {
                start: Instant::now(),
                families: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Milliseconds of monotonic wall time since the registry was created.
    /// This is the timestamp base of the whole wall-clock plane.
    pub fn uptime_ms(&self) -> u64 {
        self.inner.start.elapsed().as_millis() as u64
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
    ) -> Series {
        let key = label_key(labels);
        let mut families = self.inner.families.lock().unwrap();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} registered as {} and {}",
            family.kind.label(),
            kind.label()
        );
        family
            .series
            .entry(key)
            .or_insert_with(|| match kind {
                MetricKind::Counter => Series::Counter(Counter::default()),
                MetricKind::Gauge => Series::Gauge(Gauge::default()),
                MetricKind::Histogram => Series::Histogram(Arc::new(AtomicHistogram::new())),
            })
            .clone()
    }

    /// Get or create a counter series. The same name + labels always yields
    /// the same underlying atomic.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, MetricKind::Counter) {
            Series::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Get or create a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, MetricKind::Gauge) {
            Series::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Get or create a histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, labels, MetricKind::Histogram) {
            Series::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// All current counter/gauge values (histograms contribute `_count` and
    /// `_sum`), flattened for rule evaluation and tests.
    pub fn samples(&self) -> Vec<ScrapedSample> {
        let families = self.inner.families.lock().unwrap();
        let mut out = Vec::new();
        for (name, family) in families.iter() {
            for (key, series) in &family.series {
                let labels = parse_label_key(key);
                match series {
                    Series::Counter(c) => out.push(ScrapedSample {
                        name: name.clone(),
                        labels,
                        value: c.get() as f64,
                    }),
                    Series::Gauge(g) => out.push(ScrapedSample {
                        name: name.clone(),
                        labels,
                        value: g.get() as f64,
                    }),
                    Series::Histogram(h) => {
                        let snap = h.snapshot();
                        out.push(ScrapedSample {
                            name: format!("{name}_count"),
                            labels: labels.clone(),
                            value: snap.count() as f64,
                        });
                        out.push(ScrapedSample {
                            name: format!("{name}_sum"),
                            labels,
                            value: snap.mean() * snap.count() as f64,
                        });
                    }
                }
            }
        }
        out
    }

    /// The largest value across all series of a gauge/counter family, or
    /// `None` if the family has no series yet. What most alert rules want.
    pub fn max_value(&self, name: &str) -> Option<f64> {
        self.samples()
            .into_iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// The sum across all series of a family (e.g. total resumes over all
    /// inputs), or `None` if absent.
    pub fn sum_value(&self, name: &str) -> Option<f64> {
        let mut seen = false;
        let mut total = 0.0;
        for s in self.samples() {
            if s.name == name {
                seen = true;
                total += s.value;
            }
        }
        seen.then_some(total)
    }

    /// Render the Prometheus text exposition format (v0.0.4).
    ///
    /// Families sort by name and series by label string, so two renders of
    /// the same state are byte-identical — the golden test relies on this.
    pub fn render(&self) -> String {
        let families = self.inner.families.lock().unwrap();
        let mut s = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(s, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(s, "# TYPE {name} {}", family.kind.label());
            for (key, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(s, "{name}{key} {}", c.get());
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(s, "{name}{key} {}", g.get());
                    }
                    Series::Histogram(h) => render_histogram(&mut s, name, key, &h.snapshot()),
                }
            }
        }
        s
    }
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

/// Canonical label rendering: sorted by key, values escaped, `{}`-wrapped;
/// empty for the label-free series.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort();
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Parse a canonical label key back into pairs (registry-internal inverse
/// of [`label_key`]; values were escaped by us, so unescaping is exact).
fn parse_label_key(key: &str) -> Vec<(String, String)> {
    parse_labels(key).unwrap_or_default()
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// A histogram family member: cumulative `_bucket{le=…}` lines over the
/// non-empty buckets, then `+Inf`, `_sum`, and `_count`.
fn render_histogram(s: &mut String, name: &str, key: &str, snap: &LogHistogram) {
    let mut cum = 0u64;
    for (lo, c) in snap.buckets() {
        cum += c;
        // Our bucket holding lower bound `lo` covers integers up to the
        // next bucket's lower bound minus one — that is its inclusive `le`.
        let le = hist::bucket_lower_bound(hist::bucket_index(lo) + 1).saturating_sub(1);
        let _ = writeln!(s, "{name}_bucket{} {cum}", with_le(key, &le.to_string()));
    }
    let _ = writeln!(s, "{name}_bucket{} {}", with_le(key, "+Inf"), snap.count());
    let sum = snap.mean() * snap.count() as f64;
    let _ = writeln!(s, "{name}_sum{key} {}", fmt_value(sum));
    let _ = writeln!(s, "{name}_count{key} {}", snap.count());
}

/// Append `le="…"` to a canonical label key.
fn with_le(key: &str, le: &str) -> String {
    if key.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{},le=\"{le}\"}}", &key[..key.len() - 1])
    }
}

fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One parsed sample from a Prometheus text exposition.
#[derive(Clone, Debug, PartialEq)]
pub struct ScrapedSample {
    /// Metric name (histogram members keep their `_bucket`/`_sum`/`_count`
    /// suffix).
    pub name: String,
    /// Label pairs in exposition order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl ScrapedSample {
    /// The value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse a `{k="v",…}` label block (including the braces). Returns `None`
/// on malformed input.
fn parse_labels(block: &str) -> Option<Vec<(String, String)>> {
    let body = block.strip_prefix('{')?.strip_suffix('}')?;
    let mut pairs = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..].strip_prefix('"')?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, ch)) = chars.next() {
            match ch {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, c)) => value.push(c),
                    None => return None,
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        rest = &rest[end? + 1..];
        pairs.push((key, value));
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    Some(pairs)
}

/// Parse a Prometheus text exposition into flat samples. Comment and blank
/// lines are skipped; malformed lines are ignored rather than fatal, so a
/// live dashboard survives a partially written scrape.
pub fn parse_prometheus(text: &str) -> Vec<ScrapedSample> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => continue,
        };
        let value = if value == "+Inf" {
            f64::INFINITY
        } else {
            match value.parse::<f64>() {
                Ok(v) => v,
                Err(_) => continue,
            }
        };
        let (name, labels) = match series.find('{') {
            Some(brace) => match parse_labels(&series[brace..]) {
                Some(pairs) => (&series[..brace], pairs),
                None => continue,
            },
            None => (series, Vec::new()),
        };
        out.push(ScrapedSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    out
}

/// Per-input handle cache for [`EngineMetrics`].
#[derive(Clone, Debug)]
struct InputHandles {
    batches: Counter,
    elements: Counter,
    stable: Gauge,
    behind: Gauge,
    health: Gauge,
}

/// The virtual-time → wall-clock bridge: pre-registered handles for every
/// series the engine event stream feeds, with per-input caches so the hot
/// path never touches the registry lock.
#[derive(Clone, Debug)]
pub struct EngineMetrics {
    registry: MetricsRegistry,
    inputs: Vec<InputHandles>,
    emitted: [Counter; 3],
    faults: Counter,
    output_stable: Gauge,
    watermark_advances: Counter,
    watermark_last_advance_ms: Gauge,
    staged: Gauge,
    memory: Gauge,
    feedback: Counter,
    quarantines: Counter,
    demotions: Counter,
    /// `[snapshot, delta]` checkpoint counters.
    checkpoints: [Counter; 2],
    checkpoint_entries: Gauge,
    checkpoint_restores: Counter,
    spills: Counter,
    spilled_entries: Counter,
    shards: Vec<(Gauge, Gauge, Gauge)>,
    sessions: Vec<(Counter, Counter, Counter, Counter, Counter, Gauge)>,
    /// Output stable point, mirrored for the `behind` gauges.
    last_output_stable: i64,
    last_input_stable: Vec<i64>,
}

impl EngineMetrics {
    /// Pre-register the label-free families and return the bridge.
    pub fn new(registry: &MetricsRegistry) -> EngineMetrics {
        let r = registry.clone();
        EngineMetrics {
            emitted: [
                r.counter(
                    "lmerge_elements_emitted_total",
                    "Output elements emitted by the merge, by kind.",
                    &[("kind", ElementKind::Insert.label())],
                ),
                r.counter(
                    "lmerge_elements_emitted_total",
                    "Output elements emitted by the merge, by kind.",
                    &[("kind", ElementKind::Adjust.label())],
                ),
                r.counter(
                    "lmerge_elements_emitted_total",
                    "Output elements emitted by the merge, by kind.",
                    &[("kind", ElementKind::Stable.label())],
                ),
            ],
            faults: r.counter(
                "lmerge_faults_injected_total",
                "Fault-injection actions applied to the run.",
                &[],
            ),
            output_stable: r.gauge(
                "lmerge_output_stable",
                "The merged output's stable point (application time).",
                &[],
            ),
            watermark_advances: r.counter(
                "lmerge_watermark_advances_total",
                "Times the output stable point moved forward.",
                &[],
            ),
            watermark_last_advance_ms: r.gauge(
                "lmerge_watermark_last_advance_ms",
                "Wall-clock ms (since process metrics start) of the last output stable advance.",
                &[],
            ),
            staged: r.gauge(
                "lmerge_staged_batches",
                "Batches staged in the executor's delivery heap.",
                &[],
            ),
            memory: r.gauge(
                "lmerge_memory_bytes",
                "Estimated bytes held by the merge operator and queries.",
                &[],
            ),
            feedback: r.counter(
                "lmerge_feedback_propagated_total",
                "Feedback-point propagations back to the queries.",
                &[],
            ),
            quarantines: r.counter(
                "lmerge_quarantines_total",
                "Inputs demoted to quarantined by a robustness policy.",
                &[],
            ),
            demotions: r.counter(
                "lmerge_demotions_total",
                "Inputs detached (health transitioned to left).",
                &[],
            ),
            checkpoints: [
                r.counter(
                    "lmerge_checkpoints_total",
                    "Durable checkpoints taken, by persisted kind.",
                    &[("kind", "snapshot")],
                ),
                r.counter(
                    "lmerge_checkpoints_total",
                    "Durable checkpoints taken, by persisted kind.",
                    &[("kind", "delta")],
                ),
            ],
            checkpoint_entries: r.gauge(
                "lmerge_checkpoint_entries",
                "Live state entries captured by the most recent checkpoint.",
                &[],
            ),
            checkpoint_restores: r.counter(
                "lmerge_checkpoint_restores_total",
                "Runs rebuilt from a durable checkpoint.",
                &[],
            ),
            spills: r.counter(
                "lmerge_spills_total",
                "Robustness demotions that spilled state to a durable run.",
                &[],
            ),
            spilled_entries: r.counter(
                "lmerge_spilled_entries_total",
                "State entries written to durable spill runs.",
                &[],
            ),
            inputs: Vec::new(),
            shards: Vec::new(),
            sessions: Vec::new(),
            last_output_stable: i64::MIN,
            last_input_stable: Vec::new(),
            registry: r,
        }
    }

    /// The registry this bridge writes into.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    fn input(&mut self, i: u32) -> &InputHandles {
        let i = i as usize;
        while self.inputs.len() <= i {
            let n = self.inputs.len().to_string();
            let l: &[(&str, &str)] = &[("input", &n)];
            self.inputs.push(InputHandles {
                batches: self.registry.counter(
                    "lmerge_batches_delivered_total",
                    "Batches handed to the merge, per input.",
                    l,
                ),
                elements: self.registry.counter(
                    "lmerge_elements_delivered_total",
                    "Elements (data + punctuation) delivered, per input.",
                    l,
                ),
                stable: self.registry.gauge(
                    "lmerge_input_stable",
                    "Latest stable point announced by this input (application time).",
                    l,
                ),
                behind: self.registry.gauge(
                    "lmerge_input_behind",
                    "How far this input's stable point trails the output's (application time units).",
                    l,
                ),
                health: self.registry.gauge(
                    "lmerge_input_health",
                    "Input health: 0 active, 1 joining, 2 quarantined, 3 left.",
                    l,
                ),
            });
            self.last_input_stable.push(i64::MIN);
        }
        &self.inputs[i]
    }

    fn shard(&mut self, s: u32) -> &(Gauge, Gauge, Gauge) {
        let s = s as usize;
        while self.shards.len() <= s {
            let n = self.shards.len().to_string();
            let l: &[(&str, &str)] = &[("shard", &n)];
            self.shards.push((
                self.registry.gauge(
                    "lmerge_shard_queue_depth",
                    "Elements in flight in this shard's delivery ring.",
                    l,
                ),
                self.registry.gauge(
                    "lmerge_shard_queue_capacity",
                    "Slot capacity of this shard's delivery ring.",
                    l,
                ),
                self.registry.gauge(
                    "lmerge_shard_stable",
                    "This shard's local stable point (application time).",
                    l,
                ),
            ));
        }
        &self.shards[s]
    }

    fn session(&mut self, i: u32) -> &(Counter, Counter, Counter, Counter, Counter, Gauge) {
        let i = i as usize;
        while self.sessions.len() <= i {
            let n = self.sessions.len().to_string();
            let l: &[(&str, &str)] = &[("input", &n)];
            self.sessions.push((
                self.registry.counter(
                    "lmerge_net_sessions_opened_total",
                    "Ingest sessions accepted, per input.",
                    l,
                ),
                self.registry.counter(
                    "lmerge_net_resumes_total",
                    "Sessions that resumed from a nonzero sequence, per input.",
                    l,
                ),
                self.registry.counter(
                    "lmerge_net_session_closes_clean_total",
                    "Sessions ended by a clean bye, per input.",
                    l,
                ),
                self.registry.counter(
                    "lmerge_net_session_closes_lost_total",
                    "Sessions ended by connection loss, per input.",
                    l,
                ),
                self.registry.counter(
                    "lmerge_net_credits_granted_total",
                    "Frame credits granted back to the client, per input.",
                    l,
                ),
                self.registry.gauge(
                    "lmerge_net_queue_depth",
                    "Decoded frames in flight between socket and merge, per input.",
                    l,
                ),
            ));
        }
        &self.sessions[i]
    }

    /// Mirror the trace ring's drop counter into the scrapeable plane.
    pub fn set_ring_dropped(&self, dropped: u64) {
        self.registry
            .gauge(
                "lmerge_trace_ring_dropped_total",
                "Trace events evicted from the bounded ring before export.",
                &[],
            )
            .set(dropped as i64);
    }

    /// Fold one trace event into the live series.
    pub fn on_event(&mut self, e: &TraceEvent) {
        match *e {
            TraceEvent::BatchDelivered {
                input, elements, ..
            } => {
                let h = self.input(input);
                h.batches.inc();
                h.elements.add(elements as u64);
            }
            TraceEvent::ElementEmitted { kind, .. } => {
                let idx = match kind {
                    ElementKind::Insert => 0,
                    ElementKind::Adjust => 1,
                    ElementKind::Stable => 2,
                };
                self.emitted[idx].inc();
            }
            TraceEvent::StablePointAdvanced { scope, stable, .. } => {
                let v = clamp_time(stable.0);
                match scope {
                    StableScope::Output => {
                        self.last_output_stable = v;
                        self.output_stable.set(v);
                        self.watermark_advances.inc();
                        self.watermark_last_advance_ms
                            .set(self.registry.uptime_ms() as i64);
                        for i in 0..self.inputs.len() {
                            let in_stable = self.last_input_stable[i];
                            if in_stable != i64::MIN {
                                self.inputs[i].behind.set((v - in_stable).max(0));
                            }
                        }
                    }
                    StableScope::Input(i) => {
                        self.input(i).stable.set(v);
                        self.last_input_stable[i as usize] = v;
                        if self.last_output_stable != i64::MIN {
                            let behind = (self.last_output_stable - v).max(0);
                            self.inputs[i as usize].behind.set(behind);
                        }
                    }
                    StableScope::Shard(s) => {
                        self.shard(s).2.set(v);
                    }
                }
            }
            TraceEvent::FeedbackPropagated { .. } => self.feedback.inc(),
            TraceEvent::QueueDepthSampled { staged, .. } => self.staged.set(staged as i64),
            TraceEvent::MemorySampled { bytes, .. } => self.memory.set(bytes as i64),
            TraceEvent::InputDrained { .. } | TraceEvent::RunCompleted { .. } => {}
            TraceEvent::FaultInjected { .. } => self.faults.inc(),
            TraceEvent::InputHealthChanged { input, health, .. } => {
                let ordinal = match health {
                    HealthTag::Active => 0,
                    HealthTag::Joining => 1,
                    HealthTag::Quarantined => 2,
                    HealthTag::Left => 3,
                };
                self.input(input).health.set(ordinal);
                match health {
                    HealthTag::Quarantined => self.quarantines.inc(),
                    HealthTag::Left => self.demotions.inc(),
                    _ => {}
                }
            }
            TraceEvent::ShardQueueSampled {
                shard,
                depth,
                capacity,
                ..
            } => {
                let h = self.shard(shard);
                h.0.set(depth as i64);
                h.1.set(capacity as i64);
            }
            TraceEvent::SessionOpened {
                input, resume_seq, ..
            } => {
                let s = self.session(input);
                s.0.inc();
                if resume_seq > 0 {
                    s.1.inc();
                }
            }
            TraceEvent::SessionClosed { input, clean, .. } => {
                let s = self.session(input);
                if clean {
                    s.2.inc();
                } else {
                    s.3.inc();
                }
            }
            TraceEvent::CreditGranted { input, credits, .. } => {
                self.session(input).4.add(credits as u64);
            }
            TraceEvent::NetQueueSampled { input, depth, .. } => {
                self.session(input).5.set(depth as i64);
            }
            TraceEvent::AlertFired { .. } | TraceEvent::AlertResolved { .. } => {}
            TraceEvent::CheckpointTaken { entries, delta, .. } => {
                self.checkpoints[delta as usize].inc();
                self.checkpoint_entries.set(entries as i64);
            }
            TraceEvent::CheckpointRestored { .. } => self.checkpoint_restores.inc(),
            TraceEvent::StateSpilled { entries, .. } => {
                self.spills.inc();
                self.spilled_entries.add(entries);
            }
            // Subscription sessions keep their own registry series
            // (`SubMetrics` in `lmerge-sub`); the engine bridge stays
            // pinned to its golden exposition.
            TraceEvent::SubSessionOpened { .. }
            | TraceEvent::SubSessionClosed { .. }
            | TraceEvent::SubEpochDelivered { .. } => {}
        }
    }
}

/// Clamp the paper's ±∞ sentinels to something a gauge can carry.
fn clamp_time(t: i64) -> i64 {
    t.clamp(i64::MIN + 1, i64::MAX - 1)
}

/// A [`TraceSink`] adapter that folds every event into an [`EngineMetrics`]
/// bridge and then forwards it unchanged to the inner sink.
///
/// The trace plane stays byte-identical: events are not reordered,
/// rewritten, or augmented, and an inner [`NullSink`](crate::NullSink)
/// still records nothing — the wrapper only makes the executor construct
/// events so the live series fill in.
#[derive(Clone, Debug)]
pub struct MeteredSink<S> {
    inner: S,
    metrics: EngineMetrics,
}

impl<S: TraceSink> MeteredSink<S> {
    /// Wrap `inner`, folding events into `metrics` on the way through.
    pub fn new(inner: S, metrics: EngineMetrics) -> MeteredSink<S> {
        MeteredSink { inner, metrics }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwrap, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The metrics bridge.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }
}

impl<S: TraceSink> TraceSink for MeteredSink<S> {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        self.metrics.on_event(&event);
        if self.inner.enabled() {
            self.inner.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::NullSink;
    use lmerge_temporal::{Time, VTime};

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = MetricsRegistry::new();
        let c = r.counter("t_total", "h", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name + labels → same atomic.
        let c2 = r.counter("t_total", "h", &[]);
        c2.inc();
        assert_eq!(c.get(), 6);
        let g = r.gauge("g", "h", &[("input", "0")]);
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.set_max(5);
        assert_eq!(g.get(), 7);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn atomic_histogram_matches_log_histogram() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat", "h", &[]);
        let mut reference = LogHistogram::new();
        for v in [1u64, 5, 100, 1000, 65_536, 3] {
            h.record(v);
            reference.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), reference.count());
        assert_eq!(snap.min(), reference.min());
        assert_eq!(snap.max(), reference.max());
        for q in [0.0, 0.5, 0.9, 1.0] {
            assert_eq!(snap.quantile(q), reference.quantile(q), "q={q}");
        }
    }

    #[test]
    fn render_is_stable_and_escaped() {
        let r = MetricsRegistry::new();
        r.counter("b_total", "second family", &[("z", "1"), ("a", "x")])
            .inc();
        r.gauge(
            "a_gauge",
            "first \"family\"\nwith newline",
            &[("path", "c:\\tmp")],
        )
        .set(-4);
        let one = r.render();
        let two = r.render();
        assert_eq!(one, two, "render is deterministic");
        assert!(
            one.starts_with("# HELP a_gauge"),
            "families sort by name:\n{one}"
        );
        assert!(one.contains("first \"family\"\\nwith newline"));
        assert!(one.contains("a_gauge{path=\"c:\\\\tmp\"} -4"));
        assert!(
            one.contains("b_total{a=\"x\",z=\"1\"} 1"),
            "labels sort by key:\n{one}"
        );
    }

    #[test]
    fn parse_inverts_render() {
        let r = MetricsRegistry::new();
        r.counter("c_total", "h", &[("input", "0")]).add(3);
        r.gauge("g", "h", &[]).set(-7);
        r.histogram("lat", "h", &[("input", "1")]).record(100);
        let samples = parse_prometheus(&r.render());
        let c = samples.iter().find(|s| s.name == "c_total").unwrap();
        assert_eq!(c.label("input"), Some("0"));
        assert_eq!(c.value, 3.0);
        let g = samples.iter().find(|s| s.name == "g").unwrap();
        assert_eq!(g.value, -7.0);
        let count = samples.iter().find(|s| s.name == "lat_count").unwrap();
        assert_eq!(count.value, 1.0);
        let inf = samples
            .iter()
            .find(|s| s.name == "lat_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 1.0);
    }

    #[test]
    fn engine_bridge_folds_events() {
        let r = MetricsRegistry::new();
        let mut m = EngineMetrics::new(&r);
        m.on_event(&TraceEvent::BatchDelivered {
            at: VTime(1),
            input: 2,
            elements: 5,
            data: 4,
        });
        m.on_event(&TraceEvent::StablePointAdvanced {
            at: VTime(2),
            scope: StableScope::Input(2),
            stable: Time(40),
        });
        m.on_event(&TraceEvent::StablePointAdvanced {
            at: VTime(3),
            scope: StableScope::Output,
            stable: Time(100),
        });
        m.on_event(&TraceEvent::InputHealthChanged {
            at: VTime(4),
            input: 2,
            health: HealthTag::Quarantined,
        });
        assert_eq!(r.max_value("lmerge_batches_delivered_total"), Some(1.0));
        assert_eq!(r.max_value("lmerge_elements_delivered_total"), Some(5.0));
        assert_eq!(r.max_value("lmerge_output_stable"), Some(100.0));
        assert_eq!(r.max_value("lmerge_input_behind"), Some(60.0));
        assert_eq!(r.max_value("lmerge_quarantines_total"), Some(1.0));
        assert_eq!(r.max_value("lmerge_input_health"), Some(2.0));
    }

    #[test]
    fn engine_bridge_folds_durability_events() {
        let r = MetricsRegistry::new();
        let mut m = EngineMetrics::new(&r);
        m.on_event(&TraceEvent::CheckpointTaken {
            at: VTime(1),
            seq: 0,
            entries: 12,
            delta: false,
        });
        m.on_event(&TraceEvent::CheckpointTaken {
            at: VTime(2),
            seq: 1,
            entries: 15,
            delta: true,
        });
        m.on_event(&TraceEvent::CheckpointRestored {
            at: VTime(3),
            seq: 1,
            entries: 15,
        });
        m.on_event(&TraceEvent::StateSpilled {
            at: VTime(4),
            input: 0,
            entries: 8,
        });
        assert_eq!(r.sum_value("lmerge_checkpoints_total"), Some(2.0));
        assert_eq!(r.max_value("lmerge_checkpoint_entries"), Some(15.0));
        assert_eq!(r.max_value("lmerge_checkpoint_restores_total"), Some(1.0));
        assert_eq!(r.max_value("lmerge_spills_total"), Some(1.0));
        assert_eq!(r.max_value("lmerge_spilled_entries_total"), Some(8.0));
    }

    #[test]
    fn metered_sink_forwards_unchanged() {
        let r = MetricsRegistry::new();
        let mut s = MeteredSink::new(NullSink, EngineMetrics::new(&r));
        assert!(s.enabled(), "metered sink forces event construction");
        s.record(TraceEvent::RunCompleted { at: VTime(9) });
        s.record(TraceEvent::FeedbackPropagated {
            at: VTime(10),
            point: Time(3),
        });
        assert_eq!(r.max_value("lmerge_feedback_propagated_total"), Some(1.0));
    }
}
