//! A minimal Prometheus scrape endpoint over std's `TcpListener`.
//!
//! [`MetricsServer`] binds a side listener, answers `GET /metrics` with the
//! registry's text exposition, and — when an [`AlertEngine`] is attached —
//! evaluates the SLO rules once per scrape, so the alert series a scraper
//! sees are exactly as fresh as the metrics in the same response. The
//! protocol support is deliberately HTTP/1.0-minimal (one request, one
//! response, close): enough for Prometheus, `curl`, and `lmerge-top`,
//! without pulling an HTTP stack into an offline build.

use crate::alert::AlertEngine;
use crate::metrics::MetricsRegistry;
use crate::sink::TraceSink;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Alert evaluation attached to a scrape endpoint: the engine plus the
/// sink its transition events are recorded into.
pub struct ScrapeAlerts {
    /// The rule engine, evaluated once per scrape.
    pub engine: AlertEngine,
    /// Where `AlertFired` / `AlertResolved` events land (shared with
    /// whoever exports the trace afterwards).
    pub sink: Arc<Mutex<dyn TraceSink + Send>>,
}

/// A background scrape endpoint for one [`MetricsRegistry`].
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `registry` until the
    /// server is dropped.
    pub fn bind(addr: impl ToSocketAddrs, registry: MetricsRegistry) -> io::Result<MetricsServer> {
        MetricsServer::bind_inner(addr, registry, None)
    }

    /// Like [`bind`](MetricsServer::bind), additionally evaluating the SLO
    /// rules once per scrape.
    pub fn bind_with_alerts(
        addr: impl ToSocketAddrs,
        registry: MetricsRegistry,
        alerts: ScrapeAlerts,
    ) -> io::Result<MetricsServer> {
        MetricsServer::bind_inner(addr, registry, Some(alerts))
    }

    fn bind_inner(
        addr: impl ToSocketAddrs,
        registry: MetricsRegistry,
        alerts: Option<ScrapeAlerts>,
    ) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = shutdown.clone();
        let uptime = registry.gauge(
            "lmerge_uptime_ms",
            "Wall-clock ms since the metrics registry was created.",
            &[],
        );
        let mut alerts = alerts;
        let handle = thread::Builder::new()
            .name("lmerge-metrics".to_string())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            uptime.set(registry.uptime_ms() as i64);
                            if let Some(a) = alerts.as_mut() {
                                let mut sink = a.sink.lock().unwrap();
                                a.engine.evaluate(&mut *sink);
                            }
                            let _ = serve_one(stream, &registry);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(10)),
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Answer one connection: any `GET` gets the exposition, anything else a
/// 405. Errors are per-connection and never take the server down.
fn serve_one(mut stream: TcpStream, registry: &MetricsRegistry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut request = [0u8; 1024];
    let n = stream.read(&mut request).unwrap_or(0);
    let head = String::from_utf8_lossy(&request[..n]);
    let (status, body) = if head.starts_with("GET") || head.is_empty() {
        ("200 OK", registry.render())
    } else {
        ("405 Method Not Allowed", String::new())
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Scrape a metrics endpoint once and return the exposition body — the
/// client half used by `lmerge-top`, CI, and tests.
pub fn scrape(addr: impl ToSocketAddrs) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.0 200") => Ok(body.to_string()),
        Some((head, _)) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("scrape failed: {}", head.lines().next().unwrap_or("")),
        )),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "no HTTP header boundary in response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::AlertRule;
    use crate::event::{AlertKind, Severity};
    use crate::metrics::parse_prometheus;
    use crate::sink::Tracer;

    #[test]
    fn scrape_roundtrips_registry_contents() {
        let registry = MetricsRegistry::new();
        registry
            .counter("demo_total", "a demo counter", &[("input", "0")])
            .add(5);
        let server = MetricsServer::bind("127.0.0.1:0", registry).unwrap();
        let body = scrape(server.local_addr()).unwrap();
        let samples = parse_prometheus(&body);
        let c = samples.iter().find(|s| s.name == "demo_total").unwrap();
        assert_eq!(c.value, 5.0);
        assert_eq!(c.label("input"), Some("0"));
        assert!(samples.iter().any(|s| s.name == "lmerge_uptime_ms"));
    }

    #[test]
    fn scrape_evaluates_alert_rules() {
        let registry = MetricsRegistry::new();
        registry
            .gauge("lmerge_input_behind", "h", &[("input", "2")])
            .set(9_999);
        let engine = AlertEngine::new(
            &registry,
            vec![AlertRule::new(AlertKind::StragglerGap, Severity::Warn, 100)],
        );
        let sink: Arc<Mutex<dyn TraceSink + Send>> = Arc::new(Mutex::new(Tracer::new()));
        let server = MetricsServer::bind_with_alerts(
            "127.0.0.1:0",
            registry,
            ScrapeAlerts {
                engine,
                sink: sink.clone(),
            },
        )
        .unwrap();
        let body = scrape(server.local_addr()).unwrap();
        let samples = parse_prometheus(&body);
        let active = samples
            .iter()
            .find(|s| s.name == "lmerge_alert_active" && s.label("rule") == Some("straggler_gap"))
            .expect("alert series present");
        assert_eq!(active.value, 1.0, "rule fired during the scrape");
    }

    #[test]
    fn non_get_is_rejected() {
        let registry = MetricsRegistry::new();
        let server = MetricsServer::bind("127.0.0.1:0", registry).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 405"), "got: {response}");
    }
}
