//! Subscriber fan-out scaling: amortized per-subscriber CPU as the
//! subscriber count grows from 1 to 1024 over loopback TCP.
//!
//! Not a paper figure — it measures the lmerge-sub subsystem's central
//! claim: because the merged output is wire-encoded **once per epoch**
//! and fanned out as ranged writes from shared refcounted segments, the
//! marginal cost of one more subscriber is a socket write, not another
//! encoding pass. If that holds, total delivery throughput (frames
//! delivered across all subscribers per CPU-second, `eps` below) grows
//! roughly linearly with N — equivalently, amortized per-subscriber CPU
//! stays flat. The acceptance bar gated by `check_regression` is the
//! ISSUE's: per-subscriber CPU at N=256 within 1.15x of N=16, i.e.
//! `eps(sub@N256) >= eps(sub@N16) / 1.15`.
//!
//! CPU is process CPU time (utime+stime from `/proc/self/stat`), not
//! wall clock: the sweep runs producer, server sessions, and all N
//! in-process subscriber clients on whatever cores exist, and CPU time
//! is what the shared-encoding design actually economizes.

use crate::report::{fmt_eps, MetricsRecord};
use crate::{scale_events, Report, VariantKind};
use lmerge_engine::{MergeRun, Query, RunConfig, RunMetrics, TimedElement};
use lmerge_gen::{assign_times, generate, GenConfig};
use lmerge_net::egress::NetHooks;
use lmerge_obs::NullSink;
use lmerge_sub::{subscribe, BroadcastHooks, EpochBuffer, SubConfig, SubPolicy, SubServer};
use lmerge_temporal::Value;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// One measured subscriber count.
pub struct SubPoint {
    /// Row label (also the metrics label), e.g. `sub@N256`.
    pub label: String,
    /// Concurrent loopback subscribers.
    pub subscribers: usize,
    /// Frames each subscriber received (identical across subscribers).
    pub frames_per_sub: u64,
    /// Frames delivered across all subscribers.
    pub delivered: u64,
    /// Process CPU seconds consumed by the whole point.
    pub cpu_s: f64,
    /// Wall clock for the record (informational; CPU is the metric).
    pub wall_s: f64,
    /// `delivered / cpu_s` — total delivery throughput per CPU-second.
    /// Flat per-subscriber CPU shows up as eps growing with N.
    pub eps: f64,
    /// Producer-side executor metrics (deterministic gate fields).
    pub metrics: RunMetrics,
}

/// Sweep result.
pub struct SubScaling {
    pub points: Vec<SubPoint>,
    /// Headline record per point, for `BENCH_sub_scaling.json`.
    pub metrics: Vec<(String, MetricsRecord)>,
}

/// Process CPU time in clock ticks: utime + stime from `/proc/self/stat`
/// (fields 14 and 15; the comm field may contain spaces, so split after
/// the closing paren).
fn cpu_ticks() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    let after_comm = stat.rsplit_once(')').map(|(_, t)| t).unwrap_or("");
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    let utime: u64 = fields.get(11).and_then(|s| s.parse().ok()).unwrap_or(0);
    let stime: u64 = fields.get(12).and_then(|s| s.parse().ok()).unwrap_or(0);
    utime + stime
}

/// Linux USER_HZ. The bar is a ratio of CPU times, so only the report's
/// human-readable seconds depend on this being the (near-universal) 100.
const TICKS_PER_SEC: f64 = 100.0;

/// The single timed feed every point replays: one logical stream with
/// stable punctuation every ~50 events, so the broadcast buffer seals
/// realistic epoch sizes.
fn feed(events: usize) -> Vec<TimedElement<Value>> {
    let cfg = GenConfig {
        num_events: events,
        disorder: 0.05,
        stable_freq: 0.02,
        payload_len: 32,
        ..Default::default()
    };
    let reference = generate(&cfg);
    assign_times(&reference.elements, 50_000.0)
        .into_iter()
        .map(|(at, e)| TimedElement::new(at, e))
        .collect()
}

/// Run one point: fan the merged output of `feed` out to `n` loopback
/// subscribers, measuring process CPU across produce + deliver + drain.
pub fn run_point(feed: &[TimedElement<Value>], n: usize) -> SubPoint {
    // Unbounded retention: the N subscribers connect while the producer
    // is already publishing, and each must still see sequence 0 — the
    // fast subscribers' acks must not compact epochs out from under the
    // ones whose handshake lands a beat later.
    let policy = SubPolicy {
        retain_min_epochs: u64::MAX,
        ..SubPolicy::default()
    };
    let buf = Arc::new(EpochBuffer::new(policy));
    let mut server =
        SubServer::bind("127.0.0.1:0", Arc::clone(&buf), SubConfig::new()).expect("bind");
    let addr = server.local_addr().to_string();

    let ticks0 = cpu_ticks();
    let start = Instant::now();
    let clients: Vec<_> = (0..n)
        .map(|i| {
            let addr = addr.clone();
            // Small stacks: at N=1024 the default 2 MiB/thread is pure
            // address-space noise for a socket-drain loop.
            thread::Builder::new()
                .stack_size(128 * 1024)
                .spawn(move || {
                    // A window wide enough to never stall mid-stream:
                    // the figure measures fan-out CPU, not backpressure
                    // wakeup scheduling (tiny-credit correctness is
                    // covered by the sub crate's tests).
                    let config = lmerge_sub::SubscribeConfig::new(i as u64).with_credits(4096);
                    let outcome = subscribe(&addr, &config).expect("subscriber");
                    assert!(
                        outcome.clean && outcome.finished,
                        "unclean subscriber {i}: received={} finished={} clean={} \
                         demotions={} resumed_from={}",
                        outcome.received,
                        outcome.finished,
                        outcome.clean,
                        outcome.demotions,
                        outcome.resumed_from
                    );
                    outcome.received
                })
                .expect("spawn subscriber")
        })
        .collect();

    let queries = vec![Query::passthrough(feed.to_vec())];
    let mut hooks = BroadcastHooks::wrap(NetHooks::streaming(lmerge_engine::NoHooks), buf);
    let metrics = MergeRun::new(queries, VariantKind::R3Plus.build(1), RunConfig::default())
        .run_with_hooks(&mut NullSink, &mut hooks);
    hooks.finish();

    let received: Vec<u64> = clients
        .into_iter()
        .map(|c| c.join().expect("join"))
        .collect();
    let wall_s = start.elapsed().as_secs_f64();
    let cpu_s = (cpu_ticks() - ticks0) as f64 / TICKS_PER_SEC;
    server.shutdown();

    let frames_per_sub = received[0];
    assert!(
        received.iter().all(|&r| r == frames_per_sub),
        "subscribers disagree on the stream length"
    );
    let delivered: u64 = received.iter().sum();
    SubPoint {
        label: format!("sub@N{n}"),
        subscribers: n,
        frames_per_sub,
        delivered,
        cpu_s,
        wall_s,
        // Guard against tick-granularity zero on tiny points.
        eps: delivered as f64 / cpu_s.max(1.0 / TICKS_PER_SEC),
        metrics,
    }
}

/// Run the sweep over `counts` subscribers with `events` source events.
///
/// Each point runs several times — small points repeat until they cover
/// ~256 subscriber-streams so their CPU numbers accumulate enough clock
/// ticks to rise above USER_HZ quantization, and every point runs at
/// least thrice — and reports its **best** (lowest-CPU) repeat: the
/// intrinsic fan-out cost, with scheduler noise from a shared host
/// filtered out rather than averaged in.
pub fn run(events: usize, counts: &[usize]) -> SubScaling {
    let feed = feed(events);
    let mut points = Vec::new();
    let mut records = Vec::new();
    for &n in counts {
        // One group covers ~256 subscriber-streams (so its CPU time is
        // many clock ticks); three groups, keep the cheapest.
        let group = (256 / n).max(1);
        let measure_group = || {
            let mut p = run_point(&feed, n);
            for _ in 1..group {
                let next = run_point(&feed, n);
                p.delivered += next.delivered;
                p.cpu_s += next.cpu_s;
                p.wall_s += next.wall_s;
            }
            p.eps = p.delivered as f64 / p.cpu_s.max(1.0 / TICKS_PER_SEC);
            p
        };
        let mut best = measure_group();
        for _ in 1..3 {
            let next = measure_group();
            if next.eps > best.eps {
                best = next;
            }
        }
        let mut record = MetricsRecord::from_run(&best.metrics);
        // The headline number of *this* figure is fan-out throughput per
        // CPU-second, not the producer's virtual-time rate.
        record.throughput_eps = best.eps;
        records.push((best.label.clone(), record));
        points.push(best);
    }
    SubScaling {
        points,
        metrics: records,
    }
}

/// Build the printable report.
pub fn report() -> Report {
    let events = scale_events(1_500);
    let result = run(events, &[1, 16, 256, 1024]);
    let mut report = Report::new(
        "sub_scaling",
        "Subscriber fan-out scaling: shared epoch encoding over loopback TCP",
        &[
            "config",
            "subs",
            "frames/sub",
            "delivered",
            "cpu",
            "wall",
            "eps/cpu-s",
        ],
    );
    for p in &result.points {
        report.row(&[
            p.label.clone(),
            p.subscribers.to_string(),
            p.frames_per_sub.to_string(),
            p.delivered.to_string(),
            format!("{:.2}s", p.cpu_s),
            format!("{:.2}s", p.wall_s),
            fmt_eps(p.eps),
        ]);
    }
    report.note(format!(
        "{events} source events, stable every ~50 (epoch granularity); each point \
         re-fans the same merged stream out to N in-process loopback subscribers \
         (credits 4096, 128 KiB client stacks)"
    ));
    report.note(
        "eps = frames delivered across all subscribers per process-CPU-second; \
         shared per-epoch encoding makes it grow ~linearly with N (flat amortized \
         per-subscriber CPU). check_regression enforces the committed \
         eps(sub@N256) >= eps(sub@N16)/1.15 bar",
    );
    for (label, m) in &result.metrics {
        report.metric(label.clone(), *m);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_delivers_everything_to_every_subscriber() {
        let r = run(600, &[1, 4]);
        assert_eq!(r.points.len(), 2);
        let (one, four) = (&r.points[0], &r.points[1]);
        assert_eq!(
            one.frames_per_sub, four.frames_per_sub,
            "the stream does not depend on the subscriber count"
        );
        assert!(one.frames_per_sub > 0, "the sweep is vacuous");
        assert_eq!(four.delivered, 4 * four.frames_per_sub);
        // The producer-side gate fields are fan-out-invariant.
        assert_eq!(
            one.metrics.merge.adjusts_out,
            four.metrics.merge.adjusts_out
        );
        assert_eq!(one.metrics.peak_memory, four.metrics.peak_memory);
    }
}
