//! Checkpoint overhead: throughput of the LMR3+ hot path with and without
//! periodic durable checkpointing.
//!
//! Not a paper figure — it prices the durability layer. The checkpointed
//! drive does real persistence: every [`CK_EVERY`] elements it exports
//! the full merge state, wraps it in a [`RunImage`], and saves it through
//! a [`CheckpointStore`] — so the measured cost includes state export,
//! snapshot/delta encoding, checksumming, and the atomic file write.
//!
//! The workload is the steady-state pipeline shape: ordered streams with
//! short-lived events and frequent punctuation, so the live window (and
//! with it every snapshot) stays bounded the way a healthy production
//! merge's does. Checkpoint cost is proportional to live state — fig2's
//! deliberately huge 30-second live window measures memory, not overhead.
//! The acceptance bar — checkpointed throughput at least 0.90x the bare
//! drive — is enforced by `check_regression` on the committed
//! `BENCH_checkpoint_overhead.json`, so the gate itself is timing-free at
//! check time.

use crate::report::{fmt_eps, MetricsRecord};
use crate::{scale_events, Report};
use lmerge_core::{LMergeR3, LogicalMerge};
use lmerge_durable::CheckpointStore;
use lmerge_engine::{EgressImage, ExecutorImage, RunImage};
use lmerge_gen::{assign_times, generate, GenConfig};
use lmerge_temporal::{Element, StreamId, Time, VTime, Value};
use std::path::PathBuf;
use std::time::Instant;

/// Inputs feeding the measured operator (fig2's middle point).
pub const INPUTS: usize = 4;

/// Elements between checkpoints in the durable drive — a few cuts per
/// second at hot-path rates, which is already far more aggressive than a
/// production seconds-scale cadence. At the default 60k-events scale this
/// lands 6 cuts per trial: snapshot, a full delta chain, and the forced
/// mid-run re-snapshot — every branch of the store's cadence.
const CK_EVERY: u64 = 40_960;

/// Sweep result.
pub struct CheckpointOverhead {
    /// Elements in the global feed.
    pub elements: u64,
    /// Best-of-trials throughput of the bare drive.
    pub bare_eps: f64,
    /// Best-of-trials throughput with periodic durable checkpoints.
    pub checkpointed_eps: f64,
    /// `checkpointed / bare` — 1.0 means free.
    pub ratio: f64,
    /// Checkpoints written per trial (snapshots + deltas).
    pub cuts: u64,
    /// Headline record per drive, for `BENCH_checkpoint_overhead.json`.
    pub metrics: Vec<(String, MetricsRecord)>,
}

/// The steady-state workload: ordered, insert-only, short event lifetimes
/// and frequent stables, so the live window stays a few dozen entries.
fn steady_workload(events: usize) -> GenConfig {
    GenConfig {
        num_events: events,
        disorder: 0.0,
        disorder_window_ms: 0,
        stable_freq: 0.05,
        event_duration_ms: 60,
        max_gap_ms: 20,
        min_gap_ms: 1,
        finalize: true,
        ..Default::default()
    }
}

/// The global arrival-ordered feed: `INPUTS` identical ordered copies of
/// one logical stream, flattened to arrival order (as in fig2).
fn build_feed(events: usize) -> Vec<(StreamId, Element<Value>)> {
    let reference = generate(&steady_workload(events));
    let mut all: Vec<(u64, u32, Element<Value>)> = Vec::new();
    for i in 0..INPUTS {
        for (at, e) in assign_times(&reference.elements, 50_000.0) {
            all.push((at.as_micros() + i as u64 * 2_000, i as u32, e));
        }
    }
    all.sort_by_key(|(at, i, _)| (*at, *i));
    all.into_iter().map(|(_, i, e)| (StreamId(i), e)).collect()
}

/// One timed pass over the feed; returns `(seconds, memory, adjusts)`.
/// `observe` sees the element index and the live operator after each push
/// — the checkpointed drive exports and persists from there.
fn drive(
    feed: &[(StreamId, Element<Value>)],
    mut observe: impl FnMut(u64, &mut LMergeR3<Value>),
) -> (f64, usize, u64) {
    let mut lm = LMergeR3::new(INPUTS);
    let mut out = Vec::with_capacity(256);
    let start = Instant::now();
    for (n, (input, e)) in feed.iter().enumerate() {
        out.clear();
        lm.push(*input, e, &mut out);
        std::hint::black_box(out.len());
        observe(n as u64, &mut lm);
    }
    let elapsed = start.elapsed().as_secs_f64();
    (elapsed, lm.memory_bytes(), lm.stats().adjusts_out)
}

/// A consistent cut for the store: the bench drive has no executor, so the
/// scheduling half of the image is the trivial "delivered n batches" state.
fn cut(n: u64, lm: &mut LMergeR3<Value>) -> RunImage<Value> {
    RunImage {
        merge: lm.export_state().expect("R3 exports state"),
        exec: ExecutorImage {
            lmerge_ready: VTime(0),
            delivered: n,
            seq: n,
            last_feedback: Time::MIN,
            input_stable_hw: vec![Time::MIN; INPUTS],
            output_stable_hw: Time::MIN,
            pulls: Vec::new(),
            staged: Vec::new(),
        },
        cursors: Vec::new(),
        egress: EgressImage::default(),
    }
}

fn ck_dir(trial: usize) -> PathBuf {
    std::env::temp_dir().join(format!("lmerge-bench-ck-{}-{trial}", std::process::id()))
}

/// Run the comparison: best-of-`trials` each way.
pub fn run(events: usize, trials: usize) -> CheckpointOverhead {
    let feed = build_feed(events);
    let elements = feed.len() as u64;

    let mut bare_s = f64::INFINITY;
    let mut bare_mem = 0usize;
    let mut bare_adj = 0u64;
    for _ in 0..trials {
        let (s, mem, adj) = drive(&feed, |_, _| {});
        bare_s = bare_s.min(s);
        bare_mem = mem;
        bare_adj = adj;
    }

    let mut ck_s = f64::INFINITY;
    let mut ck_mem = 0usize;
    let mut ck_adj = 0u64;
    let mut cuts = 0u64;
    for trial in 0..trials {
        // A fresh directory per trial keeps every trial's work identical:
        // one snapshot, then the store's default snapshot/delta cadence.
        let dir = ck_dir(trial);
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::<Value>::create(&dir).expect("checkpoint dir");
        let (s, mem, adj) = drive(&feed, |n, lm| {
            if n % CK_EVERY == CK_EVERY - 1 {
                store.save(&cut(n, lm)).expect("checkpoint persists");
            }
        });
        ck_s = ck_s.min(s);
        ck_mem = mem;
        ck_adj = adj;
        cuts = store.next_seq();
        // The last trial's chain must actually restore.
        let (seq, image) = CheckpointStore::<Value>::load_latest(&dir).expect("restorable chain");
        assert_eq!(seq, cuts - 1);
        assert_eq!(image.exec.delivered, cuts * CK_EVERY - 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(
        (bare_mem, bare_adj),
        (ck_mem, ck_adj),
        "checkpointing must not change what the operator computes"
    );
    assert!(cuts >= 2, "cadence produced a snapshot + delta chain");

    let bare_eps = elements as f64 / bare_s;
    let checkpointed_eps = elements as f64 / ck_s;
    let record = |eps: f64| MetricsRecord {
        throughput_eps: eps,
        p50_latency_us: 0,
        p99_latency_us: 0,
        peak_memory_bytes: bare_mem as u64,
        chattiness_adjusts: bare_adj,
    };
    CheckpointOverhead {
        elements,
        bare_eps,
        checkpointed_eps,
        ratio: checkpointed_eps / bare_eps,
        cuts,
        metrics: vec![
            ("bare".to_string(), record(bare_eps)),
            ("checkpointed".to_string(), record(checkpointed_eps)),
        ],
    }
}

/// Build the printable report.
pub fn report() -> Report {
    let events = scale_events(60_000);
    let result = run(events, 5);
    let mut report = Report::new(
        "checkpoint_overhead",
        "Hot-path throughput with vs without durable checkpoints (LMR3+, steady workload)",
        &["drive", "thruput", "ratio"],
    );
    report.row(&[
        "bare".to_string(),
        fmt_eps(result.bare_eps),
        "1.00x".to_string(),
    ]);
    report.row(&[
        "checkpointed".to_string(),
        fmt_eps(result.checkpointed_eps),
        format!("{:.2}x", result.ratio),
    ]);
    report.note(format!(
        "{} elements; {} checkpoints per trial (full state export + \
         snapshot/delta encode + checksummed atomic write every {CK_EVERY} \
         elements)",
        result.elements, result.cuts
    ));
    report.note("bar: committed checkpointed/bare >= 0.90 (check_regression)");
    for (label, m) in &result.metrics {
        report.metric(label.clone(), *m);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpointing_is_cheap_and_neutral() {
        let r = run(30_000, 2);
        assert_eq!(r.metrics.len(), 2);
        // Deterministic fields identical across the two drives (asserted
        // inside run()); throughputs both positive; the cadence actually
        // wrote a chain.
        assert!(r.bare_eps > 0.0 && r.checkpointed_eps > 0.0);
        assert!(r.cuts >= 2, "only {} cuts", r.cuts);
        // The 0.90 bar proper is enforced by check_regression at full
        // scale on the committed record; at test scale on a noisy runner
        // just require the ratio to be sane.
        assert!(r.ratio > 0.4, "ratio {:.2} collapsed", r.ratio);
    }
}
