//! Figure 8: smoothing bursty streams.
//!
//! "We generate four bursty streams with 20% disorder, each having an
//! average event rate of 5000 elements/sec. … We model burstiness by
//! inserting random delays between tuples in a stream with a small
//! probability (between 0.3 and 0.5%). The delays are chosen from a
//! truncated normal distribution with mean 20 and standard deviation 5. …
//! Each stream is bursty, but LMerge smooths out the burstiness because it
//! chooses to follow the best input at any given instant."

use crate::report::MetricsRecord;
use crate::{scale_events, Report, VariantKind};
use lmerge_engine::{MergeRun, Query, RunConfig, TimedElement};
use lmerge_gen::timing::add_bursts;
use lmerge_gen::{assign_times, diverge, generate, DivergenceConfig, GenConfig};

/// Result: per-second input (stream 0) and output rates, plus CVs.
pub struct Fig8 {
    /// `(second, input0 rate, output rate)` rows.
    pub series: Vec<(u64, u64, u64)>,
    /// Coefficient of variation of the bursty input.
    pub input_cv: f64,
    /// Coefficient of variation of the merged output.
    pub output_cv: f64,
    /// Headline record of the merged run.
    pub record: MetricsRecord,
}

/// Run the experiment.
pub fn run(events: usize) -> Fig8 {
    let cfg = GenConfig {
        num_events: events,
        disorder: 0.20,
        disorder_window_ms: 5_000,
        stable_freq: 0.01,
        event_duration_ms: 2_000,
        max_gap_ms: 20,
        payload_len: 32,
        ..Default::default()
    };
    let reference = generate(&cfg);
    let div = DivergenceConfig {
        revision_prob: 0.1,
        ..Default::default()
    };
    let queries: Vec<Query<_>> = (0..4u64)
        .map(|i| {
            let copy = diverge(&reference.elements, &div, i);
            let mut timed = assign_times(&copy, 5_000.0); // 5000 el/s
                                                          // A few long stalls (~0.4 s): distinct per-second dips at
                                                          // 5000 el/s, like the paper's Figure 8.
            add_bursts(&mut timed, 0.00015, 400.0, 100.0, 1000 + i);
            Query::passthrough(
                timed
                    .into_iter()
                    .map(|(at, e)| TimedElement::new(at, e))
                    .collect(),
            )
        })
        .collect();
    let metrics = MergeRun::new(queries, VariantKind::R3Plus.build(4), RunConfig::default()).run();

    let last_second = metrics.drained_at.as_micros() / 1_000_000;
    let mut series: Vec<(u64, u64, u64)> = (0..=last_second)
        .map(|s| {
            (
                s,
                metrics.input_series[0].at(s),
                metrics.output_series.at(s),
            )
        })
        .collect();
    while series.last().is_some_and(|(_, i, o)| *i == 0 && *o == 0) {
        series.pop();
    }
    // The trailing bucket is a partial second; exclude it from the CVs.
    let cv = |vals: &[u64]| {
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = vals
            .iter()
            .map(|v| (*v as f64 - mean) * (*v as f64 - mean))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    };
    let full = &series[..series.len().saturating_sub(1)];
    let input_cv = cv(&full.iter().map(|r| r.1).collect::<Vec<_>>());
    let output_cv = cv(&full.iter().map(|r| r.2).collect::<Vec<_>>());
    Fig8 {
        series,
        input_cv,
        output_cv,
        record: MetricsRecord::from_run(&metrics),
    }
}

/// Build the printable report.
pub fn report() -> Report {
    let events = scale_events(30_000);
    let result = run(events);
    let mut report = Report::new(
        "fig8",
        "Handling bursty data: per-second rates (4 bursty inputs, LMR3+)",
        &["second", "input0 (el/s)", "LMerge out (el/s)"],
    );
    for (s, i, o) in &result.series {
        report.row(&[s.to_string(), i.to_string(), o.to_string()]);
    }
    report.note(format!(
        "coefficient of variation: input {:.3}, output {:.3}",
        result.input_cv, result.output_cv
    ));
    report.note("expected: output much smoother than any single bursty input");
    report.metric("LMR3+ 4 bursty inputs", result.record);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_smoother_than_input() {
        let r = run(20_000);
        assert!(
            r.output_cv < 0.7 * r.input_cv,
            "LMerge must smooth bursts: input CV {:.3}, output CV {:.3}",
            r.input_cv,
            r.output_cv
        );
    }
}
