//! Figure 2: memory of LMerge variants over in-order input streams, as the
//! number of inputs grows from 2 to 10.
//!
//! Paper shape: LMR0/LMR1/LMR2 negligible and flat; LMR3+ slightly higher
//! but almost independent of the number of inputs (payloads shared across
//! inputs); LMR3− much higher and degrading linearly with inputs.

use crate::report::{fmt_bytes, MetricsRecord};
use crate::{bench_threads, drive_wallclock, run_points, scale_events, variants, Report};
use lmerge_gen::timing::add_lag;
use lmerge_gen::{assign_times, generate, GenConfig};

/// Sweep result: `(inputs, per-variant peak bytes)` rows.
pub struct Fig2 {
    /// `(inputs, [bytes per variant])` in variant order.
    pub rows: Vec<(usize, Vec<usize>)>,
    /// Headline record per `(variant, inputs)` point, for `BENCH_fig2.json`.
    pub metrics: Vec<(String, MetricsRecord)>,
}

/// The workload shared by Figures 2 and 3: ordered, insert-only streams.
pub fn ordered_workload(events: usize) -> GenConfig {
    GenConfig {
        num_events: events,
        disorder: 0.0,
        disorder_window_ms: 0,
        stable_freq: 0.01,
        event_duration_ms: 30_000,
        max_gap_ms: 20,
        min_gap_ms: 1, // strictly increasing, as the R0 contract requires
        finalize: true,
        ..Default::default()
    }
}

/// Run the sweep serially (test entry point).
pub fn run(events: usize) -> Fig2 {
    run_with_threads(events, 1)
}

/// Run the sweep, one worker per input-count point. Rows and metric labels
/// are assembled in point order, so the report is laid out exactly as a
/// serial run's.
pub fn run_with_threads(events: usize, threads: usize) -> Fig2 {
    const INPUTS: [usize; 5] = [2, 4, 6, 8, 10];
    let reference = generate(&ordered_workload(events));
    let points = run_points(INPUTS.len(), threads, |pi| {
        let n = INPUTS[pi];
        // Identical ordered copies, each lagging 2 ms more than the last —
        // close enough that every copy overlaps the live window.
        let timed: Vec<_> = (0..n)
            .map(|i| {
                let mut t = assign_times(&reference.elements, 50_000.0);
                add_lag(&mut t, i as u64 * 2_000);
                t
            })
            .collect();
        let mut cells = Vec::new();
        let mut metrics = Vec::new();
        for v in variants() {
            let mut lm = v.build(n);
            let run = drive_wallclock(lm.as_mut(), &timed);
            cells.push(run.peak_memory);
            metrics.push((
                format!("{}@{}in", v.label(), n),
                MetricsRecord::from_wallclock(&run),
            ));
        }
        (n, cells, metrics)
    });
    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    for (n, cells, m) in points {
        rows.push((n, cells));
        metrics.extend(m);
    }
    Fig2 { rows, metrics }
}

/// Build the printable report.
pub fn report() -> Report {
    let events = scale_events(20_000);
    let result = run_with_threads(events, bench_threads());
    let mut report = Report::new(
        "fig2",
        "Memory vs #inputs, in-order streams (peak bytes)",
        &["inputs", "LMR0", "LMR1", "LMR2", "LMR3+", "LMR3-", "LMR4"],
    );
    for (n, cells) in &result.rows {
        let mut row = vec![n.to_string()];
        row.extend(cells.iter().map(|b| fmt_bytes(*b)));
        report.row(&row);
    }
    report.note(format!(
        "{events} events/stream, disorder 0%, StableFreq 1%"
    ));
    report.note("expected: LMR0-2 flat+tiny; LMR3+ flat; LMR3- linear in inputs");
    for (label, m) in &result.metrics {
        report.metric(label.clone(), *m);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let r = run(4_000);
        let first = &r.rows[0].1;
        let last = &r.rows[r.rows.len() - 1].1;
        // LMR0/LMR1 are tiny at every input count.
        assert!(last[0] < 4096 && last[1] < 4096);
        // LMR3+ (index 3) is roughly flat: within 2x from 2 to 10 inputs.
        assert!((last[3] as f64) < 2.0 * first[3] as f64);
        // LMR3− (index 4) grows substantially with inputs.
        assert!((last[4] as f64) > 2.0 * first[4] as f64);
        // LMR3− exceeds LMR3+ everywhere.
        for (_, cells) in &r.rows {
            assert!(cells[4] > cells[3]);
        }
    }

    #[test]
    fn parallel_run_is_deterministic() {
        // Everything except measured timing must be byte-identical between
        // a serial and a 4-worker run: row order, memory cells, metric
        // labels, memory and chattiness fields.
        let serial = run_with_threads(1_500, 1);
        let parallel = run_with_threads(1_500, 4);
        assert_eq!(serial.rows, parallel.rows);
        let deterministic = |f: &Fig2| {
            f.metrics
                .iter()
                .map(|(label, m)| (label.clone(), m.peak_memory_bytes, m.chattiness_adjusts))
                .collect::<Vec<_>>()
        };
        assert_eq!(deterministic(&serial), deterministic(&parallel));
    }
}
