//! Table IV: empirical check of the runtime/space complexity claims.
//!
//! The paper states per-element costs — R0/R1/R2 constant (R1/R2 `O(s)` in
//! the number of inputs), R3 `O(lg w)` in the live keys, R4 additionally
//! `O(lg d)` in duplicates — and spaces `O(1)`, `O(s)`, `O(g·p)`,
//! `O(w(p+s))`, `O(w(p+s·d))`. We measure insert cost and memory across a
//! geometric sweep of each driving parameter and report the growth ratio:
//! near 1× per step for constant/logarithmic costs, near the step factor
//! for linear ones.

use crate::{Report, VariantKind};
use lmerge_temporal::{Element, StreamId, Value};
use std::time::Instant;

/// Mean nanoseconds per insert at a given live-index size `w` for R3+.
fn r3_insert_cost_at(w: usize) -> f64 {
    let mut lm = VariantKind::R3Plus.build(1);
    let mut out = Vec::new();
    // Pre-populate w live nodes (never frozen).
    for i in 0..w as i64 {
        lm.push(
            StreamId(0),
            &Element::insert(Value::bare(i as i32), i, i + 1_000_000_000),
            &mut out,
        );
    }
    // Measure further inserts.
    let probes = 20_000;
    let start = Instant::now();
    for i in 0..probes {
        lm.push(
            StreamId(0),
            &Element::insert(
                Value::bare(-(i as i32) - 1),
                w as i64 + i,
                w as i64 + i + 1_000_000_000,
            ),
            &mut out,
        );
        out.clear();
    }
    start.elapsed().as_nanos() as f64 / probes as f64
}

/// Mean nanoseconds per insert for R4 with `d` duplicate `Ve`s per key.
fn r4_insert_cost_at(d: usize) -> f64 {
    let mut lm = VariantKind::R4.build(1);
    let mut out = Vec::new();
    // One hot key with d distinct Ve values.
    for i in 0..d as i64 {
        lm.push(
            StreamId(0),
            &Element::insert(Value::bare(7), 10, 1_000_000 + i),
            &mut out,
        );
        out.clear();
    }
    let probes = 20_000;
    let start = Instant::now();
    for i in 0..probes as i64 {
        lm.push(
            StreamId(0),
            &Element::insert(Value::bare(7), 10, 2_000_000 + (i % d.max(1) as i64)),
            &mut out,
        );
        out.clear();
    }
    start.elapsed().as_nanos() as f64 / probes as f64
}

/// Memory of R3+ at `w` live nodes (space `O(w(p+s))`).
fn r3_memory_at(w: usize) -> usize {
    let mut lm = VariantKind::R3Plus.build(1);
    let mut out = Vec::new();
    for i in 0..w as i64 {
        lm.push(
            StreamId(0),
            &Element::insert(Value::synthetic(i as i32, 64), i, i + 1_000_000_000),
            &mut out,
        );
        out.clear();
    }
    lm.memory_bytes()
}

/// Mean nanoseconds per insert for R1 with `s` inputs (runtime `O(s)`).
fn r1_insert_cost_at(s: usize) -> f64 {
    let mut lm = VariantKind::R1.build(s);
    let mut out = Vec::new();
    let probes = 50_000;
    let start = Instant::now();
    for i in 0..probes as i64 {
        lm.push(
            StreamId((i % s as i64) as u32),
            &Element::insert(Value::bare(1), i / s as i64, i / s as i64 + 10),
            &mut out,
        );
        out.clear();
    }
    start.elapsed().as_nanos() as f64 / probes as f64
}

/// Build the printable report.
pub fn report() -> Report {
    let mut report = Report::new(
        "table4",
        "Empirical complexity check (growth per 10x parameter step)",
        &["quantity", "at 1x", "at 10x", "at 100x", "claimed"],
    );

    let r3c: Vec<f64> = [1_000, 10_000, 100_000]
        .iter()
        .map(|w| r3_insert_cost_at(*w))
        .collect();
    report.row(&[
        "R3+ insert ns vs w".into(),
        format!("{:.0}", r3c[0]),
        format!("{:.0}", r3c[1]),
        format!("{:.0}", r3c[2]),
        "O(lg w)".into(),
    ]);

    let r4c: Vec<f64> = [1, 10, 100].iter().map(|d| r4_insert_cost_at(*d)).collect();
    report.row(&[
        "R4 insert ns vs d".into(),
        format!("{:.0}", r4c[0]),
        format!("{:.0}", r4c[1]),
        format!("{:.0}", r4c[2]),
        "O(lg w + lg d)".into(),
    ]);

    let r3m: Vec<usize> = [1_000, 10_000, 100_000]
        .iter()
        .map(|w| r3_memory_at(*w))
        .collect();
    report.row(&[
        "R3+ bytes vs w".into(),
        crate::report::fmt_bytes(r3m[0]),
        crate::report::fmt_bytes(r3m[1]),
        crate::report::fmt_bytes(r3m[2]),
        "O(w(p+s))".into(),
    ]);

    let r1c: Vec<f64> = [2, 20, 200].iter().map(|s| r1_insert_cost_at(*s)).collect();
    report.row(&[
        "R1 insert ns vs s".into(),
        format!("{:.0}", r1c[0]),
        format!("{:.0}", r1c[1]),
        format!("{:.0}", r1c[2]),
        "O(s)".into(),
    ]);

    report.note("logarithmic rows should grow far slower than 10x per step; linear rows ~10x");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r3_insert_is_sublinear_in_w() {
        let at_1k = r3_insert_cost_at(1_000);
        let at_100k = r3_insert_cost_at(100_000);
        // 100x more live keys must cost far less than 100x per insert
        // (generous bound: 10x covers cache effects on top of lg w).
        assert!(
            at_100k < 10.0 * at_1k.max(1.0),
            "R3 insert not logarithmic: {at_1k}ns → {at_100k}ns"
        );
    }

    #[test]
    fn r3_memory_is_linear_in_w() {
        let m1 = r3_memory_at(1_000);
        let m10 = r3_memory_at(10_000);
        let ratio = m10 as f64 / m1 as f64;
        assert!(
            (6.0..14.0).contains(&ratio),
            "expected ~10x, got {ratio:.1}x"
        );
    }
}
