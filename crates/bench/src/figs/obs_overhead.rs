//! Telemetry overhead: throughput of the LMR3+ hot path with and without
//! live metrics instrumentation.
//!
//! Not a paper figure — it prices the PR-6 telemetry plane. The
//! instrumented drive does registry work at the density the real
//! pipeline's [`lmerge_obs::MeteredSink`] folds it: one counter increment
//! per delivered element, one atomic-histogram record per
//! output-producing push (`MeteredSink` records once per `OutputProduced`
//! event, not per element), and a periodic gauge store. The acceptance
//! bar — instrumented throughput within 5% of uninstrumented — is
//! enforced by `check_regression` on the committed
//! `BENCH_obs_overhead.json`, so the gate itself is timing-free at check
//! time.

use crate::figs::fig2::ordered_workload;
use crate::report::{fmt_eps, MetricsRecord};
use crate::{scale_events, Report};
use lmerge_core::{LMergeR3, LogicalMerge};
use lmerge_gen::{assign_times, generate};
use lmerge_obs::MetricsRegistry;
use lmerge_temporal::{Element, StreamId, Value};
use std::time::Instant;

/// Inputs feeding the measured operator (fig2's middle point).
pub const INPUTS: usize = 4;

/// Elements between gauge refreshes in the instrumented drive — the same
/// order of magnitude as the pipeline's `sample_every`.
const GAUGE_EVERY: u64 = 1024;

/// Sweep result.
pub struct ObsOverhead {
    /// Elements in the global feed.
    pub elements: u64,
    /// Best-of-trials throughput of the bare drive.
    pub uninstrumented_eps: f64,
    /// Best-of-trials throughput with per-element registry work.
    pub instrumented_eps: f64,
    /// `instrumented / uninstrumented` — 1.0 means free.
    pub ratio: f64,
    /// Headline record per drive, for `BENCH_obs_overhead.json`.
    pub metrics: Vec<(String, MetricsRecord)>,
}

/// The global arrival-ordered feed: `INPUTS` identical ordered copies of
/// one logical stream (as in fig2, flattened to arrival order).
fn build_feed(events: usize) -> Vec<(StreamId, Element<Value>)> {
    let reference = generate(&ordered_workload(events));
    let mut all: Vec<(u64, u32, Element<Value>)> = Vec::new();
    for i in 0..INPUTS {
        for (at, e) in assign_times(&reference.elements, 50_000.0) {
            all.push((at.as_micros() + i as u64 * 2_000, i as u32, e));
        }
    }
    all.sort_by_key(|(at, i, _)| (*at, *i));
    all.into_iter().map(|(_, i, e)| (StreamId(i), e)).collect()
}

/// One timed pass over the feed; returns `(seconds, memory, adjusts)`.
fn drive(
    feed: &[(StreamId, Element<Value>)],
    mut observe: impl FnMut(u64, &[Element<Value>]),
) -> (f64, usize, u64) {
    let mut lm = LMergeR3::new(INPUTS);
    let mut out = Vec::with_capacity(256);
    let start = Instant::now();
    for (n, (input, e)) in feed.iter().enumerate() {
        out.clear();
        lm.push(*input, e, &mut out);
        observe(n as u64, &out);
    }
    let elapsed = start.elapsed().as_secs_f64();
    (elapsed, lm.memory_bytes(), lm.stats().adjusts_out)
}

/// Run the comparison: best-of-`trials` each way.
pub fn run(events: usize, trials: usize) -> ObsOverhead {
    let feed = build_feed(events);
    let elements = feed.len() as u64;

    let mut bare_s = f64::INFINITY;
    let mut bare_mem = 0usize;
    let mut bare_adj = 0u64;
    for _ in 0..trials {
        let (s, mem, adj) = drive(&feed, |_, out| {
            std::hint::black_box(out.len());
        });
        bare_s = bare_s.min(s);
        bare_mem = mem;
        bare_adj = adj;
    }

    let registry = MetricsRegistry::new();
    let emitted = registry.counter("bench_emitted_total", "per-element counter", &[]);
    let hist = registry.histogram("bench_batch_size", "per-element histogram", &[]);
    let gauge = registry.gauge("bench_progress", "periodic gauge", &[]);
    let mut live_s = f64::INFINITY;
    let mut live_mem = 0usize;
    let mut live_adj = 0u64;
    for _ in 0..trials {
        let (s, mem, adj) = drive(&feed, |n, out| {
            emitted.inc();
            if !out.is_empty() {
                hist.record(out.len() as u64);
            }
            if n % GAUGE_EVERY == 0 {
                gauge.set(n as i64);
            }
        });
        live_s = live_s.min(s);
        live_mem = mem;
        live_adj = adj;
    }
    assert_eq!(
        (bare_mem, bare_adj),
        (live_mem, live_adj),
        "instrumentation must not change what the operator computes"
    );
    assert_eq!(
        emitted.get(),
        elements * trials as u64,
        "no lost increments"
    );

    let uninstrumented_eps = elements as f64 / bare_s;
    let instrumented_eps = elements as f64 / live_s;
    let record = |eps: f64| MetricsRecord {
        throughput_eps: eps,
        p50_latency_us: 0,
        p99_latency_us: 0,
        peak_memory_bytes: bare_mem as u64,
        chattiness_adjusts: bare_adj,
    };
    ObsOverhead {
        elements,
        uninstrumented_eps,
        instrumented_eps,
        ratio: instrumented_eps / uninstrumented_eps,
        metrics: vec![
            ("uninstrumented".to_string(), record(uninstrumented_eps)),
            ("instrumented".to_string(), record(instrumented_eps)),
        ],
    }
}

/// Build the printable report.
pub fn report() -> Report {
    let events = scale_events(20_000);
    let result = run(events, 5);
    let mut report = Report::new(
        "obs_overhead",
        "Hot-path throughput with vs without live telemetry (LMR3+, fig2 workload)",
        &["drive", "thruput", "ratio"],
    );
    report.row(&[
        "uninstrumented".to_string(),
        fmt_eps(result.uninstrumented_eps),
        "1.00x".to_string(),
    ]);
    report.row(&[
        "instrumented".to_string(),
        fmt_eps(result.instrumented_eps),
        format!("{:.2}x", result.ratio),
    ]);
    report.note(format!(
        "{} elements; instrumented = counter inc per element + histogram \
         record per output-producing push, gauge store every {GAUGE_EVERY}",
        result.elements
    ));
    report.note("bar: committed instrumented/uninstrumented >= 0.95 (check_regression)");
    for (label, m) in &result.metrics {
        report.metric(label.clone(), *m);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumentation_is_cheap_and_neutral() {
        let r = run(4_000, 2);
        assert_eq!(r.metrics.len(), 2);
        // Deterministic fields identical across the two drives (asserted
        // inside run()); throughputs both positive.
        assert!(r.uninstrumented_eps > 0.0 && r.instrumented_eps > 0.0);
        // The 0.95 bar proper is enforced by check_regression at full
        // scale on the committed record; at test scale on a noisy runner
        // just require the ratio to be sane.
        assert!(r.ratio > 0.5, "ratio {:.2} collapsed", r.ratio);
    }
}
