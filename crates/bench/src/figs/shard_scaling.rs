//! Shard scaling: throughput of the hash-partitioned LMerge as the shard
//! count `K` grows (1, 2, 4, 8) on the Figure-2-style ordered workload.
//!
//! Not a paper figure — it measures the sharded executor added on top of
//! the paper's operators. The headline metric is **critical-path
//! throughput**: elements divided by `max(router pass, slowest shard
//! drive)`, which is the pipeline's wall-clock on a machine with at least
//! `K + 1` cores. The per-shard drives are measured *in isolation*
//! (sequentially, against pre-partitioned subsequences built off the
//! clock) so the number is honest on the single-vCPU container this
//! harness usually runs in, where `K` workers merely time-slice one core.
//! The raw threaded-pipeline wall clock is reported alongside for
//! contrast, and the pipeline's output is checked against the `K = 1`
//! drive while we're at it.
//!
//! Expected shape: near-linear speedup until the router's hash pass
//! becomes the critical path, with a small per-shard penalty from stable
//! punctuation being broadcast (every shard processes every `stable`).

use crate::figs::fig2::ordered_workload;
use crate::report::{fmt_bytes, fmt_eps, MetricsRecord};
use crate::{scale_events, Report};
use lmerge_core::{queue_bytes, shard_of, LMergeR3, LogicalMerge};
use lmerge_engine::{run_pipeline, PipeItem, PipelineConfig};
use lmerge_gen::timing::add_lag;
use lmerge_gen::{assign_times, generate};
use lmerge_obs::NullSink;
use lmerge_temporal::{Element, StreamId, Value};
use std::time::Instant;

/// Shards fed by the fig-2 workload at each measured point.
pub const INPUTS: usize = 4;

/// One measured shard count.
#[derive(Clone, Copy, Debug)]
pub struct ShardPoint {
    /// Shard count `K`.
    pub k: usize,
    /// Elements in the global feed.
    pub elements: u64,
    /// Seconds for the router's hash pass over the feed (0 at `K = 1`).
    pub router_s: f64,
    /// Seconds inside the slowest shard's isolated drive.
    pub max_shard_s: f64,
    /// `max(router_s, max_shard_s)` — the pipeline's critical path.
    pub critical_s: f64,
    /// Elements per second down the critical path.
    pub throughput_eps: f64,
    /// `throughput_eps` relative to the `K = 1` point.
    pub speedup: f64,
    /// End-to-end wall clock of the actual threaded pipeline.
    pub wall_s: f64,
    /// Sum of final shard memories plus ring-queue overhead.
    pub memory: usize,
    /// Adjust elements emitted across all shards.
    pub adjusts_out: u64,
}

/// Sweep result.
pub struct ShardScaling {
    /// One row per shard count, in sweep order.
    pub points: Vec<ShardPoint>,
    /// Headline record per point, for `BENCH_shard_scaling.json`.
    pub metrics: Vec<(String, MetricsRecord)>,
}

const QUEUE_CAPACITY: usize = 1024;

/// The global arrival-ordered feed: `INPUTS` identical ordered copies of
/// one logical stream, each lagging 2 ms more than the last (as in fig2).
fn build_feed(events: usize) -> Vec<(StreamId, Element<Value>)> {
    let reference = generate(&ordered_workload(events));
    let mut all: Vec<(u64, u32, Element<Value>)> = Vec::new();
    for i in 0..INPUTS {
        let mut t = assign_times(&reference.elements, 50_000.0);
        add_lag(&mut t, i as u64 * 2_000);
        for (at, e) in t {
            all.push((at.as_micros(), i as u32, e));
        }
    }
    all.sort_by_key(|(at, i, _)| (*at, *i));
    all.into_iter().map(|(_, i, e)| (StreamId(i), e)).collect()
}

/// Partition the feed into per-shard subsequences (data by key hash,
/// punctuation broadcast), preserving relative order — exactly what the
/// router does, done off the clock.
fn partition(
    feed: &[(StreamId, Element<Value>)],
    k: usize,
) -> Vec<Vec<(StreamId, Element<Value>)>> {
    let mut subs: Vec<Vec<(StreamId, Element<Value>)>> = vec![Vec::new(); k];
    for (input, e) in feed {
        match e.key() {
            Some((vs, payload)) => subs[shard_of(vs, payload, k)].push((*input, e.clone())),
            None => {
                for sub in subs.iter_mut() {
                    sub.push((*input, e.clone()));
                }
            }
        }
    }
    subs
}

/// Drive one shard's subsequence through a fresh LMR3+, timed.
fn drive_shard(sub: &[(StreamId, Element<Value>)]) -> (f64, usize, u64, u64) {
    let mut lm = LMergeR3::new(INPUTS);
    let mut out = Vec::with_capacity(256);
    let start = Instant::now();
    for (input, e) in sub {
        out.clear();
        lm.push(*input, e, &mut out);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = lm.stats();
    (
        elapsed,
        lm.memory_bytes(),
        stats.adjusts_out,
        stats.inserts_out,
    )
}

/// Run the sweep over the given shard counts (first entry is the baseline).
pub fn run(events: usize, ks: &[usize]) -> ShardScaling {
    let feed = build_feed(events);
    let elements = feed.len() as u64;

    let mut points = Vec::new();
    let mut metrics = Vec::new();
    let mut baseline_eps = 0.0;
    let mut baseline_inserts = 0u64;

    for &k in ks {
        let subs = partition(&feed, k);

        // The router's cost: one hash per data element. At K = 1 the
        // wrapper bypasses routing entirely, so charge nothing.
        let router_s = if k <= 1 {
            0.0
        } else {
            let start = Instant::now();
            let mut acc = 0usize;
            for (_, e) in &feed {
                if let Some((vs, payload)) = e.key() {
                    acc += shard_of(vs, payload, k);
                }
            }
            std::hint::black_box(acc);
            start.elapsed().as_secs_f64()
        };

        let mut max_shard_s: f64 = 0.0;
        let mut memory = queue_bytes::<Value>(k, QUEUE_CAPACITY);
        let mut adjusts_out = 0u64;
        let mut inserts_out = 0u64;
        for sub in &subs {
            let (s, mem, adj, ins) = drive_shard(sub);
            max_shard_s = max_shard_s.max(s);
            memory += mem;
            adjusts_out += adj;
            inserts_out += ins;
        }
        if k == ks[0] {
            baseline_inserts = inserts_out;
        } else {
            assert_eq!(
                inserts_out, baseline_inserts,
                "sharding must not change the merged output"
            );
        }

        // The real threaded pipeline, for the wall column and an
        // end-to-end output check.
        let pipe_feed: Vec<PipeItem<Value>> = feed
            .iter()
            .map(|(input, e)| PipeItem::Deliver(*input, e.clone()))
            .collect();
        let cfg = PipelineConfig {
            shards: k,
            queue_capacity: QUEUE_CAPACITY,
            sample_every: 4096,
        };
        let pipe = run_pipeline(
            || Box::new(LMergeR3::new(INPUTS)) as Box<dyn LogicalMerge<Value>>,
            &pipe_feed,
            cfg,
            &mut NullSink,
        );
        assert_eq!(
            pipe.merge.inserts_out, baseline_inserts,
            "pipelined output must match the sequential drive"
        );

        let critical_s = router_s.max(max_shard_s);
        let throughput_eps = if critical_s > 0.0 {
            elements as f64 / critical_s
        } else {
            0.0
        };
        if k == ks[0] {
            baseline_eps = throughput_eps;
        }
        let speedup = if baseline_eps > 0.0 {
            throughput_eps / baseline_eps
        } else {
            1.0
        };

        points.push(ShardPoint {
            k,
            elements,
            router_s,
            max_shard_s,
            critical_s,
            throughput_eps,
            speedup,
            wall_s: pipe.wall.as_secs_f64(),
            memory,
            adjusts_out,
        });
        metrics.push((
            format!("LMR3+@K{k}"),
            MetricsRecord {
                throughput_eps,
                p50_latency_us: 0,
                p99_latency_us: 0,
                peak_memory_bytes: memory as u64,
                chattiness_adjusts: adjusts_out,
            },
        ));
    }

    ShardScaling { points, metrics }
}

/// Build the printable report.
pub fn report() -> Report {
    let events = scale_events(20_000);
    let result = run(events, &[1, 2, 4, 8]);
    let mut report = Report::new(
        "shard_scaling",
        "Critical-path throughput vs shard count K (LMR3+, fig2 workload)",
        &[
            "K",
            "router",
            "max-shard",
            "critical",
            "thruput",
            "speedup",
            "wall",
            "memory",
        ],
    );
    for p in &result.points {
        report.row(&[
            p.k.to_string(),
            format!("{:.1}ms", p.router_s * 1e3),
            format!("{:.1}ms", p.max_shard_s * 1e3),
            format!("{:.1}ms", p.critical_s * 1e3),
            fmt_eps(p.throughput_eps),
            format!("{:.2}x", p.speedup),
            format!("{:.1}ms", p.wall_s * 1e3),
            fmt_bytes(p.memory),
        ]);
    }
    report.note(format!(
        "{events} events/stream x {INPUTS} inputs; data hash-partitioned by (Vs, payload), stables broadcast"
    ));
    report.note(
        "thruput = elements / max(router pass, slowest isolated shard drive) — \
         the pipeline's critical path on >=K+1 cores; wall = threaded pipeline \
         end-to-end on THIS machine (time-sliced when cores < K+1)",
    );
    for (label, m) in &result.metrics {
        report.metric(label.clone(), *m);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_shape_holds() {
        let r = run(4_000, &[1, 2, 4]);
        assert_eq!(r.points.len(), 3);
        let k1 = &r.points[0];
        let k4 = &r.points[2];
        assert_eq!(k1.speedup, 1.0);
        // Partitioned shards each hold a fraction of the state.
        assert!(k4.max_shard_s < k1.max_shard_s);
        // The acceptance bar proper (>= 2.5x at K=4) is asserted by
        // check_regression at full scale; at test scale just require
        // meaningful scaling beyond noise.
        assert!(
            k4.speedup > 1.5,
            "K=4 speedup {:.2} not above 1.5",
            k4.speedup
        );
        // Queue overhead is charged per shard.
        assert!(k4.memory > queue_bytes::<Value>(4, QUEUE_CAPACITY));
    }

    #[test]
    fn partition_broadcasts_stables_and_splits_data() {
        let feed = build_feed(500);
        let subs = partition(&feed, 4);
        let stables = feed.iter().filter(|(_, e)| e.is_stable()).count();
        let data = feed.len() - stables;
        for sub in &subs {
            assert_eq!(
                sub.iter().filter(|(_, e)| e.is_stable()).count(),
                stables,
                "every shard sees every stable"
            );
        }
        let split_data: usize = subs
            .iter()
            .map(|s| s.iter().filter(|(_, e)| !e.is_stable()).count())
            .sum();
        assert_eq!(split_data, data, "each data element lands on one shard");
    }
}
