//! Figure 9: masking network congestion.
//!
//! "We model network congestion at different points in time in each of
//! three streams, by introducing normally distributed delays between
//! elements during the congested period. … the output of LMerge is
//! unaffected by such congestion, as it is able to produce output as long
//! as at least one input is not lagging. Note that at around 18 seconds,
//! two inputs are simultaneously congested, but LMerge is unaffected."

use crate::report::MetricsRecord;
use crate::{scale_events, Report, VariantKind};
use lmerge_engine::{MergeRun, Query, RunConfig, TimedElement};
use lmerge_gen::timing::add_congestion;
use lmerge_gen::{assign_times, diverge, generate, DivergenceConfig, GenConfig};
use lmerge_temporal::VTime;

/// Result: per-second rates of all three inputs and of the output.
pub struct Fig9 {
    /// `(second, in0, in1, in2, output)` rows.
    pub series: Vec<(u64, u64, u64, u64, u64)>,
    /// Output CV over the congested span.
    pub output_cv: f64,
    /// Worst single-input CV.
    pub worst_input_cv: f64,
    /// Headline record of the merged run.
    pub record: MetricsRecord,
}

/// Run the experiment.
pub fn run(events: usize) -> Fig9 {
    let cfg = GenConfig {
        num_events: events,
        disorder: 0.20,
        disorder_window_ms: 5_000,
        stable_freq: 0.01,
        event_duration_ms: 2_000,
        max_gap_ms: 20,
        payload_len: 32,
        ..Default::default()
    };
    let reference = generate(&cfg);
    let div = DivergenceConfig::default();
    // Congestion windows: stream 0 at 2–4 s, stream 1 at 6–8 s and again at
    // 10–12 s together with stream 2 (the paper's simultaneous case).
    let windows: [Vec<(u64, u64)>; 3] = [vec![(2, 4)], vec![(6, 8), (10, 12)], vec![(10, 12)]];
    let queries: Vec<Query<_>> = windows
        .iter()
        .enumerate()
        .map(|(i, ws)| {
            let copy = diverge(&reference.elements, &div, i as u64);
            let mut timed = assign_times(&copy, 5_000.0);
            for (k, (from, to)) in ws.iter().enumerate() {
                add_congestion(
                    &mut timed,
                    VTime::from_secs(*from),
                    VTime::from_secs(*to),
                    1.0,
                    0.3,
                    2000 + (i * 10 + k) as u64,
                );
            }
            Query::passthrough(
                timed
                    .into_iter()
                    .map(|(at, e)| TimedElement::new(at, e))
                    .collect(),
            )
        })
        .collect();
    let metrics = MergeRun::new(queries, VariantKind::R3Plus.build(3), RunConfig::default()).run();

    let last_second = metrics.drained_at.as_micros() / 1_000_000;
    let series = (0..=last_second)
        .map(|s| {
            (
                s,
                metrics.input_series[0].at(s),
                metrics.input_series[1].at(s),
                metrics.input_series[2].at(s),
                metrics.output_series.at(s),
            )
        })
        .collect();
    let worst_input_cv = metrics
        .input_series
        .iter()
        .map(|s| s.coefficient_of_variation())
        .fold(0.0, f64::max);
    Fig9 {
        series,
        output_cv: metrics.output_series.coefficient_of_variation(),
        worst_input_cv,
        record: MetricsRecord::from_run(&metrics),
    }
}

/// Build the printable report.
pub fn report() -> Report {
    let events = scale_events(30_000);
    let result = run(events);
    let mut report = Report::new(
        "fig9",
        "Masking network congestion: per-second rates (3 inputs, LMR3+)",
        &["second", "in0", "in1", "in2", "LMerge out"],
    );
    for (s, a, b, c, o) in &result.series {
        report.row(&[
            s.to_string(),
            a.to_string(),
            b.to_string(),
            c.to_string(),
            o.to_string(),
        ]);
    }
    report.note(format!(
        "CV: worst input {:.3}, output {:.3}",
        result.worst_input_cv, result.output_cv
    ));
    report.note("congestion: in0@2-4s, in1@6-8s, in1+in2@10-12s (simultaneous)");
    report.note("expected: output steady through every congestion window");
    report.metric("LMR3+ 3 congested inputs", result.record);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn congestion_is_masked() {
        let r = run(20_000);
        assert!(
            r.output_cv < 0.6 * r.worst_input_cv,
            "output must be steadier than congested inputs: {:.3} vs {:.3}",
            r.output_cv,
            r.worst_input_cv
        );
    }
}
