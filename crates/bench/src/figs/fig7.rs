//! Figure 7 (and the Section VI-D latency discussion): enforcing stream
//! properties (Cleanse + LMR1) versus using the general LMerge directly.
//!
//! "Our optimized LMR3+ algorithm performs best, and its memory usage is
//! almost independent of the number of input streams. However, the
//! Cleanse-based solution (C+LMR1) suffers linear degradation … the
//! overhead is nearly 7X more than LMR3+ for 10 inputs. … Using LM
//! directly incurs latency in milliseconds … the Cleanse solution will
//! incur orders-of-magnitude higher latency."

use crate::report::MetricsRecord;
use crate::{drive_wallclock, scale_events, Report, VariantKind};
use lmerge_core::{LMergeR1, LogicalMerge};
use lmerge_engine::ops::Cleanse;
use lmerge_engine::{MergeRun, Operator, Query, RunConfig, TimedElement};
use lmerge_gen::{assign_times, diverge, generate, DivergenceConfig, GenConfig, Timed};
use lmerge_temporal::{Element, StreamId, Value};
use std::time::Instant;

/// One sweep point.
pub struct Fig7Row {
    /// Number of input streams.
    pub inputs: usize,
    /// Peak memory: LMR3+, LMR3−, C+LMR1.
    pub memory: [usize; 3],
    /// Wall-clock input throughput: LMR3+, LMR3−, C+LMR1.
    pub eps: [f64; 3],
    /// Mean virtual latency (µs): LMR3+, C+LMR1.
    pub latency_us: [f64; 2],
    /// Headline record per configuration (LMR3+, LMR3−, C+LMR1).
    pub records: [MetricsRecord; 3],
}

fn sub_streams(events: usize, n: usize) -> Vec<Vec<Element<Value>>> {
    // 50% disorder with revision paths over full 1000-byte payloads: the
    // paper's "output of this query fragment contains 36% adjust()
    // elements, with a 0.1% chance of seeing a stable() element".
    let cfg = GenConfig {
        num_events: events,
        disorder: 0.5,
        disorder_window_ms: 5_000,
        stable_freq: 0.001,
        event_duration_ms: 2_000,
        max_gap_ms: 20,
        payload_len: 1000,
        ..Default::default()
    };
    let reference = generate(&cfg);
    let div = DivergenceConfig {
        revision_prob: 0.36,
        ..Default::default()
    };
    (0..n)
        .map(|i| diverge(&reference.elements, &div, i as u64))
        .collect()
}

/// Wall-clock drive of the Cleanse-per-input + LMR1 pipeline.
fn drive_cleanse_lmr1(timed: &[Vec<Timed>]) -> (f64, u64, usize) {
    let n = timed.len();
    let mut all: Vec<(u64, u32, &Element<Value>)> = Vec::new();
    for (i, input) in timed.iter().enumerate() {
        for (at, e) in input {
            all.push((at.as_micros(), i as u32, e));
        }
    }
    all.sort_by_key(|(at, i, _)| (*at, *i));

    let mut cleanses: Vec<Cleanse<Value>> = (0..n).map(|_| Cleanse::new()).collect();
    let mut lm: LMergeR1<Value> = LMergeR1::new(n);
    let mut cleansed = Vec::new();
    let mut out = Vec::new();
    let mut peak = 0usize;
    let start = Instant::now();
    for (k, (_, i, e)) in all.iter().enumerate() {
        cleansed.clear();
        cleanses[*i as usize].on_element(e, &mut cleansed);
        for ce in &cleansed {
            out.clear();
            lm.push(StreamId(*i), ce, &mut out);
        }
        if k % 1024 == 0 {
            let mem = lm.memory_bytes() + cleanses.iter().map(|c| c.memory_bytes()).sum::<usize>();
            peak = peak.max(mem);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let mem = lm.memory_bytes() + cleanses.iter().map(|c| c.memory_bytes()).sum::<usize>();
    peak = peak.max(mem);
    (elapsed, all.len() as u64, peak)
}

/// Mean virtual latency of a merged run (µs).
fn virtual_latency(streams: &[Vec<Element<Value>>], cleanse: bool) -> f64 {
    let n = streams.len();
    let queries: Vec<Query<Value>> = streams
        .iter()
        .map(|s| {
            let timed: Vec<TimedElement<Value>> = assign_times(s, 50_000.0)
                .into_iter()
                .map(|(at, e)| TimedElement::new(at, e))
                .collect();
            if cleanse {
                Query::new(
                    timed,
                    vec![Box::new(Cleanse::new()) as Box<dyn Operator<Value>>],
                )
            } else {
                Query::passthrough(timed)
            }
        })
        .collect();
    let lm: Box<dyn LogicalMerge<Value>> = if cleanse {
        Box::new(LMergeR1::new(n))
    } else {
        VariantKind::R3Plus.build(n)
    };
    let metrics = MergeRun::new(queries, lm, RunConfig::default()).run();
    metrics.mean_latency_us()
}

/// Run the input-count sweep.
pub fn run(events: usize, input_counts: &[usize]) -> Vec<Fig7Row> {
    let max_n = input_counts.iter().copied().max().unwrap_or(2);
    let subs = sub_streams(events, max_n);
    let mut rows = Vec::new();
    for &n in input_counts {
        let streams = &subs[..n];
        let timed: Vec<Vec<Timed>> = streams
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut t = assign_times(s, 50_000.0);
                lmerge_gen::timing::add_lag(&mut t, i as u64 * 1_000);
                t
            })
            .collect();

        let mut memory = [0usize; 3];
        let mut eps = [0f64; 3];
        let mut records = [MetricsRecord::default(); 3];
        for (i, v) in [VariantKind::R3Plus, VariantKind::R3Minus]
            .into_iter()
            .enumerate()
        {
            let mut lm = v.build(n);
            let r = drive_wallclock(lm.as_mut(), &timed);
            memory[i] = r.peak_memory;
            eps[i] = r.throughput_eps();
            records[i] = MetricsRecord::from_wallclock(&r);
        }
        let (elapsed, elements, peak) = drive_cleanse_lmr1(&timed);
        memory[2] = peak;
        eps[2] = elements as f64 / elapsed;
        records[2] = MetricsRecord {
            throughput_eps: eps[2],
            peak_memory_bytes: peak as u64,
            ..Default::default()
        };

        let latency_us = [
            virtual_latency(streams, false),
            virtual_latency(streams, true),
        ];
        rows.push(Fig7Row {
            inputs: n,
            memory,
            eps,
            latency_us,
            records,
        });
    }
    rows
}

/// Build the printable report.
pub fn report() -> Report {
    let events = scale_events(10_000);
    let rows = run(events, &[2, 4, 6, 8, 10]);
    let mut report = Report::new(
        "fig7",
        "Enforcing stream properties: LMR3+ vs LMR3- vs Cleanse+LMR1",
        &[
            "inputs",
            "mem LMR3+",
            "mem LMR3-",
            "mem C+LMR1",
            "eps LMR3+",
            "eps LMR3-",
            "eps C+LMR1",
            "lat LMR3+",
            "lat C+LMR1",
        ],
    );
    for r in &rows {
        report.row(&[
            r.inputs.to_string(),
            crate::report::fmt_bytes(r.memory[0]),
            crate::report::fmt_bytes(r.memory[1]),
            crate::report::fmt_bytes(r.memory[2]),
            crate::report::fmt_eps(r.eps[0]),
            crate::report::fmt_eps(r.eps[1]),
            crate::report::fmt_eps(r.eps[2]),
            format!("{:.1}ms", r.latency_us[0] / 1000.0),
            format!("{:.1}ms", r.latency_us[1] / 1000.0),
        ]);
    }
    report.note(format!(
        "{events} source events, 50% disorder through count sub-query"
    ));
    report.note(
        "expected: C+LMR1 memory linear in inputs and >> LMR3+; latency orders-of-magnitude higher",
    );
    for r in &rows {
        for (label, rec) in ["LMR3+", "LMR3-", "C+LMR1"].iter().zip(&r.records) {
            report.metric(format!("{label}@{}in", r.inputs), *rec);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleanse_pays_memory_and_latency() {
        let rows = run(3_000, &[2, 6]);
        let (small, big) = (&rows[0], &rows[1]);
        // C+LMR1 memory grows with inputs and exceeds LMR3+.
        assert!(big.memory[2] > small.memory[2]);
        assert!(big.memory[2] > big.memory[0], "Cleanse buffers dominate");
        // Latency: Cleanse must be at least 10x the direct merge.
        assert!(
            big.latency_us[1] > 10.0 * big.latency_us[0].max(1.0),
            "expected orders-of-magnitude latency gap: {:?}",
            big.latency_us
        );
    }
}
