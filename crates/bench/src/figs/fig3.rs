//! Figure 3: throughput of LMerge variants over in-order input streams.
//!
//! Paper shape: the simpler the algorithm, the higher the throughput, and
//! LMR3+ clearly beats LMR3− (one shared-index lookup per element versus
//! multiple tree lookups over duplicated state).

use crate::figs::fig2::ordered_workload;
use crate::report::{fmt_eps, MetricsRecord};
use crate::{bench_threads, drive_wallclock, run_points, scale_events, variants, Report};
use lmerge_gen::timing::add_lag;
use lmerge_gen::{assign_times, generate};

/// Sweep result: `(inputs, per-variant output events/s)`.
pub struct Fig3 {
    /// `(inputs, [eps per variant])` in variant order.
    pub rows: Vec<(usize, Vec<f64>)>,
    /// Headline record per `(variant, inputs)` point, for `BENCH_fig3.json`.
    pub metrics: Vec<(String, MetricsRecord)>,
}

/// Run the sweep serially (test entry point — timing-shape assertions need
/// points measured without concurrent interference).
pub fn run(events: usize) -> Fig3 {
    run_with_threads(events, 1)
}

/// Run the sweep, one worker per input-count point; report layout matches
/// a serial run exactly.
pub fn run_with_threads(events: usize, threads: usize) -> Fig3 {
    const INPUTS: [usize; 5] = [2, 4, 6, 8, 10];
    let mut cfg = ordered_workload(events);
    cfg.payload_len = 100;
    let reference = generate(&cfg);
    let points = run_points(INPUTS.len(), threads, |pi| {
        let n = INPUTS[pi];
        let timed: Vec<_> = (0..n)
            .map(|i| {
                let mut t = assign_times(&reference.elements, 50_000.0);
                add_lag(&mut t, i as u64 * 2_000);
                t
            })
            .collect();
        let mut cells = Vec::new();
        let mut metrics = Vec::new();
        for v in variants() {
            let mut lm = v.build(n);
            let run = drive_wallclock(lm.as_mut(), &timed);
            cells.push(run.output_eps());
            metrics.push((
                format!("{}@{}in", v.label(), n),
                MetricsRecord::from_wallclock(&run),
            ));
        }
        (n, cells, metrics)
    });
    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    for (n, cells, m) in points {
        rows.push((n, cells));
        metrics.extend(m);
    }
    Fig3 { rows, metrics }
}

/// Build the printable report.
pub fn report() -> Report {
    let events = scale_events(20_000);
    let result = run_with_threads(events, bench_threads());
    let mut report = Report::new(
        "fig3",
        "Throughput vs #inputs, in-order streams (output events/s, wall clock)",
        &["inputs", "LMR0", "LMR1", "LMR2", "LMR3+", "LMR3-", "LMR4"],
    );
    for (n, cells) in &result.rows {
        let mut row = vec![n.to_string()];
        row.extend(cells.iter().map(|e| fmt_eps(*e)));
        report.row(&row);
    }
    report.note(format!("{events} events/stream"));
    report.note("expected: LMR0/1/2 >> LMR3+ > LMR4 > LMR3-");
    for (label, m) in &result.metrics {
        report.metric(label.clone(), *m);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simpler_is_faster_and_r3plus_beats_naive() {
        let r = run(4_000);
        for (_, cells) in &r.rows {
            let (r0, r2, r3p, r3m) = (cells[0], cells[2], cells[3], cells[4]);
            assert!(r0 > r3p, "LMR0 must beat LMR3+");
            assert!(r2 > r3p, "LMR2 must beat LMR3+");
            assert!(r3p > r3m, "LMR3+ must beat LMR3-");
        }
    }
}
