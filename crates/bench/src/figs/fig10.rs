//! Figure 10: dynamic plan switching with fast-forward feedback.
//!
//! "We instantiate two alternate plans for the same query … The first plan
//! (UDF0) is expensive for small values of X, while the second plan (UDF1)
//! is expensive for large values of X. … UDF0 and UDF1 finish in 176 and
//! 163 seconds respectively. … adding LMerge is not very useful … the
//! total processing time for LMerge is around 163 seconds. We then let
//! LMerge send feedback signals … LM+Feedback completes execution in
//! around 34 seconds, and is nearly 5X faster than LMR3+ without
//! feedback."

use crate::report::MetricsRecord;
use crate::{scale_events, Report, VariantKind};
use lmerge_engine::executor::run_single;
use lmerge_engine::ops::UdfSelect;
use lmerge_engine::{MergeRun, Operator, Query, RunConfig, TimedElement};
use lmerge_gen::batched::{generate_batched, BatchedConfig};
use lmerge_temporal::{VTime, Value};

const THRESHOLD: i32 = 200;
const EXPENSIVE_US: u64 = 800;
const CHEAP_US: u64 = 20;

/// Completion times (virtual seconds) of the four configurations.
pub struct Fig10 {
    /// UDF0 alone.
    pub udf0_s: f64,
    /// UDF1 alone.
    pub udf1_s: f64,
    /// Both plans under LMR3+ without feedback.
    pub lmerge_s: f64,
    /// Both plans under LMR3+ with feedback fast-forward.
    pub feedback_s: f64,
    /// Elements skipped by feedback across both plans.
    pub skipped: u64,
    /// Headline record of the no-feedback merge.
    pub lmerge_rec: MetricsRecord,
    /// Headline record of the feedback merge.
    pub feedback_rec: MetricsRecord,
}

fn source(cfg: &BatchedConfig) -> Vec<TimedElement<Value>> {
    let (elems, _) = generate_batched(cfg);
    // All elements are available up front; cost, not arrival, dominates.
    elems
        .into_iter()
        .map(|e| TimedElement::new(VTime::ZERO, e))
        .collect()
}

fn udf_query(cfg: &BatchedConfig, expensive_small: bool) -> Query<Value> {
    let udf = if expensive_small {
        UdfSelect::udf0(THRESHOLD, EXPENSIVE_US, CHEAP_US)
    } else {
        UdfSelect::udf1(THRESHOLD, EXPENSIVE_US, CHEAP_US)
    };
    Query::new(source(cfg), vec![Box::new(udf) as Box<dyn Operator<Value>>]).with_base_cost(0)
}

/// Run all four configurations.
pub fn run(events: usize) -> Fig10 {
    let cfg = BatchedConfig {
        num_events: events,
        // ~10 batches with mild size variation, so the low-key and
        // high-key totals stay close (the paper's 176 s vs 163 s).
        min_batch: (9 * events) / 100,
        max_batch: (11 * events) / 100,
        // Scale the live window and punctuation cadence with the run so
        // feedback behaves the same at test and full size.
        event_duration_ms: (events / 100).max(50) as i64,
        stable_every: (events / 200).max(50),
        ..Default::default()
    };

    let (_, end0) = run_single(udf_query(&cfg, true));
    let (_, end1) = run_single(udf_query(&cfg, false));

    let run_merged = |feedback: bool| {
        let queries = vec![udf_query(&cfg, true), udf_query(&cfg, false)];
        MergeRun::new(
            queries,
            VariantKind::R3Plus.build(2),
            RunConfig {
                feedback,
                ..Default::default()
            },
        )
        .run()
    };

    let lmerge = run_merged(false);
    let with_feedback = run_merged(true);

    Fig10 {
        udf0_s: end0.as_secs_f64(),
        udf1_s: end1.as_secs_f64(),
        lmerge_s: lmerge.completion().as_secs_f64(),
        feedback_s: with_feedback.completion().as_secs_f64(),
        skipped: 0, // skipped counts live inside the consumed queries
        lmerge_rec: MetricsRecord::from_run(&lmerge),
        feedback_rec: MetricsRecord::from_run(&with_feedback),
    }
}

/// Build the printable report.
pub fn report() -> Report {
    let events = scale_events(200_000);
    let r = run(events);
    let mut report = Report::new(
        "fig10",
        "Plan switching with fast-forward (completion, virtual seconds)",
        &["configuration", "completion (s)", "speedup vs LMR3+"],
    );
    let base = r.lmerge_s;
    for (name, t) in [
        ("UDF0 alone", r.udf0_s),
        ("UDF1 alone", r.udf1_s),
        ("LMR3+ (no feedback)", r.lmerge_s),
        ("LM+Feedback", r.feedback_s),
    ] {
        report.row(&[
            name.to_string(),
            format!("{t:.1}"),
            format!("{:.1}x", base / t.max(1e-9)),
        ]);
    }
    report.note(format!(
        "{events} elements, alternating low/high-key batches, 9±. plan switches"
    ));
    report.note("expected: LMR3+ ≈ min(UDF0, UDF1); LM+Feedback several times faster");
    report.metric("LMR3+ (no feedback)", r.lmerge_rec);
    report.metric("LM+Feedback", r.feedback_rec);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_fast_forwards_the_slow_plan() {
        let r = run(20_000);
        // LMerge without feedback tracks (roughly) the faster single plan.
        let faster = r.udf0_s.min(r.udf1_s);
        assert!(
            r.lmerge_s <= 1.15 * faster,
            "no-feedback merge must track the faster plan: {} vs {}",
            r.lmerge_s,
            faster
        );
        // Feedback must be several times faster.
        assert!(
            r.feedback_s * 2.5 < r.lmerge_s,
            "feedback must fast-forward: {} vs {}",
            r.feedback_s,
            r.lmerge_s
        );
    }
}
