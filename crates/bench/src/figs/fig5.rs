//! Figure 5: throughput as input streams lag.
//!
//! "We feed LMerge three input streams with 20% disorder each, with
//! StableFreq set at 0.1%. Element lifetimes are kept at 40 seconds. We
//! simulate lag on two of the input streams … as lag increases, LMerge
//! performance improves since it can directly drop tuples from the lagging
//! streams. … throughput gains are higher if more streams are lagging."

use crate::report::MetricsRecord;
use crate::{bench_threads, drive_wallclock, run_points, scale_events, Report, VariantKind};
use lmerge_gen::timing::add_lag;
use lmerge_gen::{assign_times, diverge, generate, DivergenceConfig, GenConfig};

/// One sweep point.
pub struct Fig5Row {
    /// Injected lag (seconds) on the lagging streams.
    pub lag_s: u64,
    /// Input-element throughput with one stream lagging.
    pub eps_one_lagging: f64,
    /// Input-element throughput with two streams lagging.
    pub eps_two_lagging: f64,
    /// Headline record of the one-lagging run.
    pub rec_one: MetricsRecord,
    /// Headline record of the two-lagging run.
    pub rec_two: MetricsRecord,
}

fn workload(events: usize) -> GenConfig {
    GenConfig {
        num_events: events,
        disorder: 0.20,
        disorder_window_ms: 5_000,
        stable_freq: 0.001,
        event_duration_ms: 40_000, // "element lifetimes are kept at 40 seconds"
        max_gap_ms: 20,
        payload_len: 100,
        ..Default::default()
    }
}

/// Run the lag sweep serially (test entry point — the shape assertions
/// compare timing between points, so they avoid concurrent interference).
pub fn run(events: usize) -> Vec<Fig5Row> {
    run_with_threads(events, 1)
}

/// Run the lag sweep, one worker per lag point; row order matches serial.
pub fn run_with_threads(events: usize, threads: usize) -> Vec<Fig5Row> {
    const LAGS: [u64; 6] = [0, 1, 2, 3, 4, 5];
    let reference = generate(&workload(events));
    let div = DivergenceConfig::default();
    let copies: Vec<_> = (0..3)
        .map(|i| diverge(&reference.elements, &div, i))
        .collect();
    let rate = 50_000.0;

    run_points(LAGS.len(), threads, |pi| {
        let lag_s = LAGS[pi];
        let measure = |lagging: usize| {
            let timed: Vec<_> = copies
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let mut t = assign_times(c, rate);
                    if i >= 3 - lagging {
                        add_lag(&mut t, lag_s * 1_000_000);
                    }
                    t
                })
                .collect();
            let mut lm = VariantKind::R3Plus.build(3);
            MetricsRecord::from_wallclock(&drive_wallclock(lm.as_mut(), &timed))
        };
        let (rec_one, rec_two) = (measure(1), measure(2));
        Fig5Row {
            lag_s,
            eps_one_lagging: rec_one.throughput_eps,
            eps_two_lagging: rec_two.throughput_eps,
            rec_one,
            rec_two,
        }
    })
}

/// Build the printable report.
pub fn report() -> Report {
    let events = scale_events(20_000);
    let rows = run_with_threads(events, bench_threads());
    let mut report = Report::new(
        "fig5",
        "Throughput vs stream lag (LMR3+, 3 inputs, 20% disorder)",
        &["lag(s)", "1 lagging", "2 lagging"],
    );
    for r in &rows {
        report.row(&[
            r.lag_s.to_string(),
            crate::report::fmt_eps(r.eps_one_lagging),
            crate::report::fmt_eps(r.eps_two_lagging),
        ]);
    }
    report.note(format!(
        "{events} events/stream, StableFreq 0.1%, lifetime 40 s"
    ));
    report.note("expected: throughput rises with lag; higher with 2 streams lagging");
    for r in &rows {
        report.metric(format!("1lag@{}s", r.lag_s), r.rec_one);
        report.metric(format!("2lag@{}s", r.lag_s), r.rec_two);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_rises_with_lag() {
        let rows = run(6_000);
        let (first, last) = (&rows[0], rows.last().unwrap());
        assert!(
            last.eps_two_lagging > 1.15 * first.eps_two_lagging,
            "lagging streams must get cheaper to absorb: {} → {}",
            first.eps_two_lagging,
            last.eps_two_lagging
        );
        assert!(
            last.eps_two_lagging > last.eps_one_lagging,
            "more lagging streams → higher gains"
        );
    }
}
