//! Policy ablation (Section V-A): how the output-policy knobs trade
//! responsiveness against chattiness and spurious output.
//!
//! Not a figure in the paper — this quantifies the design choices the paper
//! discusses, over a revision-heavy workload (the count sub-query over
//! divergent disordered inputs, which produces transient events that are
//! later deleted — exactly what the conservative policies exist to avoid):
//!
//! * **inserts/adjusts out** — output volume (Table II's axis);
//! * **spurious** — inserts later fully deleted (never in the final TDB);
//! * **first-response latency** — virtual time from an event's first
//!   appearance on any input to its first appearance on the output.

use crate::figs::fig4::subquery;
use crate::{scale_events, Report};
use lmerge_core::{AdjustPolicy, InsertPolicy, LMergeR3, LogicalMerge, MergePolicy, StablePolicy};
use lmerge_gen::{assign_times, diverge, generate, DivergenceConfig, GenConfig, Timed};
use lmerge_temporal::{Element, StreamId, Time, Value};
use std::collections::HashMap;

/// One policy's measurements.
pub struct AblationRow {
    /// Human-readable policy name.
    pub name: &'static str,
    /// Insert elements emitted.
    pub inserts_out: u64,
    /// Adjust elements emitted.
    pub adjusts_out: u64,
    /// Inserts that were later fully deleted (spurious).
    pub spurious: u64,
    /// Mean per-event first-response latency (µs of virtual arrival time).
    pub mean_latency_us: f64,
}

fn policies() -> Vec<(&'static str, MergePolicy)> {
    vec![
        ("default (lazy)", MergePolicy::paper_default()),
        ("eager adjusts", MergePolicy::eager()),
        ("wait-half-frozen", MergePolicy::conservative()),
        (
            "quorum(2)",
            MergePolicy {
                insert: InsertPolicy::Quorum(2),
                ..Default::default()
            },
        ),
        (
            "follow-leader",
            MergePolicy {
                insert: InsertPolicy::FollowLeader,
                ..Default::default()
            },
        ),
        (
            "stable-lag(1s)",
            MergePolicy {
                adjust: AdjustPolicy::Lazy,
                stable: StablePolicy::Lag(1_000),
                ..Default::default()
            },
        ),
    ]
}

/// Run the ablation over `events` source events and 3 divergent inputs.
pub fn run(events: usize) -> Vec<AblationRow> {
    let cfg = GenConfig {
        num_events: events,
        disorder: 0.4,
        disorder_window_ms: 2_000,
        stable_freq: 0.01,
        event_duration_ms: 25,
        max_gap_ms: 20,
        payload_len: 32,
        ..Default::default()
    };
    let reference = generate(&cfg);
    let div = DivergenceConfig {
        revision_prob: 0.0,
        ..Default::default()
    };
    // Revision-heavy inputs: the count sub-query over each divergent copy.
    let timed: Vec<Vec<Timed>> = (0..3)
        .map(|i| assign_times(&subquery(&diverge(&reference.elements, &div, i)), 50_000.0))
        .collect();
    // Global arrival order.
    let mut all: Vec<(u64, u32, &Element<Value>)> = Vec::new();
    for (i, input) in timed.iter().enumerate() {
        for (at, e) in input {
            all.push((at.as_micros(), i as u32, e));
        }
    }
    all.sort_by_key(|(at, i, _)| (*at, *i));

    policies()
        .into_iter()
        .map(|(name, policy)| {
            let mut lm: LMergeR3<Value> = LMergeR3::with_policy(3, policy);
            let mut out = Vec::new();
            let mut all_out: Vec<Element<Value>> = Vec::new();
            // Per-event bookkeeping for first-response latency.
            let mut first_seen: HashMap<(Time, Value), u64> = HashMap::new();
            let mut latencies: Vec<u64> = Vec::new();
            for (at, input, e) in &all {
                if let Some((vs, p)) = e.key() {
                    first_seen.entry((vs, p.clone())).or_insert(*at);
                }
                out.clear();
                lm.push(StreamId(*input), e, &mut out);
                for oe in &out {
                    if let (true, Some((vs, p))) = (oe.is_insert(), oe.key()) {
                        if let Some(seen) = first_seen.get(&(vs, p.clone())) {
                            latencies.push(at - seen);
                        }
                    }
                }
                all_out.extend(out.iter().cloned());
            }
            let stats = lm.stats();
            let final_tdb =
                lmerge_temporal::reconstitute::tdb_of(&all_out).expect("output well formed");
            let spurious = stats.inserts_out.saturating_sub(final_tdb.len() as u64);
            let mean_latency_us = if latencies.is_empty() {
                0.0
            } else {
                latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
            };
            AblationRow {
                name,
                inserts_out: stats.inserts_out,
                adjusts_out: stats.adjusts_out,
                spurious,
                mean_latency_us,
            }
        })
        .collect()
}

/// Build the printable report.
pub fn report() -> Report {
    let events = scale_events(10_000);
    let rows = run(events);
    let mut report = Report::new(
        "ablation",
        "Policy ablation: output volume, spurious inserts, first-response latency",
        &["policy", "inserts", "adjusts", "spurious", "latency"],
    );
    for r in &rows {
        report.row(&[
            r.name.to_string(),
            r.inserts_out.to_string(),
            r.adjusts_out.to_string(),
            r.spurious.to_string(),
            format!("{:.2}ms", r.mean_latency_us / 1000.0),
        ]);
    }
    report.note(format!(
        "{events} source events, 40% disorder, count sub-query, 3 inputs"
    ));
    report.note("expected: wait-half-frozen/quorum cut spurious inserts but pay latency; eager maximizes adjusts");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservative_policies_cut_spurious_output() {
        let rows = run(3_000);
        let by_name = |n: &str| rows.iter().find(|r| r.name.starts_with(n)).unwrap();
        let default = by_name("default");
        let conservative = by_name("wait-half-frozen");
        let quorum = by_name("quorum");
        let eager = by_name("eager");
        assert!(
            default.spurious > 0,
            "workload must actually produce transient events"
        );
        assert!(conservative.spurious < default.spurious);
        assert!(quorum.spurious <= default.spurious);
        assert!(eager.adjusts_out >= default.adjusts_out);
        // Conservatism costs first-response latency.
        assert!(conservative.mean_latency_us > default.mean_latency_us);
    }
}
