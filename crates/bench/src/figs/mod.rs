//! One module per paper artefact. Each returns [`crate::Report`]s so the
//! thin `src/bin/*` wrappers and the `all` runner can share the logic, and
//! integration tests can assert on the *shapes* without parsing stdout.

pub mod ablation;
pub mod checkpoint_overhead;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod net_loopback;
pub mod obs_overhead;
pub mod shard_scaling;
pub mod sub_scaling;
pub mod table4;
