//! Figure 6: memory and throughput as `StableFreq` varies.
//!
//! "As we increase StableFreq from 0.001% to 1%, memory usage decreases as
//! expected, due to more frequent cleanup. On the other hand, the
//! throughput for LMR3+ and LMR4 decreases, as we need to perform more
//! frequent compatibility checks. The throughput for simpler schemes is not
//! affected."

use crate::report::MetricsRecord;
use crate::{bench_threads, drive_wallclock, run_points, scale_events, Report, VariantKind};
use lmerge_gen::timing::add_lag;
use lmerge_gen::{assign_times, generate, GenConfig};

/// One sweep point.
pub struct Fig6Row {
    /// Probability that an element is a `stable`.
    pub stable_freq: f64,
    /// Peak memory (bytes) per measured variant: LMR1, LMR3+, LMR4.
    pub memory: [usize; 3],
    /// Input throughput (elements/s) per measured variant.
    pub eps: [f64; 3],
    /// Headline record per measured variant (LMR1, LMR3+, LMR4).
    pub records: [MetricsRecord; 3],
}

/// Run the StableFreq sweep serially (test entry point).
pub fn run(events: usize) -> Vec<Fig6Row> {
    run_with_threads(events, 1)
}

/// Run the StableFreq sweep, one worker per frequency point (each point
/// generates its own workload, so the whole point parallelizes).
pub fn run_with_threads(events: usize, threads: usize) -> Vec<Fig6Row> {
    const FREQS: [f64; 4] = [0.00001, 0.0001, 0.001, 0.01];
    run_points(FREQS.len(), threads, |pi| {
        let stable_freq = FREQS[pi];
        let cfg = GenConfig {
            num_events: events,
            disorder: 0.0,
            disorder_window_ms: 0,
            stable_freq,
            event_duration_ms: 30_000,
            max_gap_ms: 20,
            min_gap_ms: 1,
            payload_len: 100,
            ..Default::default()
        };
        let reference = generate(&cfg);
        let timed: Vec<_> = (0..2)
            .map(|i| {
                let mut t = assign_times(&reference.elements, 50_000.0);
                add_lag(&mut t, i as u64 * 2_000);
                t
            })
            .collect();
        let mut memory = [0usize; 3];
        let mut eps = [0f64; 3];
        let mut records = [MetricsRecord::default(); 3];
        for (i, v) in [VariantKind::R1, VariantKind::R3Plus, VariantKind::R4]
            .into_iter()
            .enumerate()
        {
            let mut lm = v.build(2);
            let run = drive_wallclock(lm.as_mut(), &timed);
            memory[i] = run.peak_memory;
            eps[i] = run.throughput_eps();
            records[i] = MetricsRecord::from_wallclock(&run);
        }
        Fig6Row {
            stable_freq,
            memory,
            eps,
            records,
        }
    })
}

/// Build the printable report.
pub fn report() -> Report {
    let events = scale_events(20_000);
    let rows = run_with_threads(events, bench_threads());
    let mut report = Report::new(
        "fig6",
        "Memory and throughput vs StableFreq (2 inputs)",
        &[
            "StableFreq",
            "mem LMR1",
            "mem LMR3+",
            "mem LMR4",
            "eps LMR1",
            "eps LMR3+",
            "eps LMR4",
        ],
    );
    for r in &rows {
        report.row(&[
            format!("{:.3}%", r.stable_freq * 100.0),
            crate::report::fmt_bytes(r.memory[0]),
            crate::report::fmt_bytes(r.memory[1]),
            crate::report::fmt_bytes(r.memory[2]),
            crate::report::fmt_eps(r.eps[0]),
            crate::report::fmt_eps(r.eps[1]),
            crate::report::fmt_eps(r.eps[2]),
        ]);
    }
    report.note(format!("{events} events/stream, ordered workload"));
    report.note("expected: LMR3+/LMR4 memory falls as StableFreq rises; LMR1 flat");
    for r in &rows {
        for (label, rec) in ["LMR1", "LMR3+", "LMR4"].iter().zip(&r.records) {
            report.metric(format!("{label}@sf={:.3}%", r.stable_freq * 100.0), *rec);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_falls_with_stable_freq() {
        let rows = run(6_000);
        let (first, last) = (&rows[0], rows.last().unwrap());
        // Rare punctuation (0.001%) retains far more state than 1%.
        assert!(
            first.memory[1] as f64 > 1.4 * last.memory[1] as f64,
            "LMR3+ memory must fall with StableFreq: {} → {}",
            first.memory[1],
            last.memory[1]
        );
        assert!(
            first.memory[2] as f64 > 1.4 * last.memory[2] as f64,
            "LMR4 memory must fall with StableFreq"
        );
        // LMR1 stays constant-size regardless.
        assert!(last.memory[0] < 4096 && first.memory[0] < 4096);
    }
}
