//! Figure 4: output size (adjust elements) as disorder increases.
//!
//! "We introduce disorder in the input stream, and feed it into a sub-query
//! that generates many adjust() elements. … when disorder increases, the
//! number of adjusts increases significantly at the output. However, our
//! specific output policy controls chattiness by limiting the production of
//! intermediate adjusts that may not be present in the final TDB."
//!
//! Alongside the without-LMerge baseline we run LMerge under both the
//! paper's default (lazy) adjust policy and the eager alternative of
//! Section V-A, to show the policy is what bounds the chattiness.

use crate::report::MetricsRecord;
use crate::{drive_wallclock, scale_events, Report};
use lmerge_core::{LMergeR3, LogicalMerge, MergePolicy};
use lmerge_engine::ops::IntervalCount;
use lmerge_engine::Operator;
use lmerge_gen::{assign_times, diverge, generate, DivergenceConfig, GenConfig};
use lmerge_temporal::{Element, Value};

/// Push a stream through the adjust-generating sub-query (grouped interval
/// count — the paper's "aggregate (count) followed by a lifetime
/// modification"; the count already bounds lifetimes to interval ends).
pub fn subquery(input: &[Element<Value>]) -> Vec<Element<Value>> {
    let mut agg = IntervalCount::new(8);
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut buf = Vec::new();
    for e in input {
        buf.clear();
        agg.on_element(e, &mut buf);
        out.append(&mut buf);
    }
    out
}

/// One sweep point.
pub struct Fig4Row {
    /// Disorder fraction of the source stream.
    pub disorder: f64,
    /// Adjusts in a single sub-query output (the "without LMerge" series).
    pub adjusts_no_lmerge: u64,
    /// Inserts in that sub-query output.
    pub inserts_no_lmerge: u64,
    /// Adjusts LMerge emits under the default lazy policy.
    pub adjusts_lazy: u64,
    /// Adjusts LMerge emits under the eager adjust policy.
    pub adjusts_eager: u64,
    /// Headline record of the lazy-policy merge run.
    pub lazy: MetricsRecord,
    /// Headline record of the eager-policy merge run.
    pub eager: MetricsRecord,
}

/// Run the disorder sweep.
pub fn run(events: usize) -> Vec<Fig4Row> {
    let mut rows = Vec::new();
    for disorder in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let cfg = GenConfig {
            num_events: events,
            disorder,
            disorder_window_ms: 1_000,
            stable_freq: 0.01,
            // Lifetimes only slightly above the mean gap: an in-order
            // stream splits little, so revisions come from disorder.
            event_duration_ms: 25,
            max_gap_ms: 20,
            payload_len: 32,
            ..Default::default()
        };
        let reference = generate(&cfg);
        let div = DivergenceConfig {
            revision_prob: 0.0, // disorder alone drives the revisions here
            ..Default::default()
        };
        // The "without LMerge" series runs the sub-query over the raw
        // generator output: its revisions come purely from the injected
        // disorder (an in-order input yields zero adjusts).
        let baseline = subquery(&reference.elements);
        let adjusts_no_lmerge = baseline.iter().filter(|e| e.is_adjust()).count() as u64;
        let inserts_no_lmerge = baseline.iter().filter(|e| e.is_insert()).count() as u64;
        let subs: Vec<Vec<Element<Value>>> = (0..2)
            .map(|i| subquery(&diverge(&reference.elements, &div, i)))
            .collect();

        let timed: Vec<_> = subs.iter().map(|s| assign_times(s, 50_000.0)).collect();
        let merge = |policy: MergePolicy| {
            let mut lm: Box<dyn LogicalMerge<Value>> = Box::new(LMergeR3::with_policy(2, policy));
            MetricsRecord::from_wallclock(&drive_wallclock(lm.as_mut(), &timed))
        };
        let lazy = merge(MergePolicy::paper_default());
        let eager = merge(MergePolicy::eager());
        rows.push(Fig4Row {
            disorder,
            adjusts_no_lmerge,
            inserts_no_lmerge,
            adjusts_lazy: lazy.chattiness_adjusts,
            adjusts_eager: eager.chattiness_adjusts,
            lazy,
            eager,
        });
    }
    rows
}

/// Build the printable report.
pub fn report() -> Report {
    let events = scale_events(20_000);
    let rows = run(events);
    let mut report = Report::new(
        "fig4",
        "Output size vs disorder: sub-query adjusts with and without LMerge",
        &[
            "disorder",
            "adjusts(no LM)",
            "inserts(no LM)",
            "adjusts(LM lazy)",
            "adjusts(LM eager)",
        ],
    );
    for r in &rows {
        report.row(&[
            format!("{:.0}%", r.disorder * 100.0),
            r.adjusts_no_lmerge.to_string(),
            r.inserts_no_lmerge.to_string(),
            r.adjusts_lazy.to_string(),
            r.adjusts_eager.to_string(),
        ]);
    }
    report.note(format!(
        "{events} source events, count sub-query, 2 inputs, LMR3+"
    ));
    report.note("expected: adjusts grow with disorder; lazy policy far less chatty than eager");
    for r in &rows {
        let pct = format!("{:.0}%", r.disorder * 100.0);
        report.metric(format!("lazy@{pct}"), r.lazy);
        report.metric(format!("eager@{pct}"), r.eager);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjusts_grow_with_disorder_and_policy_tames_them() {
        let rows = run(4_000);
        let (first, last) = (&rows[0], rows.last().unwrap());
        assert!(
            last.adjusts_no_lmerge as f64 > 1.5 * (first.adjusts_no_lmerge as f64).max(1.0),
            "adjusts must increase with disorder: {} → {}",
            first.adjusts_no_lmerge,
            last.adjusts_no_lmerge
        );
        assert!(
            last.adjusts_lazy < last.adjusts_eager,
            "lazy policy must be less chatty than eager: {} vs {}",
            last.adjusts_lazy,
            last.adjusts_eager
        );
    }
}
