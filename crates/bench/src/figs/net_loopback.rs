//! Loopback ingest throughput: divergent replicas streamed over real TCP
//! into the virtual-time executor, against the in-process baseline.
//!
//! Not a paper figure — it measures the lmerge-net subsystem that makes
//! the paper's "physically independent" inputs literal. Each replica is
//! framed (insert/adjust/stable + per-frame FNV-1a checksum), shipped
//! through a loopback socket with credit backpressure, decoded by a
//! session thread, and handed to the merge through a bounded SPSC ring.
//! Virtual arrival times travel inside the frames, so the executor
//! consumes exactly the timed sequence the in-process run does: the
//! merged output — and therefore the deterministic gate fields (peak
//! memory, chattiness) — must be identical; only wall clock may differ.
//!
//! Expected shape: loopback wall clock within a small factor of the
//! in-process drive (framing + checksum + syscalls per element), scaling
//! with the number of concurrent sessions rather than collapsing.

use crate::report::{fmt_bytes, fmt_eps, MetricsRecord};
use crate::{scale_events, Report, VariantKind};
use lmerge_engine::{MergeRun, Query, RunConfig, RunMetrics, TimedElement};
use lmerge_gen::{assign_times, diverge, generate, DivergenceConfig, GenConfig};
use lmerge_net::client::{replay_until_clean, ReplayConfig};
use lmerge_net::server::{IngestConfig, IngestServer};
use lmerge_net::wire::{self, Frame};
use lmerge_temporal::Value;
use std::thread;
use std::time::Instant;

/// One measured configuration.
pub struct NetPoint {
    /// Row label (also the metrics label).
    pub label: String,
    /// Concurrent TCP sessions (0 for the in-process baseline).
    pub sessions: usize,
    /// Timed elements consumed by the merge across all inputs.
    pub elements: u64,
    /// Bytes the data frames occupy on the wire (0 in-process).
    pub wire_bytes: u64,
    /// End-to-end wall clock: clients spawned → run drained.
    pub wall_s: f64,
    /// `elements / wall_s`.
    pub throughput_eps: f64,
    /// Full executor metrics for the record.
    pub metrics: RunMetrics,
}

/// Sweep result.
pub struct NetLoopback {
    /// Baseline first, then the loopback points.
    pub points: Vec<NetPoint>,
    /// Headline record per point, for `BENCH_net_loopback.json`.
    pub metrics: Vec<(String, MetricsRecord)>,
}

/// The divergent-replica workload shared by every point: one logical
/// stream, `n` physically different presentations of it, timed at 50k
/// elements/s each.
fn replica_feeds(events: usize, n: usize) -> Vec<Vec<TimedElement<Value>>> {
    let cfg = GenConfig {
        num_events: events,
        disorder: 0.10,
        stable_freq: 0.02,
        payload_len: 32,
        ..Default::default()
    };
    let reference = generate(&cfg);
    let div = DivergenceConfig::default();
    (0..n as u64)
        .map(|i| {
            assign_times(&diverge(&reference.elements, &div, i), 50_000.0)
                .into_iter()
                .map(|(at, e)| TimedElement::new(at, e))
                .collect()
        })
        .collect()
}

/// Exact on-wire size of a feed's data frames (deterministic: framing is
/// content-addressed, not timing-dependent).
fn wire_bytes_of(feeds: &[Vec<TimedElement<Value>>]) -> u64 {
    feeds
        .iter()
        .flatten()
        .enumerate()
        .map(|(i, te)| {
            wire::encode(&Frame::Data {
                seq: i as u64,
                at: te.at,
                element: te.element.clone(),
            })
            .len() as u64
        })
        .sum()
}

/// Drive the feeds through the executor in-process (the baseline).
fn run_in_process(feeds: Vec<Vec<TimedElement<Value>>>) -> (f64, RunMetrics) {
    let n = feeds.len();
    let queries: Vec<Query<Value>> = feeds.into_iter().map(Query::passthrough).collect();
    let start = Instant::now();
    let metrics = MergeRun::new(queries, VariantKind::R3Plus.build(n), RunConfig::default()).run();
    (start.elapsed().as_secs_f64(), metrics)
}

/// Drive the feeds through the executor over loopback TCP: one replayer
/// thread per input, the merge consuming live `NetSource`s.
fn run_loopback(feeds: Vec<Vec<TimedElement<Value>>>) -> (f64, RunMetrics) {
    let n = feeds.len();
    let mut server =
        IngestServer::bind("127.0.0.1:0", IngestConfig::new(n)).expect("bind ingest server");
    let addr = server.local_addr().to_string();
    let start = Instant::now();
    let clients: Vec<_> = feeds
        .into_iter()
        .enumerate()
        .map(|(i, feed)| {
            let addr = addr.clone();
            thread::spawn(move || {
                replay_until_clean(&addr, &feed, &ReplayConfig::new(i as u32), 5)
                    .expect("loopback replay")
            })
        })
        .collect();
    let queries: Vec<Query<Value>> = server
        .sources()
        .into_iter()
        .map(|src| Query::from_source(Box::new(src), Vec::new()))
        .collect();
    let metrics = MergeRun::new(queries, VariantKind::R3Plus.build(n), RunConfig::default()).run();
    for c in clients {
        c.join().expect("replayer thread");
    }
    let wall = start.elapsed().as_secs_f64();
    server.shutdown();
    (wall, metrics)
}

/// Run the sweep: in-process baseline, then loopback at 1 and `inputs`
/// sessions.
pub fn run(events: usize, inputs: usize) -> NetLoopback {
    let mut points = Vec::new();
    let mut records = Vec::new();
    let mut push = |label: String,
                    sessions: usize,
                    elements: u64,
                    wire_bytes: u64,
                    wall_s: f64,
                    metrics: RunMetrics| {
        let throughput_eps = if wall_s > 0.0 {
            elements as f64 / wall_s
        } else {
            0.0
        };
        let mut record = MetricsRecord::from_run(&metrics);
        // The headline throughput of *this* figure is wall-clock over the
        // socket path, not the executor's virtual-time rate.
        record.throughput_eps = throughput_eps;
        records.push((label.clone(), record));
        points.push(NetPoint {
            label,
            sessions,
            elements,
            wire_bytes,
            wall_s,
            throughput_eps,
            metrics,
        });
    };

    let feeds = replica_feeds(events, inputs);
    let elements: u64 = feeds.iter().map(|f| f.len() as u64).sum();
    let wire = wire_bytes_of(&feeds);
    let (wall, metrics) = run_in_process(feeds.clone());
    let baseline_inserts = metrics.merge.inserts_out;
    push(format!("inproc@{inputs}"), 0, elements, 0, wall, metrics);

    let single = replica_feeds(events, 1);
    let single_elements = single[0].len() as u64;
    let single_wire = wire_bytes_of(&single);
    let (wall, metrics) = run_loopback(single);
    push(
        "loopback@1".to_string(),
        1,
        single_elements,
        single_wire,
        wall,
        metrics,
    );

    let (wall, metrics) = run_loopback(feeds);
    assert_eq!(
        metrics.merge.inserts_out, baseline_inserts,
        "the socket path must not change the merged output"
    );
    push(
        format!("loopback@{inputs}"),
        inputs,
        elements,
        wire,
        wall,
        metrics,
    );

    NetLoopback {
        points,
        metrics: records,
    }
}

/// Build the printable report.
pub fn report() -> Report {
    let events = scale_events(20_000);
    const INPUTS: usize = 3;
    let result = run(events, INPUTS);
    let mut report = Report::new(
        "net_loopback",
        "Loopback TCP ingest vs in-process delivery (LMR3+, divergent replicas)",
        &[
            "config", "sessions", "elements", "wire", "wall", "thruput", "adjusts",
        ],
    );
    for p in &result.points {
        report.row(&[
            p.label.clone(),
            p.sessions.to_string(),
            p.elements.to_string(),
            fmt_bytes(p.wire_bytes as usize),
            format!("{:.1}ms", p.wall_s * 1e3),
            fmt_eps(p.throughput_eps),
            p.metrics.merge.adjusts_out.to_string(),
        ]);
    }
    report.note(format!(
        "{events} events/stream x {INPUTS} replicas; framed insert/adjust/stable with \
         per-frame FNV-1a checksums, 256-slot rings, credits 32 at a time"
    ));
    report.note(
        "thruput = elements / wall clock of the full path (replayer threads, \
         loopback sockets, decode, ring, merge); peak memory and chattiness \
         are delivery-path-invariant and gated by check_regression",
    );
    for (label, m) in &result.metrics {
        report.metric(label.clone(), *m);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_path_reproduces_the_baseline_output() {
        let r = run(2_000, 3);
        assert_eq!(r.points.len(), 3);
        let base = &r.points[0];
        let net = &r.points[2];
        // run() asserts inserts match; the gate fields must match too.
        assert_eq!(
            base.metrics.merge.adjusts_out, net.metrics.merge.adjusts_out,
            "chattiness is delivery-path-invariant"
        );
        assert_eq!(
            base.metrics.peak_memory, net.metrics.peak_memory,
            "peak memory is delivery-path-invariant"
        );
        assert!(net.wire_bytes > 0 && net.throughput_eps > 0.0);
        // Framing overhead is bounded: headers + checksums, not bloat.
        assert!(
            net.wire_bytes < 200 * net.elements,
            "{} bytes for {} elements",
            net.wire_bytes,
            net.elements
        );
    }
}
