//! Aligned-table reporting plus JSON persistence for the figure harness.
//!
//! Each figure emits two artefacts under `target/bench-results/`:
//!
//! * `<id>.json` — the full table (columns, rows, notes), for archival;
//! * `BENCH_<id>.json` — a compact machine-readable metrics record per
//!   measured configuration: throughput, p50/p99 latency (from the
//!   log-bucketed histogram), peak memory, and chattiness. This is the
//!   file regression tooling diffs between runs.

use lmerge_engine::RunMetrics;
use lmerge_obs::json::Json;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The headline numbers of one measured configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricsRecord {
    /// Throughput in events per second (virtual or wall-clock, per figure).
    pub throughput_eps: f64,
    /// Median output latency in µs (0 when the figure measures none).
    pub p50_latency_us: u64,
    /// 99th-percentile output latency in µs.
    pub p99_latency_us: u64,
    /// Peak operator memory estimate in bytes.
    pub peak_memory_bytes: u64,
    /// Adjust elements emitted — the paper's chattiness measure.
    pub chattiness_adjusts: u64,
}

impl MetricsRecord {
    /// Extract the record from a virtual-time executor run.
    pub fn from_run(m: &RunMetrics) -> MetricsRecord {
        MetricsRecord {
            throughput_eps: m.throughput_eps(),
            p50_latency_us: m.latency_quantile_us(0.50),
            p99_latency_us: m.latency_quantile_us(0.99),
            peak_memory_bytes: m.peak_memory as u64,
            chattiness_adjusts: m.merge.adjusts_out,
        }
    }

    /// Extract the record from a wall-clock harness run. Wall-clock drives
    /// measure operator cost, not per-element emission latency, so the
    /// latency quantiles are 0.
    pub fn from_wallclock(r: &crate::harness::WallClockRun) -> MetricsRecord {
        MetricsRecord {
            throughput_eps: r.throughput_eps(),
            p50_latency_us: 0,
            p99_latency_us: 0,
            peak_memory_bytes: r.peak_memory as u64,
            chattiness_adjusts: r.stats.adjusts_out,
        }
    }

    fn to_json(self) -> Json {
        Json::object()
            .with("throughput_eps", self.throughput_eps)
            .with("p50_latency_us", self.p50_latency_us)
            .with("p99_latency_us", self.p99_latency_us)
            .with("peak_memory_bytes", self.peak_memory_bytes)
            .with("chattiness_adjusts", self.chattiness_adjusts)
    }
}

/// A simple column-aligned report: one per figure.
#[derive(Debug)]
pub struct Report {
    /// Experiment id, e.g. `"fig2"`.
    pub id: String,
    /// One-line description of what the figure shows.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form observations appended after the table.
    pub notes: Vec<String>,
    /// Labelled metrics records serialized to `BENCH_<id>.json`.
    pub metrics: Vec<(String, MetricsRecord)>,
}

impl Report {
    /// Start a report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Report {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.columns.len(), "row/column mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a note shown below the table.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Record the headline metrics of one measured configuration.
    pub fn metric(&mut self, label: impl Into<String>, record: MetricsRecord) {
        self.metrics.push((label.into(), record));
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "== {}: {} ==", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(s, "{}", line(&self.columns, &widths));
        let _ = writeln!(
            s,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            let _ = writeln!(s, "{}", line(row, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(s, "note: {n}");
        }
        s
    }

    /// The full table as a JSON document.
    pub fn table_json(&self) -> Json {
        let strings =
            |v: &[String]| Json::Array(v.iter().map(|s| Json::from(s.as_str())).collect());
        Json::object()
            .with("id", self.id.as_str())
            .with("title", self.title.as_str())
            .with("columns", strings(&self.columns))
            .with(
                "rows",
                Json::Array(self.rows.iter().map(|r| strings(r)).collect()),
            )
            .with("notes", strings(&self.notes))
    }

    /// The metrics records as a JSON document (`BENCH_<id>.json` content).
    pub fn metrics_json(&self) -> Json {
        Json::object().with("id", self.id.as_str()).with(
            "metrics",
            Json::Array(
                self.metrics
                    .iter()
                    .map(|(label, m)| m.to_json().with("label", label.as_str()))
                    .collect(),
            ),
        )
    }

    /// Print to stdout and persist JSON under `target/bench-results/`:
    /// the table as `<id>.json` and, when metrics were recorded, the
    /// compact record as `BENCH_<id>.json`.
    pub fn emit(&self) {
        println!("{}", self.render());
        // Anchor on the workspace target dir: `cargo bench` runs with the
        // package dir as cwd, `cargo run` with the caller's cwd — a
        // relative path would scatter artefacts between the two.
        let dir = std::env::var_os("CARGO_TARGET_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"))
            .join("bench-results");
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = std::fs::write(
                dir.join(format!("{}.json", self.id)),
                self.table_json().render_pretty(),
            );
            if !self.metrics.is_empty() {
                let _ = std::fs::write(
                    dir.join(format!("BENCH_{}.json", self.id)),
                    self.metrics_json().render_pretty(),
                );
            }
        }
    }
}

/// Format a byte count humanely.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

/// Format an events-per-second rate.
pub fn fmt_eps(eps: f64) -> String {
    if eps >= 1_000_000.0 {
        format!("{:.2}M/s", eps / 1_000_000.0)
    } else if eps >= 1_000.0 {
        format!("{:.1}K/s", eps / 1_000.0)
    } else {
        format!("{eps:.0}/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_obs::json;

    #[test]
    fn render_alignment() {
        let mut r = Report::new("figX", "demo", &["a", "bbbb"]);
        r.row(&["1".into(), "2".into()]);
        r.row(&["333".into(), "4".into()]);
        r.note("hello");
        let s = r.render();
        assert!(s.contains("figX"));
        assert!(s.contains("note: hello"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn row_mismatch_panics() {
        let mut r = Report::new("x", "y", &["a"]);
        r.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MiB");
        assert_eq!(fmt_eps(500.0), "500/s");
        assert_eq!(fmt_eps(1500.0), "1.5K/s");
        assert_eq!(fmt_eps(2_500_000.0), "2.50M/s");
    }

    #[test]
    fn table_json_roundtrips() {
        let mut r = Report::new("figX", "demo", &["a"]);
        r.row(&["1".into()]);
        r.note("n");
        let v = json::parse(&r.table_json().render_pretty()).expect("valid JSON");
        assert_eq!(v.get("id").and_then(Json::as_str), Some("figX"));
        assert_eq!(v.get("rows").and_then(Json::as_array).unwrap().len(), 1);
    }

    #[test]
    fn metrics_json_carries_the_headline_numbers() {
        let mut r = Report::new("fig9", "demo", &["a"]);
        r.metric(
            "LMR3+",
            MetricsRecord {
                throughput_eps: 1_000.5,
                p50_latency_us: 40,
                p99_latency_us: 900,
                peak_memory_bytes: 1 << 20,
                chattiness_adjusts: 7,
            },
        );
        let v = json::parse(&r.metrics_json().render_pretty()).expect("valid JSON");
        let m = &v.get("metrics").and_then(Json::as_array).unwrap()[0];
        assert_eq!(m.get("label").and_then(Json::as_str), Some("LMR3+"));
        assert_eq!(m.get("p99_latency_us").and_then(Json::as_int), Some(900));
        assert_eq!(
            m.get("peak_memory_bytes").and_then(Json::as_int),
            Some(1 << 20)
        );
    }

    #[test]
    fn from_run_reads_the_histogram() {
        let mut run = RunMetrics::default();
        for v in 1..=100u64 {
            run.latency.record(v);
        }
        run.peak_memory = 4096;
        run.merge.adjusts_out = 3;
        let rec = MetricsRecord::from_run(&run);
        assert_eq!(rec.p50_latency_us, 50);
        // 99 sits in a 4-wide bucket: the histogram reports its lower bound.
        assert_eq!(rec.p99_latency_us, 96);
        assert_eq!(rec.peak_memory_bytes, 4096);
        assert_eq!(rec.chattiness_adjusts, 3);
    }
}
