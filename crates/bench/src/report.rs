//! Aligned-table reporting plus JSON persistence for the figure harness.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple column-aligned report: one per figure.
#[derive(Debug, Serialize)]
pub struct Report {
    /// Experiment id, e.g. `"fig2"`.
    pub id: String,
    /// One-line description of what the figure shows.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form observations appended after the table.
    pub notes: Vec<String>,
}

impl Report {
    /// Start a report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Report {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.columns.len(), "row/column mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a note shown below the table.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "== {}: {} ==", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(s, "{}", line(&self.columns, &widths));
        let _ = writeln!(
            s,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            let _ = writeln!(s, "{}", line(row, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(s, "note: {n}");
        }
        s
    }

    /// Print to stdout and persist JSON under `target/bench-results/`.
    pub fn emit(&self) {
        println!("{}", self.render());
        let dir = PathBuf::from("target/bench-results");
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{}.json", self.id));
            if let Ok(json) = serde_json::to_string_pretty(self) {
                let _ = std::fs::write(path, json);
            }
        }
    }
}

/// Format a byte count humanely.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

/// Format an events-per-second rate.
pub fn fmt_eps(eps: f64) -> String {
    if eps >= 1_000_000.0 {
        format!("{:.2}M/s", eps / 1_000_000.0)
    } else if eps >= 1_000.0 {
        format!("{:.1}K/s", eps / 1_000.0)
    } else {
        format!("{eps:.0}/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment() {
        let mut r = Report::new("figX", "demo", &["a", "bbbb"]);
        r.row(&["1".into(), "2".into()]);
        r.row(&["333".into(), "4".into()]);
        r.note("hello");
        let s = r.render();
        assert!(s.contains("figX"));
        assert!(s.contains("note: hello"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn row_mismatch_panics() {
        let mut r = Report::new("x", "y", &["a"]);
        r.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MiB");
        assert_eq!(fmt_eps(500.0), "500/s");
        assert_eq!(fmt_eps(1500.0), "1.5K/s");
        assert_eq!(fmt_eps(2_500_000.0), "2.50M/s");
    }
}
