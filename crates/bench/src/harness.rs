//! Shared machinery for the figure benchmarks.

use lmerge_core::{
    LMergeR0, LMergeR1, LMergeR2, LMergeR3, LMergeR3Naive, LMergeR4, LogicalMerge, MergeStats,
};
use lmerge_gen::{diverge, generate, DivergenceConfig, GenConfig, Timed};
use lmerge_temporal::{Element, StreamId, Value};
use std::time::Instant;

/// The operator variants of Section VI-A, by evaluation name.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VariantKind {
    /// `LMR0`
    R0,
    /// `LMR1`
    R1,
    /// `LMR2`
    R2,
    /// `LMR3+` (the `in2t` algorithm)
    R3Plus,
    /// `LMR3−` (naive per-input indexes)
    R3Minus,
    /// `LMR4` (the `in3t` algorithm)
    R4,
}

impl VariantKind {
    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            VariantKind::R0 => "LMR0",
            VariantKind::R1 => "LMR1",
            VariantKind::R2 => "LMR2",
            VariantKind::R3Plus => "LMR3+",
            VariantKind::R3Minus => "LMR3-",
            VariantKind::R4 => "LMR4",
        }
    }

    /// Instantiate the operator for `n` inputs.
    pub fn build(self, n: usize) -> Box<dyn LogicalMerge<Value>> {
        match self {
            VariantKind::R0 => Box::new(LMergeR0::new(n)),
            VariantKind::R1 => Box::new(LMergeR1::new(n)),
            VariantKind::R2 => Box::new(LMergeR2::new(n)),
            VariantKind::R3Plus => Box::new(LMergeR3::new(n)),
            VariantKind::R3Minus => Box::new(LMergeR3Naive::new(n)),
            VariantKind::R4 => Box::new(LMergeR4::new(n)),
        }
    }

    /// Whether the variant tolerates adjust elements.
    pub fn supports_adjusts(self) -> bool {
        matches!(
            self,
            VariantKind::R3Plus | VariantKind::R3Minus | VariantKind::R4
        )
    }
}

/// All variants, cheapest first.
pub fn variants() -> [VariantKind; 6] {
    [
        VariantKind::R0,
        VariantKind::R1,
        VariantKind::R2,
        VariantKind::R3Plus,
        VariantKind::R3Minus,
        VariantKind::R4,
    ]
}

/// Events per stream: `LMERGE_BENCH_EVENTS` or a laptop-friendly default.
pub fn scale_events(default: usize) -> usize {
    std::env::var("LMERGE_BENCH_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Generate `n` divergent copies of one logical stream.
pub fn build_divergent_inputs(
    gen_cfg: &GenConfig,
    div_cfg: &DivergenceConfig,
    n: usize,
) -> Vec<Vec<Element<Value>>> {
    let reference = generate(gen_cfg);
    (0..n)
        .map(|i| diverge(&reference.elements, div_cfg, i as u64))
        .collect()
}

/// Result of a wall-clock drive: how fast the operator itself runs.
#[derive(Clone, Copy, Debug)]
pub struct WallClockRun {
    /// Real seconds spent inside the operator.
    pub elapsed_s: f64,
    /// Elements pushed in.
    pub elements_in: u64,
    /// Data elements emitted.
    pub data_out: u64,
    /// Peak memory estimate observed (sampled every 1024 elements).
    pub peak_memory: usize,
    /// Final operator statistics.
    pub stats: MergeStats,
}

impl WallClockRun {
    /// Input elements consumed per real second (rises when duplicates can
    /// be dropped cheaply — the effect Figure 5 measures).
    pub fn throughput_eps(&self) -> f64 {
        if self.elapsed_s == 0.0 {
            0.0
        } else {
            self.elements_in as f64 / self.elapsed_s
        }
    }

    /// Output data elements produced per real second (the paper's
    /// "events produced at the output per second" metric).
    pub fn output_eps(&self) -> f64 {
        if self.elapsed_s == 0.0 {
            0.0
        } else {
            self.data_out as f64 / self.elapsed_s
        }
    }
}

/// Drive pre-timed inputs through an LMerge in global arrival order,
/// measuring real (wall-clock) operator cost — the paper's throughput
/// metric isolates the operator, so we do too.
pub fn drive_wallclock(lm: &mut dyn LogicalMerge<Value>, inputs: &[Vec<Timed>]) -> WallClockRun {
    // Merge the per-input timelines into one global arrival order.
    let mut all: Vec<(u64, u32, &Element<Value>)> = Vec::new();
    for (i, input) in inputs.iter().enumerate() {
        for (at, e) in input {
            all.push((at.as_micros(), i as u32, e));
        }
    }
    all.sort_by_key(|(at, i, _)| (*at, *i));

    let mut out = Vec::with_capacity(256);
    let mut data_out = 0u64;
    let mut peak = 0usize;
    let start = Instant::now();
    for (n, (_, input, e)) in all.iter().enumerate() {
        out.clear();
        lm.push(StreamId(*input), e, &mut out);
        data_out += out.iter().filter(|e| !e.is_stable()).count() as u64;
        if n % 1024 == 0 {
            peak = peak.max(lm.memory_bytes());
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    peak = peak.max(lm.memory_bytes());
    WallClockRun {
        elapsed_s,
        elements_in: all.len() as u64,
        data_out,
        peak_memory: peak,
        stats: lm.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_gen::assign_times;

    #[test]
    fn variants_roundtrip_labels() {
        for v in variants() {
            let lm = v.build(2);
            assert!(!v.label().is_empty());
            drop(lm);
        }
    }

    #[test]
    fn divergent_inputs_build() {
        let inputs =
            build_divergent_inputs(&GenConfig::small(100, 1), &DivergenceConfig::default(), 3);
        assert_eq!(inputs.len(), 3);
        assert_ne!(inputs[0], inputs[1]);
    }

    #[test]
    fn wallclock_drive_merges() {
        let inputs =
            build_divergent_inputs(&GenConfig::small(200, 2), &DivergenceConfig::default(), 2);
        let timed: Vec<_> = inputs.iter().map(|i| assign_times(i, 50_000.0)).collect();
        let mut lm = VariantKind::R3Plus.build(2);
        let run = drive_wallclock(lm.as_mut(), &timed);
        assert!(run.elements_in > 400);
        assert_eq!(run.stats.inserts_out, 200, "one output per logical event");
        assert!(run.throughput_eps() > 0.0);
    }

    #[test]
    fn scale_env_override() {
        assert_eq!(scale_events(1234), 1234);
    }
}
