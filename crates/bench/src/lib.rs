//! Benchmark harness for the LMerge evaluation (paper Section VI).
//!
//! One binary per table/figure regenerates the corresponding result:
//!
//! | Binary | Paper artefact |
//! |--------|----------------|
//! | `fig2` | Memory vs #inputs, in-order streams, all variants |
//! | `fig3` | Throughput vs #inputs, in-order streams, all variants |
//! | `fig4` | Output size (adjusts) vs disorder, with/without LMerge |
//! | `fig5` | Throughput vs stream lag |
//! | `fig6` | Memory & throughput vs StableFreq |
//! | `fig7` | Memory, throughput & latency: LMR3+ vs LMR3− vs C+LMR1 |
//! | `fig8` | Smoothing bursty streams |
//! | `fig9` | Masking network congestion |
//! | `fig10` | Plan switching with fast-forward feedback |
//! | `table4` | Empirical check of the complexity table |
//! | `all` | Runs everything above in sequence |
//!
//! Scale is controlled by `LMERGE_BENCH_EVENTS` (default 30 000 events per
//! stream — small enough for seconds-per-figure on a laptop, large enough
//! for the paper's shapes to be unmistakable).

pub mod figs;
pub mod harness;
pub mod parallel;
pub mod report;

pub use harness::{build_divergent_inputs, drive_wallclock, scale_events, variants, VariantKind};
pub use parallel::{bench_threads, run_points};
pub use report::Report;
