//! Regenerates the paper's fig7 result. See `lmerge_bench::figs::fig7`.

fn main() {
    lmerge_bench::figs::fig7::report().emit();
}
