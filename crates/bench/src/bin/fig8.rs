//! Regenerates the paper's fig8 result. See `lmerge_bench::figs::fig8`.

fn main() {
    lmerge_bench::figs::fig8::report().emit();
}
