//! Regenerates the paper's fig5 result. See `lmerge_bench::figs::fig5`.

fn main() {
    lmerge_bench::figs::fig5::report().emit();
}
