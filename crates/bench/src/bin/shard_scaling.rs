//! Regenerates the shard-scaling result. See
//! `lmerge_bench::figs::shard_scaling`.

fn main() {
    lmerge_bench::figs::shard_scaling::report().emit();
}
