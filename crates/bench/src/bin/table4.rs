//! Regenerates the paper's table4 result. See `lmerge_bench::figs::table4`.

fn main() {
    lmerge_bench::figs::table4::report().emit();
}
