//! Regenerates the paper's fig2 result. See `lmerge_bench::figs::fig2`.

fn main() {
    lmerge_bench::figs::fig2::report().emit();
}
