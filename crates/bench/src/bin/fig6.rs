//! Regenerates the paper's fig6 result. See `lmerge_bench::figs::fig6`.

fn main() {
    lmerge_bench::figs::fig6::report().emit();
}
