//! Regenerates the loopback-ingest result. See
//! `lmerge_bench::figs::net_loopback`.

fn main() {
    lmerge_bench::figs::net_loopback::report().emit();
}
