//! Regenerates the checkpoint-overhead result. See
//! `lmerge_bench::figs::checkpoint_overhead`.

fn main() {
    lmerge_bench::figs::checkpoint_overhead::report().emit();
}
