//! Regenerates every table and figure of the paper's evaluation in order.

fn main() {
    lmerge_bench::figs::fig2::report().emit();
    lmerge_bench::figs::fig3::report().emit();
    lmerge_bench::figs::fig4::report().emit();
    lmerge_bench::figs::fig5::report().emit();
    lmerge_bench::figs::fig6::report().emit();
    lmerge_bench::figs::fig7::report().emit();
    lmerge_bench::figs::fig8::report().emit();
    lmerge_bench::figs::fig9::report().emit();
    lmerge_bench::figs::fig10::report().emit();
    lmerge_bench::figs::table4::report().emit();
    lmerge_bench::figs::ablation::report().emit();
    lmerge_bench::figs::shard_scaling::report().emit();
    lmerge_bench::figs::checkpoint_overhead::report().emit();
    lmerge_bench::figs::sub_scaling::report().emit();
}
