//! Regenerates the paper's fig4 result. See `lmerge_bench::figs::fig4`.

fn main() {
    lmerge_bench::figs::fig4::report().emit();
}
