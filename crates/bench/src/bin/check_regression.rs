//! Perf-regression gate: regenerate the headline benchmark records and
//! diff them against the committed baselines in `bench-results/`.
//!
//! Usage: `cargo run --release -p lmerge-bench --bin check_regression`
//!
//! The checked figures (fig2, shard_scaling, net_loopback, and
//! obs_overhead) are regenerated
//! **in-process at default scale** — the same scale the committed
//! baselines were produced at — so the comparison is apples-to-apples
//! even when the surrounding CI job runs other benches in quick mode.
//!
//! What is compared, per labelled configuration:
//!
//! * `peak_memory_bytes` and `chattiness_adjusts` — deterministic
//!   fields, allowed ±20% drift (tightening the tolerance is cheap once
//!   a few CI runs establish the committed numbers are reproducible);
//! * `throughput_eps` — only under `LMERGE_CHECK_THROUGHPUT=1`, because
//!   wall-clock throughput on shared CI runners is noisy;
//! * the shard-scaling acceptance bar — the *committed*
//!   `BENCH_shard_scaling.json` must show a `K = 4` critical-path
//!   speedup of at least 2.5x over `K = 1` (checked on the committed
//!   file, which is timing-free at check time);
//! * the telemetry-overhead bar — the committed `BENCH_obs_overhead.json`
//!   must show instrumented throughput at least 0.95x the uninstrumented
//!   drive (same committed-file discipline);
//! * the checkpoint-overhead bar — the committed
//!   `BENCH_checkpoint_overhead.json` must show checkpointed throughput
//!   at least 0.90x the bare drive (same committed-file discipline);
//! * the subscriber fan-out bar — the committed `BENCH_sub_scaling.json`
//!   must show per-CPU delivery throughput at N=256 of at least
//!   `eps(N=16) / 1.15`: amortized per-subscriber CPU stays within 15%
//!   when the fan-out widens 16x (same committed-file discipline).
//!
//! Exit status is non-zero on any violation, so the bench-smoke CI job
//! fails loudly instead of letting perf rot ride along.

use lmerge_bench::report::{MetricsRecord, Report};
use lmerge_obs::json::{self, Json};
use std::path::PathBuf;

const TOLERANCE: f64 = 0.20;

fn baseline_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench-results")
}

/// Parse a committed `BENCH_<id>.json` into labelled records.
fn load_baseline(id: &str) -> Result<Vec<(String, MetricsRecord)>, String> {
    let path = baseline_dir().join(format!("BENCH_{id}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let metrics = doc
        .get("metrics")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{}: no metrics array", path.display()))?;
    let mut out = Vec::new();
    for m in metrics {
        let label = m
            .get("label")
            .and_then(Json::as_str)
            .ok_or("metric without label")?
            .to_string();
        let num = |k: &str| m.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        out.push((
            label,
            MetricsRecord {
                throughput_eps: num("throughput_eps"),
                p50_latency_us: num("p50_latency_us") as u64,
                p99_latency_us: num("p99_latency_us") as u64,
                peak_memory_bytes: num("peak_memory_bytes") as u64,
                chattiness_adjusts: num("chattiness_adjusts") as u64,
            },
        ));
    }
    Ok(out)
}

/// `fresh` vs `base` within the tolerance band (both-zero passes).
fn within(base: f64, fresh: f64, tol: f64) -> bool {
    if base == 0.0 {
        return fresh == 0.0;
    }
    ((fresh - base) / base).abs() <= tol
}

struct Gate {
    violations: Vec<String>,
    checked: usize,
}

impl Gate {
    fn check(&mut self, id: &str, label: &str, field: &str, base: f64, fresh: f64, tol: f64) {
        self.checked += 1;
        if !within(base, fresh, tol) {
            self.violations.push(format!(
                "{id} / {label} / {field}: baseline {base:.1}, fresh {fresh:.1} \
                 ({:+.1}% > ±{:.0}%)",
                (fresh - base) / base * 100.0,
                tol * 100.0
            ));
        }
    }

    fn diff(&mut self, id: &str, fresh: &Report) -> Result<(), String> {
        let base = load_baseline(id)?;
        let check_throughput = std::env::var("LMERGE_CHECK_THROUGHPUT").as_deref() == Ok("1");
        for (label, b) in &base {
            let Some((_, f)) = fresh.metrics.iter().find(|(l, _)| l == label) else {
                self.violations.push(format!(
                    "{id}: baseline label {label} missing from fresh run"
                ));
                continue;
            };
            self.check(
                id,
                label,
                "peak_memory_bytes",
                b.peak_memory_bytes as f64,
                f.peak_memory_bytes as f64,
                TOLERANCE,
            );
            self.check(
                id,
                label,
                "chattiness_adjusts",
                b.chattiness_adjusts as f64,
                f.chattiness_adjusts as f64,
                TOLERANCE,
            );
            if check_throughput {
                self.check(
                    id,
                    label,
                    "throughput_eps",
                    b.throughput_eps,
                    f.throughput_eps,
                    TOLERANCE,
                );
            }
        }
        Ok(())
    }
}

/// The committed shard-scaling record must clear the acceptance bar:
/// `K = 4` critical-path throughput at least 2.5x the `K = 1` baseline.
fn check_scaling_bar(gate: &mut Gate) -> Result<(), String> {
    let base = load_baseline("shard_scaling")?;
    let eps = |label: &str| {
        base.iter()
            .find(|(l, _)| l == label)
            .map(|(_, m)| m.throughput_eps)
            .ok_or_else(|| format!("BENCH_shard_scaling.json: no {label} record"))
    };
    let k1 = eps("LMR3+@K1")?;
    let k4 = eps("LMR3+@K4")?;
    gate.checked += 1;
    let speedup = if k1 > 0.0 { k4 / k1 } else { 0.0 };
    if speedup < 2.5 {
        gate.violations.push(format!(
            "shard_scaling: committed K=4 speedup {speedup:.2}x below the 2.5x bar"
        ));
    } else {
        println!("shard_scaling: committed K=4 speedup {speedup:.2}x (bar: 2.5x)");
    }
    Ok(())
}

/// The committed telemetry-overhead record must clear the acceptance bar:
/// instrumented throughput at least 0.95x the uninstrumented drive.
fn check_overhead_bar(gate: &mut Gate) -> Result<(), String> {
    let base = load_baseline("obs_overhead")?;
    let eps = |label: &str| {
        base.iter()
            .find(|(l, _)| l == label)
            .map(|(_, m)| m.throughput_eps)
            .ok_or_else(|| format!("BENCH_obs_overhead.json: no {label} record"))
    };
    let bare = eps("uninstrumented")?;
    let live = eps("instrumented")?;
    gate.checked += 1;
    let ratio = if bare > 0.0 { live / bare } else { 0.0 };
    if ratio < 0.95 {
        gate.violations.push(format!(
            "obs_overhead: committed instrumented/uninstrumented ratio {ratio:.3} \
             below the 0.95 bar"
        ));
    } else {
        println!("obs_overhead: committed telemetry ratio {ratio:.3} (bar: 0.95)");
    }
    Ok(())
}

/// The committed checkpoint-overhead record must clear the acceptance
/// bar: checkpointed throughput at least 0.90x the bare drive.
fn check_checkpoint_bar(gate: &mut Gate) -> Result<(), String> {
    let base = load_baseline("checkpoint_overhead")?;
    let eps = |label: &str| {
        base.iter()
            .find(|(l, _)| l == label)
            .map(|(_, m)| m.throughput_eps)
            .ok_or_else(|| format!("BENCH_checkpoint_overhead.json: no {label} record"))
    };
    let bare = eps("bare")?;
    let ck = eps("checkpointed")?;
    gate.checked += 1;
    let ratio = if bare > 0.0 { ck / bare } else { 0.0 };
    if ratio < 0.90 {
        gate.violations.push(format!(
            "checkpoint_overhead: committed checkpointed/bare ratio {ratio:.3} \
             below the 0.90 bar"
        ));
    } else {
        println!("checkpoint_overhead: committed durability ratio {ratio:.3} (bar: 0.90)");
    }
    Ok(())
}

/// The committed subscriber fan-out record must clear the acceptance
/// bar: per-CPU delivery throughput at N=256 subscribers at least
/// `1/1.15` of the N=16 point — i.e. amortized per-subscriber CPU grows
/// at most 15% across a 16x fan-out widening.
fn check_sub_scaling_bar(gate: &mut Gate) -> Result<(), String> {
    let base = load_baseline("sub_scaling")?;
    let eps = |label: &str| {
        base.iter()
            .find(|(l, _)| l == label)
            .map(|(_, m)| m.throughput_eps)
            .ok_or_else(|| format!("BENCH_sub_scaling.json: no {label} record"))
    };
    let n16 = eps("sub@N16")?;
    let n256 = eps("sub@N256")?;
    gate.checked += 1;
    let ratio = if n16 > 0.0 { n256 / n16 } else { 0.0 };
    if ratio < 1.0 / 1.15 {
        gate.violations.push(format!(
            "sub_scaling: committed N256/N16 per-CPU delivery ratio {ratio:.3} \
             below the 1/1.15 bar (per-subscriber CPU grew more than 15%)"
        ));
    } else {
        println!(
            "sub_scaling: committed N256/N16 delivery ratio {ratio:.3} (bar: {:.3})",
            1.0 / 1.15
        );
    }
    Ok(())
}

fn main() {
    println!("regenerating checked figures at default scale...");
    let fig2 = lmerge_bench::figs::fig2::report();
    let scaling = lmerge_bench::figs::shard_scaling::report();
    let net = lmerge_bench::figs::net_loopback::report();
    let obs = lmerge_bench::figs::obs_overhead::report();
    let ck = lmerge_bench::figs::checkpoint_overhead::report();
    let sub = lmerge_bench::figs::sub_scaling::report();

    let mut gate = Gate {
        violations: Vec::new(),
        checked: 0,
    };
    let mut errors = Vec::new();
    for (id, fresh) in [
        ("fig2", &fig2),
        ("shard_scaling", &scaling),
        ("net_loopback", &net),
        ("obs_overhead", &obs),
        ("checkpoint_overhead", &ck),
        ("sub_scaling", &sub),
    ] {
        if let Err(e) = gate.diff(id, fresh) {
            errors.push(e);
        }
    }
    if let Err(e) = check_scaling_bar(&mut gate) {
        errors.push(e);
    }
    if let Err(e) = check_overhead_bar(&mut gate) {
        errors.push(e);
    }
    if let Err(e) = check_checkpoint_bar(&mut gate) {
        errors.push(e);
    }
    if let Err(e) = check_sub_scaling_bar(&mut gate) {
        errors.push(e);
    }

    for e in &errors {
        eprintln!("error: {e}");
    }
    for v in &gate.violations {
        eprintln!("REGRESSION: {v}");
    }
    if errors.is_empty() && gate.violations.is_empty() {
        println!(
            "ok: {} comparisons within ±{:.0}% of the committed baselines",
            gate.checked,
            TOLERANCE * 100.0
        );
    } else {
        eprintln!(
            "{} violation(s), {} error(s) across {} comparisons",
            gate.violations.len(),
            errors.len(),
            gate.checked
        );
        std::process::exit(1);
    }
}
