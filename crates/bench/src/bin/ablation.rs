//! Policy ablation for the design choices of Section V-A.

fn main() {
    lmerge_bench::figs::ablation::report().emit();
}
