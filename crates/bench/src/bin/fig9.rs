//! Regenerates the paper's fig9 result. See `lmerge_bench::figs::fig9`.

fn main() {
    lmerge_bench::figs::fig9::report().emit();
}
