//! Regenerates the subscriber fan-out scaling result. See
//! `lmerge_bench::figs::sub_scaling`.

fn main() {
    lmerge_bench::figs::sub_scaling::report().emit();
}
