//! Regenerates the paper's fig3 result. See `lmerge_bench::figs::fig3`.

fn main() {
    lmerge_bench::figs::fig3::report().emit();
}
