//! Regenerates the paper's fig10 result. See `lmerge_bench::figs::fig10`.

fn main() {
    lmerge_bench::figs::fig10::report().emit();
}
