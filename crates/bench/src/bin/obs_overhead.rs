//! Regenerates the telemetry-overhead result. See
//! `lmerge_bench::figs::obs_overhead`.

fn main() {
    lmerge_bench::figs::obs_overhead::report().emit();
}
