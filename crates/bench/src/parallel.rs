//! A small work-queue runner for figure data points.
//!
//! Each figure is a sweep over independent data points (input counts, lag
//! values, stable frequencies). The points share no state — every one
//! builds its own operator and drives its own timed copies — so they can
//! run on scoped worker threads pulling indices from a shared cursor.
//!
//! Results are returned **in index order** regardless of which worker
//! finished when, so reports assembled from them (row order, metric labels,
//! JSON layout) are identical to a serial run; only the wall-clock timing
//! fields, which vary run to run even serially, can differ. Set
//! `LMERGE_BENCH_THREADS=1` to force serial measurement when timing
//! interference between concurrent points matters more than latency.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count for figure sweeps: `LMERGE_BENCH_THREADS` if set (min 1),
/// otherwise the machine's available parallelism.
pub fn bench_threads() -> usize {
    std::env::var("LMERGE_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Evaluate `f(0..n)` on up to `threads` scoped workers and return the
/// results in index order. Workers claim indices from an atomic cursor, so
/// uneven point costs balance automatically. `threads <= 1` (or a single
/// point) degenerates to a plain serial map with no thread setup at all.
pub fn run_points<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in per_worker.into_iter().flatten() {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|v| v.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let serial: Vec<usize> = (0..17).map(|i| i * i).collect();
        for threads in [1, 2, 4, 8] {
            assert_eq!(run_points(17, threads, |i| i * i), serial);
        }
    }

    #[test]
    fn handles_more_threads_than_points() {
        assert_eq!(run_points(2, 16, |i| i), vec![0, 1]);
        assert_eq!(run_points(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn balances_uneven_costs() {
        // Point 0 is slow; the cursor must let other workers drain the rest.
        let out = run_points(8, 4, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i + 1
        });
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn threads_env_floor_is_one() {
        assert!(bench_threads() >= 1);
    }
}
