//! Micro-benchmarks: per-element operator costs.
//!
//! These complement the figure harness (which measures end-to-end shapes)
//! with per-element numbers: insert cost per LMerge variant,
//! adjust-heavy revision cost, stable-processing cost, and reconstitution
//! overhead. A plain timing harness (best-of-N over a few repeats) keeps
//! the workspace free of external benchmark frameworks; run with
//! `cargo bench -p lmerge-bench`.

use lmerge_bench::{variants, VariantKind};
use lmerge_gen::{generate, GenConfig};
use lmerge_temporal::reconstitute::Reconstituter;
use lmerge_temporal::{Element, StreamId, Value};
use std::hint::black_box;
use std::time::Instant;

/// Run `f` a few times and report the best per-element cost in ns.
fn time_per_element(label: &str, elements: usize, mut f: impl FnMut() -> u64) {
    const REPEATS: usize = 5;
    let mut best = f64::INFINITY;
    let mut sink = 0u64;
    for _ in 0..REPEATS {
        let start = Instant::now();
        sink = sink.wrapping_add(f());
        let ns = start.elapsed().as_nanos() as f64 / elements as f64;
        best = best.min(ns);
    }
    black_box(sink);
    println!("{label:<44} {best:>9.1} ns/element");
}

fn bench_inserts() {
    let cfg = GenConfig {
        num_events: 10_000,
        disorder: 0.0,
        disorder_window_ms: 0,
        stable_freq: 0.01,
        event_duration_ms: 1_000,
        max_gap_ms: 20,
        payload_len: 100,
        ..Default::default()
    };
    let stream = generate(&cfg).elements;

    println!("\n== merge_10k_ordered_elements ==");
    for v in variants() {
        time_per_element(v.label(), stream.len(), || {
            let mut lm = v.build(2);
            let mut out = Vec::new();
            for e in &stream {
                lm.push(StreamId(0), black_box(e), &mut out);
                out.clear();
            }
            lm.stats().inserts_out
        });
    }
}

fn bench_adjust_heavy() {
    // Insert + two adjusts per event: the revision-heavy R3/R4 regime.
    let mut elems: Vec<Element<Value>> = Vec::new();
    for i in 0..5_000i64 {
        let p = Value::synthetic((i % 400) as i32, 100);
        elems.push(Element::insert(p.clone(), i, i + 100));
        elems.push(Element::adjust(p.clone(), i, i + 100, i + 50));
        elems.push(Element::adjust(p, i, i + 50, i + 75));
        if i % 100 == 99 {
            elems.push(Element::stable(i - 100));
        }
    }
    println!("\n== merge_adjust_heavy ==");
    for v in [VariantKind::R3Plus, VariantKind::R3Minus, VariantKind::R4] {
        time_per_element(v.label(), elems.len(), || {
            let mut lm = v.build(1);
            let mut out = Vec::new();
            for e in &elems {
                lm.push(StreamId(0), black_box(e), &mut out);
                out.clear();
            }
            lm.stats().adjusts_out
        });
    }
}

fn bench_stable_processing() {
    // Cost of one stable() over a populated in2t index.
    println!("\n== r3_stable_over_live_index ==");
    for w in [1_000usize, 10_000] {
        time_per_element(&format!("w={w}"), w, || {
            let mut lm = VariantKind::R3Plus.build(1);
            let mut out = Vec::new();
            for i in 0..w as i64 {
                lm.push(
                    StreamId(0),
                    &Element::insert(Value::bare(i as i32), i, i + 5),
                    &mut out,
                );
                out.clear();
            }
            lm.push(StreamId(0), &Element::stable(2 * w as i64), &mut out);
            out.len() as u64
        });
    }
}

fn bench_reconstitution() {
    let cfg = GenConfig {
        num_events: 10_000,
        payload_len: 100,
        event_duration_ms: 1_000,
        ..Default::default()
    };
    let stream = generate(&cfg).elements;
    println!("\n== reconstitute_10k ==");
    time_per_element("tdb", stream.len(), || {
        let mut r: Reconstituter<Value> = Reconstituter::new();
        for e in &stream {
            r.apply(black_box(e)).unwrap();
        }
        r.tdb().len() as u64
    });
}

fn main() {
    bench_inserts();
    bench_adjust_heavy();
    bench_stable_processing();
    bench_reconstitution();
}
