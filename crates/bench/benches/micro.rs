//! Criterion micro-benchmarks: per-element operator costs.
//!
//! These complement the figure harness (which measures end-to-end shapes)
//! with statistically solid per-element numbers: insert cost per LMerge
//! variant, stable-processing cost, and reconstitution overhead. Kept short
//! so `cargo bench --workspace` completes in a couple of minutes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lmerge_bench::{variants, VariantKind};
use lmerge_gen::{generate, GenConfig};
use lmerge_temporal::reconstitute::Reconstituter;
use lmerge_temporal::{Element, StreamId, Value};

fn bench_inserts(c: &mut Criterion) {
    let cfg = GenConfig {
        num_events: 10_000,
        disorder: 0.0,
        disorder_window_ms: 0,
        stable_freq: 0.01,
        event_duration_ms: 1_000,
        max_gap_ms: 20,
        payload_len: 100,
        ..Default::default()
    };
    let stream = generate(&cfg).elements;

    let mut group = c.benchmark_group("merge_10k_ordered_elements");
    group.sample_size(20);
    for v in variants() {
        group.bench_with_input(BenchmarkId::from_parameter(v.label()), &v, |b, v| {
            b.iter(|| {
                let mut lm = v.build(2);
                let mut out = Vec::new();
                for e in &stream {
                    lm.push(StreamId(0), black_box(e), &mut out);
                    out.clear();
                }
                lm.stats().inserts_out
            });
        });
    }
    group.finish();
}

fn bench_adjust_heavy(c: &mut Criterion) {
    // Insert + two adjusts per event: the revision-heavy R3/R4 regime.
    let mut elems: Vec<Element<Value>> = Vec::new();
    for i in 0..5_000i64 {
        let p = Value::synthetic((i % 400) as i32, 100);
        elems.push(Element::insert(p.clone(), i, i + 100));
        elems.push(Element::adjust(p.clone(), i, i + 100, i + 50));
        elems.push(Element::adjust(p, i, i + 50, i + 75));
        if i % 100 == 99 {
            elems.push(Element::stable(i - 100));
        }
    }
    let mut group = c.benchmark_group("merge_adjust_heavy");
    group.sample_size(20);
    for v in [VariantKind::R3Plus, VariantKind::R3Minus, VariantKind::R4] {
        group.bench_with_input(BenchmarkId::from_parameter(v.label()), &v, |b, v| {
            b.iter(|| {
                let mut lm = v.build(1);
                let mut out = Vec::new();
                for e in &elems {
                    lm.push(StreamId(0), black_box(e), &mut out);
                    out.clear();
                }
                lm.stats().adjusts_out
            });
        });
    }
    group.finish();
}

fn bench_stable_processing(c: &mut Criterion) {
    // Cost of one stable() over a populated in2t index.
    let mut group = c.benchmark_group("r3_stable_over_live_index");
    group.sample_size(20);
    for w in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, w| {
            b.iter(|| {
                let mut lm = VariantKind::R3Plus.build(1);
                let mut out = Vec::new();
                for i in 0..*w as i64 {
                    lm.push(
                        StreamId(0),
                        &Element::insert(Value::bare(i as i32), i, i + 5),
                        &mut out,
                    );
                    out.clear();
                }
                lm.push(StreamId(0), &Element::stable(2 * *w as i64), &mut out);
                out.len()
            });
        });
    }
    group.finish();
}

fn bench_reconstitution(c: &mut Criterion) {
    let cfg = GenConfig {
        num_events: 10_000,
        payload_len: 100,
        event_duration_ms: 1_000,
        ..Default::default()
    };
    let stream = generate(&cfg).elements;
    let mut group = c.benchmark_group("reconstitute_10k");
    group.sample_size(20);
    group.bench_function("tdb", |b| {
        b.iter(|| {
            let mut r: Reconstituter<Value> = Reconstituter::new();
            for e in &stream {
                r.apply(black_box(e)).unwrap();
            }
            r.tdb().len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_inserts,
    bench_adjust_heavy,
    bench_stable_processing,
    bench_reconstitution
);
criterion_main!(benches);
