//! Micro-benchmarks: per-element operator costs.
//!
//! These complement the figure harness (which measures end-to-end shapes)
//! with per-element numbers: insert cost per LMerge variant, adjust-heavy
//! revision cost, stable-processing cost, the hot stable-sweep path over a
//! large live window, the O(1) batched discard of lagging inputs, and
//! reconstitution overhead. A plain timing harness (best-of-N over a few
//! repeats) keeps the workspace free of external benchmark frameworks; run
//! with `cargo bench -p lmerge-bench`.
//!
//! Results are printed progressively and also persisted as
//! `target/bench-results/BENCH_micro.json` (one record per case, with
//! `throughput_eps = 1e9 / ns-per-element`). `LMERGE_BENCH_QUICK=1`
//! shrinks sizes and repeats for CI smoke runs.

use lmerge_bench::report::MetricsRecord;
use lmerge_bench::{variants, Report, VariantKind};
use lmerge_gen::{generate, GenConfig};
use lmerge_temporal::reconstitute::Reconstituter;
use lmerge_temporal::{Element, StreamId, Value};
use std::hint::black_box;
use std::time::Instant;

/// Whether the CI smoke mode is on.
fn quick_mode() -> bool {
    std::env::var("LMERGE_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Pick the full or the smoke-sized parameter.
fn sized(full: usize, quick: usize) -> usize {
    if quick_mode() {
        quick
    } else {
        full
    }
}

fn repeats() -> usize {
    if quick_mode() {
        2
    } else {
        5
    }
}

/// Record one case: progressive line, table row, and JSON metric.
fn record(report: &mut Report, label: &str, ns: f64) {
    println!("{label:<44} {ns:>9.1} ns/element");
    report.row(&[label.to_string(), format!("{ns:.1}")]);
    report.metric(
        label,
        MetricsRecord {
            throughput_eps: if ns > 0.0 { 1e9 / ns } else { 0.0 },
            ..Default::default()
        },
    );
}

/// Run `f` a few times and return the best per-element cost in ns.
fn time_per_element(elements: usize, mut f: impl FnMut() -> u64) -> f64 {
    let mut best = f64::INFINITY;
    let mut sink = 0u64;
    for _ in 0..repeats() {
        let start = Instant::now();
        sink = sink.wrapping_add(f());
        let ns = start.elapsed().as_nanos() as f64 / elements as f64;
        best = best.min(ns);
    }
    black_box(sink);
    best
}

fn bench_inserts(report: &mut Report) {
    let cfg = GenConfig {
        num_events: sized(10_000, 2_000),
        disorder: 0.0,
        disorder_window_ms: 0,
        stable_freq: 0.01,
        event_duration_ms: 1_000,
        max_gap_ms: 20,
        payload_len: 100,
        ..Default::default()
    };
    let stream = generate(&cfg).elements;

    println!("\n== merge_10k_ordered_elements ==");
    for v in variants() {
        let ns = time_per_element(stream.len(), || {
            let mut lm = v.build(2);
            let mut out = Vec::new();
            for e in &stream {
                lm.push(StreamId(0), black_box(e), &mut out);
                out.clear();
            }
            lm.stats().inserts_out
        });
        record(report, &format!("ordered/{}", v.label()), ns);
    }
}

fn bench_adjust_heavy(report: &mut Report) {
    // Insert + two adjusts per event: the revision-heavy R3/R4 regime.
    let mut elems: Vec<Element<Value>> = Vec::new();
    for i in 0..sized(5_000, 1_000) as i64 {
        let p = Value::synthetic((i % 400) as i32, 100);
        elems.push(Element::insert(p.clone(), i, i + 100));
        elems.push(Element::adjust(p.clone(), i, i + 100, i + 50));
        elems.push(Element::adjust(p, i, i + 50, i + 75));
        if i % 100 == 99 {
            elems.push(Element::stable(i - 100));
        }
    }
    println!("\n== merge_adjust_heavy ==");
    for v in [VariantKind::R3Plus, VariantKind::R3Minus, VariantKind::R4] {
        let ns = time_per_element(elems.len(), || {
            let mut lm = v.build(1);
            let mut out = Vec::new();
            for e in &elems {
                lm.push(StreamId(0), black_box(e), &mut out);
                out.clear();
            }
            lm.stats().adjusts_out
        });
        record(report, &format!("adjust_heavy/{}", v.label()), ns);
    }
}

fn bench_stable_processing(report: &mut Report) {
    // Cost of one stable() over a populated in2t index.
    println!("\n== r3_stable_over_live_index ==");
    for w in [sized(1_000, 500), sized(10_000, 2_000)] {
        let ns = time_per_element(w, || {
            let mut lm = VariantKind::R3Plus.build(1);
            let mut out = Vec::new();
            for i in 0..w as i64 {
                lm.push(
                    StreamId(0),
                    &Element::insert(Value::bare(i as i32), i, i + 5),
                    &mut out,
                );
                out.clear();
            }
            lm.push(StreamId(0), &Element::stable(2 * w as i64), &mut out);
            out.len() as u64
        });
        record(report, &format!("stable/w={w}"), ns);
    }
}

fn bench_stable_sweep(report: &mut Report) {
    // The hot sweep path: high StableFreq over a large live window. Every
    // stable visits ~`nodes` kept nodes (their Ve lies far in the future),
    // so the per-node sweep cost dominates. Pre-refactor, this path cloned
    // every live payload per stable and re-looked each key up; reported
    // cost is ns per swept node.
    let nodes = sized(10_000, 1_000);
    let stables = sized(200, 20);
    println!("\n== stable_sweep_{nodes}_live_nodes ==");
    for v in [VariantKind::R3Plus, VariantKind::R4] {
        let mut best = f64::INFINITY;
        for _ in 0..repeats() {
            let mut lm = v.build(1);
            let mut out = Vec::new();
            // Live window: every node's end time is far beyond the stables.
            for i in 0..nodes as i64 {
                lm.push(
                    StreamId(0),
                    &Element::insert(Value::bare(i as i32), i, i + 100_000_000),
                    &mut out,
                );
                out.clear();
            }
            let start = Instant::now();
            for k in 0..stables as i64 {
                lm.push(
                    StreamId(0),
                    &Element::stable(nodes as i64 + 1 + k),
                    &mut out,
                );
                out.clear();
            }
            let ns = start.elapsed().as_nanos() as f64 / (stables * nodes) as f64;
            best = best.min(ns);
        }
        record(report, &format!("stable_sweep/{}", v.label()), best);
    }
}

fn bench_sweep_vs_clone(report: &mut Report) {
    // Index-level head-to-head: the in-place sweep against the legacy
    // access pattern it replaced (clone every half-frozen key out, then
    // re-look each node up). Same index, same visit set; reported cost is
    // ns per visited node.
    use lmerge_core::in2t::In2t;
    use lmerge_core::SweepAction;
    use lmerge_temporal::Time;
    let nodes = sized(10_000, 1_000);
    let rounds = sized(100, 10);
    let t = Time(nodes as i64 + 1);
    let build = || {
        let mut ix: In2t<Value> = In2t::new();
        for i in 0..nodes as i64 {
            let node = ix.add_node(Time(i), Value::synthetic(i as i32, 100));
            node.set_input(StreamId(0), Time(i + 100_000_000));
            ix.note_entry_added();
        }
        ix
    };
    println!("\n== in2t_half_frozen_visit ({nodes} nodes) ==");
    let mut best_sweep = f64::INFINITY;
    let mut best_clone = f64::INFINITY;
    for _ in 0..repeats() {
        let mut ix = build();
        let start = Instant::now();
        for _ in 0..rounds {
            ix.sweep_half_frozen(t, |_, _, node| {
                black_box(node);
                SweepAction::Keep
            });
        }
        let ns = start.elapsed().as_nanos() as f64 / (rounds * nodes) as f64;
        best_sweep = best_sweep.min(ns);

        let start = Instant::now();
        for _ in 0..rounds {
            for (vs, p) in ix.half_frozen_keys(t) {
                black_box(ix.get_mut(vs, &p).expect("node live"));
            }
        }
        let ns = start.elapsed().as_nanos() as f64 / (rounds * nodes) as f64;
        best_clone = best_clone.min(ns);
    }
    record(report, "sweep_api/in_place", best_sweep);
    record(report, "sweep_api/clone_relookup", best_clone);
    println!(
        "{:<44} {:>9.2}x",
        "sweep_api speedup",
        best_clone / best_sweep
    );
}

fn bench_batch_discard(report: &mut Report) {
    // The catching-up replica: input 1 replays an already-frozen prefix in
    // batches. `push_batch` discards each batch in O(1) from the per-batch
    // `Vs` range; the per-element path walks every element.
    let batch_len = sized(1_000, 200);
    let batches = sized(100, 10);
    let batch: Vec<Element<Value>> = (0..batch_len as i64)
        .map(|i| Element::insert(Value::bare(i as i32), i, i + 5))
        .collect();
    println!("\n== lagging_input_discard ({batches}x{batch_len}) ==");
    for v in [VariantKind::R3Plus, VariantKind::R4] {
        for (mode, batched) in [("batched", true), ("per_element", false)] {
            let mut best = f64::INFINITY;
            for _ in 0..repeats() {
                let mut lm = v.build(2);
                let mut out = Vec::new();
                // Freeze far past the batch's Vs range; the index empties.
                lm.push(StreamId(0), &Element::stable(1_000_000), &mut out);
                out.clear();
                let start = Instant::now();
                for _ in 0..batches {
                    if batched {
                        lm.push_batch(StreamId(1), black_box(&batch), &mut out);
                    } else {
                        for e in &batch {
                            lm.push(StreamId(1), black_box(e), &mut out);
                        }
                    }
                    out.clear();
                }
                let ns = start.elapsed().as_nanos() as f64 / (batches * batch_len) as f64;
                best = best.min(ns);
            }
            record(report, &format!("discard/{}/{mode}", v.label()), best);
        }
    }
}

fn bench_reconstitution(report: &mut Report) {
    let cfg = GenConfig {
        num_events: sized(10_000, 2_000),
        payload_len: 100,
        event_duration_ms: 1_000,
        ..Default::default()
    };
    let stream = generate(&cfg).elements;
    println!("\n== reconstitute_10k ==");
    let ns = time_per_element(stream.len(), || {
        let mut r: Reconstituter<Value> = Reconstituter::new();
        for e in &stream {
            r.apply(black_box(e)).unwrap();
        }
        r.tdb().len() as u64
    });
    record(report, "reconstitute/tdb", ns);
}

fn main() {
    let mut report = Report::new(
        "micro",
        "Per-element operator costs (best-of-N, ns/element)",
        &["case", "ns/element"],
    );
    bench_inserts(&mut report);
    bench_adjust_heavy(&mut report);
    bench_stable_processing(&mut report);
    bench_stable_sweep(&mut report);
    bench_sweep_vs_clone(&mut report);
    bench_batch_discard(&mut report);
    bench_reconstitution(&mut report);
    println!();
    report.note(if quick_mode() {
        "quick mode (LMERGE_BENCH_QUICK): reduced sizes and repeats"
    } else {
        "full mode"
    });
    report.emit();
}
