//! Payload abstraction and the concrete payload used in the evaluation.
//!
//! LMerge algorithms are generic over the payload type: they need equality
//! and hashing to match events across inputs (the `(Vs, Payload)` key of the
//! paper's `in2t`/`in3t` indexes), a total order so payloads can live in
//! ordered indexes and canonical TDB forms, and a memory estimate so the
//! engine can report operator memory the way the paper's Figures 2, 6, and 7
//! do.

use bytes::Bytes;
use std::hash::Hash;

/// Deep heap size accounting.
///
/// `heap_bytes` reports bytes owned *outside* the value itself (e.g. a
/// string body); total footprint of a `T` is
/// `size_of::<T>() + value.heap_bytes()`.
pub trait HeapSize {
    /// Bytes owned on the heap by this value (not counting `size_of::<Self>()`).
    fn heap_bytes(&self) -> usize;
}

/// The bound required of event payloads throughout the workspace.
///
/// This is a blanket-implemented alias trait: any `Clone + Eq + Ord + Hash +
/// Debug + HeapSize + Send + 'static` type is a valid payload.
pub trait Payload: Clone + Eq + Ord + Hash + std::fmt::Debug + HeapSize + Send + 'static {}

impl<T> Payload for T where T: Clone + Eq + Ord + Hash + std::fmt::Debug + HeapSize + Send + 'static {}

macro_rules! zero_heap {
    ($($t:ty),* $(,)?) => {
        $(impl HeapSize for $t {
            #[inline]
            fn heap_bytes(&self) -> usize { 0 }
        })*
    };
}

zero_heap!(
    i8,
    i16,
    i32,
    i64,
    i128,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    isize,
    bool,
    char,
    ()
);

impl HeapSize for String {
    #[inline]
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl HeapSize for &'static str {
    #[inline]
    fn heap_bytes(&self) -> usize {
        0
    }
}

impl<A: HeapSize, B: HeapSize> HeapSize for (A, B) {
    #[inline]
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes()
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

impl HeapSize for Bytes {
    #[inline]
    fn heap_bytes(&self) -> usize {
        self.len()
    }
}

/// The concrete payload used by the evaluation workloads.
///
/// The paper's generator produces events with "two fields, an integer in the
/// interval \[0, 400\] and a randomly generated 1000-byte string"
/// (Section VI-B). `key` is that integer; `body` is the string, stored as
/// cheaply-cloneable shared [`Bytes`] — cloning an event between indexes does
/// not duplicate the kilobyte body, mirroring the payload sharing that makes
/// the paper's `LMR3+` memory nearly independent of the number of inputs
/// while the duplicate-everything `LMR3−` baseline grows linearly (we charge
/// the body to each *index entry* that pins it, via [`Value::heap_bytes`]).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Value {
    /// The integer field in `[0, 400]`.
    pub key: i32,
    /// The opaque body (1000 bytes in the paper's workload).
    pub body: Bytes,
}

// Hashing the full kilobyte body on every index lookup would dominate the
// merge cost, so hash the key, the length, and the body's first and last 16
// bytes. Equal values still hash equal (the Hash/Eq contract); collisions
// between values differing only mid-body are resolved by `Eq`.
impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key.hash(state);
        self.body.len().hash(state);
        let head = &self.body[..self.body.len().min(16)];
        head.hash(state);
        if self.body.len() > 16 {
            let tail = &self.body[self.body.len() - 16..];
            tail.hash(state);
        }
    }
}

impl Value {
    /// Build a payload with a body of `body_len` filler bytes derived from `key`.
    pub fn synthetic(key: i32, body_len: usize) -> Value {
        let b = (key as u8).wrapping_mul(31).wrapping_add(7);
        Value {
            key,
            body: Bytes::from(vec![b; body_len]),
        }
    }

    /// A payload with an empty body; handy in unit tests.
    pub fn bare(key: i32) -> Value {
        Value {
            key,
            body: Bytes::new(),
        }
    }
}

impl HeapSize for Value {
    #[inline]
    fn heap_bytes(&self) -> usize {
        // Each holder of the value is charged the full body: this models the
        // per-copy cost an engine without payload sharing would pay, which is
        // exactly the axis Figures 2 and 7 measure.
        self.body.len()
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "V({},{}B)", self.key, self.body.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_synthetic_roundtrip() {
        let v = Value::synthetic(17, 1000);
        assert_eq!(v.key, 17);
        assert_eq!(v.body.len(), 1000);
        assert_eq!(v.heap_bytes(), 1000);
    }

    #[test]
    fn value_equality_includes_body() {
        let a = Value::synthetic(1, 10);
        let b = Value::synthetic(1, 10);
        assert_eq!(a, b);
        let c = Value::synthetic(1, 11);
        assert_ne!(a, c);
    }

    #[test]
    fn value_clone_shares_body() {
        let a = Value::synthetic(9, 1000);
        let b = a.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(a.body.as_ptr(), b.body.as_ptr());
    }

    #[test]
    fn primitive_heap_sizes_are_zero() {
        assert_eq!(42i64.heap_bytes(), 0);
        assert_eq!(true.heap_bytes(), 0);
    }

    #[test]
    fn string_heap_size_is_capacity() {
        let mut s = String::with_capacity(64);
        s.push('x');
        assert_eq!(s.heap_bytes(), 64);
    }

    #[test]
    fn vec_heap_size_counts_elements() {
        let v: Vec<String> = vec![String::with_capacity(8), String::with_capacity(8)];
        assert_eq!(
            v.heap_bytes(),
            v.capacity() * std::mem::size_of::<String>() + 16
        );
    }

    #[test]
    fn tuple_payload_is_usable() {
        fn assert_payload<P: Payload>() {}
        assert_payload::<(i32, i64)>();
        assert_payload::<String>();
        assert_payload::<Value>();
    }
}
