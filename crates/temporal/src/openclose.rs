//! The `open`/`close` element model of the paper's Example 3, corresponding
//! to I-/D-streams (STREAM, Oracle CEP) and positive/negative tuples (Nile).
//!
//! * `open(p, Vs)` starts an event with payload `p` at `Vs`.
//! * `close(p, Ve)` ends the event with payload `p` at `Ve`; a later `close`
//!   for the same payload *revises* the earlier one (paper stream `W[6]`).
//!
//! The model assumes at most one event per payload is active at a time.

use crate::element::Element;
use crate::payload::Payload;
use crate::time::Time;
use std::collections::HashMap;

/// An element in the open/close model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OpenClose<P> {
    /// `open(p, Vs)`: the event with payload `p` starts at `Vs`.
    Open {
        /// Payload of the new event.
        payload: P,
        /// Validity start.
        vs: Time,
    },
    /// `close(p, Ve)`: the event with payload `p` ends at `Ve`.
    Close {
        /// Payload of the event being closed (or re-closed).
        payload: P,
        /// Validity end.
        ve: Time,
    },
}

impl<P: Payload> OpenClose<P> {
    /// `open(p, vs)`.
    pub fn open(payload: P, vs: impl Into<Time>) -> OpenClose<P> {
        OpenClose::Open {
            payload,
            vs: vs.into(),
        }
    }

    /// `close(p, ve)`.
    pub fn close(payload: P, ve: impl Into<Time>) -> OpenClose<P> {
        OpenClose::Close {
            payload,
            ve: ve.into(),
        }
    }
}

/// Errors converting an open/close stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OcError {
    /// `close` for a payload that was never opened.
    CloseWithoutOpen,
    /// A second `open` for a payload whose event is still active.
    DuplicateOpen,
}

impl std::fmt::Display for OcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OcError::CloseWithoutOpen => write!(f, "close() without a matching open()"),
            OcError::DuplicateOpen => write!(f, "open() while an event for the payload is active"),
        }
    }
}

impl std::error::Error for OcError {}

/// Stateful converter from open/close into the StreamInsight model.
///
/// `open(p, Vs)` becomes `insert(p, Vs, ∞)`; `close(p, Ve)` becomes an
/// `adjust` from the tracked current end. Because the open/close model has
/// no punctuation, the converter never emits `stable` elements; callers that
/// know the stream is finished may append `stable(∞)` themselves.
#[derive(Debug, Default)]
pub struct OcConverter<P: Payload> {
    /// payload → (Vs, current Ve).
    active: HashMap<P, (Time, Time)>,
}

impl<P: Payload> OcConverter<P> {
    /// A converter with no history.
    pub fn new() -> OcConverter<P> {
        OcConverter {
            active: HashMap::new(),
        }
    }

    /// Convert one element, appending StreamInsight equivalents to `out`.
    pub fn convert(
        &mut self,
        elem: &OpenClose<P>,
        out: &mut Vec<Element<P>>,
    ) -> Result<(), OcError> {
        match elem {
            OpenClose::Open { payload, vs } => {
                match self.active.get(payload) {
                    // Re-opening after a close is a *new* event only in
                    // models richer than Example 3; the paper assumes one
                    // event per payload, so any prior record is a conflict.
                    Some(_) => return Err(OcError::DuplicateOpen),
                    None => {
                        self.active.insert(payload.clone(), (*vs, Time::INFINITY));
                        out.push(Element::insert(payload.clone(), *vs, Time::INFINITY));
                    }
                }
            }
            OpenClose::Close { payload, ve } => {
                let Some((vs, cur)) = self.active.get_mut(payload) else {
                    return Err(OcError::CloseWithoutOpen);
                };
                let vold = *cur;
                *cur = *ve;
                out.push(Element::adjust(payload.clone(), *vs, vold, *ve));
            }
        }
        Ok(())
    }

    /// Convert a whole prefix.
    pub fn convert_all(&mut self, elems: &[OpenClose<P>]) -> Result<Vec<Element<P>>, OcError> {
        let mut out = Vec::with_capacity(elems.len());
        for e in elems {
            self.convert(e, &mut out)?;
        }
        Ok(out)
    }
}

/// Convert a complete open/close stream into StreamInsight elements.
pub fn to_streaminsight<P: Payload>(elems: &[OpenClose<P>]) -> Result<Vec<Element<P>>, OcError> {
    OcConverter::new().convert_all(elems)
}

/// Property check (Section III-C): elements ordered on their time attribute.
pub fn is_time_ordered<P: Payload>(elems: &[OpenClose<P>]) -> bool {
    let mut last = Time::MIN;
    for e in elems {
        let t = match e {
            OpenClose::Open { vs, .. } => *vs,
            OpenClose::Close { ve, .. } => *ve,
        };
        if t < last {
            return false;
        }
        last = t;
    }
    true
}

/// Property check (Section III-C): at most one `close` per `open`.
pub fn has_single_close<P: Payload>(elems: &[OpenClose<P>]) -> bool {
    let mut closes: HashMap<&P, usize> = HashMap::new();
    for e in elems {
        if let OpenClose::Close { payload, .. } = e {
            let c = closes.entry(payload).or_insert(0);
            *c += 1;
            if *c > 1 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstitute::tdb_of;
    use crate::tdb::Tdb;
    use crate::Event;

    type Oc = OpenClose<&'static str>;

    /// The three equivalent prefixes of the paper's Example 3.
    fn s5() -> Vec<Oc> {
        vec![
            Oc::open("A", 1),
            Oc::open("B", 2),
            Oc::open("C", 3),
            Oc::close("A", 4),
            Oc::close("B", 5),
        ]
    }

    fn u5() -> Vec<Oc> {
        vec![
            Oc::open("A", 1),
            Oc::close("A", 4),
            Oc::open("B", 2),
            Oc::close("B", 5),
            Oc::open("C", 3),
        ]
    }

    fn w6() -> Vec<Oc> {
        vec![
            Oc::open("B", 2),
            Oc::close("B", 6),
            Oc::open("A", 1),
            Oc::open("C", 3),
            Oc::close("A", 4),
            Oc::close("B", 5),
        ]
    }

    fn example3_tdb() -> Tdb<&'static str> {
        [
            Event::new("A", 1, 4),
            Event::new("B", 2, 5),
            Event::new("C", 3, Time::INFINITY),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn example3_all_three_prefixes_equivalent() {
        for stream in [s5(), u5(), w6()] {
            let si = to_streaminsight(&stream).unwrap();
            assert_eq!(tdb_of(&si).unwrap(), example3_tdb());
        }
    }

    #[test]
    fn example3_ordering_property() {
        // "S[5] has this property, but neither U[5] nor W[6] does."
        assert!(is_time_ordered(&s5()));
        assert!(!is_time_ordered(&u5()));
        assert!(!is_time_ordered(&w6()));
    }

    #[test]
    fn example3_single_close_property() {
        // "S[5] and U[5] satisfy this condition, but not W[6]."
        assert!(has_single_close(&s5()));
        assert!(has_single_close(&u5()));
        assert!(!has_single_close(&w6()));
    }

    #[test]
    fn close_without_open_errors() {
        assert_eq!(
            to_streaminsight(&[Oc::close("A", 4)]).unwrap_err(),
            OcError::CloseWithoutOpen
        );
    }

    #[test]
    fn duplicate_open_errors() {
        assert_eq!(
            to_streaminsight(&[Oc::open("A", 1), Oc::open("A", 2)]).unwrap_err(),
            OcError::DuplicateOpen
        );
    }

    #[test]
    fn reclose_revises_previous_close() {
        // W[6]'s close(B,6) then close(B,5): the final end is 5.
        let si =
            to_streaminsight(&[Oc::open("B", 2), Oc::close("B", 6), Oc::close("B", 5)]).unwrap();
        let tdb = tdb_of(&si).unwrap();
        assert_eq!(tdb.count(&"B", Time(2), Time(5)), 1);
        assert_eq!(tdb.len(), 1);
    }
}
