//! Physical stream elements in the StreamInsight model (paper Example 5).

use crate::event::Event;
use crate::payload::Payload;
use crate::time::Time;

/// Identifier of one input stream attached to an operator.
///
/// The paper's pseudocode passes the stream id `s` alongside every element;
/// we do the same. Ids are small dense integers assigned by whoever owns the
/// inputs (LMerge assigns them at `attach` time).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct StreamId(pub u32);

impl StreamId {
    /// The sentinel the paper uses for the *output* entry in `in2t`/`in3t`
    /// hash tables ("an additional hash table entry with special key ∞").
    pub const OUTPUT: StreamId = StreamId(u32::MAX);
}

/// A physical stream element (StreamInsight model, Example 5 of the paper).
///
/// * `Insert(⟨p, Vs, Ve⟩)` adds an event to the TDB; `Ve` may be `∞`.
/// * `Adjust { p, vs, vold, ve }` changes event `⟨p, Vs, Vold⟩` to
///   `⟨p, Vs, Ve⟩`; if `ve == vs` the event is removed entirely.
/// * `Stable(Vc)` asserts that the portion of the TDB before `Vc` is stable:
///   no future insert with `Vs < Vc`, and no future adjust with `Vold < Vc`
///   or `Ve < Vc`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Element<P> {
    /// Add a new event.
    Insert(Event<P>),
    /// Change the end time of the event `⟨payload, vs, vold⟩` to `ve`
    /// (removing it when `ve == vs`).
    Adjust {
        /// Payload of the event being adjusted.
        payload: P,
        /// Validity start of the event being adjusted.
        vs: Time,
        /// The event's current end time.
        vold: Time,
        /// The new end time (equal to `vs` to delete the event).
        ve: Time,
    },
    /// Progress punctuation: the TDB before this time is frozen.
    Stable(Time),
}

impl<P: Payload> Element<P> {
    /// Convenience constructor for an insert element.
    pub fn insert(payload: P, vs: impl Into<Time>, ve: impl Into<Time>) -> Element<P> {
        Element::Insert(Event::new(payload, vs, ve))
    }

    /// Convenience constructor for an adjust element.
    pub fn adjust(
        payload: P,
        vs: impl Into<Time>,
        vold: impl Into<Time>,
        ve: impl Into<Time>,
    ) -> Element<P> {
        Element::Adjust {
            payload,
            vs: vs.into(),
            vold: vold.into(),
            ve: ve.into(),
        }
    }

    /// Convenience constructor for a stable element.
    pub fn stable(t: impl Into<Time>) -> Element<P> {
        Element::Stable(t.into())
    }

    /// Whether this is punctuation rather than data.
    #[inline]
    pub fn is_stable(&self) -> bool {
        matches!(self, Element::Stable(_))
    }

    /// Whether this is an insert element.
    #[inline]
    pub fn is_insert(&self) -> bool {
        matches!(self, Element::Insert(_))
    }

    /// Whether this is an adjust element.
    #[inline]
    pub fn is_adjust(&self) -> bool {
        matches!(self, Element::Adjust { .. })
    }

    /// The `(Vs, Payload)` index key for data elements; `None` for `Stable`.
    pub fn key(&self) -> Option<(Time, &P)> {
        match self {
            Element::Insert(e) => Some((e.vs, &e.payload)),
            Element::Adjust { payload, vs, .. } => Some((*vs, payload)),
            Element::Stable(_) => None,
        }
    }

    /// Approximate wire size of the element, used by throughput metrics.
    pub fn size_bytes(&self) -> usize {
        let header = std::mem::size_of::<Self>();
        match self {
            Element::Insert(e) => header + e.payload.heap_bytes(),
            Element::Adjust { payload, .. } => header + payload.heap_bytes(),
            Element::Stable(_) => header,
        }
    }
}

impl<P: std::fmt::Debug> std::fmt::Debug for Element<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Element::Insert(e) => {
                write!(f, "insert({:?}, {}, {})", e.payload, e.vs, e.ve)
            }
            Element::Adjust {
                payload,
                vs,
                vold,
                ve,
            } => write!(f, "adjust({payload:?}, {vs}, {vold}, {ve})"),
            Element::Stable(t) => write!(f, "stable({t})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_kinds() {
        let i: Element<&str> = Element::insert("A", 1, 5);
        let a: Element<&str> = Element::adjust("A", 1, 5, 9);
        let s: Element<&str> = Element::stable(7);
        assert!(i.is_insert() && !i.is_adjust() && !i.is_stable());
        assert!(a.is_adjust());
        assert!(s.is_stable());
    }

    #[test]
    fn key_of_elements() {
        let i: Element<&str> = Element::insert("A", 1, 5);
        assert_eq!(i.key(), Some((Time(1), &"A")));
        let a: Element<&str> = Element::adjust("B", 2, 5, 9);
        assert_eq!(a.key(), Some((Time(2), &"B")));
        let s: Element<&str> = Element::stable(7);
        assert_eq!(s.key(), None);
    }

    #[test]
    fn debug_format_matches_paper_syntax() {
        let i: Element<&str> = Element::insert("A", 6, 20);
        assert_eq!(format!("{i:?}"), "insert(\"A\", 6, 20)");
        let s: Element<&str> = Element::stable(Time::INFINITY);
        assert_eq!(format!("{s:?}"), "stable(∞)");
    }

    #[test]
    fn size_bytes_counts_payload_heap() {
        use crate::payload::Value;
        let small = Element::insert(Value::bare(1), 0, 1).size_bytes();
        let big = Element::insert(Value::synthetic(1, 1000), 0, 1).size_bytes();
        assert_eq!(big - small, 1000);
    }
}
