//! The temporal database (TDB): a multiset of events.
//!
//! The paper's logical stream *is* its TDB (Section III-A). We keep the TDB
//! in a canonical ordered form — `(Vs, Payload) → (Ve → count)` — so that
//! two TDBs are equal iff the logical streams are equivalent, duplicates
//! (the R4 case) are represented exactly, and freeze classification can walk
//! events in `Vs` order.

use crate::event::Event;
use crate::freeze::Freeze;
use crate::payload::Payload;
use crate::time::Time;
use std::collections::BTreeMap;

/// A multiset of events, canonically ordered.
///
/// This is the reference/oracle representation used by reconstitution,
/// equivalence and compatibility checks, and the test suites. The LMerge
/// algorithms themselves use the leaner purpose-built `in2t`/`in3t` indexes.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Tdb<P: Payload> {
    /// `(Vs, Payload) → (Ve → multiplicity)`; inner map never holds zero counts.
    entries: BTreeMap<(Time, P), BTreeMap<Time, usize>>,
    len: usize,
}

/// Error returned when an `adjust` refers to an event absent from the TDB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoSuchEvent {
    /// Validity start named by the adjust.
    pub vs: Time,
    /// Old end time named by the adjust.
    pub vold: Time,
}

impl std::fmt::Display for NoSuchEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "adjust names event (vs={}, vold={}) not present in TDB",
            self.vs, self.vold
        )
    }
}

impl std::error::Error for NoSuchEvent {}

impl<P: Payload> Tdb<P> {
    /// The empty TDB.
    pub fn new() -> Tdb<P> {
        Tdb {
            entries: BTreeMap::new(),
            len: 0,
        }
    }

    /// Number of events counting multiplicity.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the TDB holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add one occurrence of `event`.
    pub fn insert(&mut self, event: Event<P>) {
        *self
            .entries
            .entry((event.vs, event.payload))
            .or_default()
            .entry(event.ve)
            .or_insert(0) += 1;
        self.len += 1;
    }

    /// Apply an adjust: change one occurrence of `⟨p, vs, vold⟩` to
    /// `⟨p, vs, ve⟩`, removing it entirely when `ve == vs`.
    pub fn adjust(
        &mut self,
        payload: &P,
        vs: Time,
        vold: Time,
        ve: Time,
    ) -> Result<(), NoSuchEvent> {
        let key = (vs, payload.clone());
        let Some(ves) = self.entries.get_mut(&key) else {
            return Err(NoSuchEvent { vs, vold });
        };
        match ves.get_mut(&vold) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    ves.remove(&vold);
                }
            }
            _ => return Err(NoSuchEvent { vs, vold }),
        }
        if ve == vs {
            self.len -= 1; // event removed outright
        } else {
            *ves.entry(ve).or_insert(0) += 1;
        }
        if ves.is_empty() {
            self.entries.remove(&key);
        }
        Ok(())
    }

    /// Multiplicity of the exact event `⟨p, vs, ve⟩`.
    pub fn count(&self, payload: &P, vs: Time, ve: Time) -> usize {
        self.entries
            .get(&(vs, payload.clone()))
            .and_then(|m| m.get(&ve))
            .copied()
            .unwrap_or(0)
    }

    /// Total multiplicity across all `Ve` values for `(vs, p)`.
    pub fn count_key(&self, payload: &P, vs: Time) -> usize {
        self.entries
            .get(&(vs, payload.clone()))
            .map(|m| m.values().sum())
            .unwrap_or(0)
    }

    /// The `Ve → count` map for `(vs, p)`, if any event exists there.
    pub fn ves(&self, payload: &P, vs: Time) -> Option<&BTreeMap<Time, usize>> {
        self.entries.get(&(vs, payload.clone()))
    }

    /// The unique `Ve` for `(vs, p)` when `(Vs, Payload)` is a key of the TDB
    /// (the R2/R3 assumption). Returns `None` when absent, and the smallest
    /// `Ve` if — contrary to the assumption — several exist.
    pub fn unique_ve(&self, payload: &P, vs: Time) -> Option<Time> {
        self.ves(payload, vs).and_then(|m| m.keys().next().copied())
    }

    /// Iterate `((Vs, Payload), Ve, count)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&(Time, P), Time, usize)> + '_ {
        self.entries
            .iter()
            .flat_map(|(k, ves)| ves.iter().map(move |(ve, c)| (k, *ve, *c)))
    }

    /// Iterate events expanded by multiplicity.
    pub fn events(&self) -> impl Iterator<Item = Event<P>> + '_ {
        self.iter().flat_map(|((vs, p), ve, c)| {
            std::iter::repeat_with(move || Event {
                vs: *vs,
                ve,
                payload: p.clone(),
            })
            .take(c)
        })
    }

    /// Iterate distinct `(Vs, Payload)` keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &(Time, P)> + '_ {
        self.entries.keys()
    }

    /// Freeze status of event `⟨p, vs, ve⟩` under stable point `stable`
    /// (Section III-C): fully frozen if `Ve < Vc`, half frozen if
    /// `Vs < Vc ≤ Ve`, otherwise unfrozen.
    pub fn freeze_of(vs: Time, ve: Time, stable: Time) -> Freeze {
        Freeze::classify(vs, ve, stable)
    }

    /// Whether `self ⊆ other` as multisets.
    pub fn is_subset_of(&self, other: &Tdb<P>) -> bool {
        self.iter()
            .all(|((vs, p), ve, c)| other.count(p, *vs, ve) >= c)
    }

    /// Snapshot of payloads active at application time `t`, with multiplicity.
    pub fn snapshot_at(&self, t: Time) -> Vec<(P, usize)> {
        let mut out: BTreeMap<P, usize> = BTreeMap::new();
        for ((vs, p), ve, c) in self.iter() {
            if *vs <= t && t < ve {
                *out.entry(p.clone()).or_insert(0) += c;
            }
        }
        out.into_iter().collect()
    }
}

impl<P: Payload> FromIterator<Event<P>> for Tdb<P> {
    fn from_iter<I: IntoIterator<Item = Event<P>>>(iter: I) -> Self {
        let mut tdb = Tdb::new();
        for e in iter {
            tdb.insert(e);
        }
        tdb
    }
}

impl<P: Payload> std::fmt::Debug for Tdb<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.events()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(p: &'static str, vs: i64, ve: i64) -> Event<&'static str> {
        Event::new(p, vs, ve)
    }

    #[test]
    fn insert_and_count() {
        let mut t = Tdb::new();
        t.insert(ev("A", 1, 5));
        t.insert(ev("A", 1, 5));
        t.insert(ev("B", 2, 8));
        assert_eq!(t.len(), 3);
        assert_eq!(t.count(&"A", Time(1), Time(5)), 2);
        assert_eq!(t.count_key(&"A", Time(1)), 2);
        assert_eq!(t.count(&"B", Time(2), Time(8)), 1);
        assert_eq!(t.count(&"C", Time(0), Time(1)), 0);
    }

    #[test]
    fn adjust_changes_end_time() {
        let mut t = Tdb::new();
        t.insert(ev("A", 6, 20));
        t.adjust(&"A", Time(6), Time(20), Time(30)).unwrap();
        t.adjust(&"A", Time(6), Time(30), Time(25)).unwrap();
        // Paper Example 5: equivalent to the single element insert(A, 6, 25).
        let expected: Tdb<&str> = [ev("A", 6, 25)].into_iter().collect();
        assert_eq!(t, expected);
    }

    #[test]
    fn adjust_to_vs_removes() {
        let mut t = Tdb::new();
        t.insert(ev("A", 6, 20));
        t.adjust(&"A", Time(6), Time(20), Time(6)).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.count_key(&"A", Time(6)), 0);
    }

    #[test]
    fn adjust_missing_event_errors() {
        let mut t: Tdb<&str> = Tdb::new();
        let err = t.adjust(&"A", Time(6), Time(20), Time(30)).unwrap_err();
        assert_eq!(
            err,
            NoSuchEvent {
                vs: Time(6),
                vold: Time(20)
            }
        );
    }

    #[test]
    fn adjust_wrong_vold_errors() {
        let mut t = Tdb::new();
        t.insert(ev("A", 6, 20));
        assert!(t.adjust(&"A", Time(6), Time(21), Time(30)).is_err());
        // The original event is untouched.
        assert_eq!(t.count(&"A", Time(6), Time(20)), 1);
    }

    #[test]
    fn equality_is_order_independent() {
        let t1: Tdb<&str> = [ev("A", 1, 4), ev("B", 2, 5)].into_iter().collect();
        let t2: Tdb<&str> = [ev("B", 2, 5), ev("A", 1, 4)].into_iter().collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn multiset_semantics_distinguish_duplicates() {
        let once: Tdb<&str> = [ev("A", 1, 4)].into_iter().collect();
        let twice: Tdb<&str> = [ev("A", 1, 4), ev("A", 1, 4)].into_iter().collect();
        assert_ne!(once, twice);
        assert!(once.is_subset_of(&twice));
        assert!(!twice.is_subset_of(&once));
    }

    #[test]
    fn snapshot_at_respects_half_open_intervals() {
        let t: Tdb<&str> = [ev("A", 1, 4), ev("B", 2, 5), ev("B", 2, 5)]
            .into_iter()
            .collect();
        assert_eq!(t.snapshot_at(Time(2)), vec![("A", 1), ("B", 2)]);
        assert_eq!(t.snapshot_at(Time(4)), vec![("B", 2)]);
        assert_eq!(t.snapshot_at(Time(5)), vec![]);
    }

    #[test]
    fn unique_ve_lookup() {
        let t: Tdb<&str> = [ev("A", 1, 4)].into_iter().collect();
        assert_eq!(t.unique_ve(&"A", Time(1)), Some(Time(4)));
        assert_eq!(t.unique_ve(&"A", Time(2)), None);
    }

    #[test]
    fn keys_are_sorted_by_vs_then_payload() {
        let t: Tdb<&str> = [ev("B", 1, 4), ev("A", 1, 4), ev("A", 0, 9)]
            .into_iter()
            .collect();
        let keys: Vec<_> = t.keys().cloned().collect();
        assert_eq!(keys, vec![(Time(0), "A"), (Time(1), "A"), (Time(1), "B")]);
    }
}
