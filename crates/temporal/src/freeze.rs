//! Freeze status of TDB events relative to a stable point (Section III-C).

use crate::time::Time;

/// How "frozen" an event `⟨p, Vs, Ve⟩` is under stable point `Vc`.
///
/// * **Fully frozen** (`Ve < Vc`): no future `adjust` can alter the event;
///   it is in every future version of the TDB.
/// * **Half frozen** (`Vs < Vc ≤ Ve`): some event `⟨p, Vs, V⟩` will be in the
///   TDB henceforth, but its end time may still move (to any `V ≥ Vc`).
/// * **Unfrozen** (`Vc ≤ Vs`): the event may still be removed entirely.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Freeze {
    /// The event can still be removed or arbitrarily adjusted.
    Unfrozen,
    /// The event's existence is fixed; only `Ve ≥ Vc` can change.
    HalfFrozen,
    /// The event is immutable.
    FullyFrozen,
}

impl Freeze {
    /// Classify `[vs, ve)` under stable point `stable`.
    #[inline]
    pub fn classify(vs: Time, ve: Time, stable: Time) -> Freeze {
        if ve < stable {
            Freeze::FullyFrozen
        } else if vs < stable {
            Freeze::HalfFrozen
        } else {
            Freeze::Unfrozen
        }
    }

    /// Whether at least half frozen (existence guaranteed).
    #[inline]
    pub fn is_frozen(self) -> bool {
        !matches!(self, Freeze::Unfrozen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_boundaries() {
        // Paper Section III-C: HF iff Vs < Vc <= Ve, FF iff Ve < Vc.
        let (vs, ve) = (Time(10), Time(20));
        assert_eq!(Freeze::classify(vs, ve, Time(10)), Freeze::Unfrozen);
        assert_eq!(Freeze::classify(vs, ve, Time(11)), Freeze::HalfFrozen);
        assert_eq!(Freeze::classify(vs, ve, Time(20)), Freeze::HalfFrozen);
        assert_eq!(Freeze::classify(vs, ve, Time(21)), Freeze::FullyFrozen);
    }

    #[test]
    fn infinite_events_never_fully_freeze() {
        assert_eq!(
            Freeze::classify(Time(0), Time::INFINITY, Time::INFINITY),
            Freeze::HalfFrozen
        );
    }

    #[test]
    fn paper_section_3d_examples() {
        // I1 (last:14): ⟨A,2,16⟩ HF, ⟨B,3,10⟩ FF, ⟨C,4,18⟩ HF, ⟨D,15,20⟩ UF.
        let l = Time(14);
        assert_eq!(Freeze::classify(Time(2), Time(16), l), Freeze::HalfFrozen);
        assert_eq!(Freeze::classify(Time(3), Time(10), l), Freeze::FullyFrozen);
        assert_eq!(Freeze::classify(Time(4), Time(18), l), Freeze::HalfFrozen);
        assert_eq!(Freeze::classify(Time(15), Time(20), l), Freeze::Unfrozen);
    }

    #[test]
    fn is_frozen() {
        assert!(!Freeze::Unfrozen.is_frozen());
        assert!(Freeze::HalfFrozen.is_frozen());
        assert!(Freeze::FullyFrozen.is_frozen());
    }
}
