//! The reconstitution function `tdb(S, i)` (Section III-A).
//!
//! A [`Reconstituter`] consumes physical stream elements one at a time,
//! maintains the running TDB instance and the stream's stable point, and
//! enforces the well-formedness constraints that `stable()` punctuation
//! imposes on later elements. It is the semantic ground truth against which
//! all LMerge algorithms are tested.

use crate::element::Element;
use crate::payload::Payload;
use crate::tdb::{NoSuchEvent, Tdb};
use crate::time::Time;

/// A violation of physical-stream well-formedness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconstituteError {
    /// `insert` with `Vs` strictly before the current stable point.
    InsertBeforeStable {
        /// The offending insert's validity start.
        vs: Time,
        /// The stream's stable point at that moment.
        stable: Time,
    },
    /// `adjust` whose `Vold` or new `Ve` falls before the stable point.
    AdjustBeforeStable {
        /// Old end time named by the adjust.
        vold: Time,
        /// New end time named by the adjust.
        ve: Time,
        /// The stream's stable point at that moment.
        stable: Time,
    },
    /// `adjust` that names an event absent from the TDB.
    NoSuchEvent(NoSuchEvent),
    /// `stable` punctuation moving backwards is permitted by the paper
    /// (it is simply redundant), but an *insert with an empty interval* is not.
    EmptyInterval {
        /// The degenerate interval's start (equal to its end).
        vs: Time,
    },
}

impl std::fmt::Display for ReconstituteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconstituteError::InsertBeforeStable { vs, stable } => {
                write!(f, "insert with Vs={vs} before stable point {stable}")
            }
            ReconstituteError::AdjustBeforeStable { vold, ve, stable } => {
                write!(
                    f,
                    "adjust with Vold={vold}/Ve={ve} violating stable point {stable}"
                )
            }
            ReconstituteError::NoSuchEvent(e) => write!(f, "{e}"),
            ReconstituteError::EmptyInterval { vs } => {
                write!(f, "insert with empty interval at Vs={vs}")
            }
        }
    }
}

impl std::error::Error for ReconstituteError {}

impl From<NoSuchEvent> for ReconstituteError {
    fn from(e: NoSuchEvent) -> Self {
        ReconstituteError::NoSuchEvent(e)
    }
}

/// Incremental reconstitution of a physical stream into its TDB.
///
/// ```
/// use lmerge_temporal::{Element, Reconstituter, Time};
///
/// let mut r: Reconstituter<&str> = Reconstituter::new();
/// r.apply(&Element::insert("A", 6, 20)).unwrap();
/// r.apply(&Element::adjust("A", 6, 20, 25)).unwrap();
/// r.apply(&Element::stable(30)).unwrap();
/// assert_eq!(r.tdb().count(&"A", Time(6), Time(25)), 1);
/// // The punctuation now forbids contradicting what is frozen:
/// assert!(r.apply(&Element::insert("B", 3, 9)).is_err());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Reconstituter<P: Payload> {
    tdb: Tdb<P>,
    stable: Time,
    elements_seen: usize,
    inserts_seen: usize,
    adjusts_seen: usize,
    stables_seen: usize,
}

impl<P: Payload> Reconstituter<P> {
    /// A reconstituter with an empty TDB and stable point `−∞`.
    pub fn new() -> Reconstituter<P> {
        Reconstituter {
            tdb: Tdb::new(),
            stable: Time::MIN,
            elements_seen: 0,
            inserts_seen: 0,
            adjusts_seen: 0,
            stables_seen: 0,
        }
    }

    /// Apply one element, validating against the current stable point.
    pub fn apply(&mut self, element: &Element<P>) -> Result<(), ReconstituteError> {
        self.elements_seen += 1;
        match element {
            Element::Insert(e) => {
                self.inserts_seen += 1;
                if e.vs >= e.ve {
                    return Err(ReconstituteError::EmptyInterval { vs: e.vs });
                }
                if e.vs < self.stable {
                    return Err(ReconstituteError::InsertBeforeStable {
                        vs: e.vs,
                        stable: self.stable,
                    });
                }
                self.tdb.insert(e.clone());
            }
            Element::Adjust {
                payload,
                vs,
                vold,
                ve,
            } => {
                self.adjusts_seen += 1;
                if *vold < self.stable
                    || (*ve < self.stable && ve != vs)
                    || (ve == vs && *vs < self.stable)
                {
                    return Err(ReconstituteError::AdjustBeforeStable {
                        vold: *vold,
                        ve: *ve,
                        stable: self.stable,
                    });
                }
                self.tdb.adjust(payload, *vs, *vold, *ve)?;
            }
            Element::Stable(t) => {
                self.stables_seen += 1;
                // A stable that does not advance is redundant but legal.
                self.stable = self.stable.max(*t);
            }
        }
        Ok(())
    }

    /// Apply a sequence of elements, stopping at the first violation.
    pub fn apply_all<'a>(
        &mut self,
        elements: impl IntoIterator<Item = &'a Element<P>>,
    ) -> Result<(), ReconstituteError>
    where
        P: 'a,
    {
        for e in elements {
            self.apply(e)?;
        }
        Ok(())
    }

    /// The current TDB instance (`tdb(S, i)` after `i` applied elements).
    pub fn tdb(&self) -> &Tdb<P> {
        &self.tdb
    }

    /// Consume the reconstituter, returning the TDB.
    pub fn into_tdb(self) -> Tdb<P> {
        self.tdb
    }

    /// The stream's current stable point (`−∞` before any `stable()`).
    pub fn stable(&self) -> Time {
        self.stable
    }

    /// Elements applied so far (the `i` of `tdb(S, i)`).
    pub fn elements_seen(&self) -> usize {
        self.elements_seen
    }

    /// Insert elements applied so far.
    pub fn inserts_seen(&self) -> usize {
        self.inserts_seen
    }

    /// Adjust elements applied so far.
    pub fn adjusts_seen(&self) -> usize {
        self.adjusts_seen
    }

    /// Stable elements applied so far.
    pub fn stables_seen(&self) -> usize {
        self.stables_seen
    }
}

/// Reconstitute a complete prefix: the paper's `tdb(S, i)` with `i = s.len()`.
pub fn tdb_of<P: Payload>(elements: &[Element<P>]) -> Result<Tdb<P>, ReconstituteError> {
    let mut r = Reconstituter::new();
    r.apply_all(elements)?;
    Ok(r.into_tdb())
}

/// Whether two stream prefixes are equivalent (`S[i] ≡ U[j]`, Section III-A):
/// both reconstitute, and to the same TDB.
pub fn equivalent<P: Payload>(s: &[Element<P>], u: &[Element<P>]) -> bool {
    match (tdb_of(s), tdb_of(u)) {
        (Ok(a), Ok(b)) => a == b,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type E = Element<&'static str>;

    #[test]
    fn example5_adjust_chain_equals_single_insert() {
        // insert(A,6,20), adjust(A,6,20,30), adjust(A,6,30,25) ≡ insert(A,6,25)
        let s: Vec<E> = vec![
            Element::insert("A", 6, 20),
            Element::adjust("A", 6, 20, 30),
            Element::adjust("A", 6, 30, 25),
        ];
        let u: Vec<E> = vec![Element::insert("A", 6, 25)];
        assert!(equivalent(&s, &u));
    }

    #[test]
    fn stable_blocks_late_insert() {
        let mut r = Reconstituter::new();
        r.apply(&E::stable(10)).unwrap();
        let err = r.apply(&E::insert("A", 5, 20)).unwrap_err();
        assert!(matches!(err, ReconstituteError::InsertBeforeStable { .. }));
    }

    #[test]
    fn stable_allows_insert_at_exactly_stable_point() {
        let mut r = Reconstituter::new();
        r.apply(&E::stable(10)).unwrap();
        r.apply(&E::insert("A", 10, 20)).unwrap();
        assert_eq!(r.tdb().len(), 1);
    }

    #[test]
    fn stable_blocks_adjust_with_frozen_vold() {
        let mut r = Reconstituter::new();
        r.apply(&E::insert("A", 5, 8)).unwrap();
        r.apply(&E::stable(10)).unwrap();
        // Vold = 8 < 10: the event is fully frozen, adjusting is illegal.
        let err = r.apply(&E::adjust("A", 5, 8, 12)).unwrap_err();
        assert!(matches!(err, ReconstituteError::AdjustBeforeStable { .. }));
    }

    #[test]
    fn stable_blocks_adjust_shrinking_below_stable() {
        let mut r = Reconstituter::new();
        r.apply(&E::insert("A", 5, 20)).unwrap();
        r.apply(&E::stable(10)).unwrap();
        // New Ve = 8 < 10 would contradict the punctuation.
        let err = r.apply(&E::adjust("A", 5, 20, 8)).unwrap_err();
        assert!(matches!(err, ReconstituteError::AdjustBeforeStable { .. }));
    }

    #[test]
    fn half_frozen_event_can_still_extend() {
        let mut r = Reconstituter::new();
        r.apply(&E::insert("A", 5, 20)).unwrap();
        r.apply(&E::stable(10)).unwrap();
        r.apply(&E::adjust("A", 5, 20, 30)).unwrap();
        assert_eq!(r.tdb().count(&"A", Time(5), Time(30)), 1);
    }

    #[test]
    fn cancel_unfrozen_event() {
        let mut r = Reconstituter::new();
        r.apply(&E::insert("A", 15, 20)).unwrap();
        r.apply(&E::stable(10)).unwrap();
        // Vs = 15 >= stable: removal (ve == vs) is legal.
        r.apply(&E::adjust("A", 15, 20, 15)).unwrap();
        assert!(r.tdb().is_empty());
    }

    #[test]
    fn cancel_half_frozen_event_is_illegal() {
        let mut r = Reconstituter::new();
        r.apply(&E::insert("A", 5, 20)).unwrap();
        r.apply(&E::stable(10)).unwrap();
        let err = r.apply(&E::adjust("A", 5, 20, 5)).unwrap_err();
        assert!(matches!(err, ReconstituteError::AdjustBeforeStable { .. }));
    }

    #[test]
    fn regressing_stable_is_redundant_not_an_error() {
        let mut r: Reconstituter<&str> = Reconstituter::new();
        r.apply(&E::stable(10)).unwrap();
        r.apply(&E::stable(5)).unwrap();
        assert_eq!(r.stable(), Time(10));
    }

    #[test]
    fn element_counters() {
        let mut r = Reconstituter::new();
        r.apply(&E::insert("A", 5, 20)).unwrap();
        r.apply(&E::adjust("A", 5, 20, 25)).unwrap();
        r.apply(&E::stable(3)).unwrap();
        assert_eq!(r.elements_seen(), 3);
        assert_eq!(r.inserts_seen(), 1);
        assert_eq!(r.adjusts_seen(), 1);
        assert_eq!(r.stables_seen(), 1);
    }

    #[test]
    fn different_orders_are_equivalent() {
        let s: Vec<E> = vec![
            Element::insert("A", 1, 4),
            Element::insert("B", 2, 5),
            Element::stable(6),
        ];
        let u: Vec<E> = vec![
            Element::insert("B", 2, 5),
            Element::insert("A", 1, 4),
            Element::stable(6),
        ];
        assert!(equivalent(&s, &u));
    }

    #[test]
    fn non_equivalent_streams_detected() {
        let s: Vec<E> = vec![Element::insert("A", 1, 4)];
        let u: Vec<E> = vec![Element::insert("A", 1, 5)];
        assert!(!equivalent(&s, &u));
    }
}
