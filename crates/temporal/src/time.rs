//! Application time and virtual wall-clock time.
//!
//! The paper distinguishes *application time* (the `Vs`/`Ve` timestamps
//! carried by events) from *system time* (the order/instant at which stream
//! elements arrive). We model application time as [`Time`] and system time as
//! [`VTime`], a virtual wall clock in microseconds used by the engine's
//! executor to simulate lag, burstiness, and congestion deterministically.

use std::fmt;

/// A point in application time.
///
/// Validity intervals are half-open `[Vs, Ve)`; `Ve` may be [`Time::INFINITY`]
/// (the paper's `+∞`). Arithmetic saturates at infinity so that lifetime
/// manipulation (e.g. the engine's `AlterLifetime` operator) never wraps.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub i64);

impl Time {
    /// The paper's `+∞`: an end time that never arrives.
    pub const INFINITY: Time = Time(i64::MAX);
    /// The smallest representable time; used as the initial value of
    /// `MaxStable` / `MaxVs` (the paper's `−∞`).
    pub const MIN: Time = Time(i64::MIN);
    /// Application-time zero.
    pub const ZERO: Time = Time(0);

    /// Whether this is the infinite end time.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self == Time::INFINITY
    }

    /// Saturating addition that preserves infinity.
    #[inline]
    #[must_use]
    pub fn saturating_add(self, delta: i64) -> Time {
        if self.is_infinite() {
            Time::INFINITY
        } else {
            Time(self.0.saturating_add(delta))
        }
    }

    /// Saturating subtraction that preserves infinity.
    #[inline]
    #[must_use]
    pub fn saturating_sub(self, delta: i64) -> Time {
        if self.is_infinite() {
            Time::INFINITY
        } else {
            Time(self.0.saturating_sub(delta))
        }
    }

    /// The maximum of two times.
    #[inline]
    #[must_use]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The minimum of two times.
    #[inline]
    #[must_use]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl From<i64> for Time {
    fn from(t: i64) -> Self {
        Time(t)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else if *self == Time::MIN {
            write!(f, "-∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Virtual wall-clock time in microseconds.
///
/// The engine's executor runs on this clock: sources schedule element
/// arrivals at `VTime` instants, operators charge simulated CPU cost in
/// microseconds, and all latency/throughput metrics are measured against it.
/// Using a virtual clock makes the paper's timing-sensitive experiments
/// (Figures 5, 8, 9, 10) exactly reproducible on any machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VTime(pub u64);

impl VTime {
    /// Virtual time zero (start of the run).
    pub const ZERO: VTime = VTime(0);

    /// Construct from whole virtual seconds.
    #[inline]
    pub fn from_secs(s: u64) -> VTime {
        VTime(s * 1_000_000)
    }

    /// Construct from whole virtual milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> VTime {
        VTime(ms * 1_000)
    }

    /// This instant expressed in (fractional) virtual seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Microseconds since the start of the run.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Advance by `us` microseconds.
    #[inline]
    #[must_use]
    pub fn advance(self, us: u64) -> VTime {
        VTime(self.0.saturating_add(us))
    }

    /// The (saturating) duration from `earlier` to `self`, in microseconds.
    #[inline]
    pub fn since(self, earlier: VTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Debug for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinity_ordering() {
        assert!(Time(100) < Time::INFINITY);
        assert!(Time::MIN < Time(0));
        assert!(Time::MIN < Time::INFINITY);
    }

    #[test]
    fn saturating_add_preserves_infinity() {
        assert_eq!(Time::INFINITY.saturating_add(5), Time::INFINITY);
        assert_eq!(Time(10).saturating_add(5), Time(15));
        assert_eq!(Time(i64::MAX - 1).saturating_add(10), Time::INFINITY);
    }

    #[test]
    fn saturating_sub_preserves_infinity() {
        assert_eq!(Time::INFINITY.saturating_sub(5), Time::INFINITY);
        assert_eq!(Time(10).saturating_sub(4), Time(6));
    }

    #[test]
    fn min_max() {
        assert_eq!(Time(3).max(Time(7)), Time(7));
        assert_eq!(Time(3).min(Time(7)), Time(3));
        assert_eq!(Time::INFINITY.max(Time(7)), Time::INFINITY);
    }

    #[test]
    fn display_infinity() {
        assert_eq!(format!("{}", Time::INFINITY), "∞");
        assert_eq!(format!("{}", Time::MIN), "-∞");
        assert_eq!(format!("{}", Time(42)), "42");
    }

    #[test]
    fn vtime_units() {
        assert_eq!(VTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(VTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(VTime::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn vtime_advance_and_since() {
        let t = VTime::ZERO.advance(500);
        assert_eq!(t.since(VTime::ZERO), 500);
        assert_eq!(VTime::ZERO.since(t), 0, "since saturates");
    }
}
