//! Mutual consistency of stream prefixes (Section III-B).
//!
//! Prefixes `{I1[k1], …, In[kn]}` are *mutually consistent* when each can be
//! extended (and, in general, prefixed — we assume common starts, as the
//! paper does "for simplicity in the sequel") to streams that are all
//! equivalent. Deciding this in full generality requires quantifying over
//! extensions; for the R3/R4 stream classes the condition collapses to a
//! checkable one: every prefix must correctly *track a common reference
//! TDB* — everything a prefix has frozen must agree with the reference, and
//! everything the reference settles before the prefix's stable point must be
//! present in the prefix.
//!
//! The workload generator always derives divergent inputs from an explicit
//! reference stream, so tests validate generated inputs with
//! [`consistent_with_reference`] and validate input sets pairwise with
//! [`mutually_consistent_via`].

use crate::compat::{check_r4, StreamView, Violation};
use crate::payload::Payload;
use crate::tdb::Tdb;

/// Whether prefix `view` is a correct partial presentation of `reference`
/// (the final TDB of the paper's "reference stream").
///
/// Concretely, with `L` = `view.stable`:
/// * every event of `reference` with `Ve < L` appears in `view` with the
///   same multiplicity (it is fully frozen, so the prefix must have it
///   exactly right already);
/// * for every `(Vs, Payload)` with `Vs < L`, the number of `view` events
///   equals the number of `reference` events (half-frozen existence is
///   settled, only end times may still move — and only to values `≥ L`);
/// * events with `Vs ≥ L` are unconstrained (still unfrozen in the prefix).
pub fn consistent_with_reference<P: Payload>(
    view: StreamView<'_, P>,
    reference: &Tdb<P>,
) -> Result<(), Violation<P>> {
    // This is exactly the R4 tracking condition with the reference playing
    // the role of a fully-stable leading input.
    let max = crate::time::Time::INFINITY;
    let reference_view = StreamView::new(reference, max);
    check_r4(&[reference_view], &view)
}

/// Whether a set of prefixes is mutually consistent *via* a known reference:
/// each prefix individually tracks the reference.
pub fn mutually_consistent_via<P: Payload>(
    views: &[StreamView<'_, P>],
    reference: &Tdb<P>,
) -> Result<(), (usize, Violation<P>)> {
    for (i, v) in views.iter().enumerate() {
        consistent_with_reference(*v, reference).map_err(|e| (i, e))?;
    }
    Ok(())
}

/// Whether complete streams are equivalent: all reconstitute to equal TDBs
/// (`S ≡ U`, Section III-A). This is the end-state check used after a merge
/// run finishes.
pub fn all_equivalent<P: Payload>(tdbs: &[&Tdb<P>]) -> bool {
    tdbs.windows(2).all(|w| w[0] == w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use crate::Event;

    fn reference() -> Tdb<&'static str> {
        [
            Event::new("A", 2, 16),
            Event::new("B", 3, 10),
            Event::new("C", 4, 18),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn prefix_tracking_reference_is_consistent() {
        // A prefix stable to 11 that has B exactly and A/C half frozen with
        // provisional ends.
        let r = reference();
        let t: Tdb<&str> = [
            Event::new("A", 2, 12),
            Event::new("B", 3, 10),
            Event::new("C", 4, 30),
        ]
        .into_iter()
        .collect();
        let v = StreamView::new(&t, Time(11));
        assert_eq!(consistent_with_reference(v, &r), Ok(()));
    }

    #[test]
    fn prefix_missing_frozen_event_is_inconsistent() {
        let r = reference();
        let t: Tdb<&str> = [Event::new("A", 2, 16), Event::new("C", 4, 18)]
            .into_iter()
            .collect();
        // Stable 11 > B's Ve = 10: B must be present exactly.
        let v = StreamView::new(&t, Time(11));
        assert!(consistent_with_reference(v, &r).is_err());
    }

    #[test]
    fn prefix_with_wrong_frozen_end_is_inconsistent() {
        let r = reference();
        let t: Tdb<&str> = [
            Event::new("A", 2, 16),
            Event::new("B", 3, 9), // reference says [3, 10)
            Event::new("C", 4, 18),
        ]
        .into_iter()
        .collect();
        let v = StreamView::new(&t, Time(11));
        assert!(consistent_with_reference(v, &r).is_err());
    }

    #[test]
    fn unstable_prefix_is_trivially_consistent() {
        let r = reference();
        let t: Tdb<&str> = Tdb::new();
        let v = StreamView::new(&t, Time::MIN);
        assert_eq!(consistent_with_reference(v, &r), Ok(()));
    }

    #[test]
    fn spurious_unfrozen_event_is_allowed() {
        // An event the reference lacks, but with Vs beyond the prefix's
        // stable point — it can still be cancelled.
        let r = reference();
        let t: Tdb<&str> = [Event::new("Z", 50, 60)].into_iter().collect();
        // Stable point 2 ≤ every reference Vs, so nothing is required yet and
        // the spurious Z (Vs = 50 ≥ 2) is still removable.
        let v = StreamView::new(&t, Time(2));
        assert_eq!(consistent_with_reference(v, &r), Ok(()));
    }

    #[test]
    fn spurious_half_frozen_event_is_inconsistent() {
        let r = reference();
        let t: Tdb<&str> = [Event::new("Z", 1, 60)].into_iter().collect();
        // Stable 5 > Vs 1: Z's existence is now settled but wrong.
        let v = StreamView::new(&t, Time(5));
        assert!(consistent_with_reference(v, &r).is_err());
    }

    #[test]
    fn mutual_consistency_reports_offending_stream() {
        let r = reference();
        let good: Tdb<&str> = r.clone();
        let bad: Tdb<&str> = [Event::new("A", 2, 16)].into_iter().collect();
        let views = [
            StreamView::new(&good, Time(20)),
            StreamView::new(&bad, Time(20)), // missing B and C, both settled
        ];
        let err = mutually_consistent_via(&views, &r).unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn all_equivalent_checks_tdb_equality() {
        let a = reference();
        let b = reference();
        let c: Tdb<&str> = Tdb::new();
        assert!(all_equivalent(&[&a, &b]));
        assert!(!all_equivalent(&[&a, &c]));
        assert!(all_equivalent(&[&a]));
        assert!(all_equivalent::<&str>(&[]));
    }
}
