//! The `a`/`m`/`f` element model of the paper's Example 1, with a lossless
//! conversion into the primary StreamInsight model.
//!
//! * `a(value, start, end)` adds a new event.
//! * `m(value, start, newEnd)` modifies the existing event with that value
//!   and start to have a new end time.
//! * `f(time)` finalizes (freezes from further modification) every event
//!   whose current end is earlier than `time` — and, like `stable`, promises
//!   no new events starting before `time`.
//!
//! Unlike StreamInsight's `adjust`, `m` does not carry the old end time, so
//! conversion requires tracking the current end of each `(value, start)`.

use crate::element::Element;
use crate::payload::Payload;
use crate::time::Time;
use std::collections::HashMap;

/// An element in the `a`/`m`/`f` model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Amf<P> {
    /// `a(value, start, end)`: add a new event.
    Add {
        /// Payload value.
        value: P,
        /// Validity start.
        start: Time,
        /// Validity end (may be `∞`).
        end: Time,
    },
    /// `m(value, start, newEnd)`: modify an existing event's end time.
    Modify {
        /// Payload value of the event being modified.
        value: P,
        /// Validity start of the event being modified.
        start: Time,
        /// The new end time.
        new_end: Time,
    },
    /// `f(time)`: finalize everything ending before `time`.
    Finalize(Time),
}

impl<P: Payload> Amf<P> {
    /// `a(value, start, end)`.
    pub fn a(value: P, start: impl Into<Time>, end: impl Into<Time>) -> Amf<P> {
        Amf::Add {
            value,
            start: start.into(),
            end: end.into(),
        }
    }

    /// `m(value, start, new_end)`.
    pub fn m(value: P, start: impl Into<Time>, new_end: impl Into<Time>) -> Amf<P> {
        Amf::Modify {
            value,
            start: start.into(),
            new_end: new_end.into(),
        }
    }

    /// `f(time)`.
    pub fn f(time: impl Into<Time>) -> Amf<P> {
        Amf::Finalize(time.into())
    }
}

/// Error converting an `a`/`m`/`f` stream: a `m` that names no known event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownModifyTarget {
    /// The `start` the `m` element named.
    pub start: Time,
}

impl std::fmt::Display for UnknownModifyTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m() names unknown event with start {}", self.start)
    }
}

impl std::error::Error for UnknownModifyTarget {}

/// Stateful converter from the `a`/`m`/`f` model to the StreamInsight model.
///
/// `m` lacks the old end time that `adjust` requires, so the converter keeps
/// the current end of every `(value, start)` it has seen. Entries whose end
/// is fully frozen by an `f()` are dropped, bounding the state exactly as
/// punctuation bounds operator state in the engine.
#[derive(Debug, Default)]
pub struct AmfConverter<P: Payload> {
    current_end: HashMap<(Time, P), Time>,
    finalized: Time,
}

impl<P: Payload> AmfConverter<P> {
    /// A converter with no history.
    pub fn new() -> AmfConverter<P> {
        AmfConverter {
            current_end: HashMap::new(),
            finalized: Time::MIN,
        }
    }

    /// Convert one element, appending the StreamInsight equivalents to `out`.
    pub fn convert(
        &mut self,
        elem: &Amf<P>,
        out: &mut Vec<Element<P>>,
    ) -> Result<(), UnknownModifyTarget> {
        match elem {
            Amf::Add { value, start, end } => {
                self.current_end.insert((*start, value.clone()), *end);
                out.push(Element::insert(value.clone(), *start, *end));
            }
            Amf::Modify {
                value,
                start,
                new_end,
            } => {
                let key = (*start, value.clone());
                let Some(old) = self.current_end.get_mut(&key) else {
                    return Err(UnknownModifyTarget { start: *start });
                };
                let vold = *old;
                *old = *new_end;
                out.push(Element::adjust(value.clone(), *start, vold, *new_end));
            }
            Amf::Finalize(t) => {
                self.finalized = self.finalized.max(*t);
                let fin = self.finalized;
                self.current_end.retain(|_, ve| *ve >= fin);
                out.push(Element::Stable(*t));
            }
        }
        Ok(())
    }

    /// Convert a whole stream prefix.
    pub fn convert_all(
        &mut self,
        elems: &[Amf<P>],
    ) -> Result<Vec<Element<P>>, UnknownModifyTarget> {
        let mut out = Vec::with_capacity(elems.len());
        for e in elems {
            self.convert(e, &mut out)?;
        }
        Ok(out)
    }

    /// Number of `(value, start)` entries currently tracked.
    pub fn tracked(&self) -> usize {
        self.current_end.len()
    }
}

/// Convert a complete `a`/`m`/`f` stream into StreamInsight elements.
pub fn to_streaminsight<P: Payload>(
    elems: &[Amf<P>],
) -> Result<Vec<Element<P>>, UnknownModifyTarget> {
    AmfConverter::new().convert_all(elems)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstitute::{equivalent, tdb_of};
    use crate::tdb::Tdb;
    use crate::Event;

    /// The two physical streams of the paper's Table I.
    fn phy1() -> Vec<Amf<&'static str>> {
        vec![
            Amf::a("B", 8, Time::INFINITY),
            Amf::a("A", 6, 12),
            Amf::m("B", 8, 10),
            Amf::f(11),
            Amf::f(Time::INFINITY),
        ]
    }

    fn phy2() -> Vec<Amf<&'static str>> {
        vec![
            Amf::a("A", 6, 7),
            Amf::a("B", 8, 15),
            Amf::m("A", 6, 12),
            Amf::m("B", 8, 10),
            Amf::f(Time::INFINITY),
        ]
    }

    #[test]
    fn table1_both_streams_reconstitute_to_the_same_tdb() {
        let s1 = to_streaminsight(&phy1()).unwrap();
        let s2 = to_streaminsight(&phy2()).unwrap();
        let expected: Tdb<&str> = [Event::new("A", 6, 12), Event::new("B", 8, 10)]
            .into_iter()
            .collect();
        assert_eq!(tdb_of(&s1).unwrap(), expected);
        assert_eq!(tdb_of(&s2).unwrap(), expected);
        assert!(equivalent(&s1, &s2));
    }

    #[test]
    fn table1_prefixes_are_not_equivalent_but_converge() {
        let s1 = to_streaminsight(&phy1()).unwrap();
        let s2 = to_streaminsight(&phy2()).unwrap();
        // After two elements each, the TDBs differ (compatible, not equal).
        assert_ne!(tdb_of(&s1[..2]).unwrap(), tdb_of(&s2[..2]).unwrap());
        assert_eq!(tdb_of(&s1).unwrap(), tdb_of(&s2).unwrap());
    }

    #[test]
    fn modify_unknown_event_errors() {
        let r = to_streaminsight(&[Amf::m("X", 3, 9)]);
        assert_eq!(r.unwrap_err(), UnknownModifyTarget { start: Time(3) });
    }

    #[test]
    fn finalize_purges_converter_state() {
        let mut c = AmfConverter::new();
        let mut out = Vec::new();
        c.convert(&Amf::a("A", 1, 5), &mut out).unwrap();
        c.convert(&Amf::a("B", 2, 20), &mut out).unwrap();
        assert_eq!(c.tracked(), 2);
        c.convert(&Amf::f(10), &mut out).unwrap();
        // A (end 5 < 10) is fully frozen and forgotten; B remains adjustable.
        assert_eq!(c.tracked(), 1);
    }

    #[test]
    fn converted_stream_is_well_formed() {
        // The conversion of a legal a/m/f stream must pass strict
        // StreamInsight validation (stable constraints).
        let s1 = to_streaminsight(&phy1()).unwrap();
        assert!(tdb_of(&s1).is_ok());
    }
}
