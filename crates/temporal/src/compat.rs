//! Input/output compatibility conditions (Section III-D of the paper).
//!
//! These checkers are *oracles*: the LMerge algorithms never call them at
//! runtime, but the test suites run them after every emitted element to
//! verify that the output stream prefix remains compatible with the input
//! prefixes — i.e. that whatever the inputs do next, the output can still be
//! extended to match.
//!
//! `check_r3` implements conditions **C1–C3** for the R3 case (where
//! `(Vs, Payload)` is a key of the TDB); `check_r4` implements the multiset
//! conditions stated for the R4 case under the *tracking* policy (output
//! stable point follows the maximum input stable point).
//!
//! ## Note on the C2 half-frozen condition
//!
//! The paper's C2 text for a half-frozen output event reads "the event is HF
//! and `Lm ≤ L`". Taken literally this is unsound: if the output's stable
//! point `L` were *ahead* of the supporting input's `Lm`, the input event
//! could later be adjusted to an end time in `[Lm, L)` that the output could
//! no longer follow. The parenthetical ("so the output event can be adjusted
//! to match any changes in `TDBm`") shows the intent; we implement the sound
//! direction `L ≤ Lm` (the output must not be *more* stable than its
//! support), which coincides with the paper's condition in the `L = max Lm`
//! regime that all its algorithms operate in.

use crate::freeze::Freeze;
use crate::payload::Payload;
use crate::tdb::Tdb;
use crate::time::Time;
use std::collections::BTreeSet;

/// A stream prefix as seen by the compatibility checker: its reconstituted
/// TDB plus the latest `stable()` timestamp seen (`−∞` if none).
#[derive(Debug)]
pub struct StreamView<'a, P: Payload> {
    /// The reconstituted TDB of the prefix.
    pub tdb: &'a Tdb<P>,
    /// The prefix's stable point (the paper's `Lm`, or `L` for the output).
    pub stable: Time,
}

impl<'a, P: Payload> StreamView<'a, P> {
    /// Bundle a TDB with its stable point.
    pub fn new(tdb: &'a Tdb<P>, stable: Time) -> Self {
        StreamView { tdb, stable }
    }
}

// Manual impls: the derive would wrongly require `P: Copy` even though the
// view only holds a reference.
impl<P: Payload> Clone for StreamView<'_, P> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<P: Payload> Copy for StreamView<'_, P> {}

/// A specific violation of the compatibility conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation<P> {
    /// C1: the output's stable point exceeds every input's.
    OutputStableAhead {
        /// The output stable point `L`.
        output: Time,
        /// `max_m Lm` over the inputs.
        max_input: Time,
    },
    /// R3 key assumption broken: more than one output event for `(Vs, P)`.
    DuplicateKey {
        /// Offending validity start.
        vs: Time,
        /// Offending payload.
        payload: P,
    },
    /// C2: a half-frozen output event with no input support.
    HalfFrozenWithoutSupport {
        /// Offending validity start.
        vs: Time,
        /// Offending payload.
        payload: P,
    },
    /// C2: a fully frozen output event not fully frozen (identically) in any input.
    FullyFrozenWithoutSupport {
        /// Offending validity start.
        vs: Time,
        /// Offending payload.
        payload: P,
        /// The frozen end time.
        ve: Time,
    },
    /// C3: an event the output must contain (or must already have half
    /// frozen) is missing.
    MissingRequiredEvent {
        /// Required validity start.
        vs: Time,
        /// Required payload.
        payload: P,
    },
    /// R4 tracking: multiset of fully frozen end times differs from the
    /// leading input's.
    FrozenMultisetMismatch {
        /// Offending validity start.
        vs: Time,
        /// Offending payload.
        payload: P,
    },
    /// R4 tracking: count of half-frozen events differs from the leading
    /// input's.
    HalfFrozenCountMismatch {
        /// Offending validity start.
        vs: Time,
        /// Offending payload.
        payload: P,
        /// Count in the leading input.
        input_count: usize,
        /// Count in the output.
        output_count: usize,
    },
}

impl<P: std::fmt::Debug> std::fmt::Display for Violation<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Check conditions C1–C3 for the R3 case.
///
/// `inputs` are the views of the mutually consistent input prefixes;
/// `output` is the view of the emitted output prefix. Returns the first
/// violation found, or `Ok(())` when the output is compatible.
pub fn check_r3<P: Payload>(
    inputs: &[StreamView<'_, P>],
    output: &StreamView<'_, P>,
) -> Result<(), Violation<P>> {
    check_c1(inputs, output)?;
    check_c2(inputs, output)?;
    check_c3(inputs, output)
}

fn check_c1<P: Payload>(
    inputs: &[StreamView<'_, P>],
    output: &StreamView<'_, P>,
) -> Result<(), Violation<P>> {
    let max_input = inputs.iter().map(|v| v.stable).max().unwrap_or(Time::MIN);
    if output.stable > max_input {
        return Err(Violation::OutputStableAhead {
            output: output.stable,
            max_input,
        });
    }
    Ok(())
}

fn check_c2<P: Payload>(
    inputs: &[StreamView<'_, P>],
    output: &StreamView<'_, P>,
) -> Result<(), Violation<P>> {
    let l = output.stable;
    for ((vs, p), ve, count) in output.tdb.iter() {
        if count > 1 || output.tdb.count_key(p, *vs) > count {
            return Err(Violation::DuplicateKey {
                vs: *vs,
                payload: p.clone(),
            });
        }
        match Freeze::classify(*vs, ve, l) {
            Freeze::Unfrozen => {} // no constraint
            Freeze::HalfFrozen => {
                let supported = inputs.iter().any(|inp| {
                    inp.tdb.ves(p, *vs).is_some_and(|ves| {
                        ves.keys().any(|vm| {
                            // Exact match, or adjustable support (see module
                            // docs on the C2 half-frozen direction).
                            *vm == ve
                                || match Freeze::classify(*vs, *vm, inp.stable) {
                                    Freeze::HalfFrozen => l <= inp.stable,
                                    Freeze::FullyFrozen => l <= *vm,
                                    Freeze::Unfrozen => false,
                                }
                        })
                    })
                });
                if !supported {
                    return Err(Violation::HalfFrozenWithoutSupport {
                        vs: *vs,
                        payload: p.clone(),
                    });
                }
            }
            Freeze::FullyFrozen => {
                let supported = inputs.iter().any(|inp| {
                    inp.tdb.count(p, *vs, ve) > 0
                        && Freeze::classify(*vs, ve, inp.stable) == Freeze::FullyFrozen
                });
                if !supported {
                    return Err(Violation::FullyFrozenWithoutSupport {
                        vs: *vs,
                        payload: p.clone(),
                        ve,
                    });
                }
            }
        }
    }
    Ok(())
}

fn check_c3<P: Payload>(
    inputs: &[StreamView<'_, P>],
    output: &StreamView<'_, P>,
) -> Result<(), Violation<P>> {
    let l = output.stable;
    // Every (Vs, Payload) key appearing in any input.
    let keys: BTreeSet<(Time, P)> = inputs
        .iter()
        .flat_map(|inp| inp.tdb.keys().cloned())
        .collect();

    for (vs, p) in &keys {
        // Case 1: some input holds an FF event for (p, Vs).
        let ff_event = inputs.iter().find_map(|inp| {
            inp.tdb.ves(p, *vs).and_then(|ves| {
                ves.keys()
                    .find(|ve| Freeze::classify(*vs, **ve, inp.stable) == Freeze::FullyFrozen)
                    .copied()
            })
        });
        let out_ves = output.tdb.ves(p, *vs);
        if let Some(ve) = ff_event {
            let ok = if l <= *vs {
                true // the event can still be added to the output
            } else if *vs < l && l <= ve {
                // Output must already hold a half-frozen event for the key.
                out_ves.is_some_and(|m| {
                    m.keys()
                        .any(|vo| Freeze::classify(*vs, *vo, l) == Freeze::HalfFrozen)
                })
            } else {
                // ve < l: output must contain the exact event.
                output.tdb.count(p, *vs, ve) > 0
            };
            if !ok {
                return Err(Violation::MissingRequiredEvent {
                    vs: *vs,
                    payload: p.clone(),
                });
            }
            continue;
        }

        // Case 2: no FF event, but one or more inputs hold an HF event.
        let max_hf_stable = inputs
            .iter()
            .filter(|inp| {
                inp.tdb.ves(p, *vs).is_some_and(|ves| {
                    ves.keys()
                        .any(|ve| Freeze::classify(*vs, *ve, inp.stable) == Freeze::HalfFrozen)
                })
            })
            .map(|inp| inp.stable)
            .max();
        if let Some(lm) = max_hf_stable {
            let ok = if l <= *vs {
                true
            } else {
                *vs < l
                    && l <= lm
                    && out_ves.is_some_and(|m| {
                        m.keys()
                            .any(|vo| Freeze::classify(*vs, *vo, l) == Freeze::HalfFrozen)
                    })
            };
            if !ok {
                return Err(Violation::MissingRequiredEvent {
                    vs: *vs,
                    payload: p.clone(),
                });
            }
        }
        // Unfrozen input events place no constraint on the output.
    }
    Ok(())
}

/// Check the R4 (multiset) conditions under the tracking policy, where the
/// output stable point `L` follows the maximum input stable point.
///
/// Per the paper's final paragraph of Section III-D: `TDB_O` must contain all
/// the fully frozen events of the leading input (with multiplicity) and an
/// equal number of half-frozen events for each `(Vs, Payload)`.
pub fn check_r4<P: Payload>(
    inputs: &[StreamView<'_, P>],
    output: &StreamView<'_, P>,
) -> Result<(), Violation<P>> {
    check_c1(inputs, output)?;
    let l = output.stable;
    let Some(leader) = inputs.iter().max_by_key(|v| v.stable) else {
        return Ok(());
    };
    // Only portions the *output* has frozen are constrained; the leader's
    // additional stability beyond L imposes nothing yet.
    let keys: BTreeSet<(Time, P)> = leader
        .tdb
        .keys()
        .chain(output.tdb.keys())
        .cloned()
        .collect();
    for (vs, p) in &keys {
        if *vs >= l {
            continue; // unfrozen territory: unconstrained
        }
        let empty = std::collections::BTreeMap::new();
        let in_ves = leader.tdb.ves(p, *vs).unwrap_or(&empty);
        let out_ves = output.tdb.ves(p, *vs).unwrap_or(&empty);
        // Fully frozen (Ve < L) multisets must match exactly.
        let in_ff: Vec<(Time, usize)> = in_ves
            .iter()
            .filter(|(ve, _)| **ve < l)
            .map(|(ve, c)| (*ve, *c))
            .collect();
        let out_ff: Vec<(Time, usize)> = out_ves
            .iter()
            .filter(|(ve, _)| **ve < l)
            .map(|(ve, c)| (*ve, *c))
            .collect();
        if in_ff != out_ff {
            return Err(Violation::FrozenMultisetMismatch {
                vs: *vs,
                payload: p.clone(),
            });
        }
        // Half-frozen (Ve ≥ L) counts must match.
        let in_hf: usize = in_ves
            .iter()
            .filter(|(ve, _)| **ve >= l)
            .map(|(_, c)| c)
            .sum();
        let out_hf: usize = out_ves
            .iter()
            .filter(|(ve, _)| **ve >= l)
            .map(|(_, c)| c)
            .sum();
        if in_hf != out_hf {
            return Err(Violation::HalfFrozenCountMismatch {
                vs: *vs,
                payload: p.clone(),
                input_count: in_hf,
                output_count: out_hf,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn tdb(events: &[(&'static str, i64, i64)]) -> Tdb<&'static str> {
        events
            .iter()
            .map(|(p, vs, ve)| {
                Event::new(*p, *vs, if *ve == -1 { Time::INFINITY } else { Time(*ve) })
            })
            .collect()
    }

    /// The I1/I2 input TDBs of Section III-D.
    fn i1() -> Tdb<&'static str> {
        tdb(&[("A", 2, 16), ("B", 3, 10), ("C", 4, 18), ("D", 15, 20)])
    }

    fn i2() -> Tdb<&'static str> {
        tdb(&[("A", 2, 12), ("B", 3, 10), ("C", 4, 18), ("E", 17, 21)])
    }

    #[test]
    fn paper_o1_is_compatible() {
        let (t1, t2) = (i1(), i2());
        let inputs = [
            StreamView::new(&t1, Time(14)),
            StreamView::new(&t2, Time(11)),
        ];
        let o1 = tdb(&[("A", 2, -1), ("B", 3, 10), ("C", 4, -1)]);
        let out = StreamView::new(&o1, Time(11));
        assert_eq!(check_r3(&inputs, &out), Ok(()));
    }

    #[test]
    fn paper_o2_is_compatible() {
        let (t1, t2) = (i1(), i2());
        let inputs = [
            StreamView::new(&t1, Time(14)),
            StreamView::new(&t2, Time(11)),
        ];
        let o2 = tdb(&[
            ("A", 2, 16),
            ("B", 3, 10),
            ("C", 4, 18),
            ("D", 15, 20),
            ("E", 17, 21),
        ]);
        let out = StreamView::new(&o2, Time(14));
        assert_eq!(check_r3(&inputs, &out), Ok(()));
    }

    #[test]
    fn paper_o3_is_incompatible() {
        let (t1, t2) = (i1(), i2());
        let inputs = [
            StreamView::new(&t1, Time(14)),
            StreamView::new(&t2, Time(11)),
        ];
        // O3 (last:13): A fully frozen at 12 (contradicts I1), and B missing.
        let o3 = tdb(&[("A", 2, 12), ("C", 4, 18), ("D", 15, 20)]);
        let out = StreamView::new(&o3, Time(13));
        let err = check_r3(&inputs, &out).unwrap_err();
        // Both cited defects are real; the checker reports the first it hits.
        assert!(
            matches!(
                err,
                Violation::FullyFrozenWithoutSupport { .. }
                    | Violation::MissingRequiredEvent { .. }
            ),
            "unexpected violation: {err:?}"
        );
    }

    #[test]
    fn c1_output_cannot_outpace_inputs() {
        let t1 = tdb(&[("A", 2, 16)]);
        let inputs = [StreamView::new(&t1, Time(10))];
        let o = tdb(&[("A", 2, 16)]);
        let out = StreamView::new(&o, Time(12));
        assert!(matches!(
            check_r3(&inputs, &out),
            Err(Violation::OutputStableAhead { .. })
        ));
    }

    #[test]
    fn c2_duplicate_key_rejected() {
        let t1 = tdb(&[("A", 2, 16)]);
        let inputs = [StreamView::new(&t1, Time(0))];
        let o = tdb(&[("A", 2, 16), ("A", 2, 18)]);
        let out = StreamView::new(&o, Time::MIN);
        assert!(matches!(
            check_r3(&inputs, &out),
            Err(Violation::DuplicateKey { .. })
        ));
    }

    #[test]
    fn c2_unfrozen_output_event_is_unconstrained() {
        // Output invents an event no input has — fine while unfrozen.
        let t1 = tdb(&[("A", 2, 16)]);
        let inputs = [StreamView::new(&t1, Time(1))];
        let o = tdb(&[("Z", 50, 60)]);
        let out = StreamView::new(&o, Time(1));
        // But C3 then requires A... A has vs=2 >= L=1, so no requirement yet.
        assert_eq!(check_r3(&inputs, &out), Ok(()));
    }

    #[test]
    fn c3_missing_required_event_detected() {
        // Input: B fully frozen (stable 14 > ve 10). Output stable 12 with no
        // B at all: B can no longer be added (vs 3 < 12) → violation.
        let t1 = tdb(&[("B", 3, 10)]);
        let inputs = [StreamView::new(&t1, Time(14))];
        let o: Tdb<&str> = Tdb::new();
        let out = StreamView::new(&o, Time(12));
        assert!(matches!(
            check_r3(&inputs, &out),
            Err(Violation::MissingRequiredEvent { .. })
        ));
    }

    #[test]
    fn c3_event_still_addable_when_output_lags() {
        // Same as above, but output stable point is 3 ≤ vs: no violation.
        let t1 = tdb(&[("B", 3, 10)]);
        let inputs = [StreamView::new(&t1, Time(14))];
        let o: Tdb<&str> = Tdb::new();
        let out = StreamView::new(&o, Time(3));
        assert_eq!(check_r3(&inputs, &out), Ok(()));
    }

    #[test]
    fn r4_tracking_requires_matching_ff_multisets() {
        let mut t1: Tdb<&str> = Tdb::new();
        t1.insert(Event::new("A", 2, 5));
        t1.insert(Event::new("A", 2, 5));
        let inputs = [StreamView::new(&t1, Time(10))];
        let mut o: Tdb<&str> = Tdb::new();
        o.insert(Event::new("A", 2, 5));
        let out = StreamView::new(&o, Time(10));
        assert!(matches!(
            check_r4(&inputs, &out),
            Err(Violation::FrozenMultisetMismatch { .. })
        ));
    }

    #[test]
    fn r4_tracking_requires_matching_hf_counts() {
        let mut t1: Tdb<&str> = Tdb::new();
        t1.insert(Event::new("A", 2, 20));
        t1.insert(Event::new("A", 2, 25));
        let inputs = [StreamView::new(&t1, Time(10))];
        let mut o: Tdb<&str> = Tdb::new();
        o.insert(Event::new("A", 2, 20));
        let out = StreamView::new(&o, Time(10));
        assert!(matches!(
            check_r4(&inputs, &out),
            Err(Violation::HalfFrozenCountMismatch {
                input_count: 2,
                output_count: 1,
                ..
            })
        ));
    }

    #[test]
    fn r4_accepts_exact_tracking() {
        let mut t1: Tdb<&str> = Tdb::new();
        t1.insert(Event::new("A", 2, 5));
        t1.insert(Event::new("A", 2, 20));
        let inputs = [StreamView::new(&t1, Time(10))];
        let out_tdb = t1.clone();
        let out = StreamView::new(&out_tdb, Time(10));
        assert_eq!(check_r4(&inputs, &out), Ok(()));
    }
}
