//! TDB events: a payload with a half-open validity interval.

use crate::payload::{HeapSize, Payload};
use crate::time::Time;

/// An event of the temporal database: payload `p` valid over `[Vs, Ve)`.
///
/// `Ve` may be [`Time::INFINITY`]. The paper requires `Vs < Ve` for a live
/// event; an adjust that sets `Ve = Vs` *removes* the event (Example 5).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Event<P> {
    /// Validity start (the event's timestamp).
    pub vs: Time,
    /// Validity end (exclusive); may be infinite.
    pub ve: Time,
    /// The relational payload.
    pub payload: P,
}

impl<P: Payload> Event<P> {
    /// Construct an event, asserting interval validity in debug builds.
    pub fn new(payload: P, vs: impl Into<Time>, ve: impl Into<Time>) -> Event<P> {
        let (vs, ve) = (vs.into(), ve.into());
        debug_assert!(vs < ve, "event interval must be non-empty: [{vs}, {ve})");
        Event { vs, ve, payload }
    }

    /// An event that never expires (`Ve = ∞`).
    pub fn open_ended(payload: P, vs: impl Into<Time>) -> Event<P> {
        Event::new(payload, vs, Time::INFINITY)
    }

    /// Whether the event is active at application time `t`
    /// (i.e. `t ∈ [Vs, Ve)`).
    #[inline]
    pub fn active_at(&self, t: Time) -> bool {
        self.vs <= t && t < self.ve
    }

    /// The `(Vs, Payload)` key used by the paper's `in2t`/`in3t` indexes.
    #[inline]
    pub fn key(&self) -> (Time, &P) {
        (self.vs, &self.payload)
    }

    /// Replace the end time, returning a new event.
    #[must_use]
    pub fn with_ve(&self, ve: Time) -> Event<P> {
        Event {
            vs: self.vs,
            ve,
            payload: self.payload.clone(),
        }
    }
}

impl<P: HeapSize> HeapSize for Event<P> {
    #[inline]
    fn heap_bytes(&self) -> usize {
        self.payload.heap_bytes()
    }
}

impl<P: std::fmt::Debug> std::fmt::Debug for Event<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨{:?}, [{}, {})⟩", self.payload, self.vs, self.ve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_at_half_open() {
        let e = Event::new("A", 5, 10);
        assert!(!e.active_at(Time(4)));
        assert!(e.active_at(Time(5)));
        assert!(e.active_at(Time(9)));
        assert!(!e.active_at(Time(10)), "interval is half-open");
    }

    #[test]
    fn open_ended_is_always_active_after_start() {
        let e = Event::open_ended("A", 5);
        assert!(e.active_at(Time(1_000_000_000)));
        assert!(!e.active_at(Time(4)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_interval_panics_in_debug() {
        let _ = Event::new("A", 5, 5);
    }

    #[test]
    fn with_ve_preserves_rest() {
        let e = Event::new("A", 5, 10).with_ve(Time(20));
        assert_eq!(e.vs, Time(5));
        assert_eq!(e.ve, Time(20));
        assert_eq!(e.payload, "A");
    }
}
