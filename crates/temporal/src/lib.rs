//! Temporal stream model for Logical Merge (LMerge).
//!
//! This crate implements the stream/temporal-database model of Section III of
//! *Physically Independent Stream Merging* (Chandramouli, Maier, Goldstein,
//! ICDE 2012):
//!
//! * A **logical stream** is a temporal database ([`Tdb`]): a multiset of
//!   events, each a payload plus a half-open validity interval `[Vs, Ve)`.
//! * A **physical stream** is a sequence of elements that *reconstitutes*
//!   into a TDB. The primary element model ([`Element`]) is the
//!   StreamInsight model of the paper's Example 5 — `insert`, `adjust`, and
//!   `stable` elements. Two alternative models from the paper are also
//!   provided: the `a`/`m`/`f` model of Example 1 ([`amf`]) and the
//!   `open`/`close` model of Example 3 ([`openclose`]), with lossless
//!   conversions into the primary model.
//! * [`reconstitute`] implements the `tdb(S, i)` reconstitution function and
//!   validates the ordering constraints imposed by `stable()` punctuation.
//! * [`freeze`] classifies TDB events as unfrozen / half frozen / fully
//!   frozen relative to a stable point (Section III-C).
//! * [`compat`] implements the paper's exact compatibility conditions C1–C3
//!   for the R3 case and the multiset conditions for R4 (Section III-D).
//!   These are used throughout the workspace as *test oracles* for the
//!   LMerge algorithms.
//! * [`consistency`] provides mutual-consistency checks over stream prefixes
//!   (Section III-B).

pub mod amf;
pub mod compat;
pub mod consistency;
pub mod element;
pub mod event;
pub mod freeze;
pub mod openclose;
pub mod payload;
pub mod reconstitute;
pub mod tdb;
pub mod time;

pub use element::{Element, StreamId};
pub use event::Event;
pub use freeze::Freeze;
pub use payload::{HeapSize, Payload, Value};
pub use reconstitute::{ReconstituteError, Reconstituter};
pub use tdb::Tdb;
pub use time::{Time, VTime};
