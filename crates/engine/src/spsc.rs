//! Re-export of the shared SPSC ring ([`lmerge_core::spsc`]).
//!
//! The ring started life here, feeding the pipelined executor's shard
//! workers; the lmerge-net ingest server now uses the same queue between
//! its socket readers and the merge-side sources, so the implementation
//! lives in `lmerge-core` where both crates can reach it. This module
//! keeps the original `lmerge_engine::spsc` paths working unchanged.

pub use lmerge_core::spsc::*;
