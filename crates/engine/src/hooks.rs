//! Run hooks: the executor's fault-injection and inspection boundary.
//!
//! A [`RunHooks`] implementation sees every batch at the moment of delivery
//! and may rewrite the run — drop the batch, substitute its contents, delay
//! it, or (via [`ControlAction`]s drained at each virtual-time boundary)
//! detach, attach, or stall a whole input. The chaos harness
//! (`lmerge-chaos`) builds on this to replay seeded fault plans; tests use
//! it to observe exactly what the merge consumed and emitted.
//!
//! Like tracing, the hook path is statically erasable: the default
//! [`NoHooks`] reports `enabled() == false` and the executor's
//! monomorphized run loop skips every hook call.

use crate::operator::TimedElement;
use lmerge_temporal::{Element, Payload, StreamId, Time, VTime};

/// What to do with a batch that is about to be delivered to LMerge.
#[derive(Debug)]
pub enum FaultAction<P> {
    /// Deliver the batch unchanged (the default).
    Deliver,
    /// Discard the batch; the query's subsequent batches still flow.
    Drop,
    /// Deliver these elements instead of the batch's own.
    Replace(Vec<Element<P>>),
    /// Re-stage the batch to deliver no earlier than this virtual time.
    /// A target at or before the scheduled time delivers unchanged.
    Delay(VTime),
}

/// A structural change to the run, applied at a virtual-time boundary.
pub enum ControlAction<P> {
    /// Forcibly detach an input: the merge drops its state and every
    /// batch still queued or yet to be produced by that query is lost.
    Detach(StreamId),
    /// Attach a fresh input mid-run. The executor wraps `source` in a
    /// passthrough query; the merge sees it join at `join_time`.
    Attach {
        /// The join point handed to [`lmerge_core::LogicalMerge::attach`].
        join_time: Time,
        /// The timed feed of the joining replica.
        source: Vec<TimedElement<P>>,
    },
    /// Freeze an input's deliveries until the given virtual time.
    Stall {
        /// The stalled input (query index).
        input: u32,
        /// Deliveries resume at this virtual time.
        until: VTime,
    },
    /// Kill the whole merge operator and rebuild it from its exported
    /// durable state image — the in-process shape of a crash-and-restore.
    /// The queries and the executor's delivery heap survive (they model
    /// the world outside the crashed operator); only the merge's state
    /// makes the round trip through the image.
    CrashMerge {
        /// Build the replacement operator from the crashed one's image.
        /// The chaos harness routes this through the durable codec so the
        /// image also survives an encode/decode round trip.
        rebuild: Box<
            dyn FnOnce(lmerge_core::MergeStateImage<P>) -> Box<dyn lmerge_core::LogicalMerge<P>>
                + Send,
        >,
    },
}

impl<P: std::fmt::Debug> std::fmt::Debug for ControlAction<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlAction::Detach(id) => f.debug_tuple("Detach").field(id).finish(),
            ControlAction::Attach { join_time, source } => f
                .debug_struct("Attach")
                .field("join_time", join_time)
                .field("source", source)
                .finish(),
            ControlAction::Stall { input, until } => f
                .debug_struct("Stall")
                .field("input", input)
                .field("until", until)
                .finish(),
            ControlAction::CrashMerge { .. } => f.write_str("CrashMerge"),
        }
    }
}

/// Observer/mutator interface threaded through the executor's run loop.
///
/// All methods have no-op defaults, so an implementation only overrides
/// what it needs. `enabled()` gates the whole path: when it returns
/// `false` the executor never calls the other methods.
pub trait RunHooks<P: Payload> {
    /// Whether the executor should consult this hook at all.
    fn enabled(&self) -> bool {
        false
    }

    /// A batch for `input` is about to be delivered at virtual time `at`.
    fn on_deliver(&mut self, input: u32, at: VTime, elements: &[Element<P>]) -> FaultAction<P> {
        let _ = (input, at, elements);
        FaultAction::Deliver
    }

    /// The merge consumed `delivered` from `input` and produced `emitted`;
    /// `at` is the virtual time the consumption finished.
    fn on_consumed(
        &mut self,
        input: u32,
        at: VTime,
        delivered: &[Element<P>],
        emitted: &[Element<P>],
    ) {
        let _ = (input, at, delivered, emitted);
    }

    /// Collect structural actions to apply at virtual time `at`, before the
    /// next batch is considered. Push actions into `actions`.
    fn control(&mut self, at: VTime, actions: &mut Vec<ControlAction<P>>) {
        let _ = (at, actions);
    }
}

/// The statically disabled hook: the executor's default.
pub struct NoHooks;

impl<P: Payload> RunHooks<P> for NoHooks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_hooks_is_disabled_and_inert() {
        let mut h = NoHooks;
        assert!(!RunHooks::<&str>::enabled(&h));
        let a = h.on_deliver(0, VTime(5), &[Element::insert("a", 1, 2)]);
        assert!(matches!(a, FaultAction::Deliver));
        let mut actions: Vec<ControlAction<&str>> = Vec::new();
        h.control(VTime(5), &mut actions);
        assert!(actions.is_empty());
    }
}
