//! Run metrics: throughput, latency, memory, chattiness.
//!
//! These are the measurements of the paper's Section VI-B: *Throughput*
//! (output events per virtual second), *Memory* (operator state including
//! payloads and index structures), and *Output Size* (the number of adjust
//! elements — chattiness). Latency is virtual emission time minus source
//! arrival time.

use lmerge_core::MergeStats;
use lmerge_obs::LogHistogram;
use lmerge_temporal::VTime;
use std::collections::BTreeMap;

/// A per-virtual-second count series.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Series {
    buckets: BTreeMap<u64, u64>,
}

impl Series {
    /// Record `n` occurrences at virtual time `at`.
    pub fn add(&mut self, at: VTime, n: u64) {
        *self.buckets.entry(at.as_micros() / 1_000_000).or_insert(0) += n;
    }

    /// Iterate `(second, count)` pairs in time order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(s, c)| (*s, *c))
    }

    /// Count in a specific second.
    pub fn at(&self, second: u64) -> u64 {
        self.buckets.get(&second).copied().unwrap_or(0)
    }

    /// Total across all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// Coefficient of variation (σ/μ) over the series' span — the
    /// "smoothness" measure for the bursty/congestion experiments.
    ///
    /// O(#stored buckets), independent of the time span: seconds with no
    /// stored bucket all contribute the same `(0 − μ)²` term, so their sum
    /// is `(span − #stored) · μ²` without enumerating them.
    pub fn coefficient_of_variation(&self) -> f64 {
        let Some((&first, _)) = self.buckets.first_key_value() else {
            return 0.0;
        };
        let (&last, _) = self.buckets.last_key_value().expect("non-empty");
        let span = (last - first + 1) as f64;
        let mean = self.total() as f64 / span;
        if mean == 0.0 {
            return 0.0;
        }
        let stored_sq = self
            .buckets
            .values()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>();
        let empty_sq = (span - self.buckets.len() as f64) * mean * mean;
        let var = (stored_sq + empty_sq) / span;
        var.sqrt() / mean
    }
}

/// Everything measured during one executor run.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// LMerge element counters (inserts/adjusts/stables in and out).
    pub merge: MergeStats,
    /// Output data elements per virtual second.
    pub output_series: Series,
    /// Delivered input data elements per virtual second, per input.
    pub input_series: Vec<Series>,
    /// Latency (µs) of each output-producing batch: emission − arrival.
    /// Log-bucketed — O(#buckets) memory however long the run.
    pub latency: LogHistogram,
    /// Sampled `(vtime, bytes)` of LMerge + query-operator state.
    pub memory_samples: Vec<(VTime, usize)>,
    /// Largest memory sample observed.
    pub peak_memory: usize,
    /// Virtual time at which the merged output became complete (the output
    /// stable point reached `∞`), if it did.
    pub output_complete_at: Option<VTime>,
    /// Virtual time when every input was fully drained.
    pub drained_at: VTime,
}

impl RunMetrics {
    /// Mean latency in microseconds (0 when nothing was measured).
    pub fn mean_latency_us(&self) -> f64 {
        self.latency.mean()
    }

    /// The `q`-quantile latency in microseconds (e.g. `0.99`), using the
    /// nearest-rank definition: the sample at rank `⌈q·n⌉`. (The previous
    /// index-rounding selection could underestimate high quantiles — e.g.
    /// p91 of ten samples picked the 9th, not the 10th.)
    ///
    /// Pinned edge semantics: an empty histogram reports 0 for every `q`
    /// (no sentinel, no panic); `q` outside `[0, 1]` clamps to the
    /// observed min/max; saturated top-bucket samples (up to `u64::MAX`)
    /// report the exact max at the extreme ranks and clamp interior ranks
    /// to the observed range.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        self.latency.quantile(q)
    }

    /// End-to-end completion time: when the output became complete, or when
    /// the inputs drained if no final punctuation arrived.
    pub fn completion(&self) -> VTime {
        self.output_complete_at.unwrap_or(self.drained_at)
    }

    /// Overall output throughput in data elements per virtual second.
    pub fn throughput_eps(&self) -> f64 {
        let secs = self.completion().as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        (self.merge.inserts_out + self.merge.adjusts_out) as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_bucketing() {
        let mut s = Series::default();
        s.add(VTime::from_millis(100), 3);
        s.add(VTime::from_millis(900), 2);
        s.add(VTime::from_secs(2), 7);
        assert_eq!(s.at(0), 5);
        assert_eq!(s.at(1), 0);
        assert_eq!(s.at(2), 7);
        assert_eq!(s.total(), 12);
    }

    #[test]
    fn steady_series_has_low_cv() {
        let mut steady = Series::default();
        let mut bursty = Series::default();
        for sec in 0..10 {
            steady.add(VTime::from_secs(sec), 100);
            bursty.add(VTime::from_secs(sec), if sec % 2 == 0 { 195 } else { 5 });
        }
        assert!(steady.coefficient_of_variation() < 0.01);
        assert!(bursty.coefficient_of_variation() > 0.5);
    }

    #[test]
    fn latency_stats() {
        let mut m = RunMetrics::default();
        for v in [10u64, 20, 30, 40, 1000] {
            m.latency.record(v);
        }
        assert_eq!(m.mean_latency_us(), 220.0);
        assert_eq!(m.latency_quantile_us(0.5), 30);
        assert_eq!(m.latency_quantile_us(1.0), 1000);
    }

    #[test]
    fn latency_quantile_is_nearest_rank() {
        // Ten samples 1..=10 µs. Nearest-rank q=0.91 is the rank-⌈9.1⌉ = 10
        // sample, i.e. 10. The old `((n-1)·q).round()` selection picked
        // index 8 (value 9), silently underestimating high quantiles.
        let mut m = RunMetrics::default();
        for v in 1..=10u64 {
            m.latency.record(v);
        }
        assert_eq!(m.latency_quantile_us(0.91), 10);
        assert_eq!(m.latency_quantile_us(0.9), 9, "rank ⌈9.0⌉ = 9");
        assert_eq!(m.latency_quantile_us(0.0), 1, "rank clamps to 1");
    }

    #[test]
    fn cv_counts_empty_seconds_in_the_span() {
        // One burst at second 0 and one at second 9; the eight silent
        // seconds between them must raise the CV exactly as if enumerated.
        let mut sparse = Series::default();
        sparse.add(VTime::from_secs(0), 100);
        sparse.add(VTime::from_secs(9), 100);
        // mean = 20, var = (2·80² + 8·20²)/10 = 1600, cv = 40/20 = 2.
        let cv = sparse.coefficient_of_variation();
        assert!((cv - 2.0).abs() < 1e-9, "got {cv}");
    }

    #[test]
    fn completion_prefers_output_complete() {
        let mut m = RunMetrics {
            drained_at: VTime::from_secs(100),
            ..Default::default()
        };
        assert_eq!(m.completion(), VTime::from_secs(100));
        m.output_complete_at = Some(VTime::from_secs(60));
        assert_eq!(m.completion(), VTime::from_secs(60));
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = RunMetrics::default();
        assert_eq!(m.mean_latency_us(), 0.0);
        assert_eq!(m.latency_quantile_us(0.99), 0);
        assert_eq!(m.throughput_eps(), 0.0);
        assert_eq!(Series::default().coefficient_of_variation(), 0.0);
    }

    // Pinned: every q — including out-of-range — is 0 on an empty
    // histogram, so report generators need no emptiness guard.
    #[test]
    fn empty_latency_quantiles_are_zero_for_all_q() {
        let m = RunMetrics::default();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(m.latency_quantile_us(q), 0, "q={q}");
        }
    }

    // Pinned: out-of-range q clamps to the observed extremes, and a
    // saturated sample (u64::MAX µs — a stuck element) reports exactly.
    #[test]
    fn latency_quantile_clamps_out_of_range_and_saturated() {
        let mut m = RunMetrics::default();
        m.latency.record(5);
        m.latency.record(u64::MAX);
        assert_eq!(m.latency_quantile_us(-0.5), 5);
        assert_eq!(m.latency_quantile_us(2.0), u64::MAX);
        assert_eq!(m.latency_quantile_us(1.0), u64::MAX);
        assert_eq!(m.latency_quantile_us(0.0), 5);
    }
}
