//! Run metrics: throughput, latency, memory, chattiness.
//!
//! These are the measurements of the paper's Section VI-B: *Throughput*
//! (output events per virtual second), *Memory* (operator state including
//! payloads and index structures), and *Output Size* (the number of adjust
//! elements — chattiness). Latency is virtual emission time minus source
//! arrival time.

use lmerge_core::MergeStats;
use lmerge_temporal::VTime;
use std::collections::BTreeMap;

/// A per-virtual-second count series.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Series {
    buckets: BTreeMap<u64, u64>,
}

impl Series {
    /// Record `n` occurrences at virtual time `at`.
    pub fn add(&mut self, at: VTime, n: u64) {
        *self.buckets.entry(at.as_micros() / 1_000_000).or_insert(0) += n;
    }

    /// Iterate `(second, count)` pairs in time order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(s, c)| (*s, *c))
    }

    /// Count in a specific second.
    pub fn at(&self, second: u64) -> u64 {
        self.buckets.get(&second).copied().unwrap_or(0)
    }

    /// Total across all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// Coefficient of variation (σ/μ) over the series' span — the
    /// "smoothness" measure for the bursty/congestion experiments.
    pub fn coefficient_of_variation(&self) -> f64 {
        let Some((&first, _)) = self.buckets.first_key_value() else {
            return 0.0;
        };
        let (&last, _) = self.buckets.last_key_value().expect("non-empty");
        let n = (last - first + 1) as f64;
        let mean = self.total() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = (first..=last)
            .map(|s| {
                let d = self.at(s) as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

/// Everything measured during one executor run.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// LMerge element counters (inserts/adjusts/stables in and out).
    pub merge: MergeStats,
    /// Output data elements per virtual second.
    pub output_series: Series,
    /// Delivered input data elements per virtual second, per input.
    pub input_series: Vec<Series>,
    /// Latency (µs) of each output-producing batch: emission − arrival.
    pub latencies_us: Vec<u64>,
    /// Sampled `(vtime, bytes)` of LMerge + query-operator state.
    pub memory_samples: Vec<(VTime, usize)>,
    /// Largest memory sample observed.
    pub peak_memory: usize,
    /// Virtual time at which the merged output became complete (the output
    /// stable point reached `∞`), if it did.
    pub output_complete_at: Option<VTime>,
    /// Virtual time when every input was fully drained.
    pub drained_at: VTime,
}

impl RunMetrics {
    /// Mean latency in microseconds (0 when nothing was measured).
    pub fn mean_latency_us(&self) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        self.latencies_us.iter().sum::<u64>() as f64 / self.latencies_us.len() as f64
    }

    /// The `q`-quantile latency in microseconds (e.g. `0.99`).
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut v = self.latencies_us.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * q).round() as usize;
        v[idx]
    }

    /// End-to-end completion time: when the output became complete, or when
    /// the inputs drained if no final punctuation arrived.
    pub fn completion(&self) -> VTime {
        self.output_complete_at.unwrap_or(self.drained_at)
    }

    /// Overall output throughput in data elements per virtual second.
    pub fn throughput_eps(&self) -> f64 {
        let secs = self.completion().as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        (self.merge.inserts_out + self.merge.adjusts_out) as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_bucketing() {
        let mut s = Series::default();
        s.add(VTime::from_millis(100), 3);
        s.add(VTime::from_millis(900), 2);
        s.add(VTime::from_secs(2), 7);
        assert_eq!(s.at(0), 5);
        assert_eq!(s.at(1), 0);
        assert_eq!(s.at(2), 7);
        assert_eq!(s.total(), 12);
    }

    #[test]
    fn steady_series_has_low_cv() {
        let mut steady = Series::default();
        let mut bursty = Series::default();
        for sec in 0..10 {
            steady.add(VTime::from_secs(sec), 100);
            bursty.add(VTime::from_secs(sec), if sec % 2 == 0 { 195 } else { 5 });
        }
        assert!(steady.coefficient_of_variation() < 0.01);
        assert!(bursty.coefficient_of_variation() > 0.5);
    }

    #[test]
    fn latency_stats() {
        let m = RunMetrics {
            latencies_us: vec![10, 20, 30, 40, 1000],
            ..Default::default()
        };
        assert_eq!(m.mean_latency_us(), 220.0);
        assert_eq!(m.latency_quantile_us(0.5), 30);
        assert_eq!(m.latency_quantile_us(1.0), 1000);
    }

    #[test]
    fn completion_prefers_output_complete() {
        let mut m = RunMetrics {
            drained_at: VTime::from_secs(100),
            ..Default::default()
        };
        assert_eq!(m.completion(), VTime::from_secs(100));
        m.output_complete_at = Some(VTime::from_secs(60));
        assert_eq!(m.completion(), VTime::from_secs(60));
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = RunMetrics::default();
        assert_eq!(m.mean_latency_us(), 0.0);
        assert_eq!(m.latency_quantile_us(0.99), 0);
        assert_eq!(m.throughput_eps(), 0.0);
        assert_eq!(Series::default().coefficient_of_variation(), 0.0);
    }
}
