//! The pipelined (multi-threaded) sharded executor.
//!
//! [`run_pipeline`] runs a hash-partitioned merge across `K` worker
//! threads: a router (the calling thread) routes each data element by its
//! `(Vs, Payload)` key to one shard's bounded SPSC ring
//! ([`crate::spsc`]), broadcasts `stable` punctuation and lifecycle
//! control (detach/attach) to *every* ring, and the workers drive
//! independent inner merge states. Output is re-sequenced
//! deterministically by a low-watermark aggregator:
//!
//! * every broadcast `stable` closes an **epoch** — the same epoch
//!   boundary on every shard, because every shard sees every stable in
//!   feed order;
//! * within an epoch, shard outputs are concatenated in shard order;
//! * the output stable point after epoch `e` is the **minimum** over the
//!   shards' local stable points, emitted only when it advances.
//!
//! The result is byte-identical across runs regardless of thread
//! scheduling (asserted in the tests below), and equivalent to the
//! synchronous [`lmerge_core::ShardedLMerge`] wrapper — which is itself
//! equivalent, after canonical reordering within stable epochs, to the
//! sequential operator (`tests/shard_equivalence.rs`).
//!
//! Control actions are applied **at the router, before partitioning**:
//! a `Detach`/`Attach` in the feed broadcasts to every shard in feed
//! order, so the shard input registries stay in lockstep and chaos
//! hooks keep their sequential meaning under sharding.
//!
//! Timing note: per-shard busy time is accumulated around the merge work
//! inside each worker with the wall clock. On a machine with at least
//! `K + 1` cores those spans run concurrently and the pipeline's critical
//! path is `max(router, slowest shard)`; on fewer cores preemption
//! inflates the spans. The scaling bench (`lmerge-bench`, fig
//! `shard_scaling`) therefore measures per-shard work in isolation and
//! reports critical-path throughput alongside raw wall clock.

use crate::spsc::{self, Producer};
use lmerge_core::{LogicalMerge, MergeStats};
use lmerge_obs::{StableScope, TraceEvent, TraceSink};
use lmerge_temporal::{Element, Payload, StreamId, Time, VTime};
use std::time::{Duration, Instant};

/// One router-ordered unit of pipeline input.
#[derive(Clone, Debug)]
pub enum PipeItem<P: Payload> {
    /// Deliver one element from one input (global arrival order).
    Deliver(StreamId, Element<P>),
    /// Detach an input (applied at the router, broadcast to all shards).
    Detach(StreamId),
    /// Attach a new input with the given join time.
    Attach(Time),
}

/// What flows through a shard's ring.
enum Op<P: Payload> {
    Elem(StreamId, Element<P>),
    Detach(StreamId),
    Attach(Time),
    Close,
}

/// Pipeline knobs.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Worker (shard) count `K`.
    pub shards: usize,
    /// Slots per shard ring.
    pub queue_capacity: usize,
    /// Sample each shard's queue depth every this many routed items.
    pub sample_every: usize,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            shards: 2,
            queue_capacity: 256,
            sample_every: 64,
        }
    }
}

/// What one worker brings home.
struct ShardOutcome<P: Payload> {
    /// Data outputs per epoch (`boundaries + 1` entries; the last is the
    /// tail after the final stable).
    epochs: Vec<Vec<Element<P>>>,
    /// The shard's local stable point after each closed epoch.
    epoch_stables: Vec<Time>,
    stats: MergeStats,
    memory_bytes: usize,
    busy: Duration,
}

/// The re-sequenced result of a pipelined run.
pub struct PipelineRun<P: Payload> {
    /// The merged output stream, deterministically re-sequenced.
    pub output: Vec<Element<P>>,
    /// Router-level merge stats (inputs counted once, outputs as emitted).
    pub merge: MergeStats,
    /// Each shard's own stats (punctuation counted per shard).
    pub shard_stats: Vec<MergeStats>,
    /// Each shard's final operator memory estimate.
    pub shard_memory: Vec<usize>,
    /// Wall-clock busy time accumulated inside each worker.
    pub shard_busy: Vec<Duration>,
    /// Wall-clock time the router spent routing (including backpressure).
    pub router_busy: Duration,
    /// High-water ring depth observed per shard.
    pub max_depth: Vec<usize>,
    /// Ring-full retries the router spun through (wall-clock backpressure;
    /// nondeterministic across schedules, so a metric, never a trace
    /// event).
    pub router_stalls: u64,
    /// Epochs whose minimum shard stable failed to advance the output
    /// watermark — re-sequencing stalls where one shard held the
    /// aggregate back.
    pub epoch_stalls: u64,
    /// Stable epochs closed during the run.
    pub epochs: usize,
    /// End-to-end wall-clock time of the run.
    pub wall: Duration,
    /// The aggregate output stable point.
    pub max_stable: Time,
}

impl<P: Payload> PipelineRun<P> {
    /// Fold this run's wall-clock facts into the live telemetry plane.
    ///
    /// These are exactly the signals that must *not* be trace events —
    /// stall counts and busy times vary across thread schedules, and the
    /// trace is required to be byte-identical regardless of scheduling.
    pub fn export_metrics(&self, registry: &lmerge_obs::MetricsRegistry) {
        registry
            .counter(
                "lmerge_router_stalls_total",
                "Full-ring retries the router spun through (backpressure).",
                &[],
            )
            .add(self.router_stalls);
        registry
            .counter(
                "lmerge_epoch_stalls_total",
                "Epochs where a trailing shard kept the output watermark from advancing.",
                &[],
            )
            .add(self.epoch_stalls);
        registry
            .gauge(
                "lmerge_router_busy_ms",
                "Wall-clock ms the router spent routing (including backpressure).",
                &[],
            )
            .set(self.router_busy.as_millis() as i64);
        for (s, depth) in self.max_depth.iter().enumerate() {
            let n = s.to_string();
            registry
                .gauge(
                    "lmerge_shard_queue_max_depth",
                    "High-water ring depth observed per shard.",
                    &[("shard", &n)],
                )
                .set(*depth as i64);
            registry
                .gauge(
                    "lmerge_shard_busy_ms",
                    "Wall-clock ms of merge work accumulated inside each shard worker.",
                    &[("shard", &n)],
                )
                .set(self.shard_busy[s].as_millis() as i64);
        }
    }
}

/// Spin-push with a yield: on a box with fewer cores than workers the
/// consumer can only drain while we're off-CPU, so busy-spinning would
/// serialize at scheduler-quantum granularity. Returns the number of
/// full-ring retries, the router's backpressure signal.
fn push_or_yield<T: Send>(tx: &mut Producer<T>, mut value: T) -> u64 {
    let mut stalls = 0;
    while let Err(back) = tx.push(value) {
        value = back;
        stalls += 1;
        std::thread::yield_now();
    }
    stalls
}

/// Run `feed` through `K` shard workers and re-sequence the output.
///
/// `factory` is called once *inside* each worker thread to build that
/// shard's inner merge (so the operator never crosses a thread boundary);
/// every inner merge must be configured for the same number of inputs.
pub fn run_pipeline<P: Payload, S: TraceSink>(
    factory: impl Fn() -> Box<dyn LogicalMerge<P>> + Sync,
    feed: &[PipeItem<P>],
    config: PipelineConfig,
    trace: &mut S,
) -> PipelineRun<P> {
    let k = config.shards.max(1);
    let start = Instant::now();

    let mut producers: Vec<Producer<Op<P>>> = Vec::with_capacity(k);
    let mut consumers = Vec::with_capacity(k);
    for _ in 0..k {
        let (tx, rx) = spsc::ring(config.queue_capacity.max(1));
        producers.push(tx);
        consumers.push(rx);
    }

    let mut max_depth = vec![0usize; k];
    let mut boundaries = 0usize;
    let mut router_stalls = 0u64;

    let (outcomes, router_busy): (Vec<ShardOutcome<P>>, Duration) = std::thread::scope(|scope| {
        let handles: Vec<_> = consumers
            .into_iter()
            .map(|mut rx| {
                let factory = &factory;
                scope.spawn(move || {
                    let mut merge = factory();
                    let mut busy = Duration::ZERO;
                    let mut out: Vec<Element<P>> = Vec::new();
                    let mut cur: Vec<Element<P>> = Vec::new();
                    let mut epochs: Vec<Vec<Element<P>>> = Vec::new();
                    let mut epoch_stables: Vec<Time> = Vec::new();
                    loop {
                        let Some(op) = rx.pop() else {
                            std::thread::yield_now();
                            continue;
                        };
                        let t0 = Instant::now();
                        match op {
                            Op::Elem(input, e) => {
                                let boundary = e.is_stable();
                                merge.push(input, &e, &mut out);
                                // Local stables are watermark bookkeeping,
                                // not output: the aggregator re-derives the
                                // output stable point across shards.
                                cur.extend(out.drain(..).filter(|o| !o.is_stable()));
                                if boundary {
                                    epochs.push(std::mem::take(&mut cur));
                                    epoch_stables.push(merge.max_stable());
                                }
                            }
                            Op::Detach(id) => merge.detach(id),
                            Op::Attach(t) => {
                                merge.attach(t);
                            }
                            Op::Close => break,
                        }
                        busy += t0.elapsed();
                    }
                    epochs.push(cur); // tail after the last stable
                    ShardOutcome {
                        epochs,
                        epoch_stables,
                        stats: merge.stats(),
                        memory_bytes: merge.memory_bytes(),
                        busy,
                    }
                })
            })
            .collect();

        // ---- the router ----
        let r0 = Instant::now();
        for (i, item) in feed.iter().enumerate() {
            match item {
                PipeItem::Deliver(input, e) => match e.key() {
                    Some((vs, payload)) => {
                        let s = lmerge_core::shard_of(vs, payload, k);
                        router_stalls +=
                            push_or_yield(&mut producers[s], Op::Elem(*input, e.clone()));
                        max_depth[s] = max_depth[s].max(producers[s].len());
                    }
                    None => {
                        boundaries += 1;
                        for tx in producers.iter_mut() {
                            router_stalls += push_or_yield(tx, Op::Elem(*input, e.clone()));
                        }
                    }
                },
                PipeItem::Detach(id) => {
                    for tx in producers.iter_mut() {
                        router_stalls += push_or_yield(tx, Op::Detach(*id));
                    }
                }
                PipeItem::Attach(t) => {
                    for tx in producers.iter_mut() {
                        router_stalls += push_or_yield(tx, Op::Attach(*t));
                    }
                }
            }
            if trace.enabled() && (i + 1) % config.sample_every.max(1) == 0 {
                for (s, tx) in producers.iter().enumerate() {
                    trace.record(TraceEvent::ShardQueueSampled {
                        at: VTime((i + 1) as u64),
                        shard: s as u32,
                        depth: tx.len() as u32,
                        capacity: tx.capacity() as u32,
                    });
                }
            }
        }
        for tx in producers.iter_mut() {
            router_stalls += push_or_yield(tx, Op::Close);
        }
        let router_busy = r0.elapsed();
        drop(producers);

        let outcomes = handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect();
        (outcomes, router_busy)
    });

    // ---- the low-watermark aggregator ----
    let mut output = Vec::new();
    let mut watermark = Time::MIN;
    let mut shard_hw = vec![Time::MIN; k];
    let mut stables_out = 0u64;
    let mut epoch_stalls = 0u64;
    for e in 0..boundaries {
        for oc in &outcomes {
            output.extend_from_slice(&oc.epochs[e]);
        }
        let mut min_stable = Time::INFINITY;
        for (s, oc) in outcomes.iter().enumerate() {
            let st = oc.epoch_stables[e];
            min_stable = min_stable.min(st);
            if trace.enabled() && st > shard_hw[s] {
                shard_hw[s] = st;
                trace.record(TraceEvent::StablePointAdvanced {
                    at: VTime((e + 1) as u64),
                    scope: StableScope::Shard(s as u32),
                    stable: st,
                });
            }
        }
        if min_stable > watermark {
            watermark = min_stable;
            stables_out += 1;
            output.push(Element::stable(watermark));
            if trace.enabled() {
                trace.record(TraceEvent::StablePointAdvanced {
                    at: VTime((e + 1) as u64),
                    scope: StableScope::Output,
                    stable: watermark,
                });
            }
        } else {
            epoch_stalls += 1;
        }
    }
    for oc in &outcomes {
        output.extend_from_slice(&oc.epochs[boundaries]);
    }

    // Router-level stats: data inputs sum over shards (each data element
    // reached exactly one); punctuation was broadcast, so any single
    // shard's count is the router-level count.
    let mut merge = MergeStats::default();
    for oc in &outcomes {
        merge.inserts_in += oc.stats.inserts_in;
        merge.adjusts_in += oc.stats.adjusts_in;
        merge.inserts_out += oc.stats.inserts_out;
        merge.adjusts_out += oc.stats.adjusts_out;
        merge.dropped += oc.stats.dropped;
    }
    merge.stables_in = outcomes[0].stats.stables_in;
    merge.stables_out = stables_out;

    PipelineRun {
        output,
        merge,
        shard_stats: outcomes.iter().map(|o| o.stats).collect(),
        shard_memory: outcomes.iter().map(|o| o.memory_bytes).collect(),
        shard_busy: outcomes.iter().map(|o| o.busy).collect(),
        router_busy,
        max_depth,
        router_stalls,
        epoch_stalls,
        epochs: boundaries,
        wall: start.elapsed(),
        max_stable: watermark,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_core::{new_for_level, MergePolicy, ShardConfig, ShardedLMerge};
    use lmerge_obs::{NullSink, Tracer};
    use lmerge_properties::RLevel;

    type E = Element<&'static str>;

    fn feed() -> Vec<PipeItem<&'static str>> {
        let mut f = Vec::new();
        for (input, e) in [
            (0u32, E::insert("a", 1, 5)),
            (1u32, E::insert("a", 1, 5)),
            (0, E::insert("b", 2, 9)),
            (0, E::stable(3)),
            (1, E::insert("b", 2, 9)),
            (1, E::stable(3)),
            (0, E::insert("c", 4, 8)),
            (1, E::insert("c", 4, 8)),
            (0, E::stable(Time::INFINITY)),
            (1, E::stable(Time::INFINITY)),
        ] {
            f.push(PipeItem::Deliver(StreamId(input), e));
        }
        f
    }

    fn factory() -> Box<dyn LogicalMerge<&'static str>> {
        new_for_level(RLevel::R3, 2, MergePolicy::paper_default())
    }

    #[test]
    fn pipelined_run_is_deterministic() {
        let cfg = PipelineConfig {
            shards: 4,
            queue_capacity: 8,
            sample_every: 2,
        };
        let a = run_pipeline(factory, &feed(), cfg, &mut NullSink);
        let b = run_pipeline(factory, &feed(), cfg, &mut NullSink);
        assert_eq!(
            format!("{:?}", a.output),
            format!("{:?}", b.output),
            "byte-identical output regardless of scheduling"
        );
        assert_eq!(a.merge, b.merge);
        assert_eq!(a.max_stable, Time::INFINITY);
        assert_eq!(a.epochs, 4);
    }

    #[test]
    fn pipeline_matches_the_synchronous_sharded_wrapper() {
        let cfg = PipelineConfig {
            shards: 4,
            queue_capacity: 8,
            sample_every: 64,
        };
        let piped = run_pipeline(factory, &feed(), cfg, &mut NullSink);

        let mut sync = ShardedLMerge::from_factory(ShardConfig::with_shards(4), 2, factory);
        let mut sync_out = Vec::new();
        for item in feed() {
            let PipeItem::Deliver(input, e) = item else {
                unreachable!()
            };
            sync.push(input, &e, &mut sync_out);
        }
        assert_eq!(
            format!("{:?}", piped.output),
            format!("{sync_out:?}"),
            "threaded pipeline replays the synchronous wrapper exactly"
        );
        assert_eq!(piped.max_stable, sync.max_stable());
        let ss = sync.stats();
        assert_eq!(piped.merge.inserts_out, ss.inserts_out);
        assert_eq!(piped.merge.stables_out, ss.stables_out);
        assert_eq!(piped.merge.dropped, ss.dropped);
    }

    #[test]
    fn detach_is_applied_at_the_router_in_feed_order() {
        let mut f = feed();
        // Detach input 1 right before its copy of "c": that insert must be
        // ignored by every shard, exactly as in a sequential run.
        f.insert(7, PipeItem::Detach(StreamId(1)));
        let cfg = PipelineConfig {
            shards: 3,
            queue_capacity: 4,
            sample_every: 64,
        };
        let piped = run_pipeline(factory, &f, cfg, &mut NullSink);
        // Sequential oracle.
        let mut seq = factory();
        let mut seq_out = Vec::new();
        for item in &f {
            match item {
                PipeItem::Deliver(input, e) => seq.push(*input, e, &mut seq_out),
                PipeItem::Detach(id) => seq.detach(*id),
                PipeItem::Attach(t) => {
                    seq.attach(*t);
                }
            }
        }
        let fp = |v: &[E]| {
            let mut d: Vec<String> = v.iter().map(|e| format!("{e:?}")).collect();
            d.sort();
            d
        };
        assert_eq!(fp(&piped.output), fp(&seq_out));
        assert_eq!(piped.max_stable, seq.max_stable());
    }

    #[test]
    fn tracing_surfaces_queue_depth_and_shard_stables() {
        let cfg = PipelineConfig {
            shards: 2,
            queue_capacity: 4,
            sample_every: 3,
        };
        let mut tracer = Tracer::new();
        let run = run_pipeline(factory, &feed(), cfg, &mut tracer);
        assert!(tracer
            .events()
            .any(|e| matches!(e, TraceEvent::ShardQueueSampled { .. })));
        assert!(tracer.events().any(|e| matches!(
            e,
            TraceEvent::StablePointAdvanced {
                scope: StableScope::Shard(_),
                ..
            }
        )));
        // Gauges fold the shard story.
        assert_eq!(tracer.shards().watermark(), run.max_stable);
        assert_eq!(tracer.shards().shards().len(), 2);
        assert!(tracer.shards().shards().iter().all(|s| s.capacity == 4));
    }

    #[test]
    fn metered_run_feeds_live_series_without_changing_the_trace() {
        use lmerge_obs::{EngineMetrics, MeteredSink, MetricsRegistry};
        let cfg = PipelineConfig {
            shards: 2,
            queue_capacity: 4,
            sample_every: 2,
        };
        let mut plain = Tracer::new();
        let baseline = run_pipeline(factory, &feed(), cfg, &mut plain);

        let registry = MetricsRegistry::new();
        let mut metered = MeteredSink::new(Tracer::new(), EngineMetrics::new(&registry));
        let run = run_pipeline(factory, &feed(), cfg, &mut metered);
        run.export_metrics(&registry);

        // Trace purity: the metered run's trace is byte-identical.
        assert_eq!(plain.to_jsonl(), metered.inner().to_jsonl());
        assert_eq!(
            format!("{:?}", baseline.output),
            format!("{:?}", run.output)
        );

        // And the live series filled in.
        assert!(registry.max_value("lmerge_shard_queue_depth").is_some());
        // The +∞ sentinel is clamped by the metrics bridge so a gauge
        // (and the f64 exposition) can carry it.
        assert_eq!(
            registry.max_value("lmerge_output_stable"),
            Some((i64::MAX - 1) as f64)
        );
        assert!(registry.max_value("lmerge_epoch_stalls_total").is_some());
        assert!(registry.max_value("lmerge_router_stalls_total").is_some());
        assert!(registry.max_value("lmerge_shard_busy_ms").is_some());
    }

    #[test]
    fn untraced_equals_traced() {
        let cfg = PipelineConfig {
            shards: 2,
            queue_capacity: 4,
            sample_every: 2,
        };
        let plain = run_pipeline(factory, &feed(), cfg, &mut NullSink);
        let mut tracer = Tracer::new();
        let traced = run_pipeline(factory, &feed(), cfg, &mut tracer);
        assert_eq!(
            format!("{:?}", plain.output),
            format!("{:?}", traced.output)
        );
        assert_eq!(plain.merge, traced.merge);
    }
}
