//! Checkpoint capture and resume: the executor side of the durability
//! contract.
//!
//! A checkpoint is a consistent cut through the whole run — the merge
//! operator's logical state ([`MergeStateImage`]) *plus* the executor's
//! scheduling state ([`ExecutorImage`]). Either half alone is useless: the
//! merge image without the delivery cursor replays duplicates; the cursor
//! without the merge state replays against an empty index. [`RunImage`]
//! bundles both (and optional transport resume cursors for networked
//! inputs) so the durable store persists one atomic unit.
//!
//! The executor offers the cut to a [`CheckpointSink`] at the end of each
//! delivery iteration. The sink decides *when* to capture (`want`), *how*
//! to persist (`save` — a full snapshot or a delta is the store's
//! business), and *whether the run survives* (`save` may halt the run,
//! which is how the crash-recovery tests model a kill at an exact,
//! reproducible point). Like tracing and hooks, the default
//! [`NoCheckpoint`] is statically disabled and monomorphizes away.
//!
//! Resume is replay-based: [`ExecutorImage`] records how many batches each
//! query had produced (`pulls`) and which batch sat staged in the delivery
//! heap (`staged`), not the batches themselves. Queries are deterministic
//! functions of their sources, so `MergeRun::resumed` rebuilds the exact
//! pre-kill heap by re-pulling and discarding — the restored run's trace is
//! byte-identical to the tail of a run that never died.

use lmerge_core::MergeStateImage;
use lmerge_temporal::{Payload, Time, VTime};
use std::sync::{Arc, Mutex};

/// The executor's scheduling state at a checkpoint: everything `run` needs
/// to continue mid-stream, minus the batches themselves (replayed from the
/// queries' deterministic sources).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecutorImage {
    /// Virtual time at which the merge's core frees up.
    pub lmerge_ready: VTime,
    /// Batches delivered so far (drives memory-sample cadence).
    pub delivered: u64,
    /// Next heap sequence number (keeps tie-breaking identical on resume).
    pub seq: u64,
    /// Last feedback point propagated to the queries.
    pub last_feedback: Time,
    /// Per-input stable-point high-water marks (trace dedup state).
    pub input_stable_hw: Vec<Time>,
    /// Output stable-point high-water mark (trace dedup state).
    pub output_stable_hw: Time,
    /// Per-query count of successful `next_batch` pulls so far.
    pub pulls: Vec<u64>,
    /// Per-query staged batch: its heap key `(deliver_at, seq)`, or `None`
    /// if the query was drained.
    pub staged: Vec<Option<(VTime, u64)>>,
}

/// The egress/broadcast side of a cut: subscriber resume cursors plus the
/// retained tail of the wire-encoded output stream. Payload-agnostic by
/// design — the frames are already serialized bytes, so the engine can
/// carry them through a checkpoint without knowing the subscription
/// layer's types. Empty (`base_seq == next_seq`, no cursors) for runs
/// without subscribers; the executor carries it through untouched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EgressImage {
    /// Per-subscriber resume cursors — `(subscriber id, acked next seq)`.
    pub cursors: Vec<(u64, u64)>,
    /// Global output sequence of the first frame in `frames`.
    pub base_seq: u64,
    /// Global output sequence the broadcast publisher assigns next.
    pub next_seq: u64,
    /// The output stable point the broadcast buffer had reached.
    pub stable: Time,
    /// Retained wire-encoded `Data` frames covering `[base_seq, next_seq)`.
    pub frames: Vec<u8>,
}

impl Default for EgressImage {
    fn default() -> EgressImage {
        EgressImage {
            cursors: Vec::new(),
            base_seq: 0,
            next_seq: 0,
            stable: Time::MIN,
            frames: Vec::new(),
        }
    }
}

/// One consistent, restorable cut through a run.
#[derive(Clone, Debug)]
pub struct RunImage<P: Payload> {
    /// The merge operator's exported logical state.
    pub merge: MergeStateImage<P>,
    /// The executor's scheduling state.
    pub exec: ExecutorImage,
    /// Per-input transport resume cursors — for networked inputs, the
    /// ingest session's `(next_seq, acked_stable)` pair so a restarted
    /// server can replay each session from the acked point. Empty for
    /// in-process runs; the executor carries it through untouched.
    pub cursors: Vec<(u64, i64)>,
    /// The output-side mirror of `cursors`: subscriber resume state and
    /// the undelivered egress tail.
    pub egress: EgressImage,
}

/// What a [`CheckpointSink::save`] did with the offered image.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointSave {
    /// Checkpoint sequence number assigned by the sink (monotone per run;
    /// a resumed run's sink continues the killed run's numbering).
    pub seq: u64,
    /// Whether the image was persisted as a delta against the previous
    /// checkpoint rather than a full snapshot.
    pub delta: bool,
    /// Stop the run right here, without the completion postlude. This is
    /// how the recovery tests model a crash at a reproducible point: the
    /// trace simply ends, exactly as a killed process's would.
    pub halt: bool,
}

/// The executor's checkpointing boundary.
///
/// All methods have defaults adding up to "never checkpoint", so only
/// `enabled`, `want`, and `save` need overriding. `want` must be a pure
/// function of its arguments (plus the sink's own deterministic state):
/// the recovery conformance tests rely on the reference run and the
/// killed-and-resumed run offering identical cuts.
pub trait CheckpointSink<P: Payload> {
    /// Whether the executor should consult this sink at all.
    fn enabled(&self) -> bool {
        false
    }

    /// Should a checkpoint be captured now? Called at the end of a
    /// delivery iteration with the merge's current stable point and the
    /// total batches delivered.
    fn want(&mut self, stable: Time, delivered: u64) -> bool {
        let _ = (stable, delivered);
        false
    }

    /// Persist one image; returns what was done (and whether to halt).
    fn save(&mut self, image: RunImage<P>) -> CheckpointSave {
        let _ = image;
        CheckpointSave::default()
    }
}

/// The statically disabled sink: the executor's default.
pub struct NoCheckpoint;

impl<P: Payload> CheckpointSink<P> for NoCheckpoint {}

/// A shared mailbox carrying spill notifications from a
/// [`lmerge_core::SpillHandler`] (which runs deep inside `push_batch`,
/// with no notion of virtual time) out to the executor, which drains it
/// after each delivery and stamps the events with the merge's virtual
/// completion time. Cloning shares the mailbox.
#[derive(Clone, Debug, Default)]
pub struct SpillNotices(Arc<Mutex<Vec<(u32, u64)>>>);

impl SpillNotices {
    /// An empty mailbox.
    pub fn new() -> SpillNotices {
        SpillNotices::default()
    }

    /// Record that `entries` entries of `input`'s state were spilled.
    pub fn notify(&self, input: u32, entries: u64) {
        self.0.lock().unwrap().push((input, entries));
    }

    /// Take all pending notifications, oldest first.
    pub fn drain(&self) -> Vec<(u32, u64)> {
        std::mem::take(&mut self.0.lock().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_checkpoint_is_disabled_and_inert() {
        let mut c = NoCheckpoint;
        assert!(!CheckpointSink::<&'static str>::enabled(&c));
        assert!(!CheckpointSink::<&'static str>::want(&mut c, Time(5), 3));
    }

    #[test]
    fn spill_notices_drain_in_order() {
        let n = SpillNotices::new();
        let n2 = n.clone();
        n.notify(1, 10);
        n2.notify(0, 4);
        assert_eq!(n.drain(), vec![(1, 10), (0, 4)]);
        assert!(n2.drain().is_empty());
    }
}
