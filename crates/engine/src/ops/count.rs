//! Interval count aggregation with revisions.
//!
//! The paper's generated streams "have disorder but no adjust() elements.
//! Such elements are naturally produced during query processing, and hence
//! we use sub-queries over the stream-generator output in order to generate
//! them. A simple example of such a sub-query is aggregate (count) followed
//! by a lifetime modification." (Section VI-B)
//!
//! `IntervalCount` is that aggregate: for each group it maintains the count
//! of concurrently active events as a step function of application time and
//! emits one TDB event per *maximal constant-count interval* — payload
//! `(group, count)`, lifetime the interval.
//!
//! Emission follows the paper's property-inference story (Section IV-G):
//! an **in-order** input yields an insert-only output — a segment is
//! emitted only once it *closes* (its end falls at or before the highest
//! `Vs` seen, so no in-order event can split it again). **Late** events,
//! however, revise already-emitted segments, surfacing downstream as
//! `adjust` elements plus extra inserts: the revision-rich R3 stream class
//! the general LMerge algorithms exist for. The number of adjusts in the
//! output therefore tracks the disorder of the input (Figure 4).
//!
//! Because different physical presentations of the same logical input apply
//! deltas in different orders, the operator canonicalizes by *merging*
//! adjacent intervals whose counts become equal — guaranteeing that all
//! copies converge to the same output TDB (maximal intervals of the final
//! step function), which is what makes its outputs mutually consistent
//! LMerge inputs.

use crate::operator::Operator;
use lmerge_temporal::{Element, Time, Value};
use std::collections::HashMap;
use std::ops::Bound::Excluded;

/// Output payload for `(group, count)`: the group in `key`, the count
/// encoded in `body` so distinct counts are distinct payloads.
pub fn payload_for(group: u32, count: u64) -> Value {
    Value {
        key: group as i32,
        body: bytes::Bytes::copy_from_slice(&count.to_le_bytes()),
    }
}

/// One maximal constant-count interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Seg {
    end: Time,
    count: u64,
    /// Whether the downstream has seen this segment (as an insert).
    emitted: bool,
}

/// What the step function aggregates per group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggMode {
    /// Number of concurrently active events.
    Count,
    /// Sum of the active events' payload keys (a grouped SUM).
    SumKeys,
}

/// Grouped interval aggregate (group = `payload.key % groups`): a step
/// function of application time, one output event per maximal
/// constant-value interval.
pub struct IntervalCount {
    groups: u32,
    mode: AggMode,
    segs: HashMap<u32, std::collections::BTreeMap<Time, Seg>>,
    /// Per group: start of the first segment that may still be open or
    /// unemitted. The close-pass scans from here instead of from the
    /// beginning, keeping per-element work amortized O(1) even when
    /// punctuation (and thus purging) is rare.
    open_from: HashMap<u32, Time>,
    /// Highest `Vs` seen on the input: segments ending at or before it are
    /// closed (only *late* events can still revise them).
    max_vs: Time,
    stable: Time,
    /// Virtual CPU cost charged per data element.
    pub cost_per_element_us: u64,
}

impl IntervalCount {
    /// A count aggregate over `groups` groups (1 = a single global count).
    pub fn new(groups: u32) -> IntervalCount {
        IntervalCount::with_mode(groups, AggMode::Count)
    }

    /// A grouped SUM over payload keys (the "sum of readings per sensor
    /// group" flavour of the paper's grouped-aggregation scenarios).
    pub fn sum_of_keys(groups: u32) -> IntervalCount {
        IntervalCount::with_mode(groups, AggMode::SumKeys)
    }

    /// Construct with an explicit aggregation mode.
    pub fn with_mode(groups: u32, mode: AggMode) -> IntervalCount {
        assert!(groups > 0, "need at least one group");
        IntervalCount {
            groups,
            mode,
            segs: HashMap::new(),
            open_from: HashMap::new(),
            max_vs: Time::MIN,
            stable: Time::MIN,
            cost_per_element_us: 2,
        }
    }

    /// How much one event contributes to its group's step function.
    fn weight(&self, payload: &Value) -> i64 {
        match self.mode {
            AggMode::Count => 1,
            AggMode::SumKeys => i64::from(payload.key.max(0)),
        }
    }

    /// Total live intervals across groups (state size).
    pub fn live_segments(&self) -> usize {
        self.segs.values().map(|m| m.len()).sum()
    }

    /// Apply `delta` (+1/−1) to the count over `[lo, hi)` for `group`,
    /// emitting the element-level consequences for *emitted* segments and
    /// silently restructuring unemitted ones.
    fn apply_delta(
        &mut self,
        group: u32,
        lo: Time,
        hi: Time,
        delta: i64,
        out: &mut Vec<Element<Value>>,
    ) {
        if lo >= hi {
            return;
        }
        let prev_open = self.open_from.get(&group).copied().unwrap_or(Time::MIN);
        let segs = self.segs.entry(group).or_default();

        // Collect segments overlapping [lo, hi).
        let mut keys: Vec<Time> = Vec::new();
        if let Some((k, s)) = segs.range(..=lo).next_back() {
            if s.end > lo {
                keys.push(*k);
            }
        }
        keys.extend(segs.range((Excluded(lo), Excluded(hi))).map(|(k, _)| *k));

        let overlaps: Vec<(Time, Seg)> = keys
            .iter()
            .map(|k| (*k, segs.remove(k).expect("key just collected")))
            .collect();

        let mut boundaries: Vec<Time> = vec![lo, hi];
        let mut cursor = lo;
        for (s, seg) in &overlaps {
            let (s, e, c) = (*s, seg.end, seg.count);
            let olo = s.max(lo);
            let ohi = e.min(hi);
            // Gap before this segment: new coverage appears only on a
            // positive delta.
            if cursor < olo && delta > 0 {
                segs.insert(
                    cursor,
                    Seg {
                        end: olo,
                        count: delta as u64,
                        emitted: false,
                    },
                );
                boundaries.push(cursor);
                boundaries.push(olo);
            }
            cursor = ohi;
            // Transform the existing segment (event ⟨(group,c), s, e⟩ if
            // it was already emitted).
            if olo > s {
                // Head survives; the original event shrinks to it.
                if seg.emitted {
                    out.push(Element::adjust(payload_for(group, c), s, e, olo));
                }
                segs.insert(
                    s,
                    Seg {
                        end: olo,
                        count: c,
                        emitted: seg.emitted,
                    },
                );
            } else if seg.emitted {
                // Whole front affected: the original event disappears.
                out.push(Element::adjust(payload_for(group, c), s, e, s));
            }
            let nc = (c as i64 + delta).max(0) as u64;
            if nc > 0 {
                segs.insert(
                    olo,
                    Seg {
                        end: ohi,
                        count: nc,
                        emitted: false,
                    },
                );
            }
            if ohi < e {
                segs.insert(
                    ohi,
                    Seg {
                        end: e,
                        count: c,
                        emitted: false,
                    },
                );
            }
            boundaries.extend([s, olo, ohi, e]);
        }
        // Trailing gap.
        if cursor < hi && delta > 0 {
            segs.insert(
                cursor,
                Seg {
                    end: hi,
                    count: delta as u64,
                    emitted: false,
                },
            );
            boundaries.push(cursor);
        }

        // Canonicalize: merge equal-count neighbours at touched boundaries.
        boundaries.sort_unstable();
        boundaries.dedup();
        for b in boundaries {
            let Some((left_start, left)) = segs.range(..b).next_back().map(|(k, s)| (*k, *s))
            else {
                continue;
            };
            if left.end != b {
                continue;
            }
            let Some(right) = segs.get(&b).copied() else {
                continue;
            };
            if left.count != right.count {
                continue;
            }
            // Absorb the right segment into the left one.
            segs.remove(&b);
            if right.emitted {
                out.push(Element::adjust(
                    payload_for(group, right.count),
                    b,
                    right.end,
                    b,
                ));
            }
            if left.emitted {
                out.push(Element::adjust(
                    payload_for(group, left.count),
                    left_start,
                    b,
                    right.end,
                ));
            }
            segs.insert(
                left_start,
                Seg {
                    end: right.end,
                    count: left.count,
                    emitted: left.emitted,
                },
            );
        }
        // Emit segments of this group that are now closed. Unemitted or
        // open segments only exist at or after the cursor, except where
        // this delta just touched — scan from the earlier of the two.
        let max_vs = self.max_vs;
        let scan_from = prev_open.min(lo);
        let mut new_open: Option<Time> = None;
        for (s, seg) in segs.range_mut(scan_from..) {
            if seg.end > max_vs {
                new_open = Some(*s);
                break;
            }
            if !seg.emitted {
                seg.emitted = true;
                out.push(Element::insert(payload_for(group, seg.count), *s, seg.end));
            }
        }
        self.open_from
            .insert(group, new_open.unwrap_or(Time::INFINITY));
    }

    fn group_of(&self, v: &Value) -> u32 {
        (v.key.rem_euclid(self.groups as i32)) as u32
    }

    /// Emit everything still pending with `start < t` (a `stable(t)` is
    /// about to settle those keys), then drop intervals that can never
    /// change again (`end < t`).
    fn flush_and_purge(&mut self, t: Time, out: &mut Vec<Element<Value>>) {
        let mut emitted: Vec<Element<Value>> = Vec::new();
        for (g, segs) in self.segs.iter_mut() {
            for (s, seg) in segs.range_mut(..t) {
                if !seg.emitted {
                    seg.emitted = true;
                    emitted.push(Element::insert(payload_for(*g, seg.count), *s, seg.end));
                }
            }
            // Segments are disjoint and sorted, so ends are increasing: the
            // frozen ones form a prefix.
            while let Some((k, s)) = segs.first_key_value() {
                if s.end < t {
                    let k = *k;
                    segs.remove(&k);
                } else {
                    break;
                }
            }
        }
        // Deterministic output order regardless of hash-map iteration.
        emitted.sort_by(|a, b| match (a, b) {
            (Element::Insert(x), Element::Insert(y)) => (x.vs, &x.payload).cmp(&(y.vs, &y.payload)),
            _ => std::cmp::Ordering::Equal,
        });
        out.extend(emitted);
        self.segs.retain(|_, m| !m.is_empty());
    }
}

impl Operator<Value> for IntervalCount {
    fn on_element(&mut self, element: &Element<Value>, out: &mut Vec<Element<Value>>) {
        match element {
            Element::Insert(e) => {
                let g = self.group_of(&e.payload);
                let w = self.weight(&e.payload);
                self.max_vs = self.max_vs.max(e.vs);
                self.apply_delta(g, e.vs, e.ve, w, out);
            }
            Element::Adjust {
                payload,
                vs,
                vold,
                ve,
            } => {
                let g = self.group_of(payload);
                let w = self.weight(payload);
                if ve > vold {
                    self.apply_delta(g, *vold, *ve, w, out);
                } else {
                    // Shrink (or removal when ve == vs): the aggregate
                    // drops on the abandoned suffix.
                    self.apply_delta(g, (*ve).max(*vs), *vold, -w, out);
                }
            }
            Element::Stable(t) => {
                if *t > self.stable {
                    self.stable = *t;
                    self.flush_and_purge(*t, out);
                    out.push(Element::Stable(*t));
                }
            }
        }
    }

    fn cost_us(&self, element: &Element<Value>) -> u64 {
        if element.is_stable() {
            1
        } else {
            self.cost_per_element_us
        }
    }

    fn on_feedback(&mut self, t: Time) {
        // Elements before t are no longer of interest: purge frozen
        // segments without emitting anything.
        for segs in self.segs.values_mut() {
            while let Some((k, s)) = segs.first_key_value() {
                if s.end < t && s.emitted {
                    let k = *k;
                    segs.remove(&k);
                } else {
                    break;
                }
            }
        }
        self.segs.retain(|_, m| !m.is_empty());
    }

    fn memory_bytes(&self) -> usize {
        const ENTRY: usize = std::mem::size_of::<(Time, Seg)>() + 48;
        self.live_segments() * ENTRY + self.segs.len() * 64
    }

    fn name(&self) -> &'static str {
        "interval-count"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::reconstitute::tdb_of;
    use lmerge_temporal::Tdb;

    fn v(key: i32) -> Value {
        Value::bare(key)
    }

    fn run(input: &[Element<Value>]) -> (Vec<Element<Value>>, Tdb<Value>) {
        let mut op = IntervalCount::new(1);
        let mut out = Vec::new();
        for e in input {
            op.on_element(e, &mut out);
        }
        let tdb = tdb_of(&out).expect("count output must be well formed");
        (out, tdb)
    }

    /// Close every pending segment by finalizing the stream.
    fn finalized(mut input: Vec<Element<Value>>) -> Vec<Element<Value>> {
        input.push(Element::stable(Time::INFINITY));
        input
    }

    #[test]
    fn single_event_single_interval() {
        let (_, tdb) = run(&finalized(vec![Element::insert(v(1), 10, 20)]));
        assert_eq!(tdb.count(&payload_for(0, 1), Time(10), Time(20)), 1);
        assert_eq!(tdb.len(), 1);
    }

    #[test]
    fn overlapping_events_step_function() {
        // [10,30) and [20,40): counts 1,2,1 over [10,20),[20,30),[30,40).
        let (_, tdb) = run(&finalized(vec![
            Element::insert(v(1), 10, 30),
            Element::insert(v(2), 20, 40),
        ]));
        assert_eq!(tdb.count(&payload_for(0, 1), Time(10), Time(20)), 1);
        assert_eq!(tdb.count(&payload_for(0, 2), Time(20), Time(30)), 1);
        assert_eq!(tdb.count(&payload_for(0, 1), Time(30), Time(40)), 1);
        assert_eq!(tdb.len(), 3);
    }

    #[test]
    fn in_order_input_produces_no_adjusts() {
        // Section IV-G scenario: ordered stream into an aggregate is
        // revision-free — segments are emitted only once closed.
        let mut input = Vec::new();
        for i in 0..100i64 {
            input.push(Element::insert(v(i as i32), i * 10, i * 10 + 25));
        }
        let (out, _) = run(&finalized(input));
        assert!(
            out.iter().all(|e| !e.is_adjust()),
            "ordered input must not generate adjusts"
        );
    }

    #[test]
    fn late_event_produces_adjusts() {
        let mut input = vec![
            Element::insert(v(1), 10, 35),
            Element::insert(v(2), 40, 65),
            Element::insert(v(3), 70, 95), // closes the earlier segments
        ];
        input.push(Element::insert(v(4), 20, 50)); // late: splits closed ones
        let (out, tdb) = run(&finalized(input));
        assert!(
            out.iter().any(|e| e.is_adjust()),
            "late event must surface as revisions: {out:?}"
        );
        // Counts: [10,20)=1 [20,35)=2 [35,40)=1 [40,50)=2 [50,65)=1 [70,95)=1.
        assert_eq!(tdb.count(&payload_for(0, 2), Time(20), Time(35)), 1);
        assert_eq!(tdb.count(&payload_for(0, 2), Time(40), Time(50)), 1);
    }

    #[test]
    fn adjacent_equal_counts_merge() {
        // Two touching events: counts are 1 on [10,20) and 1 on [20,30) —
        // the canonical output is ONE event [10,30).
        let (_, tdb) = run(&finalized(vec![
            Element::insert(v(1), 10, 20),
            Element::insert(v(2), 20, 30),
        ]));
        assert_eq!(tdb.count(&payload_for(0, 1), Time(10), Time(30)), 1);
        assert_eq!(tdb.len(), 1);
    }

    #[test]
    fn revision_restores_canonical_form() {
        // An event appears and is then cancelled: the output TDB must be
        // identical to never having seen it (merge-back after split).
        let (_, want) = run(&finalized(vec![Element::insert(v(1), 10, 40)]));
        let (_, got) = run(&finalized(vec![
            Element::insert(v(1), 10, 40),
            Element::insert(v(2), 20, 30),     // splits [10,40)
            Element::adjust(v(2), 20, 30, 20), // cancelled again
        ]));
        assert_eq!(got, want, "cancellation must merge intervals back");
    }

    #[test]
    fn divergent_presentations_converge() {
        // Same logical input, different physical order / adjust paths.
        let a = finalized(vec![
            Element::insert(v(1), 10, 30),
            Element::insert(v(2), 20, 40),
            Element::stable(50),
        ]);
        let b = finalized(vec![
            Element::insert(v(2), 20, 25),
            Element::adjust(v(2), 20, 25, 40),
            Element::insert(v(1), 10, 30),
            Element::stable(50),
        ]);
        let (_, ta) = run(&a);
        let (_, tb) = run(&b);
        assert_eq!(ta, tb, "count over equivalent inputs must be equivalent");
    }

    #[test]
    fn grouping_keeps_groups_independent() {
        let mut op = IntervalCount::new(2);
        let mut out = Vec::new();
        op.on_element(&Element::insert(v(0), 10, 20), &mut out); // group 0
        op.on_element(&Element::insert(v(1), 10, 20), &mut out); // group 1
        op.on_element(&Element::stable(Time::INFINITY), &mut out);
        let tdb = tdb_of(&out).unwrap();
        assert_eq!(tdb.count(&payload_for(0, 1), Time(10), Time(20)), 1);
        assert_eq!(tdb.count(&payload_for(1, 1), Time(10), Time(20)), 1);
    }

    #[test]
    fn stable_flushes_and_purges() {
        let mut op = IntervalCount::new(1);
        let mut out = Vec::new();
        op.on_element(&Element::insert(v(1), 10, 20), &mut out);
        op.on_element(&Element::insert(v(2), 100, 120), &mut out);
        op.on_element(&Element::stable(50), &mut out);
        // The first interval was emitted (flush) and purged; the second is
        // still open.
        assert_eq!(op.live_segments(), 1);
        let tdb = tdb_of(&out).unwrap();
        assert_eq!(tdb.count(&payload_for(0, 1), Time(10), Time(20)), 1);
        assert!(out.last().unwrap().is_stable());
    }

    #[test]
    fn feedback_purges_emitted_frozen_segments() {
        let mut op = IntervalCount::new(1);
        let mut out = Vec::new();
        op.on_element(&Element::insert(v(1), 10, 20), &mut out);
        op.on_element(&Element::insert(v(2), 100, 120), &mut out); // closes it
        assert_eq!(op.live_segments(), 2);
        op.on_feedback(Time(50));
        assert_eq!(op.live_segments(), 1, "emitted+dead segment dropped");
    }

    #[test]
    fn output_is_valid_under_punctuation() {
        // Interleave data and punctuation; the output must validate.
        let mut op = IntervalCount::new(4);
        let mut out = Vec::new();
        for i in 0..200i64 {
            op.on_element(&Element::insert(v((i % 7) as i32), i, i + 25), &mut out);
            if i % 10 == 9 {
                // Punctuation lags events by a window, as generators do.
                op.on_element(&Element::stable(i - 30), &mut out);
            }
        }
        op.on_element(&Element::stable(Time::INFINITY), &mut out);
        assert!(tdb_of(&out).is_ok());
    }
}

#[cfg(test)]
mod sum_tests {
    use super::*;
    use lmerge_temporal::reconstitute::tdb_of;

    fn v(key: i32) -> Value {
        Value::bare(key)
    }

    #[test]
    fn sum_tracks_weighted_step_function() {
        let mut op = IntervalCount::sum_of_keys(1);
        let mut out = Vec::new();
        // Keys 5 and 7 overlap over [20, 30): sum is 5, 12, 7.
        op.on_element(&Element::insert(v(5), 10, 30), &mut out);
        op.on_element(&Element::insert(v(7), 20, 40), &mut out);
        op.on_element(&Element::stable(Time::INFINITY), &mut out);
        let tdb = tdb_of(&out).unwrap();
        assert_eq!(tdb.count(&payload_for(0, 5), Time(10), Time(20)), 1);
        assert_eq!(tdb.count(&payload_for(0, 12), Time(20), Time(30)), 1);
        assert_eq!(tdb.count(&payload_for(0, 7), Time(30), Time(40)), 1);
    }

    #[test]
    fn sum_revision_is_reversible() {
        let run = |elems: &[Element<Value>]| {
            let mut op = IntervalCount::sum_of_keys(1);
            let mut out = Vec::new();
            for e in elems {
                op.on_element(e, &mut out);
            }
            op.on_element(&Element::stable(Time::INFINITY), &mut out);
            tdb_of(&out).unwrap()
        };
        let plain = run(&[Element::insert(v(5), 10, 40)]);
        let with_revision = run(&[
            Element::insert(v(5), 10, 40),
            Element::insert(v(9), 20, 30),
            Element::adjust(v(9), 20, 30, 20), // cancelled
        ]);
        assert_eq!(plain, with_revision);
    }

    #[test]
    fn zero_weight_events_are_invisible_to_sum() {
        let mut op = IntervalCount::sum_of_keys(1);
        let mut out = Vec::new();
        op.on_element(&Element::insert(v(0), 10, 30), &mut out);
        op.on_element(&Element::stable(Time::INFINITY), &mut out);
        assert!(tdb_of(&out).unwrap().is_empty(), "sum of zero is no event");
    }

    #[test]
    fn sum_outputs_merge_under_lmr3() {
        use lmerge_temporal::StreamId;
        // Two divergent presentations of the same input through SUM.
        let a = vec![
            Element::insert(v(5), 10, 30),
            Element::insert(v(7), 20, 40),
            Element::stable(Time::INFINITY),
        ];
        let b = vec![
            Element::insert(v(7), 20, 25),
            Element::adjust(v(7), 20, 25, 40),
            Element::insert(v(5), 10, 30),
            Element::stable(Time::INFINITY),
        ];
        let run = |elems: &[Element<Value>]| {
            let mut op = IntervalCount::sum_of_keys(1);
            let mut out = Vec::new();
            for e in elems {
                op.on_element(e, &mut out);
            }
            out
        };
        let (sa, sb) = (run(&a), run(&b));
        let want = tdb_of(&sa).unwrap();
        assert_eq!(tdb_of(&sb).unwrap(), want);
        let mut lm = lmerge_core::LMergeR3::new(2);
        let mut merged = Vec::new();
        for e in &sa {
            lmerge_core::LogicalMerge::push(&mut lm, StreamId(0), e, &mut merged);
        }
        for e in &sb {
            lmerge_core::LogicalMerge::push(&mut lm, StreamId(1), e, &mut merged);
        }
        assert_eq!(tdb_of(&merged).unwrap(), want);
    }
}
