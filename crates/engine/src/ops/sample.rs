//! Deterministic event sampling.
//!
//! The paper's Section I motivates pushing elements through the query
//! unordered because "a CQ often contains data-reducing operators, such as
//! aggregation and sampling". `Sample` is the sampling half: it keeps an
//! event iff a hash of its identity falls under the sampling rate.
//!
//! Determinism is what makes it LMerge-friendly: the decision depends only
//! on the event's `(Vs, Payload)` identity — never on arrival order — so
//! every physical copy of a stream samples the *same* events and the
//! outputs remain mutually consistent. All of an event's revisions follow
//! its insert's fate.

use crate::operator::Operator;
use lmerge_temporal::{Element, Payload, Time};
use std::hash::{Hash, Hasher};

/// Keeps a deterministic `keep_per_1024`/1024 fraction of events.
pub struct Sample<P> {
    keep_per_1024: u32,
    seed: u64,
    _p: std::marker::PhantomData<fn() -> P>,
}

impl<P: Payload> Sample<P> {
    /// Keep roughly `rate` (0.0–1.0) of events, decided per event identity.
    pub fn new(rate: f64, seed: u64) -> Sample<P> {
        assert!((0.0..=1.0).contains(&rate), "rate must be a fraction");
        Sample {
            keep_per_1024: (rate * 1024.0).round() as u32,
            seed,
            _p: std::marker::PhantomData,
        }
    }

    fn keeps(&self, vs: Time, payload: &P) -> bool {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        vs.0.hash(&mut h);
        payload.hash(&mut h);
        (h.finish() % 1024) < u64::from(self.keep_per_1024)
    }
}

impl<P: Payload> Operator<P> for Sample<P> {
    fn on_element(&mut self, element: &Element<P>, out: &mut Vec<Element<P>>) {
        match element {
            Element::Insert(e) => {
                if self.keeps(e.vs, &e.payload) {
                    out.push(element.clone());
                }
            }
            Element::Adjust { payload, vs, .. } => {
                // Revisions follow their event's fate.
                if self.keeps(*vs, payload) {
                    out.push(element.clone());
                }
            }
            Element::Stable(_) => out.push(element.clone()),
        }
    }

    fn name(&self) -> &'static str {
        "sample"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::reconstitute::tdb_of;
    use lmerge_temporal::Value;

    fn run(rate: f64, elems: &[Element<Value>]) -> Vec<Element<Value>> {
        let mut s = Sample::new(rate, 7);
        let mut out = Vec::new();
        let mut buf = Vec::new();
        for e in elems {
            buf.clear();
            s.on_element(e, &mut buf);
            out.append(&mut buf);
        }
        out
    }

    fn events(n: usize) -> Vec<Element<Value>> {
        (0..n)
            .map(|i| Element::insert(Value::synthetic(i as i32, 8), i as i64, i as i64 + 10))
            .collect()
    }

    #[test]
    fn samples_roughly_the_requested_fraction() {
        let out = run(0.25, &events(4000));
        let kept = out.iter().filter(|e| e.is_insert()).count();
        assert!((800..=1200).contains(&kept), "~25% of 4000, got {kept}");
    }

    #[test]
    fn rate_extremes() {
        assert_eq!(run(0.0, &events(100)).len(), 0);
        assert_eq!(run(1.0, &events(100)).len(), 100);
    }

    #[test]
    fn decision_is_order_independent() {
        let fwd = events(500);
        let mut rev = fwd.clone();
        rev.reverse();
        let kept = |out: &[Element<Value>]| {
            let mut v: Vec<_> = out
                .iter()
                .filter_map(|e| e.key().map(|(vs, p)| (vs, p.clone())))
                .collect();
            v.sort();
            v
        };
        assert_eq!(kept(&run(0.5, &fwd)), kept(&run(0.5, &rev)));
    }

    #[test]
    fn revisions_follow_their_event() {
        let mut elems = events(200);
        // Adjust every event; kept events keep their adjusts, dropped
        // events drop theirs — the output must reconstitute cleanly.
        let adjusts: Vec<Element<Value>> = elems
            .iter()
            .filter_map(|e| match e {
                Element::Insert(ev) => Some(Element::adjust(
                    ev.payload.clone(),
                    ev.vs,
                    ev.ve,
                    ev.ve.saturating_add(5),
                )),
                _ => None,
            })
            .collect();
        elems.extend(adjusts);
        elems.push(Element::stable(Time::INFINITY));
        let out = run(0.5, &elems);
        let tdb = tdb_of(&out).expect("sampled stream stays well formed");
        let inserts = out.iter().filter(|e| e.is_insert()).count();
        let adjusts = out.iter().filter(|e| e.is_adjust()).count();
        assert_eq!(inserts, adjusts, "each kept event kept its revision");
        assert_eq!(tdb.len(), inserts);
    }

    #[test]
    fn punctuation_always_passes() {
        let out = run(0.0, &[Element::<Value>::stable(42)]);
        assert_eq!(out, vec![Element::stable(42)]);
    }
}
