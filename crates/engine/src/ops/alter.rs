//! Lifetime alteration: clip every event's lifetime to a maximum duration.
//!
//! This is the "lifetime modification" the paper composes with the count
//! aggregate to build adjust-generating sub-queries. Clipping is a
//! deterministic function of `(Vs, Ve)`, so it preserves ordering,
//! insert-only-ness, and `(Vs, Payload)` keys, and — as shown below — it
//! never violates `stable` constraints on its output.

use crate::operator::Operator;
use lmerge_temporal::{Element, Payload, Time};

/// Clips `Ve` to `Vs + max_duration`.
pub struct AlterLifetime {
    max_duration: i64,
}

impl AlterLifetime {
    /// Clip lifetimes to at most `max_duration` application-time units.
    pub fn clip(max_duration: i64) -> AlterLifetime {
        assert!(max_duration > 0, "clip duration must be positive");
        AlterLifetime { max_duration }
    }

    fn f(&self, vs: Time, ve: Time) -> Time {
        ve.min(vs.saturating_add(self.max_duration))
    }
}

impl<P: Payload> Operator<P> for AlterLifetime {
    fn on_element(&mut self, element: &Element<P>, out: &mut Vec<Element<P>>) {
        match element {
            Element::Insert(e) => {
                out.push(Element::insert(e.payload.clone(), e.vs, self.f(e.vs, e.ve)));
            }
            Element::Adjust {
                payload,
                vs,
                vold,
                ve,
            } => {
                let old = self.f(*vs, *vold);
                // A removal (ve == vs) must stay a removal, not be clipped.
                let new = if ve == vs { *vs } else { self.f(*vs, *ve) };
                // If clipping makes the adjust a no-op, drop it: downstream
                // never saw an end beyond the clip point.
                if old != new {
                    out.push(Element::adjust(payload.clone(), *vs, old, new));
                }
            }
            Element::Stable(t) => out.push(Element::Stable(*t)),
        }
    }

    fn name(&self) -> &'static str {
        "alter-lifetime"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clips_long_events() {
        let mut a = AlterLifetime::clip(10);
        let mut out: Vec<Element<&str>> = Vec::new();
        a.on_element(&Element::insert("x", 5, 100), &mut out);
        a.on_element(&Element::insert("y", 5, 8), &mut out);
        assert_eq!(
            out,
            vec![Element::insert("x", 5, 15), Element::insert("y", 5, 8)]
        );
    }

    #[test]
    fn clips_infinite_events() {
        let mut a = AlterLifetime::clip(10);
        let mut out: Vec<Element<&str>> = Vec::new();
        a.on_element(&Element::insert("x", 5, Time::INFINITY), &mut out);
        assert_eq!(out, vec![Element::insert("x", 5, 15)]);
    }

    #[test]
    fn noop_adjusts_are_dropped() {
        let mut a = AlterLifetime::clip(10);
        let mut out: Vec<Element<&str>> = Vec::new();
        // Both 100 and 200 clip to 15: downstream never sees a change.
        a.on_element(&Element::adjust("x", 5, 100, 200), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn meaningful_adjusts_are_translated() {
        let mut a = AlterLifetime::clip(10);
        let mut out: Vec<Element<&str>> = Vec::new();
        a.on_element(&Element::adjust("x", 5, 100, 8), &mut out);
        assert_eq!(out, vec![Element::adjust("x", 5, 15, 8)]);
    }

    #[test]
    fn removal_stays_removal() {
        let mut a = AlterLifetime::clip(10);
        let mut out: Vec<Element<&str>> = Vec::new();
        a.on_element(&Element::adjust("x", 5, 100, 5), &mut out);
        assert_eq!(out, vec![Element::adjust("x", 5, 15, 5)]);
    }
}
