//! Cost-asymmetric UDF selection with feedback fast-forward.
//!
//! Models the plan-switching workload of Section VI-E(3): "The first plan
//! (UDF0) is expensive for small values of X (a payload field), while the
//! second plan (UDF1) is expensive for large values of X." Under feedback
//! (Section V-D), elements whose entire relevance lies before the signalled
//! time are skipped at (almost) no cost — the "fast-forward" that lets a
//! lagging plan catch up.

use crate::operator::Operator;
use lmerge_temporal::{Element, Time, Value};

/// A pass-through selection whose virtual CPU cost depends on the payload.
pub struct UdfSelect {
    /// Payload keys below this are "small".
    pub threshold: i32,
    /// Whether small keys are the expensive side (UDF0) or large (UDF1).
    pub expensive_small: bool,
    /// Cost of the expensive side, virtual µs per element.
    pub cost_expensive_us: u64,
    /// Cost of the cheap side, virtual µs per element.
    pub cost_cheap_us: u64,
    /// Latest feedback point received (elements ending before it are dead).
    ff_point: Time,
    /// Elements skipped thanks to feedback (observability for the bench).
    pub skipped: u64,
}

impl UdfSelect {
    /// UDF0 of the paper: expensive for small keys.
    pub fn udf0(threshold: i32, expensive_us: u64, cheap_us: u64) -> UdfSelect {
        UdfSelect {
            threshold,
            expensive_small: true,
            cost_expensive_us: expensive_us,
            cost_cheap_us: cheap_us,
            ff_point: Time::MIN,
            skipped: 0,
        }
    }

    /// UDF1 of the paper: expensive for large keys.
    pub fn udf1(threshold: i32, expensive_us: u64, cheap_us: u64) -> UdfSelect {
        UdfSelect {
            expensive_small: false,
            ..UdfSelect::udf0(threshold, expensive_us, cheap_us)
        }
    }

    fn is_expensive(&self, v: &Value) -> bool {
        (v.key < self.threshold) == self.expensive_small
    }

    /// Whether feedback allows skipping this element entirely: all of its
    /// relevance lies before the feedback point.
    fn dead(&self, element: &Element<Value>) -> bool {
        match element {
            Element::Insert(e) => e.ve <= self.ff_point,
            Element::Adjust { vold, ve, .. } => *vold <= self.ff_point && *ve <= self.ff_point,
            Element::Stable(_) => false,
        }
    }
}

impl Operator<Value> for UdfSelect {
    fn on_element(&mut self, element: &Element<Value>, out: &mut Vec<Element<Value>>) {
        if self.dead(element) {
            self.skipped += 1;
            return;
        }
        out.push(element.clone());
    }

    fn cost_us(&self, element: &Element<Value>) -> u64 {
        if self.dead(element) {
            return 0; // fast-forward: no UDF invocation at all
        }
        match element {
            Element::Insert(e) => {
                if self.is_expensive(&e.payload) {
                    self.cost_expensive_us
                } else {
                    self.cost_cheap_us
                }
            }
            Element::Adjust { payload, .. } => {
                if self.is_expensive(payload) {
                    self.cost_expensive_us
                } else {
                    self.cost_cheap_us
                }
            }
            Element::Stable(_) => 1,
        }
    }

    fn on_feedback(&mut self, t: Time) {
        self.ff_point = self.ff_point.max(t);
    }

    fn name(&self) -> &'static str {
        "udf-select"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(key: i32) -> Value {
        Value::bare(key)
    }

    #[test]
    fn cost_asymmetry() {
        let u0 = UdfSelect::udf0(200, 100, 1);
        assert_eq!(u0.cost_us(&Element::insert(v(10), 1, 5)), 100);
        assert_eq!(u0.cost_us(&Element::insert(v(300), 1, 5)), 1);
        let u1 = UdfSelect::udf1(200, 100, 1);
        assert_eq!(u1.cost_us(&Element::insert(v(10), 1, 5)), 1);
        assert_eq!(u1.cost_us(&Element::insert(v(300), 1, 5)), 100);
    }

    #[test]
    fn feedback_skips_dead_elements() {
        let mut u = UdfSelect::udf0(200, 100, 1);
        u.on_feedback(Time(50));
        let dead = Element::insert(v(10), 1, 40);
        let live = Element::insert(v(10), 1, 80);
        assert_eq!(u.cost_us(&dead), 0);
        assert_eq!(u.cost_us(&live), 100);
        let mut out = Vec::new();
        u.on_element(&dead, &mut out);
        assert!(out.is_empty());
        assert_eq!(u.skipped, 1);
        u.on_element(&live, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn stable_always_passes() {
        let mut u = UdfSelect::udf0(200, 100, 1);
        u.on_feedback(Time(50));
        let mut out = Vec::new();
        u.on_element(&Element::stable(10), &mut out);
        assert_eq!(out.len(), 1, "punctuation survives fast-forward");
    }

    #[test]
    fn feedback_never_regresses() {
        let mut u = UdfSelect::udf0(200, 100, 1);
        u.on_feedback(Time(50));
        u.on_feedback(Time(20));
        assert_eq!(u.cost_us(&Element::insert(v(1), 1, 30)), 0);
    }
}
