//! Stateless selection.

use crate::operator::Operator;
use lmerge_temporal::{Element, Payload};

/// Drops data elements whose payload fails the predicate; punctuation
/// passes through (filtering never weakens stability guarantees).
pub struct Filter<P, F> {
    name: &'static str,
    predicate: F,
    _p: std::marker::PhantomData<fn() -> P>,
}

impl<P: Payload, F: Fn(&P) -> bool + Send> Filter<P, F> {
    /// A named filter with the given payload predicate.
    pub fn new(name: &'static str, predicate: F) -> Filter<P, F> {
        Filter {
            name,
            predicate,
            _p: std::marker::PhantomData,
        }
    }
}

impl<P: Payload, F: Fn(&P) -> bool + Send> Operator<P> for Filter<P, F> {
    fn on_element(&mut self, element: &Element<P>, out: &mut Vec<Element<P>>) {
        match element {
            Element::Insert(e) => {
                if (self.predicate)(&e.payload) {
                    out.push(element.clone());
                }
            }
            Element::Adjust { payload, .. } => {
                if (self.predicate)(payload) {
                    out.push(element.clone());
                }
            }
            Element::Stable(_) => out.push(element.clone()),
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_inserts_and_matching_adjusts() {
        let mut f = Filter::new("keep-a", |p: &&str| p.starts_with('a'));
        let mut out = Vec::new();
        f.on_element(&Element::insert("ax", 1, 5), &mut out);
        f.on_element(&Element::insert("bx", 1, 5), &mut out);
        f.on_element(&Element::adjust("ax", 1, 5, 7), &mut out);
        f.on_element(&Element::adjust("bx", 1, 5, 7), &mut out);
        f.on_element(&Element::stable(9), &mut out);
        assert_eq!(
            out,
            vec![
                Element::insert("ax", 1, 5),
                Element::adjust("ax", 1, 5, 7),
                Element::stable(9),
            ]
        );
    }
}
