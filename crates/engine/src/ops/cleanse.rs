//! The Cleanse (reorder) operator of Section VI-D.
//!
//! "Timestamp ordering is enforced by a special Cleanse operator, which
//! accepts a disordered stream and buffers elements until a stable() element
//! is received, at which point it releases (in timestamp order) all fully
//! frozen elements."
//!
//! To guarantee a *globally* ordered, deterministic, insert-only output (the
//! contract algorithm R1 needs), events are released strictly in
//! `(Vs, Payload)` order: an event leaves the buffer only when it is fully
//! frozen **and** every event with a smaller key has left before it. This is
//! precisely why the paper finds the Cleanse-based solution pays latency
//! that "will grow with event lifetimes and the amount of potential
//! disorder" and memory linear in the number of (separately cleansed)
//! inputs.

use crate::operator::Operator;
use lmerge_temporal::{Element, Payload, Time};
use std::collections::BTreeMap;

/// Buffers a disordered/revising stream; emits an ordered insert-only one.
pub struct Cleanse<P: Payload> {
    /// Pending events: `(Vs, Payload) → current Ve`.
    buffer: BTreeMap<(Time, P), Time>,
    /// Retained payload bytes (the memory the paper's Figure 7 charges).
    payload_bytes: usize,
    stable: Time,
    last_emitted_stable: Time,
}

impl<P: Payload> Cleanse<P> {
    /// An empty Cleanse.
    pub fn new() -> Cleanse<P> {
        Cleanse {
            buffer: BTreeMap::new(),
            payload_bytes: 0,
            stable: Time::MIN,
            last_emitted_stable: Time::MIN,
        }
    }

    /// Number of buffered events.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn release(&mut self, out: &mut Vec<Element<P>>) {
        // Release the longest fully frozen prefix of the buffer.
        while let Some(((vs, p), ve)) = self.buffer.first_key_value() {
            if *ve >= self.stable {
                break;
            }
            let (vs, p, ve) = (*vs, p.clone(), *ve);
            self.buffer.remove(&(vs, p.clone()));
            self.payload_bytes -= p.heap_bytes();
            out.push(Element::insert(p, vs, ve));
        }
        // The output is stable up to the head of the remaining buffer (no
        // released event can be revised; no future release precedes it).
        let frontier = self
            .buffer
            .first_key_value()
            .map(|((vs, _), _)| *vs)
            .unwrap_or(self.stable)
            .min(self.stable);
        if frontier > self.last_emitted_stable {
            self.last_emitted_stable = frontier;
            out.push(Element::Stable(frontier));
        }
    }
}

impl<P: Payload> Default for Cleanse<P> {
    fn default() -> Self {
        Cleanse::new()
    }
}

impl<P: Payload> Operator<P> for Cleanse<P> {
    fn on_element(&mut self, element: &Element<P>, out: &mut Vec<Element<P>>) {
        match element {
            Element::Insert(e) => {
                if self
                    .buffer
                    .insert((e.vs, e.payload.clone()), e.ve)
                    .is_none()
                {
                    self.payload_bytes += e.payload.heap_bytes();
                }
            }
            Element::Adjust {
                payload, vs, ve, ..
            } => {
                // Buffered events can still be revised (released ones are
                // fully frozen, so a well-formed input never revises them).
                if *ve == *vs {
                    if self.buffer.remove(&(*vs, payload.clone())).is_some() {
                        self.payload_bytes -= payload.heap_bytes();
                    }
                } else if let Some(cur) = self.buffer.get_mut(&(*vs, payload.clone())) {
                    *cur = *ve;
                }
            }
            Element::Stable(t) => {
                if *t > self.stable {
                    self.stable = *t;
                    self.release(out);
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        const ENTRY_OVERHEAD: usize = 48;
        self.buffer.len() * (std::mem::size_of::<((Time, P), Time)>() + ENTRY_OVERHEAD)
            + self.payload_bytes
    }

    fn name(&self) -> &'static str {
        "cleanse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_properties::{checker, StreamProperties};

    type E = Element<&'static str>;

    #[test]
    fn releases_frozen_prefix_in_order() {
        let mut c = Cleanse::new();
        let mut out = Vec::new();
        c.on_element(&E::insert("B", 2, 4), &mut out);
        c.on_element(&E::insert("A", 1, 3), &mut out);
        assert!(out.is_empty(), "buffered until stable");
        c.on_element(&E::stable(10), &mut out);
        assert_eq!(
            out,
            vec![E::insert("A", 1, 3), E::insert("B", 2, 4), E::stable(10),]
        );
        assert_eq!(c.buffered(), 0);
    }

    #[test]
    fn long_lived_head_blocks_release() {
        let mut c = Cleanse::new();
        let mut out = Vec::new();
        c.on_element(&E::insert("A", 1, 100), &mut out); // long-lived
        c.on_element(&E::insert("B", 2, 3), &mut out); // brief
        c.on_element(&E::stable(10), &mut out);
        // B is fully frozen but A (earlier Vs) is not: nothing releases,
        // and the emitted stable only reaches A's Vs.
        assert_eq!(out, vec![E::stable(1)]);
        assert_eq!(c.buffered(), 2);
        out.clear();
        c.on_element(&E::stable(200), &mut out);
        assert_eq!(
            out,
            vec![E::insert("A", 1, 100), E::insert("B", 2, 3), E::stable(200),]
        );
    }

    #[test]
    fn adjusts_are_applied_before_release() {
        let mut c = Cleanse::new();
        let mut out = Vec::new();
        c.on_element(&E::insert("A", 1, 30), &mut out);
        c.on_element(&E::adjust("A", 1, 30, 5), &mut out);
        c.on_element(&E::stable(10), &mut out);
        assert_eq!(out, vec![E::insert("A", 1, 5), E::stable(10)]);
    }

    #[test]
    fn cancellation_removes_buffered_event() {
        let mut c = Cleanse::new();
        let mut out = Vec::new();
        c.on_element(&E::insert("A", 1, 30), &mut out);
        c.on_element(&E::adjust("A", 1, 30, 1), &mut out);
        c.on_element(&E::stable(50), &mut out);
        assert_eq!(out, vec![E::stable(50)]);
    }

    #[test]
    fn output_satisfies_r1_contract() {
        // A thoroughly disordered, revising input must come out as an
        // ordered insert-only stream.
        let mut c = Cleanse::new();
        let mut out = Vec::new();
        let input = vec![
            E::insert("C", 5, 9),
            E::insert("A", 1, 4),
            E::adjust("C", 5, 9, 7),
            E::insert("B", 3, 20),
            E::stable(6),
            E::insert("D", 8, 11),
            E::adjust("B", 3, 20, 9),
            E::stable(30),
        ];
        for e in &input {
            c.on_element(e, &mut out);
        }
        checker::verify(&out, StreamProperties::r1()).expect("ordered insert-only");
        assert_eq!(
            out.iter().filter(|e| e.is_insert()).count(),
            4,
            "all four events eventually released"
        );
    }

    #[test]
    fn memory_tracks_buffer() {
        use lmerge_temporal::Value;
        let mut c: Cleanse<Value> = Cleanse::new();
        let mut out = Vec::new();
        for k in 0..10 {
            c.on_element(
                &Element::insert(Value::synthetic(k, 1000), k as i64, 1000),
                &mut out,
            );
        }
        assert!(c.memory_bytes() >= 10_000);
        c.on_element(&Element::stable(5000), &mut out);
        assert!(c.memory_bytes() < 1000, "drained after release");
    }
}
