//! Operator library for the mini-DSMS.
//!
//! * [`Filter`], [`Map`], [`AlterLifetime`] — stateless element transforms.
//! * [`IntervalCount`] — a revision-producing count aggregate over event
//!   intervals (the paper's adjust-generating sub-query: "aggregate (count)
//!   followed by a lifetime modification").
//! * [`TopK`] — multi-valued aggregate emitting duplicate timestamps in
//!   deterministic rank order (the R1 workload of Section IV-G).
//! * [`Cleanse`] — the ordering enforcer of Section VI-D: buffers a
//!   disordered, revising stream and releases a deterministic, in-order,
//!   insert-only stream (the `C+LMR1` baseline's front end).
//! * [`UdfSelect`] — a selection with payload-dependent virtual CPU cost and
//!   feedback-driven fast-forward (the plan-switching workload, Figure 10).

mod alter;
mod cleanse;
mod count;
mod filter;
mod join;
mod map;
mod sample;
mod topk;
mod udf;

pub use alter::AlterLifetime;
pub use cleanse::Cleanse;
pub use count::{payload_for, AggMode, IntervalCount};
pub use filter::Filter;
pub use join::{join_streams, BinaryOperator, TemporalJoin};
pub use map::Map;
pub use sample::Sample;
pub use topk::TopK;
pub use udf::UdfSelect;
