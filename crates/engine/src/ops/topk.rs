//! Top-k per timestamp: the multi-valued aggregate of the paper's R1
//! scenario ("a sliding window multi-valued aggregate such as Top-k").
//!
//! Requires an in-order, insert-only input. For every distinct `Vs` the
//! operator emits the `k` events with the largest payload keys, in rank
//! order — producing duplicate timestamps in *deterministic* order, which is
//! exactly the stream class algorithm R1 merges with one counter per input.

use crate::operator::Operator;
use lmerge_temporal::{Element, Event, Time, Value};

/// Emits the top `k` events (by payload key, descending) per timestamp.
pub struct TopK {
    k: usize,
    current_vs: Option<Time>,
    buffer: Vec<Event<Value>>,
    pending_stable: Option<Time>,
}

impl TopK {
    /// A Top-k over `k` ranks.
    pub fn new(k: usize) -> TopK {
        assert!(k > 0, "k must be positive");
        TopK {
            k,
            current_vs: None,
            buffer: Vec::new(),
            pending_stable: None,
        }
    }

    fn flush(&mut self, out: &mut Vec<Element<Value>>) {
        if self.buffer.is_empty() {
            return;
        }
        // Rank by key descending, ties broken by body for determinism.
        self.buffer.sort_by(|a, b| {
            (b.payload.key, &b.payload.body).cmp(&(a.payload.key, &a.payload.body))
        });
        for e in self.buffer.drain(..).take(self.k) {
            out.push(Element::Insert(e));
        }
        if let Some(t) = self.pending_stable.take() {
            out.push(Element::Stable(t));
        }
    }
}

impl Operator<Value> for TopK {
    fn on_element(&mut self, element: &Element<Value>, out: &mut Vec<Element<Value>>) {
        match element {
            Element::Insert(e) => {
                if self.current_vs != Some(e.vs) {
                    self.flush(out);
                    self.current_vs = Some(e.vs);
                }
                self.buffer.push(e.clone());
            }
            Element::Adjust { .. } => {
                panic!("TopK requires an insert-only input (R1 scenario)");
            }
            Element::Stable(t) => {
                // Hold punctuation until the current timestamp group closes;
                // a stable beyond the group closes it immediately.
                if self.current_vs.is_some_and(|vs| *t > vs) {
                    self.flush(out);
                    self.current_vs = None;
                    out.push(Element::Stable(*t));
                } else {
                    self.pending_stable = Some(self.pending_stable.unwrap_or(*t).max(*t));
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.buffer.capacity() * std::mem::size_of::<Event<Value>>()
            + self
                .buffer
                .iter()
                .map(|e| e.payload.body.len())
                .sum::<usize>()
    }

    fn name(&self) -> &'static str {
        "top-k"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(key: i32) -> Value {
        Value::bare(key)
    }

    #[test]
    fn emits_top_k_in_rank_order() {
        let mut op = TopK::new(2);
        let mut out = Vec::new();
        for key in [3, 9, 1, 7] {
            op.on_element(&Element::insert(v(key), 10, 20), &mut out);
        }
        // Advance the timestamp to close the group.
        op.on_element(&Element::insert(v(5), 11, 21), &mut out);
        assert_eq!(
            out,
            vec![Element::insert(v(9), 10, 20), Element::insert(v(7), 10, 20),],
            "two best of Vs=10, rank order"
        );
    }

    #[test]
    fn stable_closes_group() {
        let mut op = TopK::new(1);
        let mut out = Vec::new();
        op.on_element(&Element::insert(v(3), 10, 20), &mut out);
        op.on_element(&Element::stable(15), &mut out);
        assert_eq!(
            out,
            vec![Element::insert(v(3), 10, 20), Element::stable(15)]
        );
    }

    #[test]
    fn stable_within_group_is_held() {
        let mut op = TopK::new(1);
        let mut out = Vec::new();
        op.on_element(&Element::insert(v(3), 10, 20), &mut out);
        op.on_element(&Element::stable(10), &mut out);
        assert!(out.is_empty(), "punctuation held until the group closes");
        op.on_element(&Element::insert(v(4), 12, 22), &mut out);
        assert_eq!(
            out,
            vec![Element::insert(v(3), 10, 20), Element::stable(10)]
        );
    }

    #[test]
    fn deterministic_across_copies() {
        // Two copies see the same per-timestamp sets in different arrival
        // order; outputs must be identical (R1's requirement).
        let run = |keys: &[i32]| {
            let mut op = TopK::new(3);
            let mut out = Vec::new();
            for k in keys {
                op.on_element(&Element::insert(v(*k), 10, 20), &mut out);
            }
            op.on_element(&Element::stable(50), &mut out);
            out
        };
        assert_eq!(run(&[3, 9, 1, 7]), run(&[7, 1, 3, 9]));
    }

    #[test]
    #[should_panic(expected = "insert-only")]
    fn adjust_panics() {
        let mut op = TopK::new(1);
        op.on_element(&Element::adjust(v(1), 10, 20, 25), &mut Vec::new());
    }
}
