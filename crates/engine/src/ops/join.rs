//! Temporal equijoin with revision support.
//!
//! The paper's Section I-3 motivates LMerge with exactly this operator: "a
//! multi-input operator such as join … can produce a different sequence of
//! output elements in two identical copies of a CQ, due to differences in
//! the relative arrival of input events". `TemporalJoin` is that operator:
//! it joins two streams on the payload key, emitting an output event for
//! every matching pair whose lifetimes overlap — payload combining both
//! sides, lifetime the intersection — and it *revises* its output when
//! input lifetimes are adjusted (the intersection may shrink, grow, or
//! vanish).
//!
//! Its output TDB is a pure function of the input TDBs, so two copies fed
//! equivalent (but physically different) inputs produce mutually consistent
//! outputs — ideal LMerge fodder, which the integration tests exploit.

use bytes::{BufMut, BytesMut};
use lmerge_temporal::{Element, Time, Value};
use std::collections::HashMap;

/// A two-input streaming operator (joins, unions, differences).
pub trait BinaryOperator<P>: Send {
    /// Process one element arriving on `port` (0 = left, 1 = right).
    fn on_element(&mut self, port: usize, element: &Element<P>, out: &mut Vec<Element<P>>);

    /// Estimated operator state in bytes.
    fn memory_bytes(&self) -> usize {
        0
    }

    /// Short name for metrics and debugging.
    fn name(&self) -> &'static str;
}

/// One live input event on a join side.
#[derive(Clone, Debug)]
struct SideEvent {
    payload: Value,
    vs: Time,
    ve: Time,
}

/// One emitted join result, tracked so input revisions can correct it.
#[derive(Clone, Debug)]
struct OutRec {
    payload: Value,
    vs: Time,
    /// Currently emitted end time; `None` when the pair is not currently in
    /// the output (empty intersection).
    ve: Option<Time>,
}

/// Temporal equijoin on the payload `key` field.
pub struct TemporalJoin {
    /// Live events per side: key → (body-identity → event).
    sides: [HashMap<i32, Vec<SideEvent>>; 2],
    /// Emitted pairs: (left body, right body) → output record.
    emitted: HashMap<(bytes::Bytes, bytes::Bytes), OutRec>,
    stable: [Time; 2],
    emitted_stable: Time,
}

impl TemporalJoin {
    /// An empty join.
    pub fn new() -> TemporalJoin {
        TemporalJoin {
            sides: [HashMap::new(), HashMap::new()],
            emitted: HashMap::new(),
            stable: [Time::MIN, Time::MIN],
            emitted_stable: Time::MIN,
        }
    }

    /// Number of live input events buffered across both sides.
    pub fn live_events(&self) -> usize {
        self.sides
            .iter()
            .map(|s| s.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    fn combine(l: &SideEvent, r: &SideEvent) -> Value {
        let mut body = BytesMut::with_capacity(l.payload.body.len() + r.payload.body.len());
        body.put_slice(&l.payload.body);
        body.put_slice(&r.payload.body);
        Value {
            key: l.payload.key,
            body: body.freeze(),
        }
    }

    fn intersection(l: &SideEvent, r: &SideEvent) -> Option<(Time, Time)> {
        let vs = l.vs.max(r.vs);
        let ve = l.ve.min(r.ve);
        (vs < ve).then_some((vs, ve))
    }

    /// Re-derive the output for the pair (l, r) and emit the difference
    /// from what was previously emitted.
    fn reconcile_pair(&mut self, l: &SideEvent, r: &SideEvent, out: &mut Vec<Element<Value>>) {
        let pair_key = (l.payload.body.clone(), r.payload.body.clone());
        let want = Self::intersection(l, r);
        match (self.emitted.get_mut(&pair_key), want) {
            (None, None) => {}
            (None, Some((vs, ve))) => {
                let payload = Self::combine(l, r);
                out.push(Element::insert(payload.clone(), vs, ve));
                self.emitted.insert(
                    pair_key,
                    OutRec {
                        payload,
                        vs,
                        ve: Some(ve),
                    },
                );
            }
            (Some(rec), None) => {
                if let Some(cur) = rec.ve.take() {
                    // Cancel: the pair no longer overlaps.
                    out.push(Element::adjust(rec.payload.clone(), rec.vs, cur, rec.vs));
                }
            }
            (Some(rec), Some((vs, ve))) => {
                debug_assert_eq!(rec.vs, vs, "output Vs is fixed per pair");
                match rec.ve {
                    Some(cur) if cur != ve => {
                        out.push(Element::adjust(rec.payload.clone(), vs, cur, ve));
                        rec.ve = Some(ve);
                    }
                    Some(_) => {}
                    None => {
                        // The pair re-enters the output.
                        out.push(Element::insert(rec.payload.clone(), vs, ve));
                        rec.ve = Some(ve);
                    }
                }
            }
        }
    }

    fn on_insert(
        &mut self,
        port: usize,
        e: &lmerge_temporal::Event<Value>,
        out: &mut Vec<Element<Value>>,
    ) {
        let ev = SideEvent {
            payload: e.payload.clone(),
            vs: e.vs,
            ve: e.ve,
        };
        let partners: Vec<SideEvent> = self.sides[1 - port]
            .get(&e.payload.key)
            .cloned()
            .unwrap_or_default();
        for partner in &partners {
            let (l, r) = if port == 0 {
                (&ev, partner)
            } else {
                (partner, &ev)
            };
            self.reconcile_pair(l, r, out);
        }
        self.sides[port].entry(e.payload.key).or_default().push(ev);
    }

    fn on_adjust(
        &mut self,
        port: usize,
        payload: &Value,
        vs: Time,
        ve: Time,
        out: &mut Vec<Element<Value>>,
    ) {
        // Locate and update the side event.
        let Some(events) = self.sides[port].get_mut(&payload.key) else {
            return;
        };
        let Some(pos) = events
            .iter()
            .position(|se| se.payload == *payload && se.vs == vs)
        else {
            return;
        };
        let removed = ve == vs;
        let ev = if removed {
            events.swap_remove(pos)
        } else {
            events[pos].ve = ve;
            events[pos].clone()
        };
        let mut ev = ev;
        if removed {
            ev.ve = ev.vs; // empty interval: every pair reconciles to None
        }
        let partners: Vec<SideEvent> = self.sides[1 - port]
            .get(&payload.key)
            .cloned()
            .unwrap_or_default();
        for partner in &partners {
            let (l, r) = if port == 0 {
                (&ev, partner)
            } else {
                (partner, &ev)
            };
            self.reconcile_pair(l, r, out);
        }
    }

    fn on_stable(&mut self, port: usize, t: Time, out: &mut Vec<Element<Value>>) {
        self.stable[port] = self.stable[port].max(t);
        let floor = self.stable[0].min(self.stable[1]);
        if floor > self.emitted_stable {
            self.emitted_stable = floor;
            // Purge input events that can neither change nor join anything
            // new (their whole lifetime precedes the joint stable point).
            for side in &mut self.sides {
                for events in side.values_mut() {
                    events.retain(|e| e.ve >= floor);
                }
                side.retain(|_, v| !v.is_empty());
            }
            // A pair record is dead once nothing can legally change it:
            // emitted with a frozen end, or cancelled with a frozen start.
            self.emitted.retain(|_, rec| match rec.ve {
                Some(ve) => ve >= floor,
                None => rec.vs >= floor,
            });
            out.push(Element::Stable(floor));
        }
    }
}

impl Default for TemporalJoin {
    fn default() -> Self {
        TemporalJoin::new()
    }
}

impl BinaryOperator<Value> for TemporalJoin {
    fn on_element(&mut self, port: usize, element: &Element<Value>, out: &mut Vec<Element<Value>>) {
        assert!(port < 2, "TemporalJoin has two ports");
        match element {
            Element::Insert(e) => self.on_insert(port, e, out),
            Element::Adjust {
                payload, vs, ve, ..
            } => self.on_adjust(port, payload, *vs, *ve, out),
            Element::Stable(t) => self.on_stable(port, *t, out),
        }
    }

    fn memory_bytes(&self) -> usize {
        const EVENT_OVERHEAD: usize = std::mem::size_of::<SideEvent>() + 32;
        let side_payloads: usize = self
            .sides
            .iter()
            .flat_map(|s| s.values())
            .flatten()
            .map(|e| e.payload.body.len() + EVENT_OVERHEAD)
            .sum();
        let emitted: usize = self
            .emitted
            .values()
            .map(|r| r.payload.body.len() + std::mem::size_of::<OutRec>() + 48)
            .sum();
        side_payloads + emitted
    }

    fn name(&self) -> &'static str {
        "temporal-join"
    }
}

/// Drive two complete element streams through a join (test/bench helper).
pub fn join_streams(left: &[Element<Value>], right: &[Element<Value>]) -> Vec<Element<Value>> {
    let mut j = TemporalJoin::new();
    let mut out = Vec::new();
    let mut buf = Vec::new();
    let longest = left.len().max(right.len());
    for k in 0..longest {
        for (port, side) in [(0usize, left), (1usize, right)] {
            if let Some(e) = side.get(k) {
                buf.clear();
                j.on_element(port, e, &mut buf);
                out.append(&mut buf);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::reconstitute::tdb_of;

    fn v(key: i32, tag: u8) -> Value {
        Value {
            key,
            body: bytes::Bytes::copy_from_slice(&[tag; 4]),
        }
    }

    #[test]
    fn overlapping_matches_join() {
        let mut j = TemporalJoin::new();
        let mut out = Vec::new();
        j.on_element(0, &Element::insert(v(7, 1), 10, 30), &mut out);
        assert!(out.is_empty(), "no partner yet");
        j.on_element(1, &Element::insert(v(7, 2), 20, 40), &mut out);
        assert_eq!(out.len(), 1);
        let tdb = tdb_of(&out).unwrap();
        assert_eq!(tdb.snapshot_at(Time(25)).len(), 1, "alive in overlap");
        assert_eq!(tdb.snapshot_at(Time(35)).len(), 0, "dead outside");
    }

    #[test]
    fn key_mismatch_and_disjoint_lifetimes_do_not_join() {
        let mut j = TemporalJoin::new();
        let mut out = Vec::new();
        j.on_element(0, &Element::insert(v(7, 1), 10, 20), &mut out);
        j.on_element(1, &Element::insert(v(8, 2), 10, 20), &mut out); // key mismatch
        j.on_element(1, &Element::insert(v(7, 3), 30, 40), &mut out); // disjoint
        assert!(out.is_empty());
    }

    #[test]
    fn adjust_shrinks_join_result() {
        let mut j = TemporalJoin::new();
        let mut out = Vec::new();
        j.on_element(0, &Element::insert(v(7, 1), 10, 30), &mut out);
        j.on_element(1, &Element::insert(v(7, 2), 20, 40), &mut out);
        out.clear();
        // Left event now ends at 25: the join window shrinks [20,30)→[20,25).
        j.on_element(0, &Element::adjust(v(7, 1), 10, 30, 25), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            &out[0],
            Element::Adjust { ve, .. } if *ve == Time(25)
        ));
    }

    #[test]
    fn adjust_can_cancel_and_revive_join_result() {
        let mut j = TemporalJoin::new();
        let mut all = Vec::new();
        j.on_element(0, &Element::insert(v(7, 1), 10, 30), &mut all);
        j.on_element(1, &Element::insert(v(7, 2), 20, 40), &mut all);
        // Shrink left to end before the partner starts: join vanishes.
        j.on_element(0, &Element::adjust(v(7, 1), 10, 30, 15), &mut all);
        let tdb = tdb_of(&all).unwrap();
        assert!(tdb.is_empty(), "join result cancelled: {tdb:?}");
        // Grow it back: join reappears.
        j.on_element(0, &Element::adjust(v(7, 1), 10, 15, 35), &mut all);
        let tdb = tdb_of(&all).unwrap();
        assert_eq!(tdb.len(), 1);
        assert_eq!(tdb.snapshot_at(Time(22)).len(), 1);
    }

    #[test]
    fn event_removal_cancels_joins() {
        let mut j = TemporalJoin::new();
        let mut all = Vec::new();
        j.on_element(0, &Element::insert(v(7, 1), 10, 30), &mut all);
        j.on_element(1, &Element::insert(v(7, 2), 20, 40), &mut all);
        j.on_element(0, &Element::adjust(v(7, 1), 10, 30, 10), &mut all); // delete
        assert!(tdb_of(&all).unwrap().is_empty());
        assert_eq!(j.live_events(), 1, "left event gone from state too");
    }

    #[test]
    fn stable_is_joint_minimum() {
        let mut j = TemporalJoin::new();
        let mut out = Vec::new();
        j.on_element(0, &Element::stable(50), &mut out);
        assert!(out.is_empty(), "one-sided promise is no promise");
        j.on_element(1, &Element::stable(30), &mut out);
        assert_eq!(out, vec![Element::stable(30)]);
    }

    #[test]
    fn join_output_is_deterministic_function_of_inputs() {
        // Same logical inputs, different physical order → same final TDB.
        let l1 = vec![
            Element::insert(v(1, 1), 0, 50),
            Element::insert(v(2, 2), 10, 60),
        ];
        let r1 = vec![
            Element::insert(v(1, 3), 20, 80),
            Element::insert(v(2, 4), 5, 15),
        ];
        let out_a = join_streams(&l1, &r1);
        // Reversed presentation order on both sides.
        let l2: Vec<_> = l1.iter().rev().cloned().collect();
        let r2: Vec<_> = r1.iter().rev().cloned().collect();
        let out_b = join_streams(&l2, &r2);
        assert_eq!(tdb_of(&out_a).unwrap(), tdb_of(&out_b).unwrap());
        assert_eq!(tdb_of(&out_a).unwrap().len(), 2);
    }

    #[test]
    fn purge_bounds_state() {
        let mut j = TemporalJoin::new();
        let mut out = Vec::new();
        for i in 0..20i64 {
            j.on_element(
                0,
                &Element::insert(v(1, i as u8), i * 10, i * 10 + 5),
                &mut out,
            );
        }
        assert_eq!(j.live_events(), 20);
        j.on_element(0, &Element::stable(1000), &mut out);
        j.on_element(1, &Element::stable(1000), &mut out);
        assert_eq!(j.live_events(), 0, "frozen, partnerless events purged");
    }
}
