//! Stateless payload projection.

use crate::operator::Operator;
use lmerge_temporal::{Element, Payload};

/// Maps each data element's payload through a function; punctuation passes.
///
/// The mapping should be *injective* if downstream property inference claims
/// a `(Vs, Payload)` key — a non-injective map collapses distinct events
/// onto one key (see `lmerge-properties::plan`).
pub struct Map<P, F> {
    name: &'static str,
    func: F,
    _p: std::marker::PhantomData<fn() -> P>,
}

impl<P: Payload, F: Fn(&P) -> P + Send> Map<P, F> {
    /// A named map over payloads.
    pub fn new(name: &'static str, func: F) -> Map<P, F> {
        Map {
            name,
            func,
            _p: std::marker::PhantomData,
        }
    }
}

impl<P: Payload, F: Fn(&P) -> P + Send> Operator<P> for Map<P, F> {
    fn on_element(&mut self, element: &Element<P>, out: &mut Vec<Element<P>>) {
        match element {
            Element::Insert(e) => {
                out.push(Element::insert((self.func)(&e.payload), e.vs, e.ve));
            }
            Element::Adjust {
                payload,
                vs,
                vold,
                ve,
            } => out.push(Element::adjust((self.func)(payload), *vs, *vold, *ve)),
            Element::Stable(t) => out.push(Element::Stable(*t)),
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::Time;

    #[test]
    fn maps_payloads_preserving_times() {
        let mut m = Map::new("upper", |p: &&str| if *p == "a" { "A" } else { "Z" });
        let mut out = Vec::new();
        m.on_element(&Element::insert("a", 1, 5), &mut out);
        m.on_element(&Element::adjust("a", 1, 5, 9), &mut out);
        m.on_element(&Element::stable(3), &mut out);
        assert_eq!(
            out,
            vec![
                Element::insert("A", 1, 5),
                Element::adjust("A", 1, 5, 9),
                Element::stable(3),
            ]
        );
        assert_eq!(out[0].key(), Some((Time(1), &"A")));
    }
}
