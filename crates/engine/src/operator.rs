//! The operator abstraction of the mini-DSMS.

use lmerge_temporal::{Element, Payload, Time, VTime};

/// An element annotated with its virtual arrival time at the query's source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedElement<P> {
    /// When the element arrives at the query (virtual microseconds).
    pub at: VTime,
    /// The element itself.
    pub element: Element<P>,
}

impl<P: Payload> TimedElement<P> {
    /// Annotate `element` with arrival time `at`.
    pub fn new(at: VTime, element: Element<P>) -> TimedElement<P> {
        TimedElement { at, element }
    }
}

/// A streaming operator over the StreamInsight element model.
///
/// Operators are synchronous: one element in, zero or more elements out.
/// They additionally expose:
///
/// * a virtual CPU **cost** per element (microseconds), which the executor
///   charges to the query's core — this is how plan asymmetry (Figure 10)
///   and CPU contention are modelled without wall clocks;
/// * a **feedback** hook (Section V-D): when LMerge signals that elements
///   before time `t` are no longer of interest, operators may purge state
///   and subsequently skip dead work;
/// * a memory estimate, so operator state (e.g. Cleanse buffers) shows up
///   in the experiments' memory metric.
pub trait Operator<P: Payload>: Send {
    /// Process one input element, appending outputs.
    fn on_element(&mut self, element: &Element<P>, out: &mut Vec<Element<P>>);

    /// Virtual CPU microseconds consumed by processing `element`.
    fn cost_us(&self, _element: &Element<P>) -> u64 {
        1
    }

    /// React to a feedback signal: elements with all relevance before `t`
    /// will be ignored downstream; state before `t` may be purged.
    fn on_feedback(&mut self, _t: Time) {}

    /// Estimated operator state in bytes.
    fn memory_bytes(&self) -> usize {
        0
    }

    /// Short operator name for metrics and debugging.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Passthrough;
    impl Operator<&'static str> for Passthrough {
        fn on_element(&mut self, e: &Element<&'static str>, out: &mut Vec<Element<&'static str>>) {
            out.push(e.clone());
        }
        fn name(&self) -> &'static str {
            "pass"
        }
    }

    #[test]
    fn default_cost_and_memory() {
        let op = Passthrough;
        assert_eq!(op.cost_us(&Element::stable(1)), 1);
        assert_eq!(op.memory_bytes(), 0);
        assert_eq!(op.name(), "pass");
    }

    #[test]
    fn timed_element_carries_arrival() {
        let te = TimedElement::new(VTime::from_secs(2), Element::insert("a", 1, 5));
        assert_eq!(te.at.as_secs_f64(), 2.0);
    }
}
