//! A mini-DSMS substrate hosting LMerge — the StreamInsight stand-in.
//!
//! The paper evaluates LMerge inside Microsoft StreamInsight, a closed
//! commercial engine. This crate rebuilds the pieces of such an engine that
//! the evaluation exercises:
//!
//! * an [`operator::Operator`] abstraction over the StreamInsight element
//!   model (`insert`/`adjust`/`stable`), with per-element virtual CPU cost;
//! * a library of operators ([`ops`]): filter, map, interval count
//!   aggregation (which turns disorder into revisions, the paper's
//!   adjust-generating sub-query), grouped count, Top-k, lifetime
//!   alteration, union, the **Cleanse** reordering operator of Section VI-D,
//!   and cost-asymmetric UDF selections for the plan-switching experiment;
//! * a [`query::Query`]: a source plus an operator chain, executed on its
//!   own virtual core;
//! * an [`executor::MergeRun`]: N queries feeding one LMerge under a
//!   deterministic **virtual-time** executor that models arrival lag,
//!   bursts, congestion, and CPU cost without wall-clock dependence;
//! * [`metrics`]: throughput series, latency, memory samples, and output
//!   chattiness — the measurements behind every figure in Section VI;
//! * feedback propagation (Section V-D): the executor carries LMerge's
//!   feedback point back to the queries, whose operators fast-forward past
//!   work that can no longer matter.

pub mod durability;
pub mod executor;
pub mod hooks;
pub mod metrics;
pub mod operator;
pub mod ops;
pub mod pipeline;
pub mod query;
pub mod spsc;

pub use durability::{
    CheckpointSave, CheckpointSink, EgressImage, ExecutorImage, NoCheckpoint, RunImage,
    SpillNotices,
};
pub use executor::{MergeRun, RunConfig};
pub use hooks::{ControlAction, FaultAction, NoHooks, RunHooks};
pub use metrics::{RunMetrics, Series};
pub use operator::{Operator, TimedElement};
pub use pipeline::{run_pipeline, PipeItem, PipelineConfig, PipelineRun};
pub use query::{Query, Source};
