//! A query: one timed source plus a chain of operators on a virtual core.

use crate::operator::{Operator, TimedElement};
use lmerge_core::BatchMeta;
use lmerge_temporal::{Element, Payload, Time, VTime};

/// A batch of elements a query delivers to LMerge: the outputs produced by
/// processing one source element.
#[derive(Debug)]
pub struct Batch<P> {
    /// Virtual time at which the batch leaves the query.
    pub deliver_at: VTime,
    /// Virtual arrival time of the source element that caused it.
    pub arrival: VTime,
    /// The produced elements (possibly empty).
    pub elements: Vec<Element<P>>,
    /// Per-batch summary (kind counts, data `Vs` range), computed once here
    /// so downstream consumers can hoist per-batch work.
    pub meta: BatchMeta,
}

/// A pull source of timed elements feeding one [`Query`].
///
/// The executor only ever asks for the next element, so a source can be an
/// in-memory vector (the default, [`Query::new`]), or something that blocks
/// on the outside world — the lmerge-net ingest server implements this
/// trait over a per-connection SPSC ring so a remote replica's elements
/// enter the same virtual-time pipeline as in-process feeds. Each element
/// carries its own virtual arrival stamp, which is what makes networked and
/// in-process delivery of the same feed produce identical runs.
pub trait Source<P: Payload>: Send {
    /// The next timed element, or `None` when the source is finished.
    ///
    /// A source backed by a live connection may block here until the peer
    /// delivers more; the virtual-time model is unaffected because time is
    /// carried in the elements, not measured around this call.
    fn next(&mut self) -> Option<TimedElement<P>>;

    /// Bytes of buffering held by the source itself (0 for plain vectors).
    fn memory_bytes(&self) -> usize {
        0
    }
}

/// The ordinary in-memory source: a pre-timed vector, consumed in order.
struct VecSource<P>(std::vec::IntoIter<TimedElement<P>>);

impl<P: Payload> Source<P> for VecSource<P> {
    fn next(&mut self) -> Option<TimedElement<P>> {
        self.0.next()
    }
}

/// One continuous query: a source, an operator chain, and a virtual core.
///
/// Elements are processed in arrival order; processing of an element starts
/// when both the element has arrived and the core is free, and takes the sum
/// of the chain's per-element costs. This single-server queueing model is
/// what lets lag, bursts, congestion, and plan cost asymmetry (Figures 5 and
/// 8–10) reproduce deterministically.
pub struct Query<P: Payload> {
    source: Box<dyn Source<P>>,
    chain: Vec<Box<dyn Operator<P>>>,
    /// Cost charged for ingesting one source element, before the chain.
    base_cost_us: u64,
    core_ready: VTime,
}

impl<P: Payload> Query<P> {
    /// A query over `source` with the given operator chain.
    pub fn new(source: Vec<TimedElement<P>>, chain: Vec<Box<dyn Operator<P>>>) -> Query<P> {
        Query::from_source(Box::new(VecSource(source.into_iter())), chain)
    }

    /// A query pulling from an arbitrary [`Source`] — the entry point for
    /// sources that are not in-memory vectors (network ingest, replay).
    pub fn from_source(source: Box<dyn Source<P>>, chain: Vec<Box<dyn Operator<P>>>) -> Query<P> {
        Query {
            source,
            chain,
            base_cost_us: 1,
            core_ready: VTime::ZERO,
        }
    }

    /// A query that forwards its source unchanged.
    pub fn passthrough(source: Vec<TimedElement<P>>) -> Query<P> {
        Query::new(source, Vec::new())
    }

    /// Set the per-element ingest cost (virtual µs). Higher values model a
    /// slower machine or a more expensive plan.
    #[must_use]
    pub fn with_base_cost(mut self, us: u64) -> Query<P> {
        self.base_cost_us = us;
        self
    }

    /// Process the next source element; `None` when the source is drained.
    pub fn next_batch(&mut self) -> Option<Batch<P>> {
        let te = self.source.next()?;
        let start = if te.at > self.core_ready {
            te.at
        } else {
            self.core_ready
        };
        let mut cost = self.base_cost_us;
        let mut elems = vec![te.element];
        for op in &mut self.chain {
            let mut next = Vec::with_capacity(elems.len());
            for e in &elems {
                cost += op.cost_us(e);
                op.on_element(e, &mut next);
            }
            elems = next;
        }
        self.core_ready = start.advance(cost);
        Some(Batch {
            deliver_at: self.core_ready,
            arrival: te.at,
            meta: BatchMeta::of(&elems),
            elements: elems,
        })
    }

    /// Propagate a feedback signal to every operator (Section V-D).
    pub fn on_feedback(&mut self, t: Time) {
        for op in &mut self.chain {
            op.on_feedback(t);
        }
    }

    /// Total operator state held by this query, plus any buffering the
    /// source itself maintains (e.g. a network ingest ring).
    pub fn memory_bytes(&self) -> usize {
        self.chain.iter().map(|op| op.memory_bytes()).sum::<usize>() + self.source.memory_bytes()
    }

    /// Virtual time at which the query's core frees up.
    pub fn core_ready(&self) -> VTime {
        self.core_ready
    }

    /// Freeze the query's core until `until`: batches not yet produced
    /// cannot leave before that virtual time. Used by fault injection to
    /// model a paused or wedged replica.
    pub fn stall(&mut self, until: VTime) {
        if until > self.core_ready {
            self.core_ready = until;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Filter;

    fn src(items: &[(u64, Element<&'static str>)]) -> Vec<TimedElement<&'static str>> {
        items
            .iter()
            .map(|(at, e)| TimedElement::new(VTime(*at), e.clone()))
            .collect()
    }

    #[test]
    fn passthrough_preserves_elements() {
        let mut q = Query::passthrough(src(&[
            (0, Element::insert("a", 1, 5)),
            (10, Element::stable(2)),
        ]));
        let b1 = q.next_batch().unwrap();
        assert_eq!(b1.elements, vec![Element::insert("a", 1, 5)]);
        let b2 = q.next_batch().unwrap();
        assert_eq!(b2.elements, vec![Element::stable(2)]);
        assert!(q.next_batch().is_none());
    }

    #[test]
    fn core_queues_under_burst() {
        // Two elements arrive together; the second waits for the core.
        let mut q = Query::passthrough(src(&[
            (100, Element::insert("a", 1, 5)),
            (100, Element::insert("b", 2, 6)),
        ]))
        .with_base_cost(50);
        let b1 = q.next_batch().unwrap();
        assert_eq!(b1.deliver_at, VTime(150));
        let b2 = q.next_batch().unwrap();
        assert_eq!(b2.deliver_at, VTime(200), "queued behind the first");
    }

    #[test]
    fn idle_core_waits_for_arrival() {
        let mut q = Query::passthrough(src(&[
            (0, Element::insert("a", 1, 5)),
            (1000, Element::insert("b", 2, 6)),
        ]))
        .with_base_cost(10);
        q.next_batch().unwrap();
        let b2 = q.next_batch().unwrap();
        assert_eq!(b2.deliver_at, VTime(1010), "starts at arrival, not 20");
    }

    #[test]
    fn chain_costs_accumulate() {
        let chain: Vec<Box<dyn Operator<&'static str>>> =
            vec![Box::new(Filter::new("f", |_: &&str| true))];
        let mut q = Query::new(src(&[(0, Element::insert("a", 1, 5))]), chain).with_base_cost(5);
        let b = q.next_batch().unwrap();
        // base 5 + filter default cost 1.
        assert_eq!(b.deliver_at, VTime(6));
        assert_eq!(b.elements.len(), 1);
    }

    #[test]
    fn filtered_batches_are_empty_but_cost_time() {
        let chain: Vec<Box<dyn Operator<&'static str>>> =
            vec![Box::new(Filter::new("f", |_: &&str| false))];
        let mut q = Query::new(src(&[(0, Element::insert("a", 1, 5))]), chain);
        let b = q.next_batch().unwrap();
        assert!(b.elements.is_empty());
        assert!(b.deliver_at > VTime::ZERO);
    }
}
