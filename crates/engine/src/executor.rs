//! The virtual-time executor: N queries feeding one LMerge.
//!
//! Batches leave each query at deterministic virtual times (arrival order ×
//! queueing × operator cost); the executor delivers them to LMerge in global
//! virtual-time order, measures everything (Section VI-B's metrics), and —
//! when enabled — carries LMerge's feedback point back to the queries so
//! slower plans can fast-forward (Section V-D).
//!
//! The run ends when the merged output becomes complete (its stable point
//! reaches `∞` — "answers can be pulled from whichever copy finishes
//! first"), or when every input is drained.
//!
//! Every run can optionally be traced: [`MergeRun::run_with`] takes any
//! [`TraceSink`] and emits typed [`TraceEvent`]s (deliveries, emissions,
//! stable-point advances, feedback, queue depth, memory). The executor is
//! generic over the sink, so the default [`NullSink`] — whose
//! `enabled()` is statically `false` — monomorphizes the whole
//! instrumentation path away.

use crate::durability::{
    CheckpointSink, EgressImage, ExecutorImage, NoCheckpoint, RunImage, SpillNotices,
};
use crate::hooks::{ControlAction, FaultAction, NoHooks, RunHooks};
use crate::metrics::{RunMetrics, Series};
use crate::query::Query;
use lmerge_core::{BatchMeta, InputHealth, LogicalMerge, ShardConfig, ShardedLMerge};
use lmerge_obs::{ElementKind, FaultKind, HealthTag, NullSink, StableScope, TraceEvent, TraceSink};
use lmerge_temporal::{Element, Payload, StreamId, Time, VTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The obs-layer tag for a merge-reported input health.
fn tag_of(h: InputHealth) -> HealthTag {
    match h {
        InputHealth::Active => HealthTag::Active,
        InputHealth::Joining => HealthTag::Joining,
        InputHealth::Quarantined => HealthTag::Quarantined,
        InputHealth::Left => HealthTag::Left,
    }
}

/// Emit an `InputHealthChanged` event for every input whose merge-reported
/// health differs from the cached view. Called at virtual-time boundaries
/// where health can move (consumption, control actions).
fn sync_health<P: Payload, S: TraceSink>(
    lmerge: &dyn LogicalMerge<P>,
    health: &mut [InputHealth],
    trace: &mut S,
    at: VTime,
) {
    for (i, cached) in health.iter_mut().enumerate() {
        let now = lmerge.input_health(StreamId(i as u32));
        if now != *cached {
            *cached = now;
            trace.record(TraceEvent::InputHealthChanged {
                at,
                input: i as u32,
                health: tag_of(now),
            });
        }
    }
}

/// The trace-event kind of a stream element.
fn kind_of<P: Payload>(e: &Element<P>) -> ElementKind {
    match e {
        Element::Insert(_) => ElementKind::Insert,
        Element::Adjust { .. } => ElementKind::Adjust,
        Element::Stable(_) => ElementKind::Stable,
    }
}

/// The element's `Vs` (for punctuation, the stable time itself).
fn vs_of<P: Payload>(e: &Element<P>) -> Time {
    match e {
        Element::Insert(ev) => ev.vs,
        Element::Adjust { vs, .. } => *vs,
        Element::Stable(t) => *t,
    }
}

/// Executor knobs.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Whether LMerge feedback signals are propagated to the queries.
    pub feedback: bool,
    /// Virtual CPU cost LMerge pays per element it consumes.
    pub lmerge_cost_us: u64,
    /// Sample memory every this many delivered batches.
    pub mem_sample_every: usize,
    /// Hash-partition the merge state across this many shards (`K`). With
    /// the default of 1 the operator runs exactly as before; higher values
    /// route through `lmerge_core::ShardedLMerge` (see
    /// [`RunConfig::shard_merge`]).
    pub shards: usize,
    /// Slots per shard delivery queue (charged to operator memory, and the
    /// ring capacity used by the threaded `pipeline` executor).
    pub queue_capacity: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            feedback: false,
            lmerge_cost_us: 1,
            mem_sample_every: 256,
            shards: 1,
            queue_capacity: 256,
        }
    }
}

impl RunConfig {
    /// The [`ShardConfig`] slice of these knobs.
    pub fn shard_config(&self) -> ShardConfig {
        ShardConfig {
            shards: self.shards.max(1),
            queue_capacity: self.queue_capacity,
        }
    }

    /// Build the merge operator this config calls for: the factory's
    /// operator as-is when `shards <= 1`, otherwise a [`ShardedLMerge`]
    /// whose `K` inner states each come from one `factory()` call (so any
    /// variant — or the chaos harness's custom builds — can run sharded
    /// without new constructors).
    pub fn shard_merge<P: Payload>(
        &self,
        n_inputs: usize,
        mut factory: impl FnMut() -> Box<dyn LogicalMerge<P>>,
    ) -> Box<dyn LogicalMerge<P>> {
        if self.shards <= 1 {
            factory()
        } else {
            Box::new(ShardedLMerge::from_factory(
                self.shard_config(),
                n_inputs,
                factory,
            ))
        }
    }
}

/// N queries merged by one LMerge operator under virtual time.
pub struct MergeRun<P: Payload> {
    queries: Vec<Query<P>>,
    lmerge: Box<dyn LogicalMerge<P>>,
    config: RunConfig,
    /// When present, the run continues a killed run from this cut instead
    /// of starting fresh (see [`MergeRun::resumed`]).
    resume: Option<ExecutorImage>,
    /// When present, spills reported by the merge's handler are drained
    /// after each delivery and traced at the merge's virtual time.
    spill_notices: Option<SpillNotices>,
}

impl<P: Payload> MergeRun<P> {
    /// Assemble a run. The LMerge instance must have been constructed for
    /// (at least) `queries.len()` inputs; query `i` feeds `StreamId(i)`.
    pub fn new(
        queries: Vec<Query<P>>,
        lmerge: Box<dyn LogicalMerge<P>>,
        config: RunConfig,
    ) -> MergeRun<P> {
        MergeRun {
            queries,
            lmerge,
            config,
            resume: None,
            spill_notices: None,
        }
    }

    /// Continue a killed run from a checkpoint's executor cut.
    ///
    /// `queries` must be built from the *same* source definitions as the
    /// killed run's (queries are deterministic, so the executor replays
    /// and discards the batches the checkpoint already covered), and
    /// `lmerge` must already carry the checkpoint's restored merge state
    /// (`restore_state`). Structural faults in flight at the checkpoint
    /// (dead or stalled inputs, mid-run attachments) are not resumable.
    pub fn resumed(
        queries: Vec<Query<P>>,
        lmerge: Box<dyn LogicalMerge<P>>,
        config: RunConfig,
        exec: ExecutorImage,
    ) -> MergeRun<P> {
        assert_eq!(
            queries.len(),
            exec.pulls.len(),
            "resume requires the killed run's query topology"
        );
        MergeRun {
            queries,
            lmerge,
            config,
            resume: Some(exec),
            spill_notices: None,
        }
    }

    /// Trace spills reported through `notices` (see [`SpillNotices`]).
    #[must_use]
    pub fn with_spill_notices(mut self, notices: SpillNotices) -> MergeRun<P> {
        self.spill_notices = Some(notices);
        self
    }

    /// Execute to completion, returning the metrics. Untraced: equivalent
    /// to [`run_with`](Self::run_with) with a [`NullSink`], which compiles
    /// the instrumentation away entirely.
    pub fn run(self) -> RunMetrics {
        self.run_with(&mut NullSink)
    }

    /// Execute to completion, recording trace events into `trace`.
    ///
    /// Pass a [`lmerge_obs::Tracer`] to capture the event ring and per-input
    /// lag gauges; the caller keeps ownership and can export afterwards.
    pub fn run_with<S: TraceSink>(self, trace: &mut S) -> RunMetrics {
        self.run_with_hooks(trace, &mut NoHooks)
    }

    /// Execute to completion with a fault-injection/inspection hook.
    ///
    /// `hooks` sees every batch at delivery (and may drop, replace, or
    /// delay it) and is polled for structural [`ControlAction`]s — detach,
    /// attach, stall — at each virtual-time boundary. With the default
    /// [`NoHooks`] this is exactly [`run_with`](Self::run_with).
    pub fn run_with_hooks<S: TraceSink, H: RunHooks<P>>(
        self,
        trace: &mut S,
        hooks: &mut H,
    ) -> RunMetrics {
        self.run_checkpointed(trace, hooks, &mut NoCheckpoint)
    }

    /// Execute to completion, offering checkpoint cuts to `sink` at the
    /// end of each delivery iteration (see [`CheckpointSink`]). A halting
    /// `save` ends the run without the completion postlude — the trace
    /// stops exactly where a killed process's would.
    pub fn run_with_checkpoints<S: TraceSink, C: CheckpointSink<P>>(
        self,
        trace: &mut S,
        sink: &mut C,
    ) -> RunMetrics {
        self.run_checkpointed(trace, &mut NoHooks, sink)
    }

    /// The full run loop: tracing, fault hooks, and checkpointing.
    pub fn run_checkpointed<S: TraceSink, H: RunHooks<P>, C: CheckpointSink<P>>(
        mut self,
        trace: &mut S,
        hooks: &mut H,
        sink: &mut C,
    ) -> RunMetrics {
        let n = self.queries.len();
        let mut metrics = RunMetrics {
            input_series: vec![Series::default(); n],
            ..Default::default()
        };
        // (deliver_at, sequence, query) — sequence keeps ordering total and
        // deterministic when delivery times tie.
        let mut heap: BinaryHeap<Reverse<(VTime, u64, usize)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut pending: Vec<Option<crate::query::Batch<P>>> = Vec::with_capacity(n);
        // Per-query pull counts and last-pushed heap sequence: together
        // with each staged batch's deliver_at they form the replayable
        // executor cut a checkpoint captures.
        let mut pulls = vec![0u64; n];
        let mut staged_seq = vec![0u64; n];
        let mut lmerge_ready = VTime::ZERO;
        let mut delivered = 0usize;
        let mut last_feedback = Time::MIN;
        // High-water marks so stable-point trace events fire only on a
        // genuine advance (used only when tracing is enabled).
        let mut input_stable_hw = vec![Time::MIN; n];
        let mut output_stable_hw = Time::MIN;

        match self.resume.take() {
            None => {
                for qi in 0..n {
                    match self.queries[qi].next_batch() {
                        Some(b) => {
                            pulls[qi] += 1;
                            heap.push(Reverse((b.deliver_at, seq, qi)));
                            staged_seq[qi] = seq;
                            seq += 1;
                            pending.push(Some(b));
                        }
                        None => pending.push(None),
                    }
                }
            }
            Some(img) => {
                // Replay each query up to its recorded pull count; the
                // last pull is the batch that sat staged at the cut, and
                // it re-enters the heap under its original key so ties
                // break exactly as they would have.
                for qi in 0..n {
                    let mut last = None;
                    for _ in 0..img.pulls[qi] {
                        last = self.queries[qi].next_batch();
                    }
                    pulls[qi] = img.pulls[qi];
                    match img.staged[qi] {
                        Some((at, s)) => {
                            let mut b =
                                last.expect("resume: checkpointed staged batch must replay");
                            b.deliver_at = at;
                            heap.push(Reverse((at, s, qi)));
                            staged_seq[qi] = s;
                            pending.push(Some(b));
                        }
                        None => pending.push(None),
                    }
                }
                seq = img.seq;
                lmerge_ready = img.lmerge_ready;
                delivered = img.delivered as usize;
                last_feedback = img.last_feedback;
                input_stable_hw = img.input_stable_hw;
                output_stable_hw = img.output_stable_hw;
            }
        }

        let mut out = Vec::new();
        // Per-input fault state: a dead input's queued and future batches
        // are lost; a stalled input's staged batch is re-timed lazily.
        let mut dead = vec![false; n];
        let mut stalled_until = vec![VTime::ZERO; n];
        let mut health: Vec<InputHealth> = (0..n)
            .map(|i| self.lmerge.input_health(StreamId(i as u32)))
            .collect();
        let mut control: Vec<ControlAction<P>> = Vec::new();

        while let Some(Reverse((deliver_at, _, qi))) = heap.pop() {
            let mut batch = pending[qi].take().expect("batch staged for this query");
            debug_assert_eq!(batch.deliver_at, deliver_at);

            // Structural fault actions land exactly at virtual-time
            // boundaries, before the batch at that boundary is considered.
            if hooks.enabled() {
                hooks.control(deliver_at, &mut control);
                for action in control.drain(..) {
                    match action {
                        ControlAction::Detach(id) => {
                            self.lmerge.detach(id);
                            if let Some(d) = dead.get_mut(id.0 as usize) {
                                *d = true;
                            }
                            if trace.enabled() {
                                trace.record(TraceEvent::FaultInjected {
                                    at: deliver_at,
                                    input: id.0,
                                    kind: FaultKind::Detach,
                                });
                            }
                        }
                        ControlAction::Attach { join_time, source } => {
                            let id = self.lmerge.attach(join_time);
                            let nqi = self.queries.len();
                            debug_assert_eq!(
                                id.0 as usize, nqi,
                                "attached stream ids align with query indices"
                            );
                            let mut q = Query::passthrough(source);
                            // The joiner's core exists only from now on.
                            q.stall(deliver_at);
                            self.queries.push(q);
                            pending.push(None);
                            dead.push(false);
                            stalled_until.push(VTime::ZERO);
                            health.push(self.lmerge.input_health(id));
                            input_stable_hw.push(Time::MIN);
                            pulls.push(0);
                            staged_seq.push(0);
                            metrics.input_series.push(Series::default());
                            if let Some(b) = self.queries[nqi].next_batch() {
                                pulls[nqi] += 1;
                                heap.push(Reverse((b.deliver_at, seq, nqi)));
                                staged_seq[nqi] = seq;
                                seq += 1;
                                pending[nqi] = Some(b);
                            }
                            if trace.enabled() {
                                trace.record(TraceEvent::FaultInjected {
                                    at: deliver_at,
                                    input: id.0,
                                    kind: FaultKind::Attach,
                                });
                            }
                        }
                        ControlAction::Stall { input, until } => {
                            let i = input as usize;
                            if i < self.queries.len() && !dead[i] {
                                self.queries[i].stall(until);
                                if until > stalled_until[i] {
                                    stalled_until[i] = until;
                                }
                                if trace.enabled() {
                                    trace.record(TraceEvent::FaultInjected {
                                        at: deliver_at,
                                        input,
                                        kind: FaultKind::Stall,
                                    });
                                }
                            }
                        }
                        ControlAction::CrashMerge { rebuild } => {
                            // Export, kill, rebuild: the queries and the
                            // delivery heap model the world outside the
                            // crashed operator and survive untouched.
                            if let Some(img) = self.lmerge.export_state() {
                                self.lmerge = rebuild(img);
                                if trace.enabled() {
                                    trace.record(TraceEvent::FaultInjected {
                                        at: deliver_at,
                                        input: u32::MAX,
                                        kind: FaultKind::CrashMerge,
                                    });
                                }
                            }
                        }
                    }
                }
                if trace.enabled() {
                    sync_health(self.lmerge.as_ref(), &mut health, trace, deliver_at);
                }
            }

            // A crashed input's queued work dies with it.
            if dead[qi] {
                continue;
            }
            // A stalled input's staged batch is re-timed to the stall end.
            if deliver_at < stalled_until[qi] {
                batch.deliver_at = stalled_until[qi];
                heap.push(Reverse((batch.deliver_at, seq, qi)));
                staged_seq[qi] = seq;
                seq += 1;
                pending[qi] = Some(batch);
                continue;
            }

            // Batch-level fault actions.
            let mut dropped = false;
            if hooks.enabled() {
                match hooks.on_deliver(qi as u32, deliver_at, &batch.elements) {
                    FaultAction::Deliver => {}
                    FaultAction::Drop => {
                        dropped = true;
                        if trace.enabled() {
                            trace.record(TraceEvent::FaultInjected {
                                at: deliver_at,
                                input: qi as u32,
                                kind: FaultKind::DropBatch,
                            });
                        }
                    }
                    FaultAction::Replace(elems) => {
                        batch.meta = BatchMeta::of(&elems);
                        batch.elements = elems;
                        if trace.enabled() {
                            trace.record(TraceEvent::FaultInjected {
                                at: deliver_at,
                                input: qi as u32,
                                kind: FaultKind::ReplaceBatch,
                            });
                        }
                    }
                    FaultAction::Delay(until) => {
                        if until > deliver_at {
                            if trace.enabled() {
                                trace.record(TraceEvent::FaultInjected {
                                    at: deliver_at,
                                    input: qi as u32,
                                    kind: FaultKind::DelayBatch,
                                });
                            }
                            batch.deliver_at = until;
                            heap.push(Reverse((until, seq, qi)));
                            staged_seq[qi] = seq;
                            seq += 1;
                            pending[qi] = Some(batch);
                            continue;
                        }
                    }
                }
            }

            if dropped {
                // Skip consumption entirely; the query still produces its
                // next batch below, so only this batch is lost.
                if let Some(b) = self.queries[qi].next_batch() {
                    pulls[qi] += 1;
                    heap.push(Reverse((b.deliver_at, seq, qi)));
                    staged_seq[qi] = seq;
                    seq += 1;
                    pending[qi] = Some(b);
                } else if trace.enabled() {
                    trace.record(TraceEvent::InputDrained {
                        at: deliver_at,
                        input: qi as u32,
                    });
                }
                continue;
            }

            // LMerge consumes the batch once it is both delivered and the
            // operator's core is free.
            let start = if deliver_at > lmerge_ready {
                deliver_at
            } else {
                lmerge_ready
            };
            out.clear();
            let data_in = batch.meta.data() as u64;
            // One batched push: per-batch counting/gating, and the indexed
            // variants' O(1) discard of wholly-frozen batches.
            self.lmerge
                .push_batch(StreamId(qi as u32), &batch.elements, &mut out);
            lmerge_ready =
                start.advance(self.config.lmerge_cost_us * batch.elements.len().max(1) as u64);
            metrics.input_series[qi].add(deliver_at, data_in);

            let data_out = out.iter().filter(|e| !e.is_stable()).count() as u64;
            if data_out > 0 {
                metrics.output_series.add(lmerge_ready, data_out);
                metrics.latency.record(lmerge_ready.since(batch.arrival));
            }

            if trace.enabled() {
                // Delivery-time events first, emission-time events second,
                // so the trace stays in virtual-time order.
                trace.record(TraceEvent::BatchDelivered {
                    at: deliver_at,
                    input: qi as u32,
                    elements: batch.elements.len() as u32,
                    data: data_in as u32,
                });
                let in_stable = self.lmerge.input_stable(StreamId(qi as u32));
                if in_stable > input_stable_hw[qi] {
                    input_stable_hw[qi] = in_stable;
                    trace.record(TraceEvent::StablePointAdvanced {
                        at: deliver_at,
                        scope: StableScope::Input(qi as u32),
                        stable: in_stable,
                    });
                }
                trace.record(TraceEvent::QueueDepthSampled {
                    at: deliver_at,
                    staged: heap.len() as u32,
                });
                for e in &out {
                    trace.record(TraceEvent::ElementEmitted {
                        at: lmerge_ready,
                        kind: kind_of(e),
                        vs: vs_of(e),
                    });
                }
                let out_stable = self.lmerge.max_stable();
                if out_stable > output_stable_hw {
                    output_stable_hw = out_stable;
                    trace.record(TraceEvent::StablePointAdvanced {
                        at: lmerge_ready,
                        scope: StableScope::Output,
                        stable: out_stable,
                    });
                }
            }

            // Spills that happened inside this push surface now, stamped
            // with the merge's virtual completion time. Drained even when
            // untraced so the mailbox stays bounded.
            if let Some(notices) = &self.spill_notices {
                for (input, entries) in notices.drain() {
                    if trace.enabled() {
                        trace.record(TraceEvent::StateSpilled {
                            at: lmerge_ready,
                            input,
                            entries,
                        });
                    }
                }
            }

            if hooks.enabled() {
                hooks.on_consumed(qi as u32, lmerge_ready, &batch.elements, &out);
                if trace.enabled() {
                    sync_health(self.lmerge.as_ref(), &mut health, trace, lmerge_ready);
                }
            }

            // Feedback propagation (Section V-D).
            if self.config.feedback {
                let fp = self.lmerge.feedback_point();
                if fp > last_feedback {
                    last_feedback = fp;
                    for q in &mut self.queries {
                        q.on_feedback(fp);
                    }
                    if trace.enabled() {
                        trace.record(TraceEvent::FeedbackPropagated {
                            at: lmerge_ready,
                            point: fp,
                        });
                    }
                }
            }

            delivered += 1;
            if self.config.mem_sample_every != 0
                && delivered.is_multiple_of(self.config.mem_sample_every)
            {
                let mem = self.lmerge.memory_bytes()
                    + self.queries.iter().map(Query::memory_bytes).sum::<usize>();
                metrics.peak_memory = metrics.peak_memory.max(mem);
                metrics.memory_samples.push((lmerge_ready, mem));
                if trace.enabled() {
                    trace.record(TraceEvent::MemorySampled {
                        at: lmerge_ready,
                        bytes: mem as u64,
                    });
                }
            }

            // Output complete? Then the remaining inputs are redundant.
            if self.lmerge.max_stable() == Time::INFINITY {
                metrics.output_complete_at = Some(lmerge_ready);
                break;
            }

            // Stage this query's next batch.
            if let Some(b) = self.queries[qi].next_batch() {
                pulls[qi] += 1;
                heap.push(Reverse((b.deliver_at, seq, qi)));
                staged_seq[qi] = seq;
                seq += 1;
                pending[qi] = Some(b);
            } else if trace.enabled() {
                trace.record(TraceEvent::InputDrained {
                    at: lmerge_ready,
                    input: qi as u32,
                });
            }

            // Offer a checkpoint cut now that the next batch is staged:
            // everything above this line is covered by the image,
            // everything below replays identically on resume.
            if sink.enabled() && sink.want(self.lmerge.max_stable(), delivered as u64) {
                if let Some(merge) = self.lmerge.export_state() {
                    let entries = merge.total_entries() as u64;
                    let image = RunImage {
                        merge,
                        exec: ExecutorImage {
                            lmerge_ready,
                            delivered: delivered as u64,
                            seq,
                            last_feedback,
                            input_stable_hw: input_stable_hw.clone(),
                            output_stable_hw,
                            pulls: pulls.clone(),
                            staged: pending
                                .iter()
                                .enumerate()
                                .map(|(i, p)| p.as_ref().map(|b| (b.deliver_at, staged_seq[i])))
                                .collect(),
                        },
                        cursors: Vec::new(),
                        egress: EgressImage::default(),
                    };
                    let saved = sink.save(image);
                    if trace.enabled() {
                        trace.record(TraceEvent::CheckpointTaken {
                            at: lmerge_ready,
                            seq: saved.seq,
                            entries,
                            delta: saved.delta,
                        });
                    }
                    if saved.halt {
                        // A modeled kill: no postlude, the trace just
                        // stops. Merge stats still reflect the state the
                        // checkpoint captured.
                        metrics.merge = self.lmerge.stats();
                        return metrics;
                    }
                }
            }
        }

        metrics.drained_at = self
            .queries
            .iter()
            .map(Query::core_ready)
            .max()
            .unwrap_or(VTime::ZERO)
            .max(lmerge_ready);
        // Final memory sample so short runs still record something.
        let mem = self.lmerge.memory_bytes()
            + self.queries.iter().map(Query::memory_bytes).sum::<usize>();
        metrics.peak_memory = metrics.peak_memory.max(mem);
        metrics.memory_samples.push((lmerge_ready, mem));
        metrics.merge = self.lmerge.stats();
        if trace.enabled() {
            // `mem_sample_every: 0` disables memory tracing entirely: the
            // recovery tests rely on it, because capacity-based accounting
            // (hash maps, scratch buffers) is not part of the restorable
            // state and may differ across a restore.
            if self.config.mem_sample_every != 0 {
                trace.record(TraceEvent::MemorySampled {
                    at: lmerge_ready,
                    bytes: mem as u64,
                });
            }
            trace.record(TraceEvent::RunCompleted {
                at: metrics.completion(),
            });
        }
        metrics
    }
}

/// Drain a single query with no merge at all — the "without LMerge"
/// baseline used by Figures 4 and 10.
pub fn run_single<P: Payload>(mut query: Query<P>) -> (Vec<Element<P>>, VTime) {
    let mut out = Vec::new();
    let mut end = VTime::ZERO;
    while let Some(b) = query.next_batch() {
        out.extend(b.elements);
        end = b.deliver_at;
    }
    (out, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::TimedElement;
    use lmerge_core::{LMergeR3, MergePolicy};
    use lmerge_temporal::reconstitute::tdb_of;

    type E = Element<&'static str>;

    fn timed(items: &[(u64, E)]) -> Vec<TimedElement<&'static str>> {
        items
            .iter()
            .map(|(at, e)| TimedElement::new(VTime(*at), e.clone()))
            .collect()
    }

    fn lmr3(n: usize) -> Box<dyn LogicalMerge<&'static str>> {
        Box::new(LMergeR3::with_policy(n, MergePolicy::paper_default()))
    }

    #[test]
    fn merges_two_identical_streams_without_duplicates() {
        // Two copies of one logical stream; the second lags by 500 µs.
        let s1 = timed(&[
            (0, E::insert("a", 1, 5)),
            (10, E::insert("b", 2, 6)),
            (20, E::stable(Time::INFINITY)),
        ]);
        let s2: Vec<_> = s1
            .iter()
            .map(|te| TimedElement::new(te.at.advance(500), te.element.clone()))
            .collect();
        let run = MergeRun::new(
            vec![Query::passthrough(s1), Query::passthrough(s2)],
            lmr3(2),
            RunConfig::default(),
        );
        let m = run.run();
        assert_eq!(m.merge.inserts_out, 2, "no duplicates");
        assert!(
            m.output_complete_at.is_some(),
            "stable(∞) completes the run"
        );
    }

    #[test]
    fn completion_follows_faster_input() {
        // Same logical stream; input 1 is 1s slower per element.
        let mk = |lag: u64| {
            timed(&[
                (lag, E::insert("a", 1, 5)),
                (10 + lag, E::stable(Time::INFINITY)),
            ])
        };
        let m = MergeRun::new(
            vec![Query::passthrough(mk(0)), Query::passthrough(mk(1_000_000))],
            lmr3(2),
            RunConfig::default(),
        )
        .run();
        let done = m.output_complete_at.expect("completed");
        assert!(
            done < VTime::from_millis(100),
            "output completed from the fast input, got {done}"
        );
    }

    #[test]
    fn merged_output_reconstitutes() {
        let s = timed(&[
            (0, E::insert("a", 1, 5)),
            (5, E::insert("b", 2, 9)),
            (9, E::adjust("b", 2, 9, 7)),
            (12, E::stable(Time::INFINITY)),
        ]);
        // Run and capture output through a collecting LMerge: reuse the
        // operator directly for output capture.
        let mut lm = LMergeR3::new(1);
        let mut all = Vec::new();
        for te in &s {
            lm.push(StreamId(0), &te.element, &mut all);
        }
        let tdb = tdb_of(&all).unwrap();
        assert_eq!(tdb.len(), 2);
    }

    #[test]
    fn run_single_drains_everything() {
        let s = timed(&[(0, E::insert("a", 1, 5)), (7, E::stable(9))]);
        let (out, end) = run_single(Query::passthrough(s));
        assert_eq!(out.len(), 2);
        assert!(end > VTime::ZERO);
    }

    #[test]
    fn traced_run_records_the_story() {
        use lmerge_obs::Tracer;
        let s1 = timed(&[
            (0, E::insert("a", 1, 5)),
            (10, E::stable(3)),
            (20, E::insert("b", 4, 8)),
            (30, E::stable(Time::INFINITY)),
        ]);
        let s2: Vec<_> = s1
            .iter()
            .map(|te| TimedElement::new(te.at.advance(5_000), te.element.clone()))
            .collect();
        let mut tracer = Tracer::new();
        let m = MergeRun::new(
            vec![Query::passthrough(s1), Query::passthrough(s2)],
            lmr3(2),
            RunConfig {
                feedback: true,
                ..RunConfig::default()
            },
        )
        .run_with(&mut tracer);

        let events: Vec<TraceEvent> = tracer.events().copied().collect();
        let batches = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::BatchDelivered { .. }))
            .count();
        assert!(batches >= 4, "deliveries traced, got {batches}");
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::ElementEmitted { .. })),
            "emissions traced"
        );
        assert!(
            events.iter().any(|e| matches!(
                e,
                TraceEvent::StablePointAdvanced {
                    scope: StableScope::Output,
                    ..
                }
            )),
            "output stable advance traced"
        );
        assert!(
            events.iter().any(|e| matches!(
                e,
                TraceEvent::StablePointAdvanced {
                    scope: StableScope::Input(0),
                    ..
                }
            )),
            "per-input stable advance traced"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::FeedbackPropagated { .. })),
            "feedback traced"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::RunCompleted { .. })),
            "completion traced"
        );
        // The gauges agree with the merge's own view of progress.
        assert_eq!(tracer.lag().output_stable(), Time::INFINITY);
        assert!(m.output_complete_at.is_some());
        // Virtual timestamps are monotone within the trace.
        let times: Vec<_> = events.iter().map(|e| e.at()).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted, "trace is in virtual-time order");
    }

    #[test]
    fn untraced_run_equals_traced_run() {
        use lmerge_obs::Tracer;
        let mk = || {
            vec![
                Query::passthrough(timed(&[
                    (0, E::insert("a", 1, 5)),
                    (10, E::insert("b", 2, 6)),
                    (20, E::stable(Time::INFINITY)),
                ])),
                Query::passthrough(timed(&[
                    (3, E::insert("a", 1, 5)),
                    (13, E::insert("b", 2, 6)),
                    (23, E::stable(Time::INFINITY)),
                ])),
            ]
        };
        let plain = MergeRun::new(mk(), lmr3(2), RunConfig::default()).run();
        let mut tracer = Tracer::new();
        let traced = MergeRun::new(mk(), lmr3(2), RunConfig::default()).run_with(&mut tracer);
        assert_eq!(plain.merge, traced.merge, "tracing must not change the run");
        assert_eq!(plain.output_complete_at, traced.output_complete_at);
        assert_eq!(plain.latency, traced.latency);
    }

    #[test]
    fn hooks_can_crash_and_rejoin_an_input() {
        use crate::hooks::{ControlAction, NoHooks, RunHooks};
        use lmerge_obs::{FaultKind, Tracer};

        // Input 1 crashes at vt=15 (losing its queued elements) and a
        // replacement replica rejoins at vt=25 with the full feed.
        struct CrashRejoin {
            crashed: bool,
            rejoined: bool,
            feed: Vec<TimedElement<&'static str>>,
        }
        impl RunHooks<&'static str> for CrashRejoin {
            fn enabled(&self) -> bool {
                true
            }
            fn control(&mut self, at: VTime, actions: &mut Vec<ControlAction<&'static str>>) {
                if !self.crashed && at >= VTime(15) {
                    self.crashed = true;
                    actions.push(ControlAction::Detach(StreamId(1)));
                }
                if self.crashed && !self.rejoined && at >= VTime(25) {
                    self.rejoined = true;
                    actions.push(ControlAction::Attach {
                        join_time: Time::MIN,
                        source: std::mem::take(&mut self.feed),
                    });
                }
            }
        }

        let feed = |lag: u64| {
            timed(&[
                (lag, E::insert("a", 1, 5)),
                (10 + lag, E::insert("b", 2, 6)),
                (20 + lag, E::insert("c", 3, 7)),
                (30 + lag, E::insert("d", 4, 8)),
                (40 + lag, E::insert("e", 5, 9)),
                (80 + lag, E::stable(Time::INFINITY)),
            ])
        };
        let mut hooks = CrashRejoin {
            crashed: false,
            rejoined: false,
            feed: feed(0),
        };
        let mut tracer = Tracer::new();
        let m = MergeRun::new(
            vec![Query::passthrough(feed(0)), Query::passthrough(feed(5))],
            lmr3(2),
            RunConfig::default(),
        )
        .run_with_hooks(&mut tracer, &mut hooks);
        assert!(m.output_complete_at.is_some(), "clean input completes");
        assert_eq!(m.merge.inserts_out, 5, "no duplicates despite rejoin");
        let faults: Vec<FaultKind> = tracer
            .events()
            .filter_map(|e| match e {
                TraceEvent::FaultInjected { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert!(faults.contains(&FaultKind::Detach), "crash traced");
        assert!(faults.contains(&FaultKind::Attach), "rejoin traced");
        assert!(
            tracer
                .events()
                .any(|e| matches!(e, TraceEvent::InputHealthChanged { input: 1, .. })),
            "health transition traced"
        );

        // The same topology under NoHooks is byte-for-byte the plain run.
        let plain = MergeRun::new(
            vec![Query::passthrough(feed(0)), Query::passthrough(feed(5))],
            lmr3(2),
            RunConfig::default(),
        )
        .run_with_hooks(&mut NullSink, &mut NoHooks);
        let wrapper = MergeRun::new(
            vec![Query::passthrough(feed(0)), Query::passthrough(feed(5))],
            lmr3(2),
            RunConfig::default(),
        )
        .run();
        assert_eq!(plain.merge, wrapper.merge);
    }

    #[test]
    fn hooks_drop_delay_and_stall_batches() {
        use crate::hooks::{ControlAction, FaultAction, RunHooks};

        // Drop input 1's first batch, delay its second, stall it afterwards;
        // the merged output must still complete from input 0 without dupes.
        struct Mischief {
            seen: u32,
            stalled: bool,
        }
        impl RunHooks<&'static str> for Mischief {
            fn enabled(&self) -> bool {
                true
            }
            fn on_deliver(
                &mut self,
                input: u32,
                at: VTime,
                _elements: &[Element<&'static str>],
            ) -> FaultAction<&'static str> {
                if input != 1 {
                    return FaultAction::Deliver;
                }
                self.seen += 1;
                match self.seen {
                    1 => FaultAction::Drop,
                    2 => FaultAction::Delay(at.advance(100)),
                    _ => FaultAction::Deliver,
                }
            }
            fn control(&mut self, at: VTime, actions: &mut Vec<ControlAction<&'static str>>) {
                if !self.stalled && at >= VTime(20) {
                    self.stalled = true;
                    actions.push(ControlAction::Stall {
                        input: 1,
                        until: VTime(500),
                    });
                }
            }
        }

        let feed = |lag: u64| {
            timed(&[
                (lag, E::insert("a", 1, 5)),
                (10 + lag, E::insert("b", 2, 6)),
                (20 + lag, E::insert("c", 3, 7)),
                (30 + lag, E::stable(Time::INFINITY)),
            ])
        };
        let m = MergeRun::new(
            vec![Query::passthrough(feed(0)), Query::passthrough(feed(2))],
            lmr3(2),
            RunConfig::default(),
        )
        .run_with_hooks(
            &mut NullSink,
            &mut Mischief {
                seen: 0,
                stalled: false,
            },
        );
        assert!(m.output_complete_at.is_some());
        assert_eq!(m.merge.inserts_out, 3, "faults on a replica lose nothing");
    }

    #[test]
    fn kill_and_resume_is_byte_identical() {
        use crate::durability::{CheckpointSave, CheckpointSink, RunImage};
        use lmerge_obs::export::to_jsonl;
        use lmerge_obs::Tracer;

        // Checkpoint on every output stable advance; optionally halt at a
        // given checkpoint seq to model the kill.
        struct MemSink {
            last_stable: Time,
            next_seq: u64,
            halt_at: Option<u64>,
            images: Vec<RunImage<&'static str>>,
        }
        impl MemSink {
            fn new(halt_at: Option<u64>) -> MemSink {
                MemSink {
                    last_stable: Time::MIN,
                    next_seq: 0,
                    halt_at,
                    images: Vec::new(),
                }
            }
        }
        impl CheckpointSink<&'static str> for MemSink {
            fn enabled(&self) -> bool {
                true
            }
            fn want(&mut self, stable: Time, _delivered: u64) -> bool {
                if stable > self.last_stable && stable != Time::INFINITY {
                    self.last_stable = stable;
                    true
                } else {
                    false
                }
            }
            fn save(&mut self, image: RunImage<&'static str>) -> CheckpointSave {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.images.push(image);
                CheckpointSave {
                    seq,
                    delta: false,
                    halt: self.halt_at == Some(seq),
                }
            }
        }

        let feed = |lag: u64| {
            timed(&[
                (lag, E::insert("a", 1, 5)),
                (10 + lag, E::stable(2)),
                (20 + lag, E::insert("b", 3, 7)),
                (30 + lag, E::stable(4)),
                (40 + lag, E::insert("c", 5, 9)),
                (50 + lag, E::stable(6)),
                (60 + lag, E::stable(Time::INFINITY)),
            ])
        };
        let queries = || vec![Query::passthrough(feed(0)), Query::passthrough(feed(7))];
        // Memory sampling off: capacity-based accounting is not part of
        // the restorable state.
        let config = RunConfig {
            mem_sample_every: 0,
            ..RunConfig::default()
        };

        // Reference: checkpoints at every stable advance, never killed.
        let mut ref_trace = Tracer::new();
        let mut ref_sink = MemSink::new(None);
        let ref_metrics = MergeRun::new(queries(), lmr3(2), config)
            .run_with_checkpoints(&mut ref_trace, &mut ref_sink);
        assert!(ref_sink.next_seq >= 2, "multiple checkpoints taken");

        // Killed at checkpoint 1, then resumed from its image.
        let mut kill_trace = Tracer::new();
        let mut kill_sink = MemSink::new(Some(1));
        MergeRun::new(queries(), lmr3(2), config)
            .run_with_checkpoints(&mut kill_trace, &mut kill_sink);
        let image = kill_sink.images.last().unwrap().clone();

        let mut restored = lmr3(2);
        assert!(restored.restore_state(image.merge.clone()), "restorable");
        let mut resume_trace = Tracer::new();
        let mut resume_sink = MemSink::new(None);
        resume_sink.last_stable = image.merge.max_stable;
        resume_sink.next_seq = 2;
        let resumed_metrics = MergeRun::resumed(queries(), restored, config, image.exec)
            .run_with_checkpoints(&mut resume_trace, &mut resume_sink);

        // The killed prefix plus the resumed tail is the unkilled trace.
        let concat = format!(
            "{}{}",
            to_jsonl(kill_trace.events()),
            to_jsonl(resume_trace.events())
        );
        assert_eq!(to_jsonl(ref_trace.events()), concat);
        assert_eq!(ref_metrics.merge, resumed_metrics.merge, "stats restore");
        assert_eq!(
            ref_metrics.output_complete_at,
            resumed_metrics.output_complete_at
        );
    }

    #[test]
    fn input_series_records_deliveries() {
        let s = timed(&[(0, E::insert("a", 1, 5)), (1_500_000, E::insert("b", 2, 6))]);
        let m = MergeRun::new(vec![Query::passthrough(s)], lmr3(1), RunConfig::default()).run();
        assert_eq!(m.input_series[0].at(0), 1);
        assert_eq!(m.input_series[0].at(1), 1);
        assert_eq!(m.merge.inserts_out, 2);
        assert!(m.output_complete_at.is_none(), "no final punctuation");
        assert!(m.drained_at >= VTime(1_500_000));
    }
}
