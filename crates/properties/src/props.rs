//! The stream property vector and the R0–R4 restriction spectrum.

/// How `Vs` timestamps progress along the physical stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord, Hash)]
pub enum Ordering {
    /// Strictly increasing `Vs`: no duplicate timestamps at all.
    StrictlyIncreasing,
    /// Non-decreasing `Vs`: duplicate timestamps possible.
    NonDecreasing,
    /// No ordering guarantee beyond what `stable()` punctuation imposes.
    None,
}

/// Compile-time properties of a physical stream (Section III-C).
///
/// The default ([`StreamProperties::unconstrained`]) claims nothing, which
/// selects the fully general R4 algorithm.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct StreamProperties {
    /// Only `insert` and `stable` elements appear (no revisions).
    pub insert_only: bool,
    /// Timestamp ordering of data elements.
    pub ordering: Ordering,
    /// Among elements with equal `Vs`, the order is deterministic — the same
    /// on every physical copy of the stream (e.g. Top-k rank order).
    pub deterministic_ties: bool,
    /// `(Vs, Payload)` is a key of every prefix TDB (no duplicate events).
    pub key_vs_payload: bool,
}

impl StreamProperties {
    /// No guarantees at all (the R4 case).
    pub const fn unconstrained() -> StreamProperties {
        StreamProperties {
            insert_only: false,
            ordering: Ordering::None,
            deterministic_ties: false,
            key_vs_payload: false,
        }
    }

    /// Insert-only with strictly increasing timestamps (the R0 case).
    pub const fn r0() -> StreamProperties {
        StreamProperties {
            insert_only: true,
            ordering: Ordering::StrictlyIncreasing,
            deterministic_ties: true,
            key_vs_payload: true,
        }
    }

    /// Insert-only, non-decreasing, deterministic tie order (the R1 case).
    pub const fn r1() -> StreamProperties {
        StreamProperties {
            insert_only: true,
            ordering: Ordering::NonDecreasing,
            deterministic_ties: true,
            key_vs_payload: false,
        }
    }

    /// Insert-only, non-decreasing, `(Vs, Payload)` key (the R2 case).
    pub const fn r2() -> StreamProperties {
        StreamProperties {
            insert_only: true,
            ordering: Ordering::NonDecreasing,
            deterministic_ties: false,
            key_vs_payload: true,
        }
    }

    /// Arbitrary elements and order, `(Vs, Payload)` key (the R3 case).
    pub const fn r3() -> StreamProperties {
        StreamProperties {
            insert_only: false,
            ordering: Ordering::None,
            deterministic_ties: false,
            key_vs_payload: true,
        }
    }

    /// The meet of two property vectors: what survives when a stream may be
    /// either of the two (used when unioning plan branches).
    #[must_use]
    pub fn meet(self, other: StreamProperties) -> StreamProperties {
        StreamProperties {
            insert_only: self.insert_only && other.insert_only,
            ordering: self.ordering.max(other.ordering),
            deterministic_ties: self.deterministic_ties && other.deterministic_ties,
            key_vs_payload: self.key_vs_payload && other.key_vs_payload,
        }
    }

    /// Whether every guarantee of `weaker` is also made by `self`.
    pub fn implies(self, weaker: StreamProperties) -> bool {
        (!weaker.insert_only || self.insert_only)
            && self.ordering <= weaker.ordering
            && (!weaker.deterministic_ties || self.deterministic_ties)
            && (!weaker.key_vs_payload || self.key_vs_payload)
    }
}

impl Default for StreamProperties {
    fn default() -> Self {
        StreamProperties::unconstrained()
    }
}

/// The paper's restriction spectrum (Section III-C): which LMerge algorithm
/// family is applicable. Ordered from most restricted (cheapest) to fully
/// general.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum RLevel {
    /// Only insert/stable, strictly increasing `Vs`.
    R0,
    /// Insert/stable, non-decreasing `Vs`, deterministic tie order.
    R1,
    /// Insert/stable, non-decreasing `Vs`, `(Vs, Payload)` key.
    R2,
    /// All element kinds, arbitrary order, `(Vs, Payload)` key.
    R3,
    /// No restrictions; TDB is a multiset.
    R4,
}

impl RLevel {
    /// All levels, most restricted first.
    pub const ALL: [RLevel; 5] = [RLevel::R0, RLevel::R1, RLevel::R2, RLevel::R3, RLevel::R4];
}

impl std::fmt::Display for RLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Choose the most restricted (cheapest) LMerge algorithm that is sound for
/// streams with the given properties (Section IV-G).
pub fn select(props: StreamProperties) -> RLevel {
    if props.insert_only && props.ordering == Ordering::StrictlyIncreasing {
        RLevel::R0
    } else if props.insert_only
        && props.ordering <= Ordering::NonDecreasing
        && props.deterministic_ties
    {
        RLevel::R1
    } else if props.insert_only && props.ordering <= Ordering::NonDecreasing && props.key_vs_payload
    {
        RLevel::R2
    } else if props.key_vs_payload {
        RLevel::R3
    } else {
        RLevel::R4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_vectors_select_their_level() {
        assert_eq!(select(StreamProperties::r0()), RLevel::R0);
        assert_eq!(select(StreamProperties::r1()), RLevel::R1);
        assert_eq!(select(StreamProperties::r2()), RLevel::R2);
        assert_eq!(select(StreamProperties::r3()), RLevel::R3);
        assert_eq!(select(StreamProperties::unconstrained()), RLevel::R4);
    }

    #[test]
    fn strictly_increasing_beats_key() {
        // A strictly ordered insert-only stream is R0 even with a key.
        let mut p = StreamProperties::r0();
        p.key_vs_payload = true;
        assert_eq!(select(p), RLevel::R0);
    }

    #[test]
    fn adjusts_force_r3_or_r4() {
        let mut p = StreamProperties::r2();
        p.insert_only = false;
        assert_eq!(select(p), RLevel::R3, "key survives → R3");
        p.key_vs_payload = false;
        assert_eq!(select(p), RLevel::R4);
    }

    #[test]
    fn disorder_without_key_is_r4_even_insert_only() {
        let p = StreamProperties {
            insert_only: true,
            ordering: Ordering::None,
            deterministic_ties: false,
            key_vs_payload: false,
        };
        assert_eq!(select(p), RLevel::R4);
    }

    #[test]
    fn meet_is_pessimistic() {
        let m = StreamProperties::r0().meet(StreamProperties::r3());
        assert!(!m.insert_only);
        assert_eq!(m.ordering, Ordering::None);
        assert!(m.key_vs_payload);
    }

    #[test]
    fn implies_is_reflexive_and_ordered() {
        let r0 = StreamProperties::r0();
        let r4 = StreamProperties::unconstrained();
        assert!(r0.implies(r0));
        assert!(r0.implies(r4), "R0 guarantees everything R4 asks (nothing)");
        assert!(!r4.implies(r0));
    }

    #[test]
    fn rlevel_ordering() {
        assert!(RLevel::R0 < RLevel::R4);
        assert_eq!(RLevel::ALL.len(), 5);
        assert_eq!(format!("{}", RLevel::R3), "R3");
    }
}
