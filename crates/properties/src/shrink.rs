//! A minimizing shrinker for seeded property-test failures.
//!
//! The repo's property loops drive randomized workloads from integer knobs
//! (event count, input count, divergence windows, seeds). When a seed
//! fails, the raw counterexample is usually far larger than it needs to
//! be. [`minimize`] performs deterministic, replay-based shrinking: each
//! knob is independently driven toward its minimum by binary search, and
//! the sweep repeats until no knob can shrink further — a greedy fixpoint,
//! the classic QuickCheck strategy adapted to knob vectors.
//!
//! The shrinker never mutates the failing predicate's inputs behind its
//! back: it only re-invokes the caller's closure with candidate knob
//! vectors, so anything reproducible from the knobs (including RNG seeds)
//! shrinks soundly.

/// One shrinkable integer dimension of a failing case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Knob {
    /// Display name, e.g. `"events"` or `"seed"`.
    pub name: &'static str,
    /// Current (failing) value.
    pub value: u64,
    /// The smallest value worth trying (e.g. 1 event, 2 inputs).
    pub min: u64,
}

impl Knob {
    /// A knob at `value` that may shrink down to `min`.
    pub fn new(name: &'static str, value: u64, min: u64) -> Knob {
        Knob {
            name,
            value: value.max(min),
            min,
        }
    }
}

/// Upper bound on predicate invocations during one [`minimize`] call, so a
/// slow reproduction can't stall a test run indefinitely.
const MAX_PROBES: usize = 256;

/// Shrink a failing knob vector to a (locally) minimal one.
///
/// `fails(knobs)` must return `true` iff the candidate still reproduces
/// the failure; it is first re-checked on the initial vector (a shrinker
/// that "shrinks" a non-failure would be lying). Each knob is shrunk by
/// binary search toward its `min` while the others stay fixed; the sweep
/// repeats until a full pass makes no progress or the probe budget runs
/// out. Returns the minimized vector and the number of probes spent.
pub fn minimize<F>(mut knobs: Vec<Knob>, mut fails: F) -> (Vec<Knob>, usize)
where
    F: FnMut(&[Knob]) -> bool,
{
    let mut probes = 1;
    if !fails(&knobs) {
        return (knobs, probes);
    }
    loop {
        let mut progressed = false;
        for i in 0..knobs.len() {
            // Invariant: knobs[i].value fails, everything in (value, hi]
            // is unexplored. Binary-search the smallest failing value.
            let mut lo = knobs[i].min;
            while lo < knobs[i].value && probes < MAX_PROBES {
                let mid = lo + (knobs[i].value - lo) / 2;
                let mut candidate = knobs.clone();
                candidate[i].value = mid;
                probes += 1;
                if fails(&candidate) {
                    knobs = candidate;
                    progressed = true;
                } else {
                    lo = mid + 1;
                }
            }
            if probes >= MAX_PROBES {
                return (knobs, probes);
            }
        }
        if !progressed {
            return (knobs, probes);
        }
    }
}

/// Render a knob vector for a failure message, e.g.
/// `events=3 inputs=2 seed=17`.
pub fn describe(knobs: &[Knob]) -> String {
    knobs
        .iter()
        .map(|k| format!("{}={}", k.name, k.value))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_smallest_failing_value() {
        // Fails whenever events ≥ 37: the shrinker must land exactly on 37.
        let knobs = vec![Knob::new("events", 10_000, 1)];
        let (min, probes) = minimize(knobs, |k| k[0].value >= 37);
        assert_eq!(min[0].value, 37);
        assert!(probes <= 32, "binary search, not linear: {probes} probes");
    }

    #[test]
    fn shrinks_coupled_knobs_to_a_fixpoint() {
        // Fails when the product is ≥ 100 — shrinking one knob constrains
        // the other, so a single sweep is not enough.
        let knobs = vec![Knob::new("a", 1000, 1), Knob::new("b", 1000, 1)];
        let (min, _) = minimize(knobs, |k| k[0].value * k[1].value >= 100);
        assert!(min[0].value * min[1].value >= 100, "still failing");
        assert!(
            (min[0].value - 1) * min[1].value < 100 && min[0].value * (min[1].value - 1) < 100,
            "locally minimal: {}",
            describe(&min)
        );
    }

    #[test]
    fn refuses_to_shrink_a_passing_case() {
        let knobs = vec![Knob::new("n", 500, 0)];
        let (out, probes) = minimize(knobs.clone(), |_| false);
        assert_eq!(out, knobs, "non-failure comes back untouched");
        assert_eq!(probes, 1);
    }

    #[test]
    fn respects_knob_minimums_and_probe_budget() {
        let knobs = vec![Knob::new("inputs", 64, 2)];
        let (min, _) = minimize(knobs, |_| true);
        assert_eq!(min[0].value, 2, "always-failing shrinks to the floor");

        let wide: Vec<Knob> = (0..50)
            .map(|_| Knob::new("k", u32::MAX as u64, 0))
            .collect();
        let (_, probes) = minimize(wide, |k| k.iter().any(|x| x.value > 0));
        assert!(probes <= MAX_PROBES, "budget bounds the search");
    }

    #[test]
    fn describe_formats_name_value_pairs() {
        let knobs = vec![Knob::new("events", 3, 1), Knob::new("seed", 17, 0)];
        assert_eq!(describe(&knobs), "events=3 seed=17");
    }
}
