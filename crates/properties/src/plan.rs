//! Logical-plan description and property inference (Section IV-G).
//!
//! The paper derives stream properties by compile-time analysis of the query
//! plan feeding each LMerge input. This module models just enough of a plan
//! to express the paper's six illustrative scenarios and infers the property
//! vector of the plan's output stream.

use crate::props::{Ordering, StreamProperties};

/// A node of a logical query plan, describing the stream it produces.
#[derive(Clone, Debug)]
pub enum PlanNode {
    /// A data source publishing its own properties ("every input stream
    /// publishes properties that indicate whether the stream is ordered,
    /// has adjust() elements, or has duplicate timestamps").
    Source(StreamProperties),
    /// Selection: drops events, changes nothing else.
    Filter(Box<PlanNode>),
    /// Projection / payload mapping. `injective` records whether distinct
    /// input payloads map to distinct output payloads (preserves keys).
    Project {
        /// Upstream plan.
        input: Box<PlanNode>,
        /// Whether the mapping is injective on payloads.
        injective: bool,
    },
    /// A windowed aggregate (e.g. count, sum): one output event per window.
    ///
    /// * Over an *ordered* input, a single-valued aggregate emits one event
    ///   per strictly increasing timestamp → R0 (paper scenario 3).
    /// * `multi_valued` (e.g. Top-k) emits several events per timestamp in
    ///   deterministic rank order → R1 (scenario 4).
    /// * `grouped` emits one event per group per timestamp; tie order across
    ///   groups is nondeterministic but `(Vs, Payload)` is a key → R2 over
    ///   ordered inputs (scenario 5), R3 over disordered ones (scenario 6).
    /// * Over a disordered input the aggregate must revise earlier output,
    ///   so the result carries `adjust` elements.
    Aggregate {
        /// Upstream plan.
        input: Box<PlanNode>,
        /// Grouped aggregation (e.g. per machine id).
        grouped: bool,
        /// Multi-valued aggregate such as Top-k.
        multi_valued: bool,
    },
    /// The reordering/cleansing operator: buffers a disordered stream and
    /// releases fully frozen elements in deterministic timestamp order
    /// (paper scenario 2 and Section VI-D).
    Cleanse(Box<PlanNode>),
    /// Union of several streams: interleaving is nondeterministic.
    Union(Vec<PlanNode>),
    /// Temporal join of two streams.
    Join(Box<PlanNode>, Box<PlanNode>),
    /// Lifetime alteration (e.g. clipping every event to a fixed duration);
    /// leaves `Vs` and payloads alone.
    AlterLifetime(Box<PlanNode>),
}

impl PlanNode {
    /// A source with the given properties.
    pub fn source(props: StreamProperties) -> PlanNode {
        PlanNode::Source(props)
    }

    /// Wrap in a filter.
    #[must_use]
    pub fn filter(self) -> PlanNode {
        PlanNode::Filter(Box::new(self))
    }

    /// Wrap in a projection.
    #[must_use]
    pub fn project(self, injective: bool) -> PlanNode {
        PlanNode::Project {
            input: Box::new(self),
            injective,
        }
    }

    /// Wrap in an aggregate.
    #[must_use]
    pub fn aggregate(self, grouped: bool, multi_valued: bool) -> PlanNode {
        PlanNode::Aggregate {
            input: Box::new(self),
            grouped,
            multi_valued,
        }
    }

    /// Wrap in a cleanse (reorder) operator.
    #[must_use]
    pub fn cleanse(self) -> PlanNode {
        PlanNode::Cleanse(Box::new(self))
    }

    /// Wrap in a lifetime alteration.
    #[must_use]
    pub fn alter_lifetime(self) -> PlanNode {
        PlanNode::AlterLifetime(Box::new(self))
    }
}

/// Infer the property vector of the stream a plan produces.
pub fn infer(plan: &PlanNode) -> StreamProperties {
    match plan {
        PlanNode::Source(p) => *p,
        // Filtering preserves every property.
        PlanNode::Filter(input) => infer(input),
        PlanNode::Project { input, injective } => {
            let mut p = infer(input);
            if !injective {
                // Distinct events may collapse onto the same payload:
                // the (Vs, Payload) key and deterministic tie order die.
                p.key_vs_payload = false;
                p.deterministic_ties = false;
            }
            p
        }
        PlanNode::Aggregate {
            input,
            grouped,
            multi_valued,
        } => {
            let input_props = infer(input);
            let in_order = input_props.ordering != Ordering::None && input_props.insert_only;
            if in_order {
                if *multi_valued {
                    // Scenario 4: Top-k over ordered input — duplicate
                    // timestamps in deterministic rank order (R1); the same
                    // payload can recur across ranks, so no key.
                    StreamProperties {
                        insert_only: true,
                        ordering: Ordering::NonDecreasing,
                        deterministic_ties: true,
                        key_vs_payload: false,
                    }
                } else if *grouped {
                    // Scenario 5: grouped aggregation over ordered input —
                    // (Vs, Payload) is a key (group id ⊂ payload) but tie
                    // order across groups is nondeterministic (R2).
                    StreamProperties {
                        insert_only: true,
                        ordering: Ordering::NonDecreasing,
                        deterministic_ties: false,
                        key_vs_payload: true,
                    }
                } else {
                    // Scenario 3: windowed count over ordered input — one
                    // event per strictly increasing timestamp (R0).
                    StreamProperties::r0()
                }
            } else {
                // Disordered (or revising) input: the aggregate revises its
                // earlier output with adjust elements (the paper's
                // aggressive aggregate), so insert-only and ordering are
                // lost. Grouping or single-valuedness keeps (Vs, Payload) a
                // key → R3 (scenario 6); multi-valued keeps duplicates → R4.
                StreamProperties {
                    insert_only: false,
                    ordering: Ordering::None,
                    deterministic_ties: false,
                    key_vs_payload: !*multi_valued,
                }
            }
        }
        PlanNode::Cleanse(input) => {
            // Scenario 2: Cleanse buffers until stable and releases in
            // deterministic (timestamp, payload) order; output is
            // insert-only and non-decreasing, keeping any key the input had.
            let mut p = infer(input);
            p.insert_only = true;
            p.ordering = Ordering::NonDecreasing;
            p.deterministic_ties = true;
            p
        }
        PlanNode::Union(inputs) => {
            // Interleaving is nondeterministic; duplicates across branches
            // are possible, and ordering across branches is lost.
            let mut p = inputs
                .iter()
                .map(infer)
                .reduce(StreamProperties::meet)
                .unwrap_or_else(StreamProperties::unconstrained);
            p.ordering = Ordering::None;
            p.deterministic_ties = false;
            p.key_vs_payload = false;
            p
        }
        PlanNode::Join(l, r) => {
            // A temporal join clips lifetimes as matches resolve, producing
            // adjusts; output order depends on arrival interleaving.
            let p = infer(l).meet(infer(r));
            StreamProperties {
                insert_only: false,
                ordering: Ordering::None,
                deterministic_ties: false,
                // Join results concatenate payloads: distinct pairs stay
                // distinct only if both sides had keys.
                key_vs_payload: p.key_vs_payload,
            }
        }
        PlanNode::AlterLifetime(input) => {
            // Vs and payload untouched; only Ve changes at compile time, so
            // insert-only and ordering and keys survive.
            infer(input)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{select, RLevel};

    fn ordered_source() -> PlanNode {
        PlanNode::source(StreamProperties::r0())
    }

    fn disordered_source() -> PlanNode {
        PlanNode::source(StreamProperties {
            insert_only: true,
            ordering: Ordering::None,
            deterministic_ties: false,
            key_vs_payload: false,
        })
    }

    #[test]
    fn scenario1_source_properties_pass_through() {
        assert_eq!(select(infer(&ordered_source())), RLevel::R0);
        assert_eq!(select(infer(&disordered_source())), RLevel::R4);
    }

    #[test]
    fn scenario2_cleanse_enables_r1() {
        let plan = disordered_source().cleanse();
        assert_eq!(select(infer(&plan)), RLevel::R1);
    }

    #[test]
    fn scenario3_windowed_count_over_ordered_is_r0() {
        let plan = ordered_source().aggregate(false, false);
        assert_eq!(select(infer(&plan)), RLevel::R0);
    }

    #[test]
    fn scenario4_topk_over_ordered_is_r1() {
        let plan = ordered_source().aggregate(false, true);
        assert_eq!(select(infer(&plan)), RLevel::R1);
    }

    #[test]
    fn scenario5_grouped_agg_over_ordered_is_r2() {
        let plan = ordered_source().aggregate(true, false);
        assert_eq!(select(infer(&plan)), RLevel::R2);
    }

    #[test]
    fn scenario6_grouped_agg_over_disordered_is_r3() {
        let plan = disordered_source().aggregate(true, false);
        assert_eq!(select(infer(&plan)), RLevel::R3);
    }

    #[test]
    fn filter_preserves_properties() {
        let plan = ordered_source().filter();
        assert_eq!(infer(&plan), StreamProperties::r0());
    }

    #[test]
    fn noninjective_projection_drops_key() {
        let plan = ordered_source().aggregate(true, false).project(false);
        let p = infer(&plan);
        assert!(!p.key_vs_payload);
        assert_eq!(select(p), RLevel::R4);
        let keeps = ordered_source().aggregate(true, false).project(true);
        assert_eq!(select(infer(&keeps)), RLevel::R2);
    }

    #[test]
    fn union_loses_order_and_key() {
        let plan = PlanNode::Union(vec![ordered_source(), ordered_source()]);
        let p = infer(&plan);
        assert_eq!(p.ordering, Ordering::None);
        assert!(!p.key_vs_payload);
        assert!(
            p.insert_only,
            "union of insert-only inputs stays insert-only"
        );
        assert_eq!(select(p), RLevel::R4);
    }

    #[test]
    fn join_produces_adjusts() {
        let plan = PlanNode::Join(Box::new(ordered_source()), Box::new(ordered_source()));
        let p = infer(&plan);
        assert!(!p.insert_only);
        assert_eq!(select(p), RLevel::R3, "both sides keyed → key survives");
    }

    #[test]
    fn multi_valued_agg_over_disordered_is_r4() {
        let plan = disordered_source().aggregate(false, true);
        assert_eq!(select(infer(&plan)), RLevel::R4);
    }

    #[test]
    fn alter_lifetime_is_transparent() {
        let plan = ordered_source().aggregate(true, false).alter_lifetime();
        assert_eq!(select(infer(&plan)), RLevel::R2);
    }

    #[test]
    fn cleanse_after_aggregate_restores_r1() {
        // The C+LMR1 configuration of Section VI-D: disordered input through
        // an aggregate (R3 output) then Cleanse at each LMerge input.
        let plan = disordered_source().aggregate(true, false).cleanse();
        assert_eq!(select(infer(&plan)), RLevel::R1);
    }
}
