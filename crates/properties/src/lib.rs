//! Compile-time stream properties and LMerge algorithm selection.
//!
//! Section III-C of the paper observes that properties of the input streams
//! — ordering, absence of revisions, key constraints — "may lead to simpler
//! or less space-intensive methods for LMerge", and Section IV-G sketches
//! how such properties are *derived from query plans* rather than stipulated.
//!
//! This crate provides:
//! * [`props::StreamProperties`] — the property vector a stream can carry;
//! * [`props::RLevel`] — the paper's restriction spectrum R0–R4;
//! * [`props::select`] — choose the weakest-state LMerge algorithm that is
//!   sound for a given property vector;
//! * [`plan`] — a lightweight logical-plan description with the inference
//!   rules of Section IV-G (`infer`), covering all six illustrative
//!   scenarios in the paper;
//! * [`checker`] — a runtime verifier that a concrete element sequence
//!   actually satisfies a claimed property vector (used by the generator and
//!   test suites to keep claimed and actual properties honest);
//! * [`shrink`] — a minimizing shrinker for seeded property-test failures:
//!   binary-searches each knob of a failing case toward its floor until a
//!   local fixpoint, so counterexamples reproduce at minimal size.

pub mod checker;
pub mod plan;
pub mod props;
pub mod shrink;

pub use plan::{infer, PlanNode};
pub use props::{select, Ordering, RLevel, StreamProperties};
pub use shrink::{describe, minimize, Knob};
