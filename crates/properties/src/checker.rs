//! Runtime verification that an element sequence satisfies a claimed
//! property vector.
//!
//! Stream properties are *claims*; the generator and the test suites use
//! this checker to ensure a stream labelled R1 (say) really is insert-only,
//! non-decreasing, and deterministic — so that algorithm-selection tests are
//! honest about what they feed each algorithm.

use crate::props::{Ordering, StreamProperties};
use lmerge_temporal::{Element, Payload, Time};
use std::collections::HashSet;

/// The first way in which a stream fell short of its claimed properties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertyViolation {
    /// An `adjust` appeared in a stream claimed insert-only.
    AdjustInInsertOnly {
        /// Index of the offending element.
        at: usize,
    },
    /// `Vs` went backwards (claimed non-decreasing) or failed to strictly
    /// increase (claimed strictly increasing).
    OutOfOrder {
        /// Index of the offending element.
        at: usize,
        /// The previous data element's `Vs`.
        prev: Time,
        /// The offending element's `Vs`.
        vs: Time,
    },
    /// A duplicate `(Vs, Payload)` appeared in a stream claiming that key.
    DuplicateKey {
        /// Index of the offending element.
        at: usize,
    },
}

/// Verify `elements` against `claimed`, returning the first violation.
///
/// Deterministic tie order is a *cross-copy* property (the same order on
/// every physical copy) and cannot be checked on one sequence alone; use
/// [`ties_agree`] across copies for that.
pub fn verify<P: Payload>(
    elements: &[Element<P>],
    claimed: StreamProperties,
) -> Result<(), PropertyViolation> {
    let mut last_vs = Time::MIN;
    let mut seen_keys: HashSet<(Time, P)> = HashSet::new();
    for (at, e) in elements.iter().enumerate() {
        match e {
            Element::Stable(_) => {}
            Element::Adjust { .. } if claimed.insert_only => {
                return Err(PropertyViolation::AdjustInInsertOnly { at });
            }
            _ => {
                let (vs, p) = e.key().expect("data element has a key");
                match claimed.ordering {
                    Ordering::StrictlyIncreasing if vs <= last_vs && last_vs != Time::MIN => {
                        return Err(PropertyViolation::OutOfOrder {
                            at,
                            prev: last_vs,
                            vs,
                        });
                    }
                    Ordering::NonDecreasing if vs < last_vs => {
                        return Err(PropertyViolation::OutOfOrder {
                            at,
                            prev: last_vs,
                            vs,
                        });
                    }
                    _ => {}
                }
                last_vs = last_vs.max(vs);
                if claimed.key_vs_payload && e.is_insert() && !seen_keys.insert((vs, p.clone())) {
                    return Err(PropertyViolation::DuplicateKey { at });
                }
            }
        }
    }
    Ok(())
}

/// Check the deterministic-tie-order property across physical copies: every
/// copy must present elements with equal `Vs` in the same relative order.
pub fn ties_agree<P: Payload>(copies: &[&[Element<P>]]) -> bool {
    fn tie_groups<P: Payload>(elems: &[Element<P>]) -> Vec<(Time, Vec<P>)> {
        let mut groups: Vec<(Time, Vec<P>)> = Vec::new();
        for e in elems {
            if let Some((vs, p)) = e.key() {
                match groups.last_mut() {
                    Some((t, g)) if *t == vs => g.push(p.clone()),
                    _ => groups.push((vs, vec![p.clone()])),
                }
            }
        }
        groups
    }
    copies
        .windows(2)
        .all(|w| tie_groups(w[0]) == tie_groups(w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    type E = Element<&'static str>;

    #[test]
    fn in_order_insert_only_passes_r0() {
        let s: Vec<E> = vec![
            Element::insert("A", 1, 5),
            Element::insert("B", 2, 6),
            Element::stable(3),
        ];
        assert_eq!(verify(&s, StreamProperties::r0()), Ok(()));
    }

    #[test]
    fn duplicate_timestamp_fails_r0_passes_r2() {
        let s: Vec<E> = vec![Element::insert("A", 1, 5), Element::insert("B", 1, 6)];
        assert!(matches!(
            verify(&s, StreamProperties::r0()),
            Err(PropertyViolation::OutOfOrder { .. })
        ));
        assert_eq!(verify(&s, StreamProperties::r2()), Ok(()));
    }

    #[test]
    fn adjust_fails_insert_only() {
        let s: Vec<E> = vec![Element::insert("A", 1, 5), Element::adjust("A", 1, 5, 7)];
        assert!(matches!(
            verify(&s, StreamProperties::r1()),
            Err(PropertyViolation::AdjustInInsertOnly { at: 1 })
        ));
        assert_eq!(verify(&s, StreamProperties::r3()), Ok(()));
    }

    #[test]
    fn regression_fails_non_decreasing() {
        let s: Vec<E> = vec![Element::insert("A", 5, 9), Element::insert("B", 3, 6)];
        assert!(matches!(
            verify(&s, StreamProperties::r2()),
            Err(PropertyViolation::OutOfOrder { .. })
        ));
        assert_eq!(verify(&s, StreamProperties::r3()), Ok(()));
    }

    #[test]
    fn duplicate_key_detected() {
        let s: Vec<E> = vec![Element::insert("A", 1, 5), Element::insert("A", 1, 9)];
        assert!(matches!(
            verify(&s, StreamProperties::r3()),
            Err(PropertyViolation::DuplicateKey { at: 1 })
        ));
        assert_eq!(verify(&s, StreamProperties::unconstrained()), Ok(()));
    }

    #[test]
    fn ties_agree_across_copies() {
        let a: Vec<E> = vec![Element::insert("A", 1, 5), Element::insert("B", 1, 6)];
        let b: Vec<E> = vec![
            Element::insert("A", 1, 5),
            Element::stable(0),
            Element::insert("B", 1, 6),
        ];
        let c: Vec<E> = vec![Element::insert("B", 1, 6), Element::insert("A", 1, 5)];
        assert!(ties_agree(&[&a, &b]));
        assert!(!ties_agree(&[&a, &c]));
    }

    #[test]
    fn stable_elements_are_ignored_by_ordering() {
        let s: Vec<E> = vec![
            Element::insert("A", 5, 9),
            Element::stable(1),
            Element::insert("B", 6, 9),
        ];
        assert_eq!(verify(&s, StreamProperties::r0()), Ok(()));
    }
}
