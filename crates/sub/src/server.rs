//! The subscriber session server: the ingest wire protocol, mirrored.
//!
//! # Session lifecycle
//!
//! A subscriber connects and sends `Subscribe { protocol, subscriber,
//! filter, resume_from, credits }`. The server validates the version and
//! filter class and answers `Welcome`:
//!
//! * `resume_seq` — the first output sequence the server will deliver:
//!   the requested `resume_from`, clamped into the retained window. A
//!   rejoining subscriber asks for exactly the sequence after the last it
//!   processed, and because retention is pinned by its durable cursor it
//!   gets precisely the missing suffix — exactly-once across reconnects,
//!   the mirror image of the ingest side's `next_seq` discipline.
//! * `resume_stable` — the stable point covered by whatever the clamp
//!   skipped (the catch-up point when a demoted subscriber resumes from
//!   the compaction horizon rather than its own cursor).
//! * `credits` — echo of the client's initial grant.
//!
//! # Backpressure and the slow-subscriber policy
//!
//! Credits flow the other way here: the *client* grants, the server
//! spends one per delivered `Data` frame and stalls (counted) when the
//! grant runs dry. A subscriber that stalls long enough to fall more than
//! [`SubPolicy::max_lag_epochs`](crate::SubPolicy) sealed epochs behind
//! stops pinning retention; when it next reads, the epoch it wanted is
//! gone and the session is demoted — it jumps to the horizon and is
//! re-`Welcome`d from there (catch-up-from-stable, the paper's rejoining
//! replica move applied to an output replica).
//!
//! # Trace purity
//!
//! Like the ingest server, subscriber lifecycle events land in a private
//! [`Tracer`] (`sub_session_opened` / `sub_epoch_delivered` /
//! `sub_session_closed`), never the run's — the merged output must stay
//! byte-identical to an unobserved run.

use crate::buffer::{EpochBuffer, EpochSegment, EpochWait, SubFilter};
use lmerge_net::wire::{self, Frame, PROTOCOL_VERSION};
use lmerge_net::WireError;
use lmerge_obs::{Counter, Gauge, MetricsRegistry, TraceEvent, TraceSink, Tracer};
use lmerge_temporal::VTime;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Subscriber-plane configuration: the filter classes sessions may pick
/// from. Class 0 should usually be [`SubFilter::All`].
#[derive(Clone, Debug)]
pub struct SubConfig {
    /// Filter classes, indexed by the `Subscribe` frame's `filter` field.
    pub filters: Vec<SubFilter>,
}

impl SubConfig {
    /// A single class: the whole stream.
    pub fn new() -> SubConfig {
        SubConfig {
            filters: vec![SubFilter::All],
        }
    }

    /// Add a filter class, returning its id.
    pub fn add_filter(&mut self, f: SubFilter) -> u32 {
        self.filters.push(f);
        (self.filters.len() - 1) as u32
    }
}

impl Default for SubConfig {
    fn default() -> SubConfig {
        SubConfig::new()
    }
}

/// Aggregate live telemetry for the subscriber plane, registered at bind.
/// Per-session series (`subscriber` label) are minted lazily at each
/// handshake from the stored registry handle.
pub struct SubMetrics {
    sessions_opened: Counter,
    sessions_active: Gauge,
    resumes: Counter,
    demotions: Counter,
    clean_closes: Counter,
    lost_closes: Counter,
    credit_stalls: Counter,
    epochs_retained: Gauge,
    next_seq: Gauge,
}

impl SubMetrics {
    fn new(registry: &MetricsRegistry) -> SubMetrics {
        let l: [(&str, &str); 0] = [];
        SubMetrics {
            sessions_opened: registry.counter(
                "lmerge_sub_sessions_opened_total",
                "Subscriber sessions accepted (handshake completed).",
                &l,
            ),
            sessions_active: registry.gauge(
                "lmerge_sub_sessions_active",
                "Subscriber sessions currently open.",
                &l,
            ),
            resumes: registry.counter(
                "lmerge_sub_resumes_total",
                "Sessions welcomed with resume_from > 0 (reconnects).",
                &l,
            ),
            demotions: registry.counter(
                "lmerge_sub_demotions_total",
                "Slow-subscriber demotions: sessions jumped to the compaction horizon.",
                &l,
            ),
            clean_closes: registry.counter(
                "lmerge_sub_session_closes_clean_total",
                "Subscriber sessions that ended with the Bye handshake.",
                &l,
            ),
            lost_closes: registry.counter(
                "lmerge_sub_session_closes_lost_total",
                "Subscriber sessions that ended uncleanly (EOF, i/o error).",
                &l,
            ),
            credit_stalls: registry.counter(
                "lmerge_sub_credit_stalls_total",
                "Delivery stalls waiting for a subscriber's credit grant.",
                &l,
            ),
            epochs_retained: registry.gauge(
                "lmerge_sub_epochs_retained",
                "Broadcast-buffer epochs currently retained for fan-out.",
                &l,
            ),
            next_seq: registry.gauge(
                "lmerge_sub_next_seq",
                "Next output sequence the broadcast buffer will assign.",
                &l,
            ),
        }
    }
}

/// Per-session series, minted at handshake (`subscriber` label).
struct SessionMetrics {
    frames: Counter,
    bytes: Counter,
    lag_epochs: Gauge,
}

impl SessionMetrics {
    fn new(registry: &MetricsRegistry, subscriber: u64) -> SessionMetrics {
        let id = subscriber.to_string();
        let l: [(&str, &str); 1] = [("subscriber", id.as_str())];
        SessionMetrics {
            frames: registry.counter(
                "lmerge_sub_frames_total",
                "Data frames delivered, per subscriber.",
                &l,
            ),
            bytes: registry.counter(
                "lmerge_sub_bytes_total",
                "Wire bytes delivered, per subscriber.",
                &l,
            ),
            lag_epochs: registry.gauge(
                "lmerge_sub_lag_epochs",
                "Sealed epochs the subscriber trails behind the tail.",
                &l,
            ),
        }
    }
}

/// State shared by every thread the subscriber server spawns.
struct SubShared {
    buf: Arc<EpochBuffer>,
    filters: Vec<SubFilter>,
    shutdown: AtomicBool,
    tracer: Mutex<Tracer>,
    metrics: SubMetrics,
    registry: MetricsRegistry,
}

impl SubShared {
    fn trace(&self, event: TraceEvent) {
        self.tracer.lock().unwrap().record(event);
    }
}

/// Credit/close state shared between a session's writer and its reader
/// thread (the reader drains `Credit`/`Ack`/`Bye` from the subscriber).
struct SessionState {
    credits: Mutex<u64>,
    granted: Condvar,
    /// The subscriber sent `Bye` (unsubscribe, or echo of ours).
    bye: AtomicBool,
    /// The connection died (EOF, gap, corruption, i/o error).
    dead: AtomicBool,
    /// When the reader last heard *any* frame from the subscriber — the
    /// liveness signal the close handshake waits on. A wide fan-out can
    /// park the whole stream in socket buffers, so "no echo yet" says
    /// nothing; "no frame for a long quiet period" does.
    last_heard: Mutex<std::time::Instant>,
}

impl SessionState {
    fn wake(&self) {
        self.granted.notify_all();
    }
}

/// A TCP server fanning the shared [`EpochBuffer`] out to subscribers.
pub struct SubServer {
    local_addr: SocketAddr,
    shared: Arc<SubShared>,
    accept: Option<JoinHandle<()>>,
}

impl SubServer {
    /// Bind to `addr` (port 0 for ephemeral) and start accepting
    /// subscriber sessions over `buf`. Telemetry lands in a private
    /// throwaway registry; use
    /// [`bind_with_metrics`](SubServer::bind_with_metrics) to scrape it.
    pub fn bind(addr: &str, buf: Arc<EpochBuffer>, config: SubConfig) -> io::Result<SubServer> {
        SubServer::bind_with_metrics(addr, buf, config, &MetricsRegistry::new())
    }

    /// Like [`bind`](SubServer::bind), registering the `lmerge_sub_*`
    /// series in the caller's `registry`.
    pub fn bind_with_metrics(
        addr: &str,
        buf: Arc<EpochBuffer>,
        config: SubConfig,
        registry: &MetricsRegistry,
    ) -> io::Result<SubServer> {
        assert!(!config.filters.is_empty(), "at least one filter class");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(SubShared {
            buf,
            filters: config.filters,
            shutdown: AtomicBool::new(false),
            tracer: Mutex::new(Tracer::new()),
            metrics: SubMetrics::new(registry),
            registry: registry.clone(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(SubServer {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (point `lmerge-subscribe` here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared broadcast buffer this server fans out.
    pub fn buffer(&self) -> &Arc<EpochBuffer> {
        &self.shared.buf
    }

    /// The server's private session tracer (subscriber lane events).
    pub fn tracer(&self) -> MutexGuard<'_, Tracer> {
        self.shared.tracer.lock().unwrap()
    }

    /// Wait (up to `timeout`) for every accepted session to finish its
    /// close handshake; returns `true` once all have. Call between
    /// publishing `finish()` and [`shutdown`](SubServer::shutdown) so
    /// paced subscribers' final `Bye` round trips are not severed.
    pub fn await_sessions_closed(&self, timeout: Duration) -> bool {
        let m = &self.shared.metrics;
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if m.clean_closes.get() + m.lost_closes.get() >= m.sessions_opened.get() {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_micros(200));
        }
    }

    /// Stop accepting, wake blocked sessions, and join the accept loop.
    /// Live sessions notice the flag at their next delivery wait.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Unstick writers blocked on an epoch wait.
        self.shared.buf.finish();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SubServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<SubShared>) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let session_shared = Arc::clone(&shared);
                thread::spawn(move || session(session_shared, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_micros(500));
            }
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// How long a writer waits per epoch poll before re-checking liveness.
const EPOCH_POLL: Duration = Duration::from_millis(50);

/// How long the close handshake waits for the subscriber's `Bye` echo
/// after last hearing *anything* from it before presuming it dead. A
/// subscriber that vanishes outright is caught much sooner (its socket
/// EOFs); this only bounds the silent-hang case, so generous is safe.
const BYE_IDLE_TIMEOUT: Duration = Duration::from_secs(10);

/// Serve one subscriber: handshake, then stream epochs under credits.
fn session(shared: Arc<SubShared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let (subscriber, class, resume_from, initial_credits) = match wire::read_frame(&mut stream) {
        Ok(Some(Frame::Subscribe {
            protocol,
            subscriber,
            filter,
            resume_from,
            credits,
        })) if protocol == PROTOCOL_VERSION => (subscriber, filter, resume_from, credits),
        // Wrong version, wrong frame, garbage, or EOF: drop the
        // connection; there is no session to resume.
        _ => return,
    };
    if class as usize >= shared.filters.len() {
        return;
    }
    let filter = shared.filters[class as usize].clone();

    // Clamp the requested cursor into what exists: up to the compaction
    // horizon (a demoted/stale cursor resumes from stable), down to the
    // tail (a cursor from the future is a protocol lie, not a crash).
    let (_, horizon_seq, compact_stable) = shared.buf.horizon();
    let (tail_seq, _, _, _) = shared.buf.stats();
    let demoted_at_join = resume_from < horizon_seq;
    let resume_seq = resume_from.clamp(horizon_seq, tail_seq.max(horizon_seq));
    let welcome = Frame::Welcome {
        input: class,
        resume_seq,
        resume_stable: compact_stable,
        credits: initial_credits,
    };
    if wire::write_frame(&mut stream, &welcome).is_err() {
        return;
    }
    // Pin retention from the session's position so its window survives
    // until it acks (the durable cursor is monotone, so a rejoin with an
    // older clamped cursor cannot move it backwards).
    shared.buf.ack(subscriber, resume_seq);

    let m = &shared.metrics;
    m.sessions_opened.inc();
    m.sessions_active.add(1);
    if resume_from > 0 {
        m.resumes.inc();
    }
    if demoted_at_join {
        m.demotions.inc();
    }
    let session_m = SessionMetrics::new(&shared.registry, subscriber);
    shared.trace(TraceEvent::SubSessionOpened {
        at: VTime(resume_seq),
        subscriber,
        resume_seq,
    });

    // Reader thread: drains Credit/Ack/Bye while the writer streams.
    let state = Arc::new(SessionState {
        credits: Mutex::new(initial_credits as u64),
        granted: Condvar::new(),
        bye: AtomicBool::new(false),
        dead: AtomicBool::new(false),
        last_heard: Mutex::new(std::time::Instant::now()),
    });
    let reader = stream.try_clone().ok().map(|read_half| {
        let state = Arc::clone(&state);
        let shared = Arc::clone(&shared);
        thread::spawn(move || reader_loop(read_half, state, shared, subscriber))
    });

    let clean = writer_loop(
        &shared,
        &mut stream,
        &state,
        &session_m,
        subscriber,
        class,
        &filter,
        resume_seq,
    );

    // Unblock and collect the reader before reporting the close.
    let _ = stream.shutdown(Shutdown::Both);
    state.wake();
    if let Some(h) = reader {
        let _ = h.join();
    }
    shared.trace(TraceEvent::SubSessionClosed {
        at: VTime(resume_seq),
        subscriber,
        clean,
    });
    m.sessions_active.add(-1);
    if clean {
        m.clean_closes.inc();
    } else {
        m.lost_closes.inc();
    }
}

/// Drain subscriber-to-server frames: credit grants, cursor acks, Bye.
fn reader_loop(
    mut stream: TcpStream,
    state: Arc<SessionState>,
    shared: Arc<SubShared>,
    subscriber: u64,
) {
    loop {
        let frame = wire::read_frame(&mut stream);
        if matches!(frame, Ok(Some(_))) {
            *state.last_heard.lock().unwrap() = std::time::Instant::now();
        }
        match frame {
            Ok(Some(Frame::Credit { n })) => {
                *state.credits.lock().unwrap() += n as u64;
                state.wake();
            }
            Ok(Some(Frame::Ack { seq, .. })) => {
                // The subscriber durably consumed through `seq`: advance
                // its cursor (pins retention, persists via checkpoints).
                shared.buf.ack(subscriber, seq.saturating_add(1));
            }
            Ok(Some(Frame::Bye)) => {
                state.bye.store(true, Ordering::Release);
                state.wake();
                return;
            }
            // EOF, a frame that makes no sense here, corruption, i/o
            // error: the session is over; never panic.
            Ok(None) | Ok(Some(_)) | Err(_) => {
                state.dead.store(true, Ordering::Release);
                state.wake();
                return;
            }
        }
    }
}

/// Stream epochs to one subscriber. Returns whether the close was clean.
#[allow(clippy::too_many_arguments)]
fn writer_loop(
    shared: &Arc<SubShared>,
    stream: &mut TcpStream,
    state: &SessionState,
    session_m: &SessionMetrics,
    subscriber: u64,
    class: u32,
    filter: &SubFilter,
    resume_seq: u64,
) -> bool {
    let m = &shared.metrics;
    let mut seq_cursor = resume_seq;
    let mut index = shared.buf.index_for_seq(resume_seq);
    loop {
        if state.dead.load(Ordering::Acquire) {
            return false;
        }
        if state.bye.load(Ordering::Acquire) {
            // Unsolicited unsubscribe: acknowledge and part cleanly.
            return wire::write_frame(stream, &Frame::Bye).is_ok();
        }
        if shared.shutdown.load(Ordering::Relaxed) {
            return false;
        }
        match shared.buf.wait_epoch(index, EPOCH_POLL) {
            EpochWait::TimedOut => continue,
            EpochWait::Compacted {
                resume_index,
                resume_seq: horizon_seq,
                stable,
            } => {
                // Demotion: the epoch this session wanted was retired.
                // Jump to the horizon and re-welcome so the subscriber
                // knows it is catching up from `stable`, not resuming.
                m.demotions.inc();
                let rewelcome = Frame::Welcome {
                    input: class,
                    resume_seq: horizon_seq,
                    resume_stable: stable,
                    credits: 0,
                };
                if wire::write_frame(stream, &rewelcome).is_err() {
                    return false;
                }
                seq_cursor = horizon_seq;
                index = resume_index;
                shared.buf.ack(subscriber, seq_cursor);
            }
            EpochWait::Finished => {
                // Stream over: initiate the close handshake and wait for
                // the subscriber's echo (mirror of the ingest Bye ack).
                if wire::write_frame(stream, &Frame::Bye).is_err() {
                    return false;
                }
                // The wait is bounded by *idle time*, not time-since-Bye:
                // under a wide fan-out the whole stream (Bye included)
                // lands in socket buffers long before a starved-but-live
                // subscriber drains it, and its periodic acks prove it is
                // making progress. A fixed post-Bye deadline severs such
                // sessions mid-drain — and closing with unread acks
                // queued turns the close into an RST that destroys the
                // buffered tail. Only a subscriber that goes *quiet* for
                // the full window is presumed dead.
                let sent = std::time::Instant::now();
                while !state.bye.load(Ordering::Acquire) {
                    if state.dead.load(Ordering::Acquire) || shared.shutdown.load(Ordering::Relaxed)
                    {
                        return false;
                    }
                    let heard = *state.last_heard.lock().unwrap();
                    let deadline = heard.max(sent) + BYE_IDLE_TIMEOUT;
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return false;
                    }
                    // Block on the session condvar — the reader notifies
                    // it on Bye, death, and credit traffic — rather than
                    // sleep-polling. With a wide fan-out, hundreds of
                    // finished sessions reach this wait together, and
                    // even a gentle 2 ms poll multiplied across them
                    // floods the scheduler with wakeups that starve the
                    // very clients whose echo this wait is for. The cap
                    // only bounds how late a server shutdown is noticed.
                    let wait = (deadline - now).min(Duration::from_millis(100));
                    let guard = state.credits.lock().unwrap();
                    let _ = state.granted.wait_timeout(guard, wait).unwrap();
                }
                return true;
            }
            EpochWait::Ready(seg) => {
                // Refresh the gauges only when there is something to
                // deliver: polling sessions must not hammer the shared
                // buffer lock once per wait timeout.
                let (tail_seq, _, sealed, retained) = shared.buf.stats();
                m.epochs_retained.set(retained as i64);
                m.next_seq.set(tail_seq as i64);
                session_m
                    .lag_epochs
                    .set(sealed.saturating_sub(index) as i64);
                match deliver_epoch(
                    shared, stream, state, session_m, filter, class, &seg, seq_cursor,
                ) {
                    Some(frames) => {
                        shared.trace(TraceEvent::SubEpochDelivered {
                            at: VTime(seg.end_seq()),
                            subscriber,
                            epoch: seg.index,
                            frames,
                        });
                    }
                    None => return false,
                }
                seq_cursor = seg.end_seq();
                index = seg.index + 1;
            }
        }
    }
}

/// Send one epoch's admitted frames from `seq_cursor` on, spending one
/// credit per frame and coalescing contiguous admitted runs into single
/// writes out of the shared segment bytes. Returns the frames delivered,
/// or `None` if the session died.
#[allow(clippy::too_many_arguments)]
fn deliver_epoch(
    shared: &Arc<SubShared>,
    stream: &mut TcpStream,
    state: &SessionState,
    session_m: &SessionMetrics,
    filter: &SubFilter,
    class: u32,
    seg: &EpochSegment,
    seq_cursor: u64,
) -> Option<u32> {
    let bits = seg.bitmap(class, filter);
    let start = (seq_cursor.saturating_sub(seg.base_seq)) as usize;
    let mut taken: u64 = 0; // credits in hand
    let mut delivered: u32 = 0;
    let mut bytes_sent: u64 = 0;
    // A contiguous run of admitted frames: byte range into the segment.
    let mut run: Option<(usize, usize)> = None;
    for i in start..seg.frames() {
        if !EpochSegment::admitted(&bits, i) {
            if !flush(stream, seg, &mut run, &mut bytes_sent) {
                return None;
            }
            continue;
        }
        if taken == 0 {
            // Flush before blocking so the subscriber can consume what it
            // already has and grant more.
            if !flush(stream, seg, &mut run, &mut bytes_sent) {
                return None;
            }
            taken = take_credits(shared, state)?;
        }
        taken -= 1;
        delivered += 1;
        let frame = seg.frame_bytes(i);
        let off = frame.as_ptr() as usize - seg.bytes().as_ptr() as usize;
        run = match run {
            Some((a, b)) if b == off => Some((a, off + frame.len())),
            Some(_) => {
                if !flush(stream, seg, &mut run, &mut bytes_sent) {
                    return None;
                }
                Some((off, off + frame.len()))
            }
            None => Some((off, off + frame.len())),
        };
    }
    if !flush(stream, seg, &mut run, &mut bytes_sent) {
        return None;
    }
    // Return unused credits to the pool for the next epoch.
    if taken > 0 {
        *state.credits.lock().unwrap() += taken;
    }
    session_m.frames.add(delivered as u64);
    session_m.bytes.add(bytes_sent);
    Some(delivered)
}

/// Write out the pending run, if any. Returns `false` on i/o failure.
fn flush(
    stream: &mut TcpStream,
    seg: &EpochSegment,
    run: &mut Option<(usize, usize)>,
    bytes_sent: &mut u64,
) -> bool {
    if let Some((a, b)) = run.take() {
        if stream.write_all(&seg.bytes()[a..b]).is_err() {
            return false;
        }
        *bytes_sent += (b - a) as u64;
    }
    true
}

/// Block until the subscriber grants credits (or the session ends).
/// Takes the whole pool. `None` means the session is over.
fn take_credits(shared: &Arc<SubShared>, state: &SessionState) -> Option<u64> {
    let mut credits = state.credits.lock().unwrap();
    if *credits == 0 {
        shared.metrics.credit_stalls.inc();
    }
    loop {
        if *credits > 0 {
            return Some(std::mem::take(&mut *credits));
        }
        if state.dead.load(Ordering::Acquire)
            || state.bye.load(Ordering::Acquire)
            || shared.shutdown.load(Ordering::Relaxed)
        {
            return None;
        }
        let (guard, _) = state
            .granted
            .wait_timeout(credits, Duration::from_millis(10))
            .unwrap();
        credits = guard;
    }
}

/// Errors a subscriber client/server interaction surfaces to callers.
pub type SubResult<T> = Result<T, WireError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{subscribe, subscribe_until_finished, SubscribeConfig};
    use crate::SubPolicy;
    use lmerge_temporal::{Element, Time, Value};

    fn publish_feed(buf: &EpochBuffer, n: u64) -> Vec<u8> {
        // Reference bytes: the canonical encoding of the full stream.
        let mut reference = Vec::new();
        let mut seq = {
            let (s, _, _, _) = buf.stats();
            s
        };
        for i in 0..n {
            let elements = vec![
                Element::insert(Value::bare(i as i32), i as i64, i as i64 + 5),
                Element::<Value>::stable(Time(i as i64 * 10 + 1)),
            ];
            for e in &elements {
                wire::encode_into(
                    &Frame::Data {
                        seq,
                        at: VTime(i),
                        element: e.clone(),
                    },
                    &mut reference,
                );
                seq += 1;
            }
            buf.publish(VTime(i), &elements);
        }
        reference
    }

    #[test]
    fn one_subscriber_gets_the_stream_byte_identically() {
        let buf = Arc::new(EpochBuffer::new(SubPolicy::default()));
        let server = SubServer::bind("127.0.0.1:0", Arc::clone(&buf), SubConfig::new()).unwrap();
        let addr = server.local_addr().to_string();
        let client =
            thread::spawn(move || subscribe(&addr, &SubscribeConfig::new(1)).expect("subscribe"));
        let reference = publish_feed(&buf, 30);
        buf.finish();
        let outcome = client.join().unwrap();
        assert!(outcome.clean && outcome.finished);
        assert_eq!(outcome.resumed_from, 0);
        assert_eq!(outcome.received, 60);
        assert_eq!(outcome.bytes, reference, "fan-out is byte-identical");
    }

    #[test]
    fn filtered_subscriber_gets_its_slice_plus_all_stables() {
        let buf = Arc::new(EpochBuffer::new(SubPolicy::default()));
        let mut config = SubConfig::new();
        let class = config.add_filter(SubFilter::KeyMod {
            modulus: 2,
            residue: 0,
        });
        let server = SubServer::bind("127.0.0.1:0", Arc::clone(&buf), config).unwrap();
        let addr = server.local_addr().to_string();
        let client = thread::spawn(move || {
            subscribe(&addr, &SubscribeConfig::new(2).with_filter(class)).expect("subscribe")
        });
        publish_feed(&buf, 20);
        buf.finish();
        let outcome = client.join().unwrap();
        assert!(outcome.clean && outcome.finished);
        // 10 even-keyed inserts + all 20 stables.
        assert_eq!(outcome.received, 30);
        for (_, _, e) in &outcome.frames {
            match e {
                Element::Insert(ev) => assert_eq!(ev.payload.key % 2, 0),
                Element::Adjust { payload, .. } => assert_eq!(payload.key % 2, 0),
                Element::Stable(_) => {}
            }
        }
        // Sequences are the global stream's (gaps where odd keys were),
        // so a reconnect cursor still means one thing.
        assert!(outcome.frames.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn kill_and_resume_is_exactly_once() {
        let buf = Arc::new(EpochBuffer::new(SubPolicy::default()));
        let server = SubServer::bind("127.0.0.1:0", Arc::clone(&buf), SubConfig::new()).unwrap();
        let addr = server.local_addr().to_string();
        let reference = publish_feed(&buf, 40);
        buf.finish();
        let outcome =
            subscribe_until_finished(&addr, &SubscribeConfig::new(3).with_kill_after(17), 8)
                .expect("stitched subscription");
        assert!(outcome.clean && outcome.finished);
        assert!(outcome.attempts > 1, "the kill forced at least one resume");
        assert_eq!(outcome.bytes, reference, "stitched output byte-identical");
        let _ = server;
    }

    #[test]
    fn stale_resume_is_demoted_to_the_horizon() {
        let policy = SubPolicy {
            retain_min_epochs: 1,
            ..SubPolicy::default()
        };
        let buf = Arc::new(EpochBuffer::new(policy));
        publish_feed(&buf, 10); // 10 epochs, seqs 0..20
        buf.ack(99, 20); // a fast subscriber let everything compact
        let (first_index, horizon_seq, _) = buf.horizon();
        assert!(first_index > 0 && horizon_seq > 0);
        let registry = MetricsRegistry::new();
        let server = SubServer::bind_with_metrics(
            "127.0.0.1:0",
            Arc::clone(&buf),
            SubConfig::new(),
            &registry,
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        buf.finish();
        // Asks for seq 0, which is long gone: welcomed from the horizon.
        let outcome = subscribe(&addr, &SubscribeConfig::new(4)).expect("subscribe");
        assert!(outcome.clean && outcome.finished);
        assert_eq!(outcome.resumed_from, horizon_seq);
        assert_eq!(outcome.received, 20 - horizon_seq);
        assert_eq!(
            registry.sum_value("lmerge_sub_demotions_total"),
            Some(1.0),
            "the clamped join counts as a demotion"
        );
    }

    #[test]
    fn tiny_credit_grants_still_deliver_everything() {
        let buf = Arc::new(EpochBuffer::new(SubPolicy::default()));
        let registry = MetricsRegistry::new();
        let server = SubServer::bind_with_metrics(
            "127.0.0.1:0",
            Arc::clone(&buf),
            SubConfig::new(),
            &registry,
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let client = thread::spawn(move || {
            subscribe(&addr, &SubscribeConfig::new(5).with_credits(2)).expect("subscribe")
        });
        let reference = publish_feed(&buf, 50);
        buf.finish();
        let outcome = client.join().unwrap();
        assert!(outcome.clean && outcome.finished);
        assert_eq!(outcome.bytes, reference);
        assert!(
            registry
                .sum_value("lmerge_sub_credit_stalls_total")
                .unwrap_or(0.0)
                >= 1.0,
            "a 2-credit window must have stalled at least once"
        );
    }

    #[test]
    fn many_subscribers_share_one_encoding() {
        let buf = Arc::new(EpochBuffer::new(SubPolicy::default()));
        let registry = MetricsRegistry::new();
        let server = SubServer::bind_with_metrics(
            "127.0.0.1:0",
            Arc::clone(&buf),
            SubConfig::new(),
            &registry,
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let clients: Vec<_> = (0..8)
            .map(|s| {
                let addr = addr.clone();
                thread::spawn(move || {
                    subscribe(&addr, &SubscribeConfig::new(100 + s)).expect("subscribe")
                })
            })
            .collect();
        let reference = publish_feed(&buf, 25);
        buf.finish();
        for c in clients {
            let outcome = c.join().unwrap();
            assert!(outcome.clean && outcome.finished);
            assert_eq!(outcome.bytes, reference);
        }
        assert!(server.await_sessions_closed(Duration::from_secs(5)));
        assert_eq!(
            registry.sum_value("lmerge_sub_sessions_opened_total"),
            Some(8.0)
        );
        assert_eq!(
            registry.sum_value("lmerge_sub_session_closes_clean_total"),
            Some(8.0)
        );
        let tracer = server.tracer();
        let opened = tracer
            .events()
            .filter(|e| matches!(e, TraceEvent::SubSessionOpened { .. }))
            .count();
        assert_eq!(opened, 8, "subscriber lanes landed in the tracer");
        drop(tracer);
    }
}
