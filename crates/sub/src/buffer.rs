//! The epoch-batched broadcast buffer: merge output written once, fanned
//! out to N subscribers with zero per-subscriber copies.
//!
//! The merge's hooks publish every emitted element into an *open* epoch;
//! each advance of the output stable point seals the epoch into a
//! refcounted [`EpochSegment`] holding both the decoded elements and
//! their wire-encoded `Data` frames (encoded exactly once, with the
//! global output sequence NetHooks would have assigned). Subscriber
//! sessions then share segments by `Arc`: delivery is a ranged
//! `write_all` out of the shared byte block, so the per-subscriber cost
//! is a socket write, not a re-serialization — the DBSP-style
//! deltas-at-stable-advances delivery model from the ISSUE.
//!
//! # Compaction
//!
//! Every subscriber owns a durable cursor (its acked next output
//! sequence). Epochs wholly below the minimum cursor are retired; a
//! subscriber whose cursor lags more than [`SubPolicy::max_lag_epochs`]
//! epochs behind the tail stops pinning retention (the slow-subscriber
//! demotion mirror of `RobustnessPolicy`) and will be caught up from the
//! compaction horizon when it next reads. The horizon — first retained
//! epoch, its base sequence, the stable point the retired prefix reached
//! — is what a stale `resume_from` is clamped up to.
//!
//! # Durability
//!
//! [`EpochBuffer::image`] snapshots the retained frames plus the open
//! tail into an [`EgressImage`] (already wire bytes, so the durable layer
//! stores it verbatim); [`EpochBuffer::restore`] decodes one back,
//! re-sealing epochs at the same stable advances. Because the publisher
//! runs on the executor thread, an image polled at a checkpoint cut is
//! exactly consistent with the merge image saved beside it.

use lmerge_engine::EgressImage;
use lmerge_net::wire::{self, Frame, WireError};
use lmerge_temporal::{Element, Time, VTime, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A subscriber's per-session predicate over the merged stream. Stable
/// punctuations always pass: every subscriber sees the full progress
/// signal, whatever slice of the data it takes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubFilter {
    /// The whole stream.
    All,
    /// Keys `k` with `k mod modulus == residue` (Euclidean, so negative
    /// keys land in `0..modulus`).
    KeyMod {
        /// The modulus (0 admits everything).
        modulus: u32,
        /// The residue class to keep.
        residue: u32,
    },
    /// Keys in `min..=max`.
    KeyRange {
        /// Smallest admitted key.
        min: i32,
        /// Largest admitted key.
        max: i32,
    },
}

impl SubFilter {
    /// Whether the filter admits `e`. Punctuation is always admitted.
    pub fn admits(&self, e: &Element<Value>) -> bool {
        let key = match e {
            Element::Insert(ev) => ev.payload.key,
            Element::Adjust { payload, .. } => payload.key,
            Element::Stable(_) => return true,
        };
        match *self {
            SubFilter::All => true,
            SubFilter::KeyMod { modulus, residue } => {
                modulus == 0 || key.rem_euclid(modulus as i32) as u32 == residue
            }
            SubFilter::KeyRange { min, max } => (min..=max).contains(&key),
        }
    }

    /// Parse `all`, `mod:M:R`, or `range:LO:HI` (the bins' flag syntax).
    pub fn parse(s: &str) -> Option<SubFilter> {
        if s == "all" {
            return Some(SubFilter::All);
        }
        let mut parts = s.split(':');
        match (parts.next()?, parts.next(), parts.next(), parts.next()) {
            ("mod", Some(m), Some(r), None) => Some(SubFilter::KeyMod {
                modulus: m.parse().ok()?,
                residue: r.parse().ok()?,
            }),
            ("range", Some(lo), Some(hi), None) => Some(SubFilter::KeyRange {
                min: lo.parse().ok()?,
                max: hi.parse().ok()?,
            }),
            _ => None,
        }
    }
}

impl std::fmt::Display for SubFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubFilter::All => write!(f, "all"),
            SubFilter::KeyMod { modulus, residue } => write!(f, "mod:{modulus}:{residue}"),
            SubFilter::KeyRange { min, max } => write!(f, "range:{min}:{max}"),
        }
    }
}

/// One sealed output epoch: the elements between two stable advances,
/// their pre-encoded wire frames, and lazily computed filter bitmaps.
/// Shared by `Arc` across every subscriber session.
pub struct EpochSegment {
    /// Position in the buffer's epoch sequence.
    pub index: u64,
    /// Global output sequence of the first frame.
    pub base_seq: u64,
    /// The output stable point after this epoch (the advance that sealed
    /// it; the buffer's stable-so-far for a `finish()` remainder).
    pub stable: Time,
    elements: Vec<Element<Value>>,
    bytes: Vec<u8>,
    /// Per-frame `(start, len)` ranges into `bytes`.
    offsets: Vec<(u32, u32)>,
    /// Filter-class id → admission bitmap, computed once per class per
    /// epoch and shared among every subscriber of that class.
    bitmaps: Mutex<HashMap<u32, Arc<Vec<u64>>>>,
}

impl EpochSegment {
    /// Number of frames (elements) in the epoch.
    pub fn frames(&self) -> usize {
        self.offsets.len()
    }

    /// One past the last frame's global sequence.
    pub fn end_seq(&self) -> u64 {
        self.base_seq + self.offsets.len() as u64
    }

    /// The whole epoch's encoded frames, back to back.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The encoded bytes of frame `i`.
    pub fn frame_bytes(&self, i: usize) -> &[u8] {
        let (start, len) = self.offsets[i];
        &self.bytes[start as usize..(start + len) as usize]
    }

    /// The decoded element of frame `i`.
    pub fn element(&self, i: usize) -> &Element<Value> {
        &self.elements[i]
    }

    /// The admission bitmap for `filter`, keyed by its class id. Computed
    /// on first request, then shared (evaluated once per epoch per class,
    /// not per subscriber).
    pub fn bitmap(&self, class: u32, filter: &SubFilter) -> Arc<Vec<u64>> {
        let mut cache = self.bitmaps.lock().unwrap();
        Arc::clone(cache.entry(class).or_insert_with(|| {
            let mut bits = vec![0u64; self.elements.len().div_ceil(64)];
            for (i, e) in self.elements.iter().enumerate() {
                if filter.admits(e) {
                    bits[i / 64] |= 1 << (i % 64);
                }
            }
            Arc::new(bits)
        }))
    }

    /// Whether bit `i` is set in an admission bitmap.
    pub fn admitted(bits: &[u64], i: usize) -> bool {
        bits[i / 64] & (1 << (i % 64)) != 0
    }
}

/// Retention/demotion knobs for the broadcast buffer.
#[derive(Clone, Copy, Debug)]
pub struct SubPolicy {
    /// A cursor lagging more than this many epochs behind the sealed
    /// tail stops pinning retention; its subscriber is demoted to
    /// catch-up-from-stable on its next read.
    pub max_lag_epochs: u64,
    /// Never compact below this many retained epochs (late joiners get at
    /// least this much history).
    pub retain_min_epochs: u64,
}

impl Default for SubPolicy {
    fn default() -> SubPolicy {
        SubPolicy {
            max_lag_epochs: u64::MAX,
            retain_min_epochs: 1,
        }
    }
}

/// What a subscriber session finds when it asks for an epoch.
pub enum EpochWait {
    /// The epoch is retained; deliver it.
    Ready(Arc<EpochSegment>),
    /// The epoch was retired. Catch up from the horizon: the first
    /// retained epoch, its base sequence, and the stable point the
    /// retired prefix had reached.
    Compacted {
        /// First retained epoch index.
        resume_index: u64,
        /// Its base output sequence (the demoted session's new cursor).
        resume_seq: u64,
        /// Stable point covered by the retired prefix.
        stable: Time,
    },
    /// The stream ended before this epoch; nothing more will be sealed.
    Finished,
    /// Nothing sealed yet within the timeout; ask again.
    TimedOut,
}

struct BufferInner {
    epochs: VecDeque<Arc<EpochSegment>>,
    /// Index of `epochs.front()` (epochs below this are retired).
    first_index: u64,
    /// Index the open epoch will take when sealed.
    next_index: u64,
    open_elements: Vec<Element<Value>>,
    open_bytes: Vec<u8>,
    open_offsets: Vec<(u32, u32)>,
    open_base_seq: u64,
    next_seq: u64,
    stable: Time,
    /// Stable point the retired prefix had reached (what a demoted
    /// subscriber's catch-up `Welcome` reports).
    compact_stable: Time,
    finished: bool,
    /// Durable cursors: subscriber id → acked next output sequence.
    /// These pin retention (until they lag past the policy) and are what
    /// checkpoints persist.
    cursors: HashMap<u64, u64>,
}

impl BufferInner {
    /// Global sequence of the first retained (or open) frame.
    fn horizon_seq(&self) -> u64 {
        self.epochs
            .front()
            .map(|e| e.base_seq)
            .unwrap_or(self.open_base_seq)
    }

    fn seal_open(&mut self) {
        let seg = EpochSegment {
            index: self.next_index,
            base_seq: self.open_base_seq,
            stable: self.stable,
            elements: std::mem::take(&mut self.open_elements),
            bytes: std::mem::take(&mut self.open_bytes),
            offsets: std::mem::take(&mut self.open_offsets),
            bitmaps: Mutex::new(HashMap::new()),
        };
        self.open_base_seq = self.next_seq;
        self.next_index += 1;
        self.epochs.push_back(Arc::new(seg));
    }
}

/// The shared broadcast buffer. One publisher (the merge's hooks, on the
/// executor thread) appends; any number of subscriber sessions read
/// sealed epochs by `Arc`.
pub struct EpochBuffer {
    inner: Mutex<BufferInner>,
    sealed: Condvar,
    policy: SubPolicy,
}

impl EpochBuffer {
    /// An empty buffer starting at sequence 0.
    pub fn new(policy: SubPolicy) -> EpochBuffer {
        EpochBuffer {
            inner: Mutex::new(BufferInner {
                epochs: VecDeque::new(),
                first_index: 0,
                next_index: 0,
                open_elements: Vec::new(),
                open_bytes: Vec::new(),
                open_offsets: Vec::new(),
                open_base_seq: 0,
                next_seq: 0,
                stable: Time::MIN,
                compact_stable: Time::MIN,
                finished: false,
                cursors: HashMap::new(),
            }),
            sealed: Condvar::new(),
            policy,
        }
    }

    /// Rebuild a buffer from a checkpoint's egress image: decode the
    /// retained frames, re-seal epochs at the same stable advances, and
    /// leave the post-stable remainder open. Subscriber cursors come back
    /// with it. Corrupt frames fail typed — a checkpoint is still a file.
    pub fn restore(image: &EgressImage, policy: SubPolicy) -> Result<EpochBuffer, WireError> {
        let buf = EpochBuffer::new(policy);
        {
            let mut inner = buf.inner.lock().unwrap();
            inner.open_base_seq = image.base_seq;
            inner.next_seq = image.base_seq;
            inner.compact_stable = image.stable;
            inner.cursors = image.cursors.iter().copied().collect();
        }
        let mut r = &image.frames[..];
        let mut expected = image.base_seq;
        while let Some((frame, _size)) = wire::read_frame_sized(&mut r)? {
            let Frame::Data { seq, at, element } = frame else {
                return Err(WireError::Protocol("egress image holds a non-data frame"));
            };
            if seq != expected {
                return Err(WireError::Protocol("egress image sequence gap"));
            }
            expected = expected.wrapping_add(1);
            // Re-publish through the normal path; the encoding is
            // canonical, so the rebuilt segments hold identical bytes.
            buf.publish(at, std::slice::from_ref(&element));
        }
        if expected != image.next_seq {
            return Err(WireError::Protocol("egress image frame count mismatch"));
        }
        {
            // The image's stable is authoritative (the retained tail may
            // open below it when the cut fell mid-epoch).
            let mut inner = buf.inner.lock().unwrap();
            inner.stable = inner.stable.max(image.stable);
        }
        Ok(buf)
    }

    /// Append `emitted` to the open epoch, sealing it at each advance of
    /// the output stable point. Called by the merge's hooks with each
    /// consumption's emissions — single-publisher by construction.
    pub fn publish(&self, at: VTime, emitted: &[Element<Value>]) {
        if emitted.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        let mut sealed_any = false;
        for e in emitted {
            let frame = Frame::Data {
                seq: inner.next_seq,
                at,
                element: e.clone(),
            };
            let start = inner.open_bytes.len() as u32;
            wire::encode_into(&frame, &mut inner.open_bytes);
            let len = inner.open_bytes.len() as u32 - start;
            inner.open_offsets.push((start, len));
            inner.open_elements.push(e.clone());
            inner.next_seq += 1;
            if let Element::Stable(t) = e {
                if *t > inner.stable {
                    inner.stable = *t;
                    inner.seal_open();
                    sealed_any = true;
                }
            }
        }
        if sealed_any {
            // The lag window moved: stale cursors may stop pinning.
            self.compact_locked(&mut inner);
            self.sealed.notify_all();
        }
    }

    /// Seal any open remainder and mark the stream complete.
    pub fn finish(&self) {
        let mut inner = self.inner.lock().unwrap();
        if !inner.open_elements.is_empty() {
            inner.seal_open();
        }
        inner.finished = true;
        self.sealed.notify_all();
    }

    /// Wait (up to `timeout`) for epoch `index` to be readable.
    pub fn wait_epoch(&self, index: u64, timeout: Duration) -> EpochWait {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock().unwrap();
        loop {
            if index < inner.first_index {
                return EpochWait::Compacted {
                    resume_index: inner.first_index,
                    resume_seq: inner.horizon_seq(),
                    stable: inner.compact_stable,
                };
            }
            if index < inner.next_index {
                let seg = &inner.epochs[(index - inner.first_index) as usize];
                return EpochWait::Ready(Arc::clone(seg));
            }
            if inner.finished {
                return EpochWait::Finished;
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return EpochWait::TimedOut;
            }
            let (guard, _) = self.sealed.wait_timeout(inner, left).unwrap();
            inner = guard;
        }
    }

    /// The sealed epoch containing `seq`, clamped into the retained
    /// window (a stale sequence maps to the horizon, a future one to the
    /// open tail).
    pub fn index_for_seq(&self, seq: u64) -> u64 {
        let inner = self.inner.lock().unwrap();
        for seg in &inner.epochs {
            if seq < seg.end_seq() {
                return seg.index;
            }
        }
        inner.next_index
    }

    /// Record `subscriber`'s durable cursor (acked next sequence; grows
    /// monotonically) and retire epochs every live cursor has passed.
    pub fn ack(&self, subscriber: u64, next_seq: u64) {
        let mut inner = self.inner.lock().unwrap();
        let cur = inner.cursors.entry(subscriber).or_insert(0);
        *cur = (*cur).max(next_seq);
        self.compact_locked(&mut inner);
    }

    /// Forget a subscriber entirely (its cursor stops pinning retention
    /// and will not be persisted).
    pub fn forget(&self, subscriber: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.cursors.remove(&subscriber);
        self.compact_locked(&mut inner);
    }

    /// The durable cursor map, sorted by subscriber id.
    pub fn cursors(&self) -> Vec<(u64, u64)> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<(u64, u64)> = inner.cursors.iter().map(|(&s, &c)| (s, c)).collect();
        out.sort_unstable();
        out
    }

    /// Retire epochs below the minimum effective cursor. A cursor lagging
    /// more than `max_lag_epochs` behind the sealed tail is clamped up to
    /// the lag window (its subscriber will be demoted to the horizon when
    /// it next reads), and at least `retain_min_epochs` sealed epochs are
    /// always kept.
    fn compact_locked(&self, inner: &mut BufferInner) {
        // Oldest epoch a non-demoted cursor may still pin; its base
        // sequence is the floor every cursor is clamped up to.
        let window_start = inner.next_index.saturating_sub(self.policy.max_lag_epochs);
        let window_base_seq = inner
            .epochs
            .iter()
            .find(|s| s.index >= window_start)
            .map(|s| s.base_seq)
            .unwrap_or(inner.open_base_seq);
        let floor_seq = inner
            .cursors
            .values()
            .map(|&c| c.max(window_base_seq))
            .min()
            .unwrap_or(window_base_seq);
        while inner.epochs.len() as u64 > self.policy.retain_min_epochs {
            let front = inner.epochs.front().unwrap();
            if front.end_seq() > floor_seq {
                break;
            }
            let retired = inner.epochs.pop_front().unwrap();
            inner.first_index = retired.index + 1;
            inner.compact_stable = inner.compact_stable.max(retired.stable);
        }
    }

    /// The compaction horizon: `(first retained epoch index, its base
    /// sequence, stable point of the retired prefix)` — what a stale
    /// `resume_from` is clamped up to at the subscribe handshake.
    pub fn horizon(&self) -> (u64, u64, Time) {
        let inner = self.inner.lock().unwrap();
        (inner.first_index, inner.horizon_seq(), inner.compact_stable)
    }

    /// `(next sequence, stable point, sealed epochs, retained epochs)` —
    /// the publisher-side gauges.
    pub fn stats(&self) -> (u64, Time, u64, u64) {
        let inner = self.inner.lock().unwrap();
        (
            inner.next_seq,
            inner.stable,
            inner.next_index,
            inner.epochs.len() as u64,
        )
    }

    /// Whether [`finish`](EpochBuffer::finish) has been called.
    pub fn finished(&self) -> bool {
        self.inner.lock().unwrap().finished
    }

    /// Snapshot the buffer as a checkpointable [`EgressImage`]: durable
    /// cursors plus every retained frame (sealed epochs and the open
    /// tail, which a restore re-opens).
    pub fn image(&self) -> EgressImage {
        let inner = self.inner.lock().unwrap();
        let mut frames = Vec::new();
        for seg in &inner.epochs {
            frames.extend_from_slice(&seg.bytes);
        }
        frames.extend_from_slice(&inner.open_bytes);
        let mut cursors: Vec<(u64, u64)> = inner.cursors.iter().map(|(&s, &c)| (s, c)).collect();
        cursors.sort_unstable();
        EgressImage {
            cursors,
            base_seq: inner.horizon_seq(),
            next_seq: inner.next_seq,
            stable: inner.stable,
            frames,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins(key: i32, vs: i64) -> Element<Value> {
        Element::insert(Value::bare(key), vs, vs + 10)
    }

    fn stable(t: i64) -> Element<Value> {
        Element::<Value>::stable(Time(t))
    }

    #[test]
    fn epochs_seal_at_stable_advances() {
        let buf = EpochBuffer::new(SubPolicy::default());
        buf.publish(VTime(1), &[ins(1, 0), ins(2, 1), stable(5)]);
        buf.publish(VTime(2), &[ins(3, 6), stable(5)]); // duplicate: no seal
        buf.publish(VTime(3), &[stable(9)]);
        let (next_seq, st, sealed, retained) = buf.stats();
        assert_eq!((next_seq, st, sealed, retained), (6, Time(9), 2, 2));
        let EpochWait::Ready(e0) = buf.wait_epoch(0, Duration::from_millis(10)) else {
            panic!("epoch 0 ready");
        };
        assert_eq!((e0.base_seq, e0.frames(), e0.stable), (0, 3, Time(5)));
        let EpochWait::Ready(e1) = buf.wait_epoch(1, Duration::from_millis(10)) else {
            panic!("epoch 1 ready");
        };
        assert_eq!((e1.base_seq, e1.frames(), e1.stable), (3, 3, Time(9)));
        // The pre-encoded frames decode back to the published elements
        // with dense global sequences.
        let frames = lmerge_net::egress::decode_all(e0.bytes()).unwrap();
        assert!(
            matches!(frames[0], Frame::Data { seq: 0, .. })
                && matches!(frames[2], Frame::Data { seq: 2, .. })
        );
    }

    #[test]
    fn bitmaps_are_shared_per_filter_class() {
        let buf = EpochBuffer::new(SubPolicy::default());
        buf.publish(VTime(1), &[ins(1, 0), ins(2, 1), ins(3, 2), stable(5)]);
        let EpochWait::Ready(e) = buf.wait_epoch(0, Duration::from_millis(10)) else {
            panic!("ready");
        };
        let f = SubFilter::KeyMod {
            modulus: 2,
            residue: 0,
        };
        let a = e.bitmap(1, &f);
        let b = e.bitmap(1, &f);
        assert!(Arc::ptr_eq(&a, &b), "one bitmap per class per epoch");
        assert!(!EpochSegment::admitted(&a, 0)); // key 1
        assert!(EpochSegment::admitted(&a, 1)); // key 2
        assert!(!EpochSegment::admitted(&a, 2)); // key 3
        assert!(EpochSegment::admitted(&a, 3)); // stable always passes
    }

    #[test]
    fn compaction_waits_for_the_slowest_cursor() {
        let policy = SubPolicy {
            retain_min_epochs: 0,
            ..SubPolicy::default()
        };
        let buf = EpochBuffer::new(policy);
        for i in 0..4i64 {
            // Epoch i holds seqs [2i, 2i + 2).
            buf.publish(VTime(i as u64), &[ins(i as i32, i), stable(i * 10 + 1)]);
        }
        buf.ack(2, 2); // slow subscriber still needs epoch 1 onward
        buf.ack(1, 8); // fast subscriber is past everything
        assert!(
            matches!(
                buf.wait_epoch(0, Duration::from_millis(1)),
                EpochWait::Compacted { .. }
            ),
            "epoch 0 retired once both cursors passed it"
        );
        assert!(matches!(
            buf.wait_epoch(1, Duration::from_millis(1)),
            EpochWait::Ready(_)
        ));
        buf.ack(2, 8); // slow subscriber catches up: everything retires
        match buf.wait_epoch(3, Duration::from_millis(1)) {
            EpochWait::Compacted {
                resume_index,
                resume_seq,
                ..
            } => assert_eq!((resume_index, resume_seq), (4, 8)),
            _ => panic!("all epochs retired"),
        }
    }

    #[test]
    fn lagging_cursor_stops_pinning_under_the_policy() {
        let policy = SubPolicy {
            max_lag_epochs: 1,
            retain_min_epochs: 1,
        };
        let buf = EpochBuffer::new(policy);
        buf.ack(7, 0); // joined at the top, then went silent
        for i in 0..6i64 {
            buf.publish(VTime(i as u64), &[ins(i as i32, i), stable(i * 10 + 1)]);
        }
        buf.ack(1, 12); // fast subscriber drives compaction
        let (_, _, sealed, retained) = buf.stats();
        assert_eq!(sealed, 6);
        assert!(
            retained <= policy.max_lag_epochs + 1,
            "stale cursor must not pin the whole history (retained {retained})"
        );
        match buf.wait_epoch(0, Duration::from_millis(1)) {
            EpochWait::Compacted { resume_seq, .. } => assert!(resume_seq > 0),
            _ => panic!("epoch 0 should be retired"),
        }
    }

    #[test]
    fn image_round_trips_through_restore() {
        let buf = EpochBuffer::new(SubPolicy::default());
        buf.publish(VTime(1), &[ins(1, 0), stable(5)]);
        buf.publish(VTime(2), &[ins(2, 6), ins(3, 7)]); // open tail
        buf.ack(9, 1);
        let image = buf.image();
        assert_eq!(image.next_seq, 4);
        assert_eq!(image.cursors, vec![(9, 1)]);
        let back = EpochBuffer::restore(&image, SubPolicy::default()).unwrap();
        let (next_seq, st, sealed, _) = back.stats();
        assert_eq!((next_seq, st, sealed), (4, Time(5), 1));
        assert_eq!(back.cursors(), vec![(9, 1)]);
        // Continuing the stream seals the re-opened tail identically.
        back.publish(VTime(3), &[stable(9)]);
        buf.publish(VTime(3), &[stable(9)]);
        let EpochWait::Ready(a) = back.wait_epoch(1, Duration::from_millis(10)) else {
            panic!("restored epoch 1");
        };
        let EpochWait::Ready(b) = buf.wait_epoch(1, Duration::from_millis(10)) else {
            panic!("original epoch 1");
        };
        assert_eq!(a.bytes(), b.bytes(), "restored tail is byte-identical");
    }

    #[test]
    fn corrupt_image_fails_typed() {
        let buf = EpochBuffer::new(SubPolicy::default());
        buf.publish(VTime(1), &[ins(1, 0), stable(5)]);
        let mut image = buf.image();
        image.frames[6] ^= 0x20;
        assert!(EpochBuffer::restore(&image, SubPolicy::default()).is_err());
        let mut short = buf.image();
        short.frames.truncate(short.frames.len() - 3);
        assert!(EpochBuffer::restore(&short, SubPolicy::default()).is_err());
    }
}
