//! `lmerge-ingest`: bind an ingest server, merge N networked inputs, and
//! fan the merged stream out — to a file, and/or live to subscribers.
//!
//! ```text
//! lmerge-ingest --addr 127.0.0.1:7171 --inputs 3 --level r3 --out merged.bin \
//!     --subscribe 127.0.0.1:7172 --filter mod:2:0 --metrics 127.0.0.1:9901
//! ```
//!
//! The process exits once every input has delivered a clean `Bye`, the
//! merge has drained, and subscriber sessions have finished their close
//! handshakes, printing a run summary to stdout. With `--metrics` a
//! Prometheus scrape endpoint runs for the life of the process (ingest
//! *and* subscriber series). `--subscribe HOST:PORT` serves the merged
//! output live through the epoch-batched broadcast buffer; `--filter
//! SPEC` (repeatable; `all`, `mod:M:R`, `range:LO:HI`) adds filter
//! classes subscribers can pick — class 0 is always the full stream.
//!
//! `--checkpoint-to DIR` captures a durable checkpoint (merge + executor
//! image + per-input transport cursors + the broadcast buffer's retained
//! window and subscriber cursors) at every finite advance of the output
//! stable point. After a crash, `--restore-from DIR` rebuilds the merge
//! *and* the broadcast buffer from the newest checkpoint, so both
//! rejoining replayers and reconnecting subscribers resume exactly-once.

use lmerge_core::{new_for_level, MergePolicy};
use lmerge_durable::{CheckpointStore, DurableCheckpointSink};
use lmerge_engine::{
    ControlAction, FaultAction, MergeRun, NoCheckpoint, NoHooks, Query, RunConfig, RunHooks,
    RunImage,
};
use lmerge_net::egress::NetHooks;
use lmerge_net::server::{IngestConfig, IngestServer};
use lmerge_obs::{
    default_rules, AlertEngine, EngineMetrics, MeteredSink, MetricsRegistry, MetricsServer,
    ScrapeAlerts, TraceEvent, TraceSink, Tracer,
};
use lmerge_properties::RLevel;
use lmerge_sub::{BroadcastHooks, EpochBuffer, SubConfig, SubFilter, SubPolicy, SubServer};
use lmerge_temporal::{Element, VTime, Value};
use std::io::BufWriter;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

struct Args {
    addr: String,
    inputs: usize,
    level: RLevel,
    ring: usize,
    credit: u32,
    out: Option<String>,
    metrics: Option<String>,
    checkpoint_to: Option<String>,
    restore_from: Option<String>,
    subscribe: Option<String>,
    filters: Vec<SubFilter>,
    sub_max_lag: u64,
    sub_retain_min: u64,
}

fn parse_level(s: &str) -> Option<RLevel> {
    match s {
        "r0" => Some(RLevel::R0),
        "r1" => Some(RLevel::R1),
        "r2" => Some(RLevel::R2),
        "r3" => Some(RLevel::R3),
        "r4" => Some(RLevel::R4),
        _ => None,
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7171".to_string(),
        inputs: 3,
        level: RLevel::R3,
        ring: 256,
        credit: 32,
        out: None,
        metrics: None,
        checkpoint_to: None,
        restore_from: None,
        subscribe: None,
        filters: vec![SubFilter::All],
        sub_max_lag: u64::MAX,
        sub_retain_min: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--inputs" => {
                args.inputs = value("--inputs")?
                    .parse()
                    .map_err(|e| format!("--inputs: {e}"))?
            }
            "--level" => {
                let s = value("--level")?;
                args.level = parse_level(&s).ok_or(format!("--level: unknown level {s:?}"))?
            }
            "--ring" => {
                args.ring = value("--ring")?
                    .parse()
                    .map_err(|e| format!("--ring: {e}"))?
            }
            "--credit" => {
                args.credit = value("--credit")?
                    .parse()
                    .map_err(|e| format!("--credit: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            "--metrics" => args.metrics = Some(value("--metrics")?),
            "--checkpoint-to" => args.checkpoint_to = Some(value("--checkpoint-to")?),
            "--restore-from" => args.restore_from = Some(value("--restore-from")?),
            "--subscribe" => args.subscribe = Some(value("--subscribe")?),
            "--filter" => {
                let s = value("--filter")?;
                args.filters
                    .push(SubFilter::parse(&s).ok_or(format!("--filter: bad spec {s:?}"))?);
            }
            "--sub-max-lag" => {
                args.sub_max_lag = value("--sub-max-lag")?
                    .parse()
                    .map_err(|e| format!("--sub-max-lag: {e}"))?
            }
            "--sub-retain-min" => {
                args.sub_retain_min = value("--sub-retain-min")?
                    .parse()
                    .map_err(|e| format!("--sub-retain-min: {e}"))?
            }
            "--help" | "-h" => {
                return Err("usage: lmerge-ingest [--addr HOST:PORT] [--inputs N] \
                     [--level r0..r4] [--ring SLOTS] [--credit N] [--out FILE] \
                     [--metrics HOST:PORT] [--checkpoint-to DIR] [--restore-from DIR] \
                     [--subscribe HOST:PORT] [--filter SPEC]... [--sub-max-lag N] \
                     [--sub-retain-min N]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// The bin's egress hook: broadcast when `--subscribe` is on, inert
/// otherwise (no buffer growth when nobody can connect to drain it).
enum Egress {
    Broadcast(BroadcastHooks<NoHooks>),
    Off(NoHooks),
}

impl RunHooks<Value> for Egress {
    fn enabled(&self) -> bool {
        matches!(self, Egress::Broadcast(_))
    }

    fn on_deliver(
        &mut self,
        input: u32,
        at: VTime,
        elements: &[Element<Value>],
    ) -> FaultAction<Value> {
        match self {
            Egress::Broadcast(h) => h.on_deliver(input, at, elements),
            Egress::Off(_) => FaultAction::Deliver,
        }
    }

    fn on_consumed(
        &mut self,
        input: u32,
        at: VTime,
        delivered: &[Element<Value>],
        emitted: &[Element<Value>],
    ) {
        if let Egress::Broadcast(h) = self {
            h.on_consumed(input, at, delivered, emitted);
        }
    }

    fn control(&mut self, at: VTime, actions: &mut Vec<ControlAction<Value>>) {
        if let Egress::Broadcast(h) = self {
            h.control(at, actions);
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let config = IngestConfig {
        inputs: args.inputs,
        ring_capacity: args.ring,
        credit_batch: args.credit,
    };
    let registry = MetricsRegistry::new();
    let mut server = match IngestServer::bind_with_metrics(&args.addr, config, &registry) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "listening on {} for {} inputs (level {:?})",
        server.local_addr(),
        args.inputs,
        args.level
    );

    // Restore before any client can connect: the resume handshake's
    // `Welcome` must already carry the checkpoint's consumed-frame
    // cursors when the first rejoining replayer says `Hello` — and the
    // broadcast buffer must already hold its retained window and
    // subscriber cursors when the first subscriber says `Subscribe`.
    let restored: Option<(u64, RunImage<Value>)> = match &args.restore_from {
        Some(dir) => match CheckpointStore::<Value>::load_latest(dir) {
            Ok((seq, image)) => {
                server.restore_cursors(&image.cursors);
                println!(
                    "restored checkpoint {} from {dir} ({} entries, {} input cursors, \
                     {} subscriber cursors)",
                    seq,
                    image.merge.total_entries(),
                    image.cursors.len(),
                    image.egress.cursors.len()
                );
                Some((seq, image))
            }
            Err(e) => {
                eprintln!("restore from {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // The broadcast buffer and subscriber server, when fan-out is on.
    let sub_policy = SubPolicy {
        max_lag_epochs: args.sub_max_lag,
        retain_min_epochs: args.sub_retain_min,
    };
    let buf: Option<Arc<EpochBuffer>> = match &args.subscribe {
        Some(_) => {
            let buf = match &restored {
                Some((_, image)) => match EpochBuffer::restore(&image.egress, sub_policy) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("restore broadcast buffer: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => EpochBuffer::new(sub_policy),
            };
            Some(Arc::new(buf))
        }
        None => None,
    };
    let sub_server: Option<SubServer> = match (&args.subscribe, &buf) {
        (Some(addr), Some(buf)) => {
            let sub_config = SubConfig {
                filters: args.filters.clone(),
            };
            match SubServer::bind_with_metrics(addr, Arc::clone(buf), sub_config, &registry) {
                Ok(s) => {
                    println!(
                        "subscriptions on {} ({} filter classes)",
                        s.local_addr(),
                        args.filters.len()
                    );
                    Some(s)
                }
                Err(e) => {
                    eprintln!("subscribe bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => None,
    };

    // Alert transitions land in their own tracer: the run tracer is busy
    // on the merge thread, and alert noise must never perturb the run's
    // deterministic trace anyway.
    let alert_tracer = Arc::new(Mutex::new(Tracer::new()));
    let _metrics_server = match &args.metrics {
        Some(addr) => {
            let engine = AlertEngine::new(&registry, default_rules());
            let sink: Arc<Mutex<dyn TraceSink + Send>> = alert_tracer.clone();
            match MetricsServer::bind_with_alerts(
                addr.as_str(),
                registry.clone(),
                ScrapeAlerts { engine, sink },
            ) {
                Ok(s) => {
                    println!("metrics on http://{}/metrics", s.local_addr());
                    Some(s)
                }
                Err(e) => {
                    eprintln!("metrics bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    let queries: Vec<Query<_>> = server
        .sources()
        .into_iter()
        .map(|src| Query::from_source(Box::new(src), Vec::new()))
        .collect();
    let mut lmerge = new_for_level(args.level, args.inputs, MergePolicy::default());
    let restored_cut = restored.map(|(seq, image)| {
        let at = image.exec.lmerge_ready;
        let entries = image.merge.total_entries() as u64;
        if !lmerge.restore_state(image.merge) {
            eprintln!("checkpoint kind does not match --level {:?}", args.level);
            std::process::exit(1);
        }
        (seq, at, entries)
    });

    // Streaming, not collecting: a long-lived server must not grow an
    // unbounded output Vec. The broadcast buffer (bounded by subscriber
    // cursors) and the optional egress file are the outputs.
    let egress = match &buf {
        Some(b) => Egress::Broadcast(BroadcastHooks::wrap(NoHooks, Arc::clone(b))),
        None => Egress::Off(NoHooks),
    };
    let mut hooks = NetHooks::streaming(egress);
    if let Some(path) = &args.out {
        match std::fs::File::create(path) {
            Ok(f) => hooks = hooks.with_egress(Box::new(BufWriter::new(f))),
            Err(e) => {
                eprintln!("create {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The run tracer stays deterministic; the metered wrapper folds every
    // event into the live registry on the side.
    let mut sink = MeteredSink::new(Tracer::new(), EngineMetrics::new(&registry));
    if let Some((seq, at, entries)) = restored_cut {
        sink.record(TraceEvent::CheckpointRestored { at, seq, entries });
    }

    // A restored run uses a fresh executor over the restored merge — NOT
    // the replay-based `MergeRun::resumed`, whose re-pulls would consume
    // live socket data. Continuity comes from the restored state plus the
    // transport resume handshake skipping the consumed prefix.
    let run = MergeRun::new(queries, lmerge, RunConfig::default());
    let mut ck_sink: Option<DurableCheckpointSink<Value>> = match &args.checkpoint_to {
        Some(dir) => match CheckpointStore::create(dir) {
            Ok(store) => {
                let cursors = server.cursor_handle();
                let mut sink = DurableCheckpointSink::new(store)
                    .with_cursor_source(Box::new(move || cursors.cursors()));
                if let Some(b) = &buf {
                    // Polled on the executor thread inside save(), so the
                    // egress image is exactly consistent with the cut.
                    let b = Arc::clone(b);
                    sink = sink.with_egress_source(Box::new(move || b.image()));
                }
                Some(sink)
            }
            Err(e) => {
                eprintln!("checkpoint dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let metrics = match &mut ck_sink {
        Some(ck) => run.run_checkpointed(&mut sink, &mut hooks, ck),
        None => run.run_checkpointed(&mut sink, &mut hooks, &mut NoCheckpoint),
    };
    sink.metrics()
        .set_ring_dropped(sink.inner().ring().dropped());
    let emitted = hooks.emitted();

    // The merge drains at watermark = ∞, which a paced client reaches
    // while its final `Bye` round trip is still in flight; give the
    // close handshakes a moment so teardown doesn't sever them. Same for
    // subscribers: seal the stream first so their sessions see Finished
    // and run the Bye handshake.
    server.await_sessions_closed(std::time::Duration::from_secs(2));
    if let Some(b) = &buf {
        b.finish();
    }
    if let Some(s) = &sub_server {
        s.await_sessions_closed(std::time::Duration::from_secs(5));
    }

    println!(
        "merged {} elements from {} inputs in {} virtual µs",
        emitted, args.inputs, metrics.drained_at.0
    );
    {
        let session_tracer = server.tracer();
        for (i, lag) in session_tracer.net().inputs().iter().enumerate() {
            println!(
                "input {i}: {} session(s), {} clean close(s), {} credits granted, max queue {}",
                lag.sessions, lag.clean_closes, lag.credits_granted, lag.max_depth
            );
        }
    }
    if let Some(mut s) = sub_server {
        let opened = registry
            .sum_value("lmerge_sub_sessions_opened_total")
            .unwrap_or(0.0);
        let clean = registry
            .sum_value("lmerge_sub_session_closes_clean_total")
            .unwrap_or(0.0);
        let demotions = registry
            .sum_value("lmerge_sub_demotions_total")
            .unwrap_or(0.0);
        println!(
            "subscribers: {opened} session(s), {clean} clean close(s), {demotions} demotion(s)"
        );
        s.shutdown();
    }
    if args.metrics.is_some() {
        let fired = alert_tracer.lock().unwrap().events().count();
        println!("alert transitions observed: {fired}");
    }
    if let Some(path) = &args.out {
        println!("merged stream written to {path}");
    }
    if let Some(ck) = &ck_sink {
        if let Some(e) = &ck.error {
            eprintln!("checkpointing failed mid-run: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "{} checkpoint(s) in {}",
            ck.store().next_seq(),
            args.checkpoint_to.as_deref().unwrap_or("?")
        );
    }
    server.shutdown();
    ExitCode::SUCCESS
}
