//! `lmerge-replay`: stream one physically divergent replica of a
//! generated feed to an ingest server — or, with `--follow`, tail the
//! merged output live from a subscription endpoint.
//!
//! ```text
//! lmerge-replay --addr 127.0.0.1:7171 --input 0 --events 500 --seed 42
//! lmerge-replay --follow 127.0.0.1:7172 --subscriber 9
//! ```
//!
//! Every replica of the same `--seed` shares one logical history; the
//! `--input` index selects which physically divergent copy this process
//! streams (provisional lifetimes, differing stable cadence — the gen
//! crate's divergence model). `--pace-us` throttles real-time send rate;
//! `--kill-after N` severs the connection after N frames to exercise the
//! server's resume path, and `--attempts` reconnects until the feed
//! finishes cleanly.
//!
//! `--follow SUB_ADDR` turns the replayer around: instead of feeding an
//! input it subscribes to the merge's output and prints the stream's
//! progress as stable points advance — replay in, tail out, the whole
//! pipeline demonstrated end to end by one binary on each side.

use lmerge_engine::TimedElement;
use lmerge_gen::{assign_times, diverge, generate, DivergenceConfig, GenConfig};
use lmerge_net::client::{replay_until_clean, ReplayConfig};
use lmerge_sub::{subscribe_until_finished, SubscribeConfig};
use lmerge_temporal::Element;
use std::process::ExitCode;

struct Args {
    addr: String,
    input: u32,
    events: usize,
    seed: u64,
    rate_eps: f64,
    pace_us: u64,
    kill_after: Option<u64>,
    attempts: usize,
    follow: Option<String>,
    subscriber: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7171".to_string(),
        input: 0,
        events: 500,
        seed: 42,
        rate_eps: 50_000.0,
        pace_us: 0,
        kill_after: None,
        attempts: 1,
        follow: None,
        subscriber: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        let parse = |name: &str, s: String| -> Result<u64, String> {
            s.parse().map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--input" => args.input = parse("--input", value("--input")?)? as u32,
            "--events" => args.events = parse("--events", value("--events")?)? as usize,
            "--seed" => args.seed = parse("--seed", value("--seed")?)?,
            "--rate" => {
                args.rate_eps = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?
            }
            "--pace-us" => args.pace_us = parse("--pace-us", value("--pace-us")?)?,
            "--kill-after" => {
                args.kill_after = Some(parse("--kill-after", value("--kill-after")?)?)
            }
            "--attempts" => args.attempts = parse("--attempts", value("--attempts")?)? as usize,
            "--follow" => args.follow = Some(value("--follow")?),
            "--subscriber" => args.subscriber = parse("--subscriber", value("--subscriber")?)?,
            "--help" | "-h" => {
                return Err("usage: lmerge-replay [--addr HOST:PORT] [--input I] \
                     [--events N] [--seed S] [--rate EPS] [--pace-us US] \
                     [--kill-after N] [--attempts N] \
                     | lmerge-replay --follow SUB_ADDR [--subscriber ID] [--attempts N]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Tail the merged output from a subscription endpoint.
fn follow(addr: &str, subscriber: u64, attempts: u32) -> ExitCode {
    let config = SubscribeConfig::new(subscriber);
    match subscribe_until_finished(addr, &config, attempts.max(1)) {
        Ok(outcome) => {
            let mut inserts = 0u64;
            let mut adjusts = 0u64;
            let mut last_stable = None;
            for (_, _, e) in &outcome.frames {
                match e {
                    Element::Insert(_) => inserts += 1,
                    Element::Adjust { .. } => adjusts += 1,
                    Element::Stable(t) => last_stable = Some(*t),
                }
            }
            println!(
                "followed {} frames from {} (resumed from {}): {} inserts, {} adjusts, \
                 stable through {:?}, clean={}",
                outcome.received,
                addr,
                outcome.resumed_from,
                inserts,
                adjusts,
                last_stable,
                outcome.clean
            );
            if outcome.clean && outcome.finished {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("follow failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(sub_addr) = &args.follow {
        return follow(sub_addr, args.subscriber, args.attempts as u32);
    }

    let reference = generate(&GenConfig::small(args.events, args.seed).with_stable_freq(0.06));
    let divergence = DivergenceConfig {
        seed: args.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1),
        ..Default::default()
    };
    let replica = diverge(&reference.elements, &divergence, args.input as u64);
    let feed: Vec<TimedElement<_>> = assign_times(&replica, args.rate_eps)
        .into_iter()
        .map(|(at, element)| TimedElement::new(at, element))
        .collect();
    println!(
        "replica {} of seed {}: {} elements at {} eps",
        args.input,
        args.seed,
        feed.len(),
        args.rate_eps
    );

    let mut config = ReplayConfig::new(args.input).with_pace_us(args.pace_us);
    if let Some(n) = args.kill_after {
        config = config.with_kill_after(n);
    }
    // A kill-after run is intentionally unclean; send the severed session
    // as-is. Otherwise retry until the whole feed lands.
    let result = if args.kill_after.is_some() {
        lmerge_net::client::replay(&args.addr, &feed, &config).inspect(|o| {
            println!(
                "severed after {} frames (resume point for the next run)",
                o.sent
            );
        })
    } else {
        replay_until_clean(&args.addr, &feed, &config, args.attempts.max(1))
    };
    match result {
        Ok(outcome) => {
            println!(
                "sent {} frames (resumed from {}), clean={}, acked stable {}",
                outcome.sent, outcome.resumed_from, outcome.clean, outcome.acked_stable
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            ExitCode::FAILURE
        }
    }
}
