//! `lmerge-subscribe`: attach to a merge's subscription endpoint and
//! consume the fanned-out output stream.
//!
//! ```text
//! lmerge-subscribe --addr 127.0.0.1:7172 --subscriber 1 --out sub1.bin
//! ```
//!
//! The client speaks the subscriber side of the wire protocol: it sends
//! `Subscribe { subscriber, filter, resume_from, credits }`, consumes
//! `Data` frames under its own credit grants, acks its durable cursor at
//! stable points, and runs the `Bye` handshake at end-of-stream. With
//! `--attempts N` it reconnects after unclean drops, resuming from the
//! next unseen sequence — the stitched output is exactly-once, which
//! `--out FILE` makes checkable byte-for-byte against the server's
//! `--out` egress file (same canonical `Data`-frame encoding).
//! `--kill-after N` simulates a subscriber crash for resume drills.

use lmerge_sub::{subscribe, subscribe_until_finished, SubscribeConfig};
use std::io::Write;
use std::process::ExitCode;

struct Args {
    addr: String,
    subscriber: u64,
    filter: u32,
    resume_from: u64,
    credits: u32,
    kill_after: Option<u64>,
    attempts: u32,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7172".to_string(),
        subscriber: 1,
        filter: 0,
        resume_from: 0,
        credits: 256,
        kill_after: None,
        attempts: 1,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        let parse = |name: &str, s: String| -> Result<u64, String> {
            s.parse().map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--subscriber" => args.subscriber = parse("--subscriber", value("--subscriber")?)?,
            "--filter" => args.filter = parse("--filter", value("--filter")?)? as u32,
            "--resume-from" => args.resume_from = parse("--resume-from", value("--resume-from")?)?,
            "--credits" => args.credits = parse("--credits", value("--credits")?)? as u32,
            "--kill-after" => {
                args.kill_after = Some(parse("--kill-after", value("--kill-after")?)?)
            }
            "--attempts" => args.attempts = parse("--attempts", value("--attempts")?)? as u32,
            "--out" => args.out = Some(value("--out")?),
            "--help" | "-h" => {
                return Err(
                    "usage: lmerge-subscribe [--addr HOST:PORT] [--subscriber ID] \
                     [--filter CLASS] [--resume-from SEQ] [--credits N] [--kill-after N] \
                     [--attempts N] [--out FILE]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut config = SubscribeConfig::new(args.subscriber)
        .with_filter(args.filter)
        .with_resume_from(args.resume_from)
        .with_credits(args.credits);
    if let Some(n) = args.kill_after {
        config = config.with_kill_after(n);
    }

    // A kill-after run with a single attempt is intentionally unclean;
    // otherwise stitch reconnects until the stream finishes.
    let result = if args.attempts <= 1 {
        subscribe(&args.addr, &config)
    } else {
        subscribe_until_finished(&args.addr, &config, args.attempts)
    };
    let outcome = match result {
        Ok(o) => o,
        Err(e) => {
            eprintln!("subscribe failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "subscriber {}: {} frames (resumed from {}), {} attempt(s), {} demotion(s), \
         clean={}, finished={}",
        args.subscriber,
        outcome.received,
        outcome.resumed_from,
        outcome.attempts,
        outcome.demotions,
        outcome.clean,
        outcome.finished
    );
    if let Some(path) = &args.out {
        match std::fs::File::create(path).and_then(|mut f| f.write_all(&outcome.bytes)) {
            Ok(()) => println!("received stream written to {path}"),
            Err(e) => {
                eprintln!("write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if outcome.clean && outcome.finished {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
