//! lmerge-sub: shared incremental fan-out over the merged output.
//!
//! The merge produces one physically-independent output stream; this
//! crate turns it into an egress plane that scales to very large
//! subscriber counts by doing the expensive work **once per epoch**
//! instead of once per subscriber:
//!
//! - [`BroadcastHooks`] publishes every emitted element into an
//!   [`EpochBuffer`] — elements are wire-encoded a single time, sealed
//!   into refcounted [`EpochSegment`]s at each advance of the output
//!   stable point, and fanned out to N sessions as ranged writes from
//!   the shared byte blocks (zero per-subscriber copies).
//! - [`SubServer`] speaks the ingest wire protocol symmetrically: a
//!   `Subscribe`/`Welcome` handshake with a `resume_from` cursor,
//!   per-session credit-based backpressure, and exactly-once resume on
//!   reconnect — the mirror image of the ingest side's `next_seq`
//!   discipline. Slow subscribers are bounded by [`SubPolicy`]: past
//!   `max_lag_epochs` they stop pinning retention and are demoted to
//!   catch-up-from-stable.
//! - [`SubFilter`] predicates are evaluated once per epoch per filter
//!   class (a shared bitmap), not once per subscriber.
//! - Sessions surface in the PR 6 metrics registry (`lmerge_sub_*`
//!   series) and as subscriber lanes in chrome traces; subscriber
//!   cursors and the retained frame window persist through PR 7
//!   checkpoints as the run image's egress section, so a merge-process
//!   restart keeps every subscriber's exactly-once guarantee.

pub mod buffer;
pub mod client;
pub mod server;

pub use buffer::{EpochBuffer, EpochSegment, EpochWait, SubFilter, SubPolicy};
pub use client::{subscribe, subscribe_until_finished, SubOutcome, SubscribeConfig};
pub use server::{SubConfig, SubMetrics, SubServer};

use lmerge_engine::{ControlAction, FaultAction, RunHooks};
use lmerge_temporal::{Element, VTime, Value};
use std::sync::Arc;

/// Hooks wrapper that publishes the merged output into a shared
/// [`EpochBuffer`], from which subscriber sessions fan it out.
///
/// Like `NetHooks`, it reports `enabled` unconditionally so both sides of
/// a differential comparison run the executor's hooks-enabled path. The
/// publisher runs on the executor thread, which is what makes a
/// checkpoint-time [`EpochBuffer::image`] exactly consistent with the
/// merge image captured at the same cut.
pub struct BroadcastHooks<H> {
    inner: H,
    buf: Arc<EpochBuffer>,
}

impl<H: RunHooks<Value>> BroadcastHooks<H> {
    /// Wrap `inner`, publishing every emission into `buf`.
    pub fn wrap(inner: H, buf: Arc<EpochBuffer>) -> BroadcastHooks<H> {
        BroadcastHooks { inner, buf }
    }

    /// The shared buffer this publisher feeds.
    pub fn buffer(&self) -> &Arc<EpochBuffer> {
        &self.buf
    }

    /// Seal the open tail and mark the stream finished (call after the
    /// run completes so sessions drain and close cleanly).
    pub fn finish(&self) {
        self.buf.finish();
    }

    /// Consume the wrapper, returning the inner hooks.
    pub fn into_inner(self) -> H {
        self.inner
    }
}

impl<H: RunHooks<Value>> RunHooks<Value> for BroadcastHooks<H> {
    fn enabled(&self) -> bool {
        true
    }

    fn on_deliver(
        &mut self,
        input: u32,
        at: VTime,
        elements: &[Element<Value>],
    ) -> FaultAction<Value> {
        if self.inner.enabled() {
            self.inner.on_deliver(input, at, elements)
        } else {
            FaultAction::Deliver
        }
    }

    fn on_consumed(
        &mut self,
        input: u32,
        at: VTime,
        delivered: &[Element<Value>],
        emitted: &[Element<Value>],
    ) {
        self.buf.publish(at, emitted);
        if self.inner.enabled() {
            self.inner.on_consumed(input, at, delivered, emitted);
        }
    }

    fn control(&mut self, at: VTime, actions: &mut Vec<ControlAction<Value>>) {
        if self.inner.enabled() {
            self.inner.control(at, actions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_engine::NoHooks;
    use lmerge_temporal::Time;
    use std::time::Duration;

    #[test]
    fn broadcast_hooks_publish_and_finish() {
        let buf = Arc::new(EpochBuffer::new(SubPolicy::default()));
        let mut hooks = BroadcastHooks::wrap(NoHooks, Arc::clone(&buf));
        assert!(hooks.enabled());
        let emitted = vec![
            Element::insert(Value::bare(1), 0, 5),
            Element::<Value>::stable(Time(3)),
        ];
        hooks.on_consumed(0, VTime(1), &[], &emitted);
        hooks.on_consumed(0, VTime(2), &[], &[Element::insert(Value::bare(2), 4, 9)]);
        hooks.finish();
        let (next_seq, stable, sealed, _) = buf.stats();
        assert_eq!((next_seq, stable, sealed), (3, Time(3), 2));
        assert!(matches!(
            buf.wait_epoch(1, Duration::from_millis(10)),
            EpochWait::Ready(_)
        ));
        assert!(matches!(
            buf.wait_epoch(2, Duration::from_millis(10)),
            EpochWait::Finished
        ));
    }
}
