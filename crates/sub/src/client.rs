//! The subscriber client: connect, `Subscribe`, consume the fanned-out
//! stream under the credit protocol, and stitch across reconnects.
//!
//! The client is the receiving mirror of the ingest replayer: it grants
//! credits as it consumes, acks its durable cursor at stable points (the
//! server pins retention and checkpoints the cursor), deduplicates any
//! resume overlap by sequence, and treats a mid-stream `Welcome` as a
//! demotion notice — the server jumped it to the compaction horizon.
//! [`subscribe_until_finished`] reconnects with `resume_from` after
//! unclean drops until the close handshake lands, which is what gives a
//! crashing subscriber an exactly-once view of the merged output.

use lmerge_net::wire::{self, Frame, PROTOCOL_VERSION};
use lmerge_net::WireError;
use lmerge_temporal::{Element, Time, VTime, Value};
use std::net::TcpStream;

/// One subscription attempt's parameters.
#[derive(Clone, Debug)]
pub struct SubscribeConfig {
    /// Stable subscriber identity (the durable-cursor key).
    pub subscriber: u64,
    /// Filter class id (an index into the server's [`SubConfig`]
    /// filters; 0 is conventionally the whole stream).
    ///
    /// [`SubConfig`]: crate::SubConfig
    pub filter: u32,
    /// First output sequence wanted (0 = from the start / the horizon).
    pub resume_from: u64,
    /// Initial credit grant; more is granted as frames are consumed.
    pub credits: u32,
    /// Simulate a crash: drop the connection (no `Bye`) after receiving
    /// this many frames.
    pub kill_after: Option<u64>,
}

impl SubscribeConfig {
    /// Defaults: class 0, from the start, a 256-frame credit window.
    pub fn new(subscriber: u64) -> SubscribeConfig {
        SubscribeConfig {
            subscriber,
            filter: 0,
            resume_from: 0,
            credits: 256,
            kill_after: None,
        }
    }

    /// Select a filter class.
    #[must_use]
    pub fn with_filter(mut self, class: u32) -> SubscribeConfig {
        self.filter = class;
        self
    }

    /// Resume from a known cursor.
    #[must_use]
    pub fn with_resume_from(mut self, seq: u64) -> SubscribeConfig {
        self.resume_from = seq;
        self
    }

    /// Shrink or grow the credit window.
    #[must_use]
    pub fn with_credits(mut self, credits: u32) -> SubscribeConfig {
        self.credits = credits.max(1);
        self
    }

    /// Crash after `n` received frames.
    #[must_use]
    pub fn with_kill_after(mut self, n: u64) -> SubscribeConfig {
        self.kill_after = Some(n);
        self
    }
}

/// What one subscription (or a stitched sequence of attempts) received.
#[derive(Debug)]
pub struct SubOutcome {
    /// Accepted frames in order: `(seq, at, element)`.
    pub frames: Vec<(u64, VTime, Element<Value>)>,
    /// The accepted frames' canonical wire bytes, concatenated — the
    /// byte-identity artifact differential tests compare.
    pub bytes: Vec<u8>,
    /// `resume_seq` from the first `Welcome` (the server may have clamped
    /// the request to the retained window).
    pub resumed_from: u64,
    /// `resume_stable` from the first `Welcome` (catch-up point when the
    /// cursor was clamped).
    pub resume_stable: Time,
    /// Frames accepted (duplicates from resume overlap excluded).
    pub received: u64,
    /// Mid-stream demotions (server jumped this session to the horizon).
    pub demotions: u32,
    /// Connection attempts used (1 unless stitched).
    pub attempts: u32,
    /// The close handshake completed.
    pub clean: bool,
    /// The server reported end-of-stream (its `Bye` arrived).
    pub finished: bool,
}

/// Subscribe once and consume until end-of-stream, a kill, or an error.
///
/// An unclean drop (server restart, proxy fault, `kill_after`) returns
/// `Ok` with `clean: false` — resuming is the caller's policy (see
/// [`subscribe_until_finished`]); only handshake-level failures are
/// `Err`.
pub fn subscribe(addr: &str, config: &SubscribeConfig) -> Result<SubOutcome, WireError> {
    let mut stream = TcpStream::connect(addr).map_err(|e| WireError::Io(e.kind()))?;
    let _ = stream.set_nodelay(true);
    // Reads go through a buffer: the server coalesces each epoch into a
    // few large writes, and draining them frame-by-frame with raw reads
    // would cost thousands of syscalls per subscriber. Writes (acks,
    // credit grants, the Bye echo) keep using the unbuffered half.
    let mut reader =
        std::io::BufReader::new(stream.try_clone().map_err(|e| WireError::Io(e.kind()))?);
    wire::write_frame(
        &mut stream,
        &Frame::Subscribe {
            protocol: PROTOCOL_VERSION,
            subscriber: config.subscriber,
            filter: config.filter,
            resume_from: config.resume_from,
            credits: config.credits,
        },
    )?;
    let (resumed_from, resume_stable) = match wire::read_frame(&mut reader)? {
        Some(Frame::Welcome {
            resume_seq,
            resume_stable,
            ..
        }) => (resume_seq, resume_stable),
        Some(_) => return Err(WireError::Protocol("expected Welcome after Subscribe")),
        None => return Err(WireError::Protocol("server closed during handshake")),
    };

    let mut outcome = SubOutcome {
        frames: Vec::new(),
        bytes: Vec::new(),
        resumed_from,
        resume_stable,
        received: 0,
        demotions: 0,
        attempts: 1,
        clean: false,
        finished: false,
    };
    let mut expected = resumed_from;
    let grant_batch = (config.credits / 2).max(1) as u64;
    let mut since_grant: u64 = 0;
    loop {
        match wire::read_frame(&mut reader) {
            Ok(Some(Frame::Data { seq, at, element })) => {
                if seq < expected {
                    // Resume overlap duplicate: exactly-once by dropping.
                    continue;
                }
                // A forward jump is not loss: sequences are the *global*
                // stream's, so a filtered class legitimately skips the
                // sequences its filter rejected (TCP ordering rules out
                // reordering; the server never omits an admitted frame).
                expected = seq + 1;
                outcome.received += 1;
                wire::encode_into(
                    &Frame::Data {
                        seq,
                        at,
                        element: element.clone(),
                    },
                    &mut outcome.bytes,
                );
                if let Element::Stable(t) = element {
                    // Durable-cursor ack at stable points (mirror of the
                    // ingest server's acks).
                    let _ = wire::write_frame(&mut stream, &Frame::Ack { seq, stable: t });
                }
                outcome.frames.push((seq, at, element));
                since_grant += 1;
                if since_grant >= grant_batch {
                    let n = since_grant as u32;
                    since_grant = 0;
                    if wire::write_frame(&mut stream, &Frame::Credit { n }).is_err() {
                        break;
                    }
                }
                if config.kill_after == Some(outcome.received) {
                    // Simulated crash: vanish without a Bye (shutdown,
                    // not just drop — the buffered reader's clone would
                    // otherwise keep the socket alive until return).
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return Ok(outcome);
                }
            }
            Ok(Some(Frame::Welcome { resume_seq, .. })) => {
                // Demotion: this session fell off the retained window and
                // the server jumped it to the compaction horizon.
                outcome.demotions += 1;
                expected = expected.max(resume_seq);
            }
            Ok(Some(Frame::Bye)) => {
                outcome.finished = true;
                // Echo the close so the server can record a clean
                // session. The stream itself is complete once the Bye
                // arrived; a failed echo only means the server's echo
                // deadline expired first under load and it severed — no
                // data was at stake, so the outcome stays clean.
                let _ = wire::write_frame(&mut stream, &Frame::Bye);
                outcome.clean = true;
                break;
            }
            Ok(Some(_)) | Ok(None) | Err(_) => break,
        }
    }
    Ok(outcome)
}

/// Subscribe, reconnecting with `resume_from` after every unclean drop,
/// until the stream finishes cleanly (or `max_attempts` is exhausted —
/// then the stitched partial outcome is returned with `clean: false`).
/// The stitched `frames`/`bytes` are the exactly-once view: each retry
/// resumes at exactly the next unseen sequence.
pub fn subscribe_until_finished(
    addr: &str,
    config: &SubscribeConfig,
    max_attempts: u32,
) -> Result<SubOutcome, WireError> {
    let mut stitched: Option<SubOutcome> = None;
    let mut attempt_config = config.clone();
    for attempt in 0..max_attempts.max(1) {
        // Only the first attempt simulates the crash.
        if attempt > 0 {
            attempt_config.kill_after = None;
        }
        let outcome = match subscribe(addr, &attempt_config) {
            Ok(o) => o,
            Err(e) => {
                // Connection refused mid-restart: retry after a beat.
                if attempt + 1 == max_attempts.max(1) {
                    return Err(e);
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
        };
        attempt_config.resume_from = outcome
            .frames
            .last()
            .map(|(seq, _, _)| seq + 1)
            .unwrap_or(attempt_config.resume_from.max(outcome.resumed_from));
        let total = match stitched.as_mut() {
            None => {
                stitched = Some(outcome);
                stitched.as_mut().unwrap()
            }
            Some(total) => {
                total.attempts += 1;
                total.received += outcome.received;
                total.demotions += outcome.demotions;
                total.bytes.extend_from_slice(&outcome.bytes);
                total.frames.extend(outcome.frames);
                total.clean = outcome.clean;
                total.finished = outcome.finished;
                total
            }
        };
        if total.finished && total.clean {
            break;
        }
    }
    Ok(stitched.expect("at least one attempt"))
}
