//! Adversarial subscriber-session coverage: every hostile handshake or
//! mid-session corruption maps to a dropped/lost session and a typed
//! error on the client side; the server never panics and keeps serving
//! well-behaved subscribers afterwards.
//!
//! Targeted cases pin each rejection path; the seeded fuzz loop then
//! hammers the handshake with random garbage and random mutations of a
//! valid `Subscribe` frame. If the fuzzer ever breaks the server, the
//! failure is shrunk with the properties crate's minimizer to the
//! smallest `(seed, len, flips)` reproduction before reporting.

use lmerge_net::wire::{self, Frame, PROTOCOL_VERSION};
use lmerge_properties::shrink::{describe, minimize, Knob};
use lmerge_sub::{
    subscribe, subscribe_until_finished, EpochBuffer, SubConfig, SubPolicy, SubServer,
    SubscribeConfig,
};
use lmerge_temporal::{Element, Time, VTime, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A finished stream of `n` epochs (2 frames each), ready to fan out.
/// Retention is unbounded so sequential subscribers (hostile first, then
/// the canary) all see the full stream regardless of earlier acks.
fn served_buffer(n: u64) -> Arc<EpochBuffer> {
    let policy = SubPolicy {
        retain_min_epochs: u64::MAX,
        ..SubPolicy::default()
    };
    let buf = Arc::new(EpochBuffer::new(policy));
    for i in 0..n {
        buf.publish(
            VTime(i),
            &[
                Element::insert(Value::bare(i as i32), i as i64, i as i64 + 5),
                Element::<Value>::stable(Time(i as i64 * 10 + 1)),
            ],
        );
    }
    buf.finish();
    buf
}

fn valid_subscribe() -> Vec<u8> {
    wire::encode(&Frame::Subscribe {
        protocol: PROTOCOL_VERSION,
        subscriber: 7,
        filter: 0,
        resume_from: 0,
        credits: 64,
    })
}

/// The canary: after whatever abuse, a well-behaved subscriber must
/// still receive the complete stream cleanly.
fn server_still_serves(addr: &str, subscriber: u64, expect_frames: u64) {
    let outcome = subscribe(addr, &SubscribeConfig::new(subscriber)).expect("canary subscribe");
    assert!(outcome.clean && outcome.finished, "canary session clean");
    assert_eq!(outcome.received, expect_frames, "canary got the stream");
}

#[test]
fn bad_version_subscribe_is_dropped_silently() {
    let buf = served_buffer(5);
    let server = SubServer::bind("127.0.0.1:0", buf, SubConfig::new()).unwrap();
    let addr = server.local_addr().to_string();
    let mut stream = TcpStream::connect(&addr).unwrap();
    wire::write_frame(
        &mut stream,
        &Frame::Subscribe {
            protocol: 999,
            subscriber: 1,
            filter: 0,
            resume_from: 0,
            credits: 64,
        },
    )
    .unwrap();
    // The server drops the connection instead of welcoming us.
    assert!(matches!(wire::read_frame(&mut stream), Ok(None) | Err(_)));
    server_still_serves(&addr, 2, 10);
}

#[test]
fn unknown_filter_class_is_dropped_silently() {
    let buf = served_buffer(5);
    let server = SubServer::bind("127.0.0.1:0", buf, SubConfig::new()).unwrap();
    let addr = server.local_addr().to_string();
    let mut stream = TcpStream::connect(&addr).unwrap();
    wire::write_frame(
        &mut stream,
        &Frame::Subscribe {
            protocol: PROTOCOL_VERSION,
            subscriber: 1,
            filter: 42, // only class 0 exists
            resume_from: 0,
            credits: 64,
        },
    )
    .unwrap();
    assert!(matches!(wire::read_frame(&mut stream), Ok(None) | Err(_)));
    server_still_serves(&addr, 2, 10);
}

#[test]
fn hello_on_the_subscribe_port_is_dropped_silently() {
    // The ingest handshake aimed at the subscription endpoint: wrong
    // frame for the state, not a crash.
    let buf = served_buffer(3);
    let server = SubServer::bind("127.0.0.1:0", buf, SubConfig::new()).unwrap();
    let addr = server.local_addr().to_string();
    let mut stream = TcpStream::connect(&addr).unwrap();
    wire::write_frame(
        &mut stream,
        &Frame::Hello {
            protocol: PROTOCOL_VERSION,
            input: 0,
        },
    )
    .unwrap();
    assert!(matches!(wire::read_frame(&mut stream), Ok(None) | Err(_)));
    server_still_serves(&addr, 2, 6);
}

#[test]
fn resume_from_beyond_the_tail_is_clamped_not_trusted() {
    let buf = served_buffer(5); // seqs 0..10
    let server = SubServer::bind("127.0.0.1:0", buf, SubConfig::new()).unwrap();
    let addr = server.local_addr().to_string();
    let outcome =
        subscribe(&addr, &SubscribeConfig::new(3).with_resume_from(1_000_000)).expect("subscribe");
    assert!(outcome.clean && outcome.finished);
    assert_eq!(outcome.resumed_from, 10, "clamped down to the tail");
    assert_eq!(outcome.received, 0, "nothing left after the claimed cursor");
    server_still_serves(&addr, 4, 10);
}

#[test]
fn stale_resume_from_below_the_horizon_catches_up_from_stable() {
    let policy = SubPolicy {
        retain_min_epochs: 1,
        ..SubPolicy::default()
    };
    let buf = Arc::new(EpochBuffer::new(policy));
    for i in 0..6i64 {
        buf.publish(
            VTime(i as u64),
            &[
                Element::insert(Value::bare(i as i32), i, i + 5),
                Element::<Value>::stable(Time(i * 10 + 1)),
            ],
        );
    }
    buf.ack(99, 12); // fast subscriber lets the prefix compact
    buf.finish();
    let (_, horizon_seq, compact_stable) = buf.horizon();
    assert!(horizon_seq > 0, "compaction actually retired a prefix");
    let server = SubServer::bind("127.0.0.1:0", Arc::clone(&buf), SubConfig::new()).unwrap();
    let addr = server.local_addr().to_string();
    // This subscriber's cursor points into the retired prefix.
    let outcome = subscribe(&addr, &SubscribeConfig::new(5).with_resume_from(1)).unwrap();
    assert!(outcome.clean && outcome.finished);
    assert_eq!(outcome.resumed_from, horizon_seq, "demoted to the horizon");
    assert_eq!(
        outcome.resume_stable, compact_stable,
        "welcome names the catch-up stable point"
    );
    assert_eq!(outcome.received, 12 - horizon_seq);
}

#[test]
fn checksum_corruption_mid_session_loses_the_session_not_the_server() {
    let buf = served_buffer(10);
    let server = SubServer::bind("127.0.0.1:0", buf, SubConfig::new()).unwrap();
    let addr = server.local_addr().to_string();
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(&valid_subscribe()).unwrap();
    let welcome = wire::read_frame(&mut stream).unwrap();
    assert!(matches!(welcome, Some(Frame::Welcome { .. })));
    // A Credit frame with a flipped payload byte: the server's reader
    // must reject it typed and mark the session dead — no panic.
    let mut credit = wire::encode(&Frame::Credit { n: 8 });
    let len = credit.len();
    credit[len - 9] ^= 0x10; // payload byte (before the 8-byte checksum)
    stream.write_all(&credit).unwrap();
    // Drain whatever the server had in flight until it severs us.
    let mut sink = [0u8; 4096];
    loop {
        use std::io::Read;
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => continue,
        }
    }
    server_still_serves(&addr, 2, 20);
}

#[test]
fn mid_epoch_disconnect_resumes_exactly_once() {
    let buf = served_buffer(20); // 40 frames, 2 per epoch
    let server = SubServer::bind(
        "127.0.0.1:0",
        Arc::clone(server_buf(&buf)),
        SubConfig::new(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    // Reference: an uninterrupted subscriber.
    let reference = subscribe(&addr, &SubscribeConfig::new(1)).unwrap();
    assert!(reference.clean && reference.finished);
    // Kill after an odd frame count: the drop lands mid-epoch.
    let stitched =
        subscribe_until_finished(&addr, &SubscribeConfig::new(2).with_kill_after(7), 8).unwrap();
    assert!(stitched.clean && stitched.finished);
    assert!(stitched.attempts > 1);
    assert_eq!(
        stitched.bytes, reference.bytes,
        "stitched mid-epoch resume is byte-identical to uninterrupted"
    );
}

/// Identity helper so the test above reads naturally.
fn server_buf(buf: &Arc<EpochBuffer>) -> &Arc<EpochBuffer> {
    buf
}

/// Build the fuzz case for `(seed, len, flips)`: random bytes when
/// `flips == 0`, otherwise a valid `Subscribe` with `flips` byte edits.
fn fuzz_case(seed: u64, len: usize, flips: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    if flips == 0 {
        (0..len)
            .map(|_| rng.random_range(0..=255u32) as u8)
            .collect()
    } else {
        let mut bytes = valid_subscribe();
        for _ in 0..flips {
            let idx = rng.random_range(0..bytes.len());
            bytes[idx] = rng.random_range(0..=255u32) as u8;
        }
        bytes.truncate(len.min(bytes.len()).max(1));
        bytes
    }
}

/// Throw `bytes` at the handshake. Returns `true` if the server broke:
/// either the connection handling panicked into a hang, or the canary
/// subscription afterwards failed.
fn handshake_breaks_server(addr: &str, bytes: &[u8]) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return true;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    if stream.write_all(bytes).is_err() {
        // The server severed us mid-write: a legitimate rejection.
        return false;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Drain until EOF/timeout; a welcome here is fine (a mutation may
    // leave the frame valid), we only care that the server survives.
    let mut sink = [0u8; 1024];
    loop {
        use std::io::Read;
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => continue,
        }
    }
    drop(stream);
    subscribe(addr, &SubscribeConfig::new(424242))
        .map(|o| !(o.clean && o.finished))
        .unwrap_or(true)
}

#[test]
fn seeded_fuzz_handshake_never_breaks_the_server() {
    let buf = served_buffer(4);
    let server = SubServer::bind("127.0.0.1:0", buf, SubConfig::new()).unwrap();
    let addr = server.local_addr().to_string();
    let frame_len = valid_subscribe().len();
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5AB5);
        let flips = rng.random_range(0..4usize);
        let len = if flips == 0 {
            rng.random_range(0..(frame_len * 2))
        } else {
            rng.random_range(1..=frame_len)
        };
        if handshake_breaks_server(&addr, &fuzz_case(seed, len, flips)) {
            // Shrink the reproduction before failing the test, so the
            // report names the smallest (seed, len, flips) that breaks.
            let knobs = vec![
                Knob::new("seed", seed, 0),
                Knob::new("len", len as u64, 1),
                Knob::new("flips", flips as u64, 0),
            ];
            let (smallest, probes) = minimize(knobs, |ks| {
                handshake_breaks_server(
                    &addr,
                    &fuzz_case(ks[0].value, ks[1].value as usize, ks[2].value as usize),
                )
            });
            panic!(
                "subscriber handshake broke the server; minimized ({probes} probes) to {}",
                describe(&smallest)
            );
        }
    }
}
