//! Adversarial wire-format coverage: every hostile input maps to a typed
//! [`WireError`]; the decoder never panics.
//!
//! Targeted cases pin each error variant to the exact corruption that
//! produces it; the seeded fuzz loop then hammers the decoder with random
//! garbage and random mutations of valid frames. If the fuzzer ever finds
//! a panic, the failure is shrunk with the properties crate's minimizer
//! to the smallest `(seed, len, flips)` reproduction before reporting.

use lmerge_net::wire::{
    self, Frame, WireError, CHECKSUM_LEN, HEADER_LEN, MAX_PAYLOAD_LEN, PROTOCOL_VERSION,
};
use lmerge_properties::shrink::{describe, minimize, Knob};
use lmerge_temporal::{Element, Time, VTime, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn valid_frame() -> Vec<u8> {
    wire::encode(&Frame::Data {
        seq: 3,
        at: VTime(120),
        element: Element::insert(Value::synthetic(42, 64), 10, 99),
    })
}

/// Recompute the trailing checksum after a deliberate header/payload edit,
/// so the corruption under test (not the checksum) is what the decoder sees.
fn fix_checksum(bytes: &mut [u8]) {
    let body_len = bytes.len() - CHECKSUM_LEN;
    let sum = lmerge_core::hash::fnv1a(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn every_truncation_is_typed() {
    let bytes = valid_frame();
    for cut in 0..bytes.len() {
        assert_eq!(
            wire::decode(&bytes[..cut]).unwrap_err(),
            WireError::Truncated,
            "cut at {cut}"
        );
    }
    // …and the same through the streaming reader.
    for cut in 1..bytes.len() {
        let mut r = &bytes[..cut];
        assert_eq!(
            wire::read_frame(&mut r).unwrap_err(),
            WireError::Truncated,
            "stream cut at {cut}"
        );
    }
    // A cut at a frame boundary is clean EOF, not an error.
    let mut r = &bytes[..0];
    assert!(matches!(wire::read_frame(&mut r), Ok(None)));
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = valid_frame();
    bytes[0] ^= 0xFF;
    let got = wire::decode(&bytes).unwrap_err();
    assert!(matches!(got, WireError::BadMagic(_)), "{got:?}");
}

#[test]
fn bad_version_is_rejected() {
    let mut bytes = valid_frame();
    bytes[4..6].copy_from_slice(&(PROTOCOL_VERSION + 1).to_le_bytes());
    fix_checksum(&mut bytes);
    assert_eq!(
        wire::decode(&bytes).unwrap_err(),
        WireError::BadVersion(PROTOCOL_VERSION + 1)
    );
}

#[test]
fn unknown_type_is_rejected() {
    for bad in [0u8, 10, 200] {
        let mut bytes = valid_frame();
        bytes[6] = bad;
        fix_checksum(&mut bytes);
        assert_eq!(
            wire::decode(&bytes).unwrap_err(),
            WireError::UnknownType(bad)
        );
    }
}

#[test]
fn reserved_flags_are_rejected() {
    let mut bytes = valid_frame();
    bytes[7] = 0x80;
    fix_checksum(&mut bytes);
    assert_eq!(wire::decode(&bytes).unwrap_err(), WireError::BadFlags(0x80));
}

#[test]
fn oversized_length_is_rejected_before_allocation() {
    let mut bytes = valid_frame();
    let huge = MAX_PAYLOAD_LEN + 1;
    bytes[8..12].copy_from_slice(&huge.to_le_bytes());
    assert_eq!(
        wire::decode(&bytes).unwrap_err(),
        WireError::Oversized(huge)
    );
    // u32::MAX must not make the streaming reader allocate 4 GiB either.
    bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    let mut r = &bytes[..];
    assert_eq!(
        wire::read_frame(&mut r).unwrap_err(),
        WireError::Oversized(u32::MAX)
    );
}

#[test]
fn corrupted_checksum_is_detected() {
    let mut bytes = valid_frame();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    let got = wire::decode(&bytes).unwrap_err();
    assert!(matches!(got, WireError::Checksum { .. }), "{got:?}");
}

#[test]
fn corrupted_payload_byte_is_caught_by_the_checksum() {
    let mut bytes = valid_frame();
    bytes[HEADER_LEN + 3] ^= 0x40;
    let got = wire::decode(&bytes).unwrap_err();
    assert!(matches!(got, WireError::Checksum { .. }), "{got:?}");
}

#[test]
fn body_len_past_payload_end_is_malformed() {
    let mut bytes = valid_frame();
    // The insert payload layout is seq(8) at(8) vs(8) ve(8) key(8) body_len(4).
    let body_len_off = HEADER_LEN + 8 + 8 + 8 + 8 + 8;
    bytes[body_len_off..body_len_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    fix_checksum(&mut bytes);
    assert!(matches!(
        wire::decode(&bytes).unwrap_err(),
        WireError::Malformed(_)
    ));
}

#[test]
fn wide_key_is_malformed_not_wrapped() {
    let mut bytes = valid_frame();
    let key_off = HEADER_LEN + 8 + 8 + 8 + 8;
    bytes[key_off..key_off + 8].copy_from_slice(&(1i64 << 40).to_le_bytes());
    fix_checksum(&mut bytes);
    assert_eq!(
        wire::decode(&bytes).unwrap_err(),
        WireError::Malformed("payload key exceeds i32")
    );
}

#[test]
fn trailing_payload_bytes_are_malformed() {
    // A Bye frame with one extra payload byte: fields parse, then the
    // cursor notices the leftovers.
    let mut bytes = wire::encode(&Frame::Bye);
    let insert_at = bytes.len() - CHECKSUM_LEN;
    bytes.insert(insert_at, 0xAB);
    bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
    fix_checksum(&mut bytes);
    assert_eq!(
        wire::decode(&bytes).unwrap_err(),
        WireError::Malformed("trailing bytes after payload fields")
    );
}

/// Build the fuzz case for `(seed, len, flips)`: random bytes when
/// `flips == 0`, otherwise a valid frame with `flips` random byte edits.
fn fuzz_case(seed: u64, len: usize, flips: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    if flips == 0 {
        (0..len)
            .map(|_| rng.random_range(0..=255u32) as u8)
            .collect()
    } else {
        let mut bytes = valid_frame();
        for _ in 0..flips {
            let idx = rng.random_range(0..bytes.len());
            bytes[idx] = rng.random_range(0..=255u32) as u8;
        }
        bytes.truncate(len.min(bytes.len()).max(1));
        bytes
    }
}

fn decode_panics(bytes: &[u8]) -> bool {
    let owned = bytes.to_vec();
    std::panic::catch_unwind(move || {
        let _ = wire::decode(&owned);
        let mut r = &owned[..];
        let _ = wire::read_frame(&mut r);
    })
    .is_err()
}

#[test]
fn seeded_fuzz_decode_never_panics() {
    let frame_len = valid_frame().len();
    for seed in 0..1500u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
        let flips = rng.random_range(0..5usize);
        let len = if flips == 0 {
            rng.random_range(0..(frame_len * 2))
        } else {
            rng.random_range(1..=frame_len)
        };
        if decode_panics(&fuzz_case(seed, len, flips)) {
            // Shrink the reproduction before failing the test, so the
            // report names the smallest (seed, len, flips) that panics.
            let knobs = vec![
                Knob::new("seed", seed, 0),
                Knob::new("len", len as u64, 1),
                Knob::new("flips", flips as u64, 0),
            ];
            let (smallest, probes) = minimize(knobs, |ks| {
                decode_panics(&fuzz_case(
                    ks[0].value,
                    ks[1].value as usize,
                    ks[2].value as usize,
                ))
            });
            panic!(
                "wire::decode panicked; minimized ({probes} probes) to {}",
                describe(&smallest)
            );
        }
    }
}

#[test]
fn fuzzed_valid_prefix_streams_decode_or_fail_typed() {
    // Concatenate valid frames, then corrupt one byte: decoding the
    // stream must fail with a typed error at (or before) the corrupted
    // frame, never cascade into a panic.
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..200 {
        let mut buf = Vec::new();
        for seq in 0..4u64 {
            wire::write_frame(
                &mut buf,
                &Frame::Data {
                    seq,
                    at: VTime(seq * 10),
                    element: Element::insert(Value::bare(seq as i32), 0, 5),
                },
            )
            .unwrap();
        }
        wire::write_frame(
            &mut buf,
            &Frame::Data {
                seq: 4,
                at: VTime(40),
                element: Element::stable(Time::INFINITY),
            },
        )
        .unwrap();
        let idx = rng.random_range(0..buf.len());
        buf[idx] ^= 1 << rng.random_range(0..8u32);
        let mut r = &buf[..];
        loop {
            match wire::read_frame(&mut r) {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(_typed) => break,
            }
        }
    }
}
