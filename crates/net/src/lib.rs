//! Network ingest/egress for LMerge: physically independent replicas
//! feeding the merge over real sockets.
//!
//! The paper's premise is that LMerge's inputs are *physically independent*
//! — separate machines, separate failure domains — yet the rest of this
//! workspace delivers feeds in-process. This crate closes that gap with a
//! deliberately small TCP substrate, std-only (no tokio, no serde):
//!
//! * [`wire`] — a versioned, length-prefixed binary frame format for
//!   `insert`/`adjust`/`stable` plus session control, with a per-frame
//!   FNV-1a checksum (the same [`lmerge_core::hash`] the shard router
//!   uses) and typed, panic-free decode errors;
//! * [`server`] — the ingest side: one TCP connection per input, a
//!   handshake carrying protocol version / input id / resume offset,
//!   credit-based backpressure keyed off a bounded
//!   [`lmerge_core::spsc`] ring, and a [`server::NetSource`] implementing
//!   the engine's [`lmerge_engine::Source`] so decoded elements enter the
//!   ordinary virtual-time executor;
//! * [`client`] — the replayer: streams a pre-timed feed with configurable
//!   pacing, honours credits, and resumes from the server's acked offset
//!   after a crash or disconnect;
//! * [`egress`] — [`egress::NetHooks`], a [`lmerge_engine::RunHooks`]
//!   wrapper that captures the merged output stream and optionally
//!   serializes it back onto the wire;
//! * [`proxy`] — a chaos proxy that forwards bytes while injecting
//!   seeded delays, stalls, and connection resets, so the conformance
//!   oracle can judge merge output under *real* network faults rather
//!   than only the in-process injection of the chaos crate.
//!
//! The invariant the whole crate defends: because virtual arrival times
//! travel **inside** the frames, delivering a feed over a socket — even
//! through the chaos proxy, even across a kill-and-rejoin — reconstructs
//! exactly the `TimedElement` sequence an in-process run would consume,
//! so the merged output (and its trace) is byte-identical. Real time
//! affects only *when* the run finishes, never *what* it produces.

pub mod client;
pub mod egress;
pub mod proxy;
pub mod server;
pub mod wire;

pub use client::{replay, ReplayConfig, ReplayOutcome};
pub use egress::{NetHooks, SharedBuf};
pub use proxy::{ChaosProxy, ProxyFault, ProxyPlan};
pub use server::{IngestConfig, IngestServer, NetSource};
pub use wire::{decode, encode, read_frame, write_frame, Frame, WireError, PROTOCOL_VERSION};
