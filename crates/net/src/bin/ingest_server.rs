//! `lmerge-ingest`: bind an ingest server, merge N networked inputs, and
//! write the merged stream (as wire `Data` frames) to a file.
//!
//! ```text
//! lmerge-ingest --addr 127.0.0.1:7171 --inputs 3 --level r3 --out merged.bin
//! ```
//!
//! The process exits once every input has delivered a clean `Bye` and the
//! merge has drained, printing a run summary (elements emitted, per-input
//! session/credit gauges) to stdout.

use lmerge_core::{new_for_level, MergePolicy};
use lmerge_engine::{MergeRun, Query, RunConfig};
use lmerge_net::egress::NetHooks;
use lmerge_net::server::{IngestConfig, IngestServer};
use lmerge_obs::Tracer;
use lmerge_properties::RLevel;
use std::io::BufWriter;
use std::process::ExitCode;

struct Args {
    addr: String,
    inputs: usize,
    level: RLevel,
    ring: usize,
    credit: u32,
    out: Option<String>,
}

fn parse_level(s: &str) -> Option<RLevel> {
    match s {
        "r0" => Some(RLevel::R0),
        "r1" => Some(RLevel::R1),
        "r2" => Some(RLevel::R2),
        "r3" => Some(RLevel::R3),
        "r4" => Some(RLevel::R4),
        _ => None,
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7171".to_string(),
        inputs: 3,
        level: RLevel::R3,
        ring: 256,
        credit: 32,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--inputs" => {
                args.inputs = value("--inputs")?
                    .parse()
                    .map_err(|e| format!("--inputs: {e}"))?
            }
            "--level" => {
                let s = value("--level")?;
                args.level = parse_level(&s).ok_or(format!("--level: unknown level {s:?}"))?
            }
            "--ring" => {
                args.ring = value("--ring")?
                    .parse()
                    .map_err(|e| format!("--ring: {e}"))?
            }
            "--credit" => {
                args.credit = value("--credit")?
                    .parse()
                    .map_err(|e| format!("--credit: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            "--help" | "-h" => {
                return Err("usage: lmerge-ingest [--addr HOST:PORT] [--inputs N] \
                     [--level r0..r4] [--ring SLOTS] [--credit N] [--out FILE]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let config = IngestConfig {
        inputs: args.inputs,
        ring_capacity: args.ring,
        credit_batch: args.credit,
    };
    let mut server = match IngestServer::bind(&args.addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "listening on {} for {} inputs (level {:?})",
        server.local_addr(),
        args.inputs,
        args.level
    );

    let queries: Vec<Query<_>> = server
        .sources()
        .into_iter()
        .map(|src| Query::from_source(Box::new(src), Vec::new()))
        .collect();
    let lmerge = new_for_level(args.level, args.inputs, MergePolicy::default());

    let mut hooks = NetHooks::collector();
    if let Some(path) = &args.out {
        match std::fs::File::create(path) {
            Ok(f) => hooks = hooks.with_egress(Box::new(BufWriter::new(f))),
            Err(e) => {
                eprintln!("create {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut tracer = Tracer::new();
    let run = MergeRun::new(queries, lmerge, RunConfig::default());
    let metrics = run.run_with_hooks(&mut tracer, &mut hooks);
    let (out, _) = hooks.into_parts();

    println!(
        "merged {} elements from {} inputs in {} virtual µs",
        out.len(),
        args.inputs,
        metrics.drained_at.0
    );
    {
        let session_tracer = server.tracer();
        for (i, lag) in session_tracer.net().inputs().iter().enumerate() {
            println!(
                "input {i}: {} session(s), {} clean close(s), {} credits granted, max queue {}",
                lag.sessions, lag.clean_closes, lag.credits_granted, lag.max_depth
            );
        }
    }
    if let Some(path) = &args.out {
        println!("merged stream written to {path}");
    }
    server.shutdown();
    ExitCode::SUCCESS
}
