//! `lmerge-replay`: stream one physically divergent replica of a
//! generated feed to an ingest server.
//!
//! ```text
//! lmerge-replay --addr 127.0.0.1:7171 --input 0 --events 500 --seed 42
//! ```
//!
//! Every replica of the same `--seed` shares one logical history; the
//! `--input` index selects which physically divergent copy this process
//! streams (provisional lifetimes, differing stable cadence — the gen
//! crate's divergence model). `--pace-us` throttles real-time send rate;
//! `--kill-after N` severs the connection after N frames to exercise the
//! server's resume path, and `--attempts` reconnects until the feed
//! finishes cleanly.

use lmerge_engine::TimedElement;
use lmerge_gen::{assign_times, diverge, generate, DivergenceConfig, GenConfig};
use lmerge_net::client::{replay_until_clean, ReplayConfig};
use std::process::ExitCode;

struct Args {
    addr: String,
    input: u32,
    events: usize,
    seed: u64,
    rate_eps: f64,
    pace_us: u64,
    kill_after: Option<u64>,
    attempts: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7171".to_string(),
        input: 0,
        events: 500,
        seed: 42,
        rate_eps: 50_000.0,
        pace_us: 0,
        kill_after: None,
        attempts: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        let parse = |name: &str, s: String| -> Result<u64, String> {
            s.parse().map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--input" => args.input = parse("--input", value("--input")?)? as u32,
            "--events" => args.events = parse("--events", value("--events")?)? as usize,
            "--seed" => args.seed = parse("--seed", value("--seed")?)?,
            "--rate" => {
                args.rate_eps = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?
            }
            "--pace-us" => args.pace_us = parse("--pace-us", value("--pace-us")?)?,
            "--kill-after" => {
                args.kill_after = Some(parse("--kill-after", value("--kill-after")?)?)
            }
            "--attempts" => args.attempts = parse("--attempts", value("--attempts")?)? as usize,
            "--help" | "-h" => {
                return Err("usage: lmerge-replay [--addr HOST:PORT] [--input I] \
                     [--events N] [--seed S] [--rate EPS] [--pace-us US] \
                     [--kill-after N] [--attempts N]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let reference = generate(&GenConfig::small(args.events, args.seed).with_stable_freq(0.06));
    let divergence = DivergenceConfig {
        seed: args.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1),
        ..Default::default()
    };
    let replica = diverge(&reference.elements, &divergence, args.input as u64);
    let feed: Vec<TimedElement<_>> = assign_times(&replica, args.rate_eps)
        .into_iter()
        .map(|(at, element)| TimedElement::new(at, element))
        .collect();
    println!(
        "replica {} of seed {}: {} elements at {} eps",
        args.input,
        args.seed,
        feed.len(),
        args.rate_eps
    );

    let mut config = ReplayConfig::new(args.input).with_pace_us(args.pace_us);
    if let Some(n) = args.kill_after {
        config = config.with_kill_after(n);
    }
    // A kill-after run is intentionally unclean; send the severed session
    // as-is. Otherwise retry until the whole feed lands.
    let result = if args.kill_after.is_some() {
        lmerge_net::client::replay(&args.addr, &feed, &config).inspect(|o| {
            println!(
                "severed after {} frames (resume point for the next run)",
                o.sent
            );
        })
    } else {
        replay_until_clean(&args.addr, &feed, &config, args.attempts.max(1))
    };
    match result {
        Ok(outcome) => {
            println!(
                "sent {} frames (resumed from {}), clean={}, acked stable {}",
                outcome.sent, outcome.resumed_from, outcome.clean, outcome.acked_stable
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            ExitCode::FAILURE
        }
    }
}
